// Benchmarks regenerating every figure of the paper's evaluation (§5) and
// the analytic ablations, at laptop scale. Each benchmark reports the
// paper's metric — page I/Os per operation, or pages of space — via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the same numbers
// cmd/mobbench tabulates at larger scale.
//
//	Figure 6 -> BenchmarkFig6QueryLarge   (avg I/Os per 10% query)
//	Figure 7 -> BenchmarkFig7QuerySmall   (avg I/Os per 1% query)
//	Figure 8 -> BenchmarkFig8Space        (pages)
//	Figure 9 -> BenchmarkFig9Update       (avg I/Os per update)
//	E5       -> BenchmarkApproxErrorVsC   (Lemma 1: K' vs c)
//	E6       -> BenchmarkKineticQuery     (Theorem 2: O(log_B(n+m)))
//	E7       -> BenchmarkPartitionTree    (§3.4: ~sqrt(n) I/Os)
//	E8       -> Benchmark2DQuery, BenchmarkRoutedQuery
package mobidx

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/harness"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
	"mobidx/internal/twod"
	"mobidx/internal/workload"
)

const benchN = 20000 // objects per benchmark index (paper: 100k-500k)

// benchIndex is a prepared index plus its stores and workload state.
type benchIndex struct {
	buf *pager.Buffered
	ix  core.Index1D
	sim *workload.Simulator
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchIndex{}
)

// getIndex returns a scenario-warmed index for the method, built once per
// process and shared by all benchmarks (they only read or append).
func getIndex(b *testing.B, m harness.Method) *benchIndex {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if bi, ok := benchCache[m.Name]; ok {
		return bi
	}
	base := pager.NewMemStore(pager.DefaultPageSize)
	buf := pager.NewBuffered(base, harness.BufferPages)
	ix, err := m.New(buf)
	if err != nil {
		b.Fatal(err)
	}
	p := workload.DefaultParams(benchN)
	p.Ticks = 20
	sim, err := workload.NewSimulator(p)
	if err != nil {
		b.Fatal(err)
	}
	apply := func(op workload.Op) error {
		if op.Insert {
			return ix.Insert(op.Motion)
		}
		return ix.Delete(op.Motion)
	}
	if err := sim.Bootstrap(apply); err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 20; t++ {
		if err := sim.Tick(apply); err != nil {
			b.Fatal(err)
		}
	}
	bi := &benchIndex{buf: buf, ix: ix, sim: sim}
	benchCache[m.Name] = bi
	return bi
}

func benchQueries(b *testing.B, mix workload.QueryMix) {
	tr := workload.DefaultParams(1).Terrain
	for _, m := range harness.PaperMethods(tr) {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			bi := getIndex(b, m)
			rng := rand.New(rand.NewSource(7))
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := rng.Float64() * mix.YQMax
				y1 := rng.Float64() * (tr.YMax - w)
				t1 := bi.sim.Now() + rng.Float64()*10
				q := dual.MORQuery{Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + rng.Float64()*mix.TW}
				bi.buf.Clear()
				before := bi.buf.Stats()
				if err := bi.ix.Query(q, func(dual.OID) {}); err != nil {
					b.Fatal(err)
				}
				ios += bi.buf.Stats().Sub(before).IOs()
			}
			b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
		})
	}
}

func BenchmarkFig6QueryLarge(b *testing.B) { benchQueries(b, workload.LargeQueries()) }
func BenchmarkFig7QuerySmall(b *testing.B) { benchQueries(b, workload.SmallQueries()) }

func BenchmarkFig8Space(b *testing.B) {
	tr := workload.DefaultParams(1).Terrain
	for _, m := range harness.PaperMethods(tr) {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			bi := getIndex(b, m)
			for i := 0; i < b.N; i++ {
				_ = bi.buf.PagesInUse()
			}
			b.ReportMetric(float64(bi.buf.PagesInUse()), "pages")
			b.ReportMetric(float64(bi.buf.PagesInUse())/float64(benchN)*1000, "pages/kObj")
		})
	}
}

func BenchmarkFig9Update(b *testing.B) {
	tr := workload.DefaultParams(1).Terrain
	for _, m := range harness.PaperMethods(tr) {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			bi := getIndex(b, m)
			rng := rand.New(rand.NewSource(13))
			motions := bi.sim.Motions()
			now := bi.sim.Now()
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One update = delete old motion + insert new one.
				id := rng.Intn(len(motions))
				old := motions[id]
				y := old.At(now)
				if y < 0 {
					y = 0
				}
				if y > tr.YMax {
					y = tr.YMax
				}
				v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
				if rng.Intn(2) == 0 {
					v = -v
				}
				nm := dual.Motion{OID: old.OID, Y0: y, T0: now, V: v}
				before := bi.buf.Stats()
				if err := bi.ix.Delete(old); err != nil {
					b.Fatal(err)
				}
				if err := bi.ix.Insert(nm); err != nil {
					b.Fatal(err)
				}
				ios += bi.buf.Stats().Sub(before).IOs()
				motions[id] = nm
			}
			b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
		})
	}
}

// E5: approximation error versus c (Lemma 1).
func BenchmarkApproxErrorVsC(b *testing.B) {
	tr := workload.DefaultParams(1).Terrain
	for _, c := range []int{2, 4, 8, 16} {
		c := c
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			base := pager.NewMemStore(pager.DefaultPageSize)
			buf := pager.NewBuffered(base, harness.BufferPages)
			ix, err := core.NewDualBPlus(buf, core.DualBPlusConfig{Terrain: tr, C: c, Codec: bptree.Compact})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < benchN; i++ {
				v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
				if rng.Intn(2) == 0 {
					v = -v
				}
				if err := ix.Insert(dual.Motion{OID: dual.OID(i), Y0: rng.Float64() * tr.YMax, T0: 0, V: v}); err != nil {
					b.Fatal(err)
				}
			}
			var errSum, ansSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := rng.Float64() * 150
				y1 := rng.Float64() * (tr.YMax - w)
				t1 := rng.Float64() * 10
				q := dual.MORQuery{Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + rng.Float64()*60}
				count := 0
				if err := ix.Query(q, func(dual.OID) { count++ }); err != nil {
					b.Fatal(err)
				}
				errSum += float64(ix.LastQueryCandidates() - count)
				ansSum += float64(count)
			}
			b.ReportMetric(errSum/float64(b.N), "Kprime/op")
			if ansSum > 0 {
				b.ReportMetric(errSum/ansSum, "Kprime/K")
			}
		})
	}
}

// E6: kinetic MOR1 query cost (Theorem 2) at two sizes.
func BenchmarkKineticQuery(b *testing.B) {
	tr := workload.DefaultParams(1).Terrain
	for _, n := range []int{20000, 80000} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(19))
			objs := make([]kinetic.Object, n)
			for i := range objs {
				v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
				if rng.Intn(2) == 0 {
					v = -v
				}
				objs[i] = kinetic.Object{OID: dual.OID(i), Y0: rng.Float64() * tr.YMax, V: v}
			}
			base := pager.NewMemStore(pager.DefaultPageSize)
			buf := pager.NewBuffered(base, harness.BufferPages)
			st, err := kinetic.Build(buf, objs, 0, 100)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(st.M()), "crossings")
			b.ReportMetric(float64(buf.PagesInUse()), "pages")
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				yl := rng.Float64() * (tr.YMax - 50)
				tq := rng.Float64() * 100
				buf.Clear()
				before := buf.Stats()
				if err := st.Query(yl, yl+50, tq, func(dual.OID) {}); err != nil {
					b.Fatal(err)
				}
				ios += buf.Stats().Sub(before).IOs()
			}
			b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
		})
	}
}

// E7: partition-tree thin-wedge simplex queries at two sizes (~sqrt(n)).
func BenchmarkPartitionTree(b *testing.B) {
	for _, n := range []int{20000, 80000} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			base := pager.NewMemStore(pager.DefaultPageSize)
			buf := pager.NewBuffered(base, harness.BufferPages)
			t, err := parttree.New(buf, parttree.Config{})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			pts := make([]parttree.Point, n)
			for i := range pts {
				pts[i] = parttree.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
			}
			if err := t.BulkLoad(pts); err != nil {
				b.Fatal(err)
			}
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := rng.Float64() * 2000
				reg := geom.NewRegion(
					geom.Constraint{A: 1, B: 1, C: c + 0.5},
					geom.Constraint{A: -1, B: -1, C: -(c - 0.5)},
				)
				buf.Clear()
				before := buf.Stats()
				if err := t.SearchRegion(reg, func(parttree.Point) bool { return true }); err != nil {
					b.Fatal(err)
				}
				ios += buf.Stats().Sub(before).IOs()
			}
			b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
		})
	}
}

// E8a: the two 2-dimensional methods.
func Benchmark2DQuery(b *testing.B) {
	terrain := twod.Terrain2D{XMax: 1000, YMax: 1000, VMin: 0.16, VMax: 1.66}
	methods := []struct {
		name string
		mk   func(st pager.Store) (twod.Index2D, error)
	}{
		{"kd4D", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewKD4(st, twod.KD4Config{Terrain: terrain})
		}},
		{"decomposed", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewDecomposed(st, twod.DecomposedConfig{Terrain: terrain, C: 4, Codec: bptree.Compact})
		}},
	}
	for _, m := range methods {
		m := m
		b.Run(m.name, func(b *testing.B) {
			base := pager.NewMemStore(pager.DefaultPageSize)
			buf := pager.NewBuffered(base, harness.BufferPages)
			ix, err := m.mk(buf)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(29))
			comp := func() float64 {
				v := terrain.VMin + rng.Float64()*(terrain.VMax-terrain.VMin)
				if rng.Intn(2) == 0 {
					v = -v
				}
				return v
			}
			for i := 0; i < benchN; i++ {
				err := ix.Insert(twod.Motion2D{
					OID: dual.OID(i),
					X0:  rng.Float64() * terrain.XMax, Y0: rng.Float64() * terrain.YMax,
					T0: 0, VX: comp(), VY: comp(),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := rng.Float64() * 150
				x1 := rng.Float64() * (terrain.XMax - w)
				y1 := rng.Float64() * (terrain.YMax - w)
				t1 := rng.Float64() * 10
				q := twod.MOR2Query{X1: x1, X2: x1 + w, Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + rng.Float64()*40}
				buf.Clear()
				before := buf.Stats()
				if err := ix.Query(q, func(dual.OID) {}); err != nil {
					b.Fatal(err)
				}
				ios += buf.Stats().Sub(before).IOs()
			}
			b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
		})
	}
}

// E8b: routed (1.5-dimensional) rectangle queries.
func BenchmarkRoutedQuery(b *testing.B) {
	base := pager.NewMemStore(pager.DefaultPageSize)
	buf := pager.NewBuffered(base, harness.BufferPages)
	net, err := NewRouteNetwork(buf, RouteNetworkConfig{VMin: 0.16, VMax: 1.66, C: 4, Codec: bptree.Compact})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	const world = 1000.0
	rid := RouteID(0)
	var rids []RouteID
	for i := 0; i < 10; i++ {
		c := (float64(i) + 0.5) * world / 10
		if _, err := net.AddRoute(rid, []Point{{X: 0, Y: c}, {X: world, Y: c}}); err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
		rid++
		if _, err := net.AddRoute(rid, []Point{{X: c, Y: 0}, {X: c, Y: world}}); err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
		rid++
	}
	oid := OID(0)
	for _, r := range rids {
		rt, _ := net.Route(r)
		for k := 0; k < benchN/len(rids); k++ {
			v := 0.16 + rng.Float64()*1.5
			if rng.Intn(2) == 0 {
				v = -v
			}
			if err := net.Insert(r, Motion{OID: oid, Y0: rng.Float64() * rt.Length(), T0: 0, V: v}); err != nil {
				b.Fatal(err)
			}
			oid++
		}
	}
	var ios int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := 50 + rng.Float64()*150
		x1 := rng.Float64() * (world - w)
		y1 := rng.Float64() * (world - w)
		t1 := rng.Float64() * 10
		buf.Clear()
		before := buf.Stats()
		err := net.Query(Rect{MinX: x1, MinY: y1, MaxX: x1 + w, MaxY: y1 + w},
			t1, t1+rng.Float64()*40, func(RouteHit) {})
		if err != nil {
			b.Fatal(err)
		}
		ios += buf.Stats().Sub(before).IOs()
	}
	b.ReportMetric(float64(ios)/float64(b.N), "pageIO/op")
}
