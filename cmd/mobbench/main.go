// Command mobbench regenerates the paper's evaluation: Figures 6-9 of §5
// (query I/Os, space, update I/Os for the five access methods) and the
// analytic ablations E5-E8 catalogued in DESIGN.md.
//
// Reproduce the §5 figures at paper scale with:
//
//	mobbench -fig figures -ns 100000,200000,300000,400000,500000 -ticks 2000
//
// The default configuration is laptop-sized; -ticks and -ns trade fidelity
// for time (the measured shapes are stable in both).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mobidx/internal/harness"
	"mobidx/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "what to run: figures|e5|e6|e7|e8|all")
		nsFlag   = flag.String("ns", "20000,40000,60000,80000,100000", "comma-separated object counts for the figures")
		ticks    = flag.Int("ticks", 200, "scenario length in time instants (paper: 2000)")
		verify   = flag.Bool("verify", false, "cross-check every query against brute force (slow)")
		partTree = flag.Bool("parttree", false, "include the §3.4 partition tree in the figures")

		throughput = flag.Bool("throughput", false, "run the parallel serving benchmark instead of the figures")
		tpWorkers  = flag.String("tpworkers", "1,2,4,8", "comma-separated worker counts for -throughput")
		tpN        = flag.Int("tpn", 20000, "object count for -throughput")
		tpQueries  = flag.Int("tpqueries", 4000, "queries served per worker count in -throughput")
		tpIO       = flag.Duration("tpio", 150*time.Microsecond, "simulated disk latency per buffer-pool miss in -throughput (0 = in-memory)")
		tpRebuild  = flag.Bool("tprebuild", false, "perform a mid-run bulk reindex in each -throughput run")
		benchOut   = flag.String("benchout", "BENCH_parallel.json", "output file for the -throughput report")

		shardBench  = flag.Bool("shard", false, "run the sharded serving benchmark instead of the figures")
		shardCounts = flag.String("shardcounts", "1,2,4,8", "comma-separated shard counts for -shard")
		shardWork   = flag.Int("shardworkers", 0, "query-serving goroutines for -shard (0 = GOMAXPROCS)")
		shardN      = flag.Int("shardn", 20000, "object count for -shard")
		shardQ      = flag.Int("shardqueries", 4000, "queries served per run in -shard")
		shardIO     = flag.Duration("shardio", 150*time.Microsecond, "simulated disk latency per page read in -shard (0 = in-memory)")
		shardOut    = flag.String("shardout", "BENCH_shard.json", "output file for the -shard report")

		clusterBench  = flag.Bool("cluster", false, "run the durable-cluster lifecycle benchmark instead of the figures")
		clusterCounts = flag.String("clustercounts", "1,2,4,8", "comma-separated shard counts for -cluster")
		clusterWork   = flag.Int("clusterworkers", 0, "query-serving goroutines for -cluster (0 = GOMAXPROCS)")
		clusterN      = flag.Int("clustern", 20000, "object count for -cluster")
		clusterQ      = flag.Int("clusterqueries", 2000, "baseline queries per run in -cluster")
		clusterOut    = flag.String("clusterout", "BENCH_cluster.json", "output file for the -cluster report")

		ingestBench   = flag.Bool("ingest", false, "run the ingest-tier write benchmark instead of the figures")
		ingestWriters = flag.String("ingestwriters", "1,2,4,8", "comma-separated concurrent writer counts for -ingest")
		ingestN       = flag.Int("ingestn", 20000, "object count for -ingest")
		ingestUpdates = flag.Int("ingestupdates", 4000, "update pairs per leg in -ingest")
		ingestSync    = flag.Duration("ingestsync", 2*time.Millisecond, "simulated log fsync latency in -ingest")
		ingestOut     = flag.String("ingestout", "BENCH_ingest.json", "output file for the -ingest report")

		build    = flag.Bool("build", false, "run the incremental-vs-bulk construction benchmark instead of the figures")
		buildN   = flag.Int("buildn", 100000, "records per structure for -build")
		buildOut = flag.String("buildout", "BENCH_build.json", "output file for the -build report")

		subBench  = flag.Bool("subscribe", false, "run the continuous-query subscription benchmark instead of the figures")
		subCounts = flag.String("subcounts", "100,1000,10000", "comma-separated standing-query counts for -subscribe")
		subN      = flag.Int("subn", 2000, "commuter population for -subscribe")
		subTicks  = flag.Int("subticks", 20, "trace length for -subscribe")
		subOut    = flag.String("subout", "BENCH_subscribe.json", "output file for the -subscribe report")
	)
	flag.Parse()

	if *subBench {
		if err := runSubscribe(*subCounts, *subN, *subTicks, *subOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: subscribe: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ingestBench {
		if err := runIngest(*ingestWriters, *ingestN, *ingestUpdates, *ingestSync, *ingestOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: ingest: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *build {
		if err := runBuild(*buildN, *buildOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: build: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterBench {
		if err := runClusterBench(*clusterCounts, *clusterWork, *clusterN, *clusterQ, *clusterOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shardBench {
		if err := runShardBench(*shardCounts, *shardWork, *shardN, *shardQ, *shardIO, *shardOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: shard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *throughput {
		if err := runThroughput(*tpWorkers, *tpN, *tpQueries, *tpIO, *tpRebuild, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: throughput: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ns, err := parseInts(*nsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobbench: bad -ns: %v\n", err)
		os.Exit(1)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && !strings.EqualFold(*fig, name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mobbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Second))
	}

	run("figures", func() error {
		tr := workload.DefaultParams(1).Terrain
		methods := harness.PaperMethods(tr)
		if *partTree {
			methods = append(methods, harness.PartTreeMethod(tr))
		}
		fmt.Printf("Running §5 scenario: N in %v, %d ticks, %d methods (this is the long part)\n",
			ns, *ticks, len(methods))
		fs, err := harness.RunFigures(methods, ns, *ticks, *verify, func(line string) {
			fmt.Println("  " + line)
		})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(fs.String())
		return nil
	})

	run("e5", func() error {
		n := 50000
		if len(ns) > 0 {
			n = ns[0]
		}
		rows, err := harness.ApproxErrorSweep(n, min(*ticks, 100), []int{2, 4, 6, 8, 12, 16})
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatApproxSweep(rows))
		return nil
	})

	run("e6", func() error {
		// Crossings grow ~N²·horizon/terrain; these combinations keep M
		// (and hence the O(n+m) structure) laptop-sized while spanning two
		// decades of n+m.
		rows, err := harness.KineticSweep([]int{10000, 20000, 40000}, []float64{5, 20}, 50, 1999)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatKineticSweep(rows))
		return nil
	})

	run("e7", func() error {
		rows, err := harness.PartTreeSweep([]int{20000, 80000, 320000}, 1999)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatPartTreeSweep(rows))
		return nil
	})

	run("e8", func() error {
		rows, err := harness.TwoDScenario(20000, min(*ticks, 100), 100, 1999)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatTwoD(rows))
		routed, err := harness.RoutedScenario(10, 1000, min(*ticks, 100), 100, 1999)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatRouted(routed))
		return nil
	})
}

// runThroughput serves a mixed query/update workload at each worker count
// and writes the machine-readable report (QPS, p50/p99 latency, 4-vs-1
// speedup, and the result of the parallel-vs-sequential differential
// check) to outPath.
func runThroughput(workersCSV string, n, queries int, ioLat time.Duration, rebuild bool, outPath string) error {
	workers, err := parseInts(workersCSV)
	if err != nil {
		return fmt.Errorf("bad -tpworkers: %w", err)
	}

	fmt.Printf("Throughput serving benchmark: N=%d, %d queries per run, %v per page miss, GOMAXPROCS=%d\n",
		n, queries, ioLat, runtime.GOMAXPROCS(0))

	type report struct {
		N            int                         `json:"n"`
		Queries      int                         `json:"queries_per_run"`
		IOLatencyUs  float64                     `json:"io_latency_us"`
		GOMAXPROCS   int                         `json:"gomaxprocs"`
		Rebuild      bool                        `json:"rebuild"`
		Runs         []*harness.ThroughputResult `json:"runs"`
		Speedup4v1   float64                     `json:"speedup_4v1,omitempty"`
		Differential string                      `json:"differential"`
	}
	rep := report{
		N: n, Queries: queries, GOMAXPROCS: runtime.GOMAXPROCS(0),
		IOLatencyUs: float64(ioLat.Nanoseconds()) / 1e3,
		Rebuild:     rebuild,
	}

	qpsAt := map[int]float64{}
	for _, w := range workers {
		res, err := harness.RunThroughput(harness.ThroughputConfig{
			N: n, Workers: w, Queries: queries, IOLatency: ioLat, Rebuild: rebuild,
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		rep.Runs = append(rep.Runs, res)
		qpsAt[w] = res.QPS
		fmt.Printf("  workers=%-2d  %8.0f q/s   p50 %8s   p99 %8s   (%d updates interleaved",
			w, res.QPS, res.P50, res.P99, res.Updates)
		if res.Rebuilds > 0 {
			fmt.Printf(", bulk reindex held the latch %.1f ms", res.RebuildMs)
		}
		fmt.Println(")")
	}
	if qpsAt[1] > 0 && qpsAt[4] > 0 {
		rep.Speedup4v1 = qpsAt[4] / qpsAt[1]
		fmt.Printf("  speedup 4 vs 1 workers: %.2fx\n", rep.Speedup4v1)
	}

	// The determinism half of the story: parallel subquery execution must
	// be byte-identical to sequential at every worker count.
	rep.Differential = "ok"
	if err := harness.CheckParallelDifferential(min(n, 10000), 1999, []int{1, 2, 8}); err != nil {
		rep.Differential = err.Error()
	}
	fmt.Printf("  differential (parallel vs sequential vs oracle): %s\n", rep.Differential)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if rep.Differential != "ok" {
		return fmt.Errorf("differential check failed: %s", rep.Differential)
	}
	return nil
}

// runShardBench serves the query workload through a shard.Router at each
// shard count, then repeats the widest topology under a rolling fault
// storm (QPS-under-chaos), and writes the machine-readable report to
// outPath.
func runShardBench(countsCSV string, workers, n, queries int, ioLat time.Duration, outPath string) error {
	counts, err := parseInts(countsCSV)
	if err != nil {
		return fmt.Errorf("bad -shardcounts: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Sharded serving benchmark: N=%d, %d queries per run, %d serving goroutines, %v per page read, GOMAXPROCS=%d\n",
		n, queries, workers, ioLat, runtime.GOMAXPROCS(0))

	type report struct {
		N            int                         `json:"n"`
		Queries      int                         `json:"queries_per_run"`
		Workers      int                         `json:"workers"`
		IOLatencyUs  float64                     `json:"io_latency_us"`
		GOMAXPROCS   int                         `json:"gomaxprocs"`
		Runs         []*harness.ShardBenchResult `json:"runs"`
		Chaos        *harness.ShardBenchResult   `json:"chaos"`
		SpeedupMaxV1 float64                     `json:"speedup_max_v1,omitempty"`
		Differential string                      `json:"differential"`
	}
	rep := report{
		N: n, Queries: queries, Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0),
		IOLatencyUs: float64(ioLat.Nanoseconds()) / 1e3,
	}
	qpsAt := map[int]float64{}
	maxShards := 1
	for _, s := range counts {
		res, err := harness.RunShardBench(harness.ShardBenchConfig{
			N: n, Shards: s, Workers: workers, Queries: queries, IOLatency: ioLat,
		})
		if err != nil {
			return fmt.Errorf("shards=%d: %w", s, err)
		}
		rep.Runs = append(rep.Runs, res)
		qpsAt[s] = res.QPS
		if s > maxShards {
			maxShards = s
		}
		fmt.Printf("  shards=%-2d  %8.0f q/s   p50 %8.0fus   p99 %8.0fus\n",
			s, res.QPS, res.P50us, res.P99us)
	}
	if qpsAt[1] > 0 && qpsAt[maxShards] > 0 && maxShards > 1 {
		rep.SpeedupMaxV1 = qpsAt[maxShards] / qpsAt[1]
		fmt.Printf("  speedup %d vs 1 shards: %.2fx\n", maxShards, rep.SpeedupMaxV1)
	}

	chaos, err := harness.RunShardBench(harness.ShardBenchConfig{
		N: n, Shards: maxShards, Workers: workers, Queries: queries, IOLatency: ioLat,
		Chaos: true,
	})
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	rep.Chaos = chaos
	fmt.Printf("  chaos (shards=%d, rolling transient storms): %8.0f q/s   p99 %8.0fus   %d retries, %d partial, %d breaker skips\n",
		maxShards, chaos.QPS, chaos.P99us, chaos.Retries, chaos.Partial, chaos.BreakerSkips)

	rep.Differential = "ok"
	if err := harness.CheckShardDifferential(min(n, 5000), 1999, counts); err != nil {
		rep.Differential = err.Error()
	}
	fmt.Printf("  differential (routed vs unsharded oracle): %s\n", rep.Differential)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if rep.Differential != "ok" {
		return fmt.Errorf("differential check failed: %s", rep.Differential)
	}
	return nil
}

// runClusterBench drives the durable cluster's lifecycle at each shard
// count — load, serve, live split under load, crash, cold recovery,
// checkpoint, warm recovery — and writes the machine-readable report
// (cold-recovery time vs shard count, QPS dip during live migration) to
// outPath. Every run's recovered answers are verified against the
// simulator's brute force before its numbers are reported.
func runClusterBench(countsCSV string, workers, n, queries int, outPath string) error {
	counts, err := parseInts(countsCSV)
	if err != nil {
		return fmt.Errorf("bad -clustercounts: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Cluster lifecycle benchmark: N=%d, %d baseline queries per run, %d serving goroutines, GOMAXPROCS=%d\n",
		n, queries, workers, runtime.GOMAXPROCS(0))

	type report struct {
		N          int                           `json:"n"`
		Queries    int                           `json:"queries_per_run"`
		Workers    int                           `json:"workers"`
		GOMAXPROCS int                           `json:"gomaxprocs"`
		Runs       []*harness.ClusterBenchResult `json:"runs"`
	}
	rep := report{N: n, Queries: queries, Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, s := range counts {
		res, err := harness.RunClusterBench(harness.ClusterBenchConfig{
			N: n, Shards: s, Workers: workers, Queries: queries,
		})
		if err != nil {
			return fmt.Errorf("shards=%d: %w", s, err)
		}
		rep.Runs = append(rep.Runs, res)
		fmt.Printf("  shards=%-2d  cold recovery %8.2fms   checkpointed %8.2fms   split %7.2fms   QPS dip %5.1f%% (%.0f → %.0f q/s)\n",
			s, res.ColdRecoveryMs, res.CheckpointedRecoveryMs, res.SplitMs,
			res.QPSDipPct, res.BaselineQPS, res.MigrationQPS)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	return nil
}

// runSubscribe measures the subscription engine's incremental maintenance
// against naive per-tick re-execution at each standing-query count and
// writes the machine-readable report to outPath. The run fails if any
// differential check fails or if the incremental engine does not beat the
// naive strategy by at least 5x update throughput at 1000 standing
// queries — the scaling claim the engine exists for.
func runSubscribe(countsCSV string, commuters, ticks int, outPath string) error {
	counts, err := parseInts(countsCSV)
	if err != nil {
		return fmt.Errorf("bad -subcounts: %w", err)
	}
	fmt.Printf("Subscription benchmark: %d commuters, %d ticks, standing queries in %v\n",
		commuters, ticks, counts)

	type report struct {
		Commuters  int                             `json:"commuters"`
		Ticks      int                             `json:"ticks"`
		GOMAXPROCS int                             `json:"gomaxprocs"`
		Runs       []*harness.SubscribeBenchResult `json:"runs"`
		Speedup1k  float64                         `json:"speedup_at_1k,omitempty"`
	}
	rep := report{Commuters: commuters, Ticks: ticks, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, s := range counts {
		res, err := harness.RunSubscribeBench(harness.SubscribeBenchConfig{
			Subs: s, Commuters: commuters, Ticks: ticks,
		})
		if err != nil {
			return fmt.Errorf("subs=%d: %w", s, err)
		}
		rep.Runs = append(rep.Runs, res)
		if s == 1000 {
			rep.Speedup1k = res.Speedup
		}
		fmt.Printf("  subs=%-6d incremental %9.0f up/s   naive %9.0f up/s   speedup %7.1fx   (%d cert fires, differential: %s)\n",
			s, res.IncrementalUPS, res.NaiveUPS, res.Speedup, res.CertFires, res.Differential)
		if res.Differential != "ok" {
			return fmt.Errorf("subs=%d: differential check failed: %s", s, res.Differential)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if rep.Speedup1k > 0 && rep.Speedup1k < 5 {
		return fmt.Errorf("incremental speedup %.1fx at 1000 standing queries is below the 5x gate", rep.Speedup1k)
	}
	return nil
}

// runIngest compares sustained update throughput through the
// log-structured write tier (per-writer durable journals under group
// commit + shared memtable) against direct delete+insert on the flat
// index, at each writer count, and writes the machine-readable report to
// outPath. The run fails if the tier does not sustain at least 3x the
// direct path's updates/sec at 4 writers, or if its query throughput
// falls below 80% of the flat path's — the trade the tier exists for.
func runIngest(writersCSV string, n, updates int, syncLat time.Duration, outPath string) error {
	writers, err := parseInts(writersCSV)
	if err != nil {
		return fmt.Errorf("bad -ingestwriters: %w", err)
	}
	fmt.Printf("Ingest-tier write benchmark: N=%d, %d update pairs per leg, %v per log fsync, GOMAXPROCS=%d\n",
		n, updates, syncLat, runtime.GOMAXPROCS(0))

	type report struct {
		N          int                          `json:"n"`
		Updates    int                          `json:"update_pairs_per_leg"`
		SyncUs     float64                      `json:"sync_latency_us"`
		GOMAXPROCS int                          `json:"gomaxprocs"`
		Runs       []*harness.IngestBenchResult `json:"runs"`
		Speedup4w  float64                      `json:"updates_speedup_4w,omitempty"`
		QPSRatio4w float64                      `json:"qps_ratio_4w,omitempty"`
	}
	rep := report{
		N: n, Updates: updates, GOMAXPROCS: runtime.GOMAXPROCS(0),
		SyncUs: float64(syncLat.Nanoseconds()) / 1e3,
	}
	for _, w := range writers {
		res, err := harness.RunIngestBench(harness.IngestBenchConfig{
			N: n, Writers: w, Updates: updates, SyncLatency: syncLat,
		})
		if err != nil {
			return fmt.Errorf("writers=%d: %w", w, err)
		}
		rep.Runs = append(rep.Runs, res)
		if w == 4 {
			rep.Speedup4w = res.Speedup
			rep.QPSRatio4w = res.QPSRatio
		}
		fmt.Printf("  writers=%-2d  direct %8.0f up/s (p99 %7.0fus)   ingest %8.0f up/s (p99 %7.0fus)   speedup %5.2fx   qps %.0f→%.0f (%.2fx)   %d commits / %d syncs\n",
			w, res.Direct.UPS, res.Direct.UpdP99us, res.Ingest.UPS, res.Ingest.UpdP99us,
			res.Speedup, res.Direct.QPS, res.Ingest.QPS, res.QPSRatio,
			res.Ingest.Commits, res.Ingest.Syncs)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if rep.Speedup4w > 0 && rep.Speedup4w < 3 {
		return fmt.Errorf("ingest speedup %.2fx at 4 writers is below the 3x gate", rep.Speedup4w)
	}
	if rep.QPSRatio4w > 0 && rep.QPSRatio4w < 0.8 {
		return fmt.Errorf("ingest query throughput %.2fx of flat at 4 writers is below the 0.8x gate", rep.QPSRatio4w)
	}
	return nil
}

// runBuild measures incremental vs bulk construction for every access
// method and writes the machine-readable report to outPath.
func runBuild(n int, outPath string) error {
	fmt.Printf("Build benchmark: %d records per structure, incremental vs bulk\n", n)
	fmt.Printf("  %-10s %-11s  %11s  %17s  %18s  %15s  %12s\n",
		"structure", "method", "wall", "logical I/Os", "physical I/Os", "allocated", "pages")
	rep, err := harness.RunBuildBench(harness.BuildBenchConfig{N: n}, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  B+-tree (B=%d): bulk load does %.1fx fewer physical page I/Os than incremental\n",
		rep.BPTreeLeafB, rep.BPTreeIOReduction)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	if rep.BPTreeIOReduction < 5 {
		return fmt.Errorf("bptree physical I/O reduction %.1fx below the 5x gate", rep.BPTreeIOReduction)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
