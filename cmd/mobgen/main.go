// Command mobgen dumps the §5 workload as CSV — the operation stream
// (insert/delete pairs per update) and the query batches — so the same
// scenario can be replayed against external systems.
//
//	mobgen -n 10000 -ticks 50 -ops ops.csv -queries queries.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mobidx/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of mobile objects")
		ticks   = flag.Int("ticks", 100, "scenario length in time instants")
		seed    = flag.Int64("seed", 1999, "workload seed")
		opsPath = flag.String("ops", "-", "operation stream output (CSV), - for stdout")
		qPath   = flag.String("queries", "", "query batches output (CSV); empty = skip")
		every   = flag.Int("qevery", 10, "emit query batches every this many ticks")
	)
	flag.Parse()

	if err := run(*n, *ticks, *seed, *opsPath, *qPath, *every); err != nil {
		fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
		os.Exit(1)
	}
}

// run does the whole dump and returns the first error, so that deferred
// closes still run and no buffered CSV is silently truncated on failure.
func run(n, ticks int, seed int64, opsPath, qPath string, every int) error {
	p := workload.DefaultParams(n)
	p.Ticks = ticks
	p.Seed = seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return err
	}

	opsOut := os.Stdout
	if opsPath != "-" {
		f, err := os.Create(opsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		opsOut = f
	}
	ow := bufio.NewWriter(opsOut)
	if _, err := fmt.Fprintln(ow, "tick,op,oid,y0,t0,v"); err != nil {
		return err
	}
	tick := 0
	emit := func(op workload.Op) error {
		kind := "D"
		if op.Insert {
			kind = "I"
		}
		m := op.Motion
		_, err := fmt.Fprintf(ow, "%d,%s,%d,%g,%g,%g\n", tick, kind, m.OID, m.Y0, m.T0, m.V)
		return err
	}

	var qw *bufio.Writer
	if qPath != "" {
		f, err := os.Create(qPath)
		if err != nil {
			return err
		}
		defer f.Close()
		qw = bufio.NewWriter(f)
		if _, err := fmt.Fprintln(qw, "tick,mix,y1,y2,t1,t2,answer"); err != nil {
			return err
		}
	}

	if err := sim.Bootstrap(emit); err != nil {
		return err
	}
	for tick = 1; tick <= ticks; tick++ {
		if err := sim.Tick(emit); err != nil {
			return err
		}
		if qw != nil && tick%every == 0 {
			for _, mix := range []workload.QueryMix{workload.LargeQueries(), workload.SmallQueries()} {
				for _, q := range sim.Queries(mix) {
					if _, err := fmt.Fprintf(qw, "%d,%s,%g,%g,%g,%g,%d\n",
						tick, mix.Name, q.Y1, q.Y2, q.T1, q.T2, len(sim.BruteForce(q))); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := ow.Flush(); err != nil {
		return err
	}
	if qw != nil {
		if err := qw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
