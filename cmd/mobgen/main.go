// Command mobgen dumps the §5 workload as CSV — the operation stream
// (insert/delete pairs per update) and the query batches — so the same
// scenario can be replayed against external systems.
//
//	mobgen -n 10000 -ticks 50 -ops ops.csv -queries queries.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mobidx/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of mobile objects")
		ticks   = flag.Int("ticks", 100, "scenario length in time instants")
		seed    = flag.Int64("seed", 1999, "workload seed")
		opsPath = flag.String("ops", "-", "operation stream output (CSV), - for stdout")
		qPath   = flag.String("queries", "", "query batches output (CSV); empty = skip")
		every   = flag.Int("qevery", 10, "emit query batches every this many ticks")
	)
	flag.Parse()

	p := workload.DefaultParams(*n)
	p.Ticks = *ticks
	p.Seed = *seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
		os.Exit(1)
	}

	opsOut := os.Stdout
	if *opsPath != "-" {
		f, err := os.Create(*opsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opsOut = f
	}
	ow := bufio.NewWriter(opsOut)
	defer ow.Flush()
	fmt.Fprintln(ow, "tick,op,oid,y0,t0,v")
	tick := 0
	emit := func(op workload.Op) error {
		kind := "D"
		if op.Insert {
			kind = "I"
		}
		m := op.Motion
		_, err := fmt.Fprintf(ow, "%d,%s,%d,%g,%g,%g\n", tick, kind, m.OID, m.Y0, m.T0, m.V)
		return err
	}

	var qw *bufio.Writer
	if *qPath != "" {
		f, err := os.Create(*qPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		qw = bufio.NewWriter(f)
		defer qw.Flush()
		fmt.Fprintln(qw, "tick,mix,y1,y2,t1,t2,answer")
	}

	if err := sim.Bootstrap(emit); err != nil {
		fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
		os.Exit(1)
	}
	for tick = 1; tick <= *ticks; tick++ {
		if err := sim.Tick(emit); err != nil {
			fmt.Fprintf(os.Stderr, "mobgen: %v\n", err)
			os.Exit(1)
		}
		if qw != nil && tick%*every == 0 {
			for _, mix := range []workload.QueryMix{workload.LargeQueries(), workload.SmallQueries()} {
				for _, q := range sim.Queries(mix) {
					fmt.Fprintf(qw, "%d,%s,%g,%g,%g,%g,%d\n",
						tick, mix.Name, q.Y1, q.Y2, q.T1, q.T2, len(sim.BruteForce(q)))
				}
			}
		}
	}
}
