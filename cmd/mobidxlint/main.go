// Command mobidxlint runs the project-invariant static-analysis suite
// over the given package patterns and reports every violation with a
// position-accurate diagnostic. It exits 1 when there are findings, 2
// when the analysis itself could not run, and 0 on a clean tree — which
// is what lets scripts/verify.sh gate on it.
//
//	mobidxlint ./...                 # whole repo, human-readable
//	mobidxlint -json ./...           # machine-readable findings
//	mobidxlint -sarif ./...          # SARIF 2.1.0 for CI annotations
//	mobidxlint -passes errdrop ./... # one pass only
//	mobidxlint -v ./...              # per-pass wall times on stderr
//	mobidxlint -listcache f ./...    # cache `go list -export` in f
//	mobidxlint -list                 # describe the suite
//
// Suppressions are per-line and must carry a reason:
//
//	//mobidxlint:allow errdrop -- torn-write injection is the point here
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mobidx/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		sarifOut  = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
		passes    = flag.String("passes", "all", "comma-separated pass names to run")
		list      = flag.Bool("list", false, "list the available passes and exit")
		verbose   = flag.Bool("v", false, "print per-pass wall times to stderr")
		listCache = flag.String("listcache", "", "cache file for `go list -export` output (keyed on go.sum + source mtimes)")
	)
	flag.Parse()

	if *list {
		for _, p := range analysis.All() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	selected, err := analysis.ByName(*passes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadStart := time.Now()
	var pkgs []*analysis.Package
	if *listCache != "" {
		pkgs, err = analysis.LoadCached("", *listCache, patterns...)
	} else {
		pkgs, err = analysis.Load("", patterns...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "mobidxlint: load       %8.1fms (%d packages)\n",
			float64(time.Since(loadStart).Microseconds())/1000, len(pkgs))
	}

	var diags []analysis.Diagnostic
	if *verbose {
		// Run pass by pass so each one's wall time is visible; re-sort at
		// the end to keep the output order identical to a plain run.
		for _, p := range selected {
			start := time.Now()
			diags = append(diags, analysis.RunPasses(pkgs, []*analysis.Pass{p})...)
			fmt.Fprintf(os.Stderr, "mobidxlint: %-10s %8.1fms\n",
				p.Name, float64(time.Since(start).Microseconds())/1000)
		}
		analysis.SortDiagnostics(diags)
	} else {
		diags = analysis.RunPasses(pkgs, selected)
	}

	switch {
	case *sarifOut:
		root, err := os.Getwd()
		if err != nil {
			root = "" // URIs stay absolute; the document is still valid
		}
		doc, err := analysis.SARIF(diags, selected, root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
			os.Exit(2)
		}
		doc = append(doc, '\n')
		if _, err := os.Stdout.Write(doc); err != nil {
			fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
			os.Exit(2)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "mobidxlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
