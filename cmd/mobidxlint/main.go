// Command mobidxlint runs the project-invariant static-analysis suite
// over the given package patterns and reports every violation with a
// position-accurate diagnostic. It exits 1 when there are findings, 2
// when the analysis itself could not run, and 0 on a clean tree — which
// is what lets scripts/verify.sh gate on it.
//
//	mobidxlint ./...                 # whole repo, human-readable
//	mobidxlint -json ./...           # machine-readable findings
//	mobidxlint -passes errdrop ./... # one pass only
//	mobidxlint -list                 # describe the suite
//
// Suppressions are per-line and must carry a reason:
//
//	//mobidxlint:allow errdrop -- torn-write injection is the point here
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mobidx/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		passes  = flag.String("passes", "all", "comma-separated pass names to run")
		list    = flag.Bool("list", false, "list the available passes and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range analysis.All() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	selected, err := analysis.ByName(*passes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.RunPasses(pkgs, selected)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "mobidxlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mobidxlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
