// Command mobsim runs one §5 scenario against one access method and
// reports query/space/update metrics, optionally verifying every query
// against brute force.
//
//	mobsim -method dualbp -c 6 -n 50000 -ticks 200 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/harness"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

func main() {
	var (
		method = flag.String("method", "dualbp", "access method: dualbp|kd|rstar|parttree")
		c      = flag.Int("c", 4, "observation-index count for dualbp")
		n      = flag.Int("n", 20000, "number of mobile objects")
		ticks  = flag.Int("ticks", 100, "scenario length (paper: 2000)")
		verify = flag.Bool("verify", false, "cross-check every query against brute force")
		seed   = flag.Int64("seed", 1999, "workload seed")
		wide   = flag.Bool("wide", false, "use 8-byte records instead of the paper's 4-byte ones")
	)
	flag.Parse()

	tr := workload.DefaultParams(1).Terrain
	codec := bptree.Compact
	if *wide {
		codec = bptree.Wide
	}
	var m harness.Method
	switch *method {
	case "dualbp":
		m = harness.Method{Name: fmt.Sprintf("Dual B+ c=%d", *c), New: func(st pager.Store) (core.Index1D, error) {
			return core.NewDualBPlus(st, core.DualBPlusConfig{Terrain: tr, C: *c, Codec: codec})
		}}
	case "kd":
		m = harness.Method{Name: "kd-tree (hB)", New: func(st pager.Store) (core.Index1D, error) {
			return core.NewKDDual(st, core.KDDualConfig{Terrain: tr})
		}}
	case "rstar":
		m = harness.Method{Name: "R*-tree", New: func(st pager.Store) (core.Index1D, error) {
			return core.NewRStarSeg(st, core.RStarSegConfig{Terrain: tr})
		}}
	case "parttree":
		m = harness.PartTreeMethod(tr)
	default:
		fmt.Fprintf(os.Stderr, "mobsim: unknown method %q\n", *method)
		os.Exit(1)
	}

	cfg := harness.DefaultScenario(*n, *ticks)
	cfg.Params.Seed = *seed
	cfg.Verify = *verify
	fmt.Printf("method=%s N=%d ticks=%d verify=%v\n", m.Name, *n, *ticks, *verify)
	start := time.Now()
	r, err := harness.RunScenario(m, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %s\n\n", time.Since(start).Round(time.Millisecond))
	for _, mix := range cfg.Mixes {
		mr := r.Mix[mix.Name]
		fmt.Printf("%4s queries: %5d run, avg %8.2f I/Os, avg answer %8.1f objects\n",
			mix.Name, mr.Queries, mr.AvgIOs, mr.AvgAnswer)
	}
	fmt.Printf("space: %d pages (%.1f MB at 4 KB pages)\n", r.Pages, float64(r.Pages)*4096/1e6)
	fmt.Printf("updates: %d performed, avg %.2f I/Os each\n", r.Updates, r.AvgUpdateIO)
	if *verify {
		fmt.Printf("verified: %d queries matched brute force\n", r.Verified)
	}
}
