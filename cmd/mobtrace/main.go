// Command mobtrace replays an operation stream produced by mobgen (or any
// tool emitting the same CSV) against a chosen access method, reporting
// I/O totals, and optionally answers a query file, comparing cardinalities
// against the recorded ground truth.
//
//	mobgen -n 10000 -ticks 50 -ops ops.csv -queries q.csv
//	mobtrace -method dualbp -ops ops.csv -queries q.csv
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/harness"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mobtrace: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		method  = flag.String("method", "dualbp", "access method: dualbp|kd|rstar|parttree")
		c       = flag.Int("c", 4, "observation-index count for dualbp")
		opsPath = flag.String("ops", "", "operation stream CSV (required)")
		qPath   = flag.String("queries", "", "query CSV with recorded answers (optional)")
	)
	flag.Parse()
	if *opsPath == "" {
		fail("-ops is required")
	}

	tr := workload.DefaultParams(1).Terrain
	base := pager.NewMemStore(pager.DefaultPageSize)
	buf := pager.NewBuffered(base, harness.BufferPages)
	var ix core.Index1D
	var err error
	switch *method {
	case "dualbp":
		ix, err = core.NewDualBPlus(buf, core.DualBPlusConfig{Terrain: tr, C: *c, Codec: bptree.Compact})
	case "kd":
		ix, err = core.NewKDDual(buf, core.KDDualConfig{Terrain: tr})
	case "rstar":
		ix, err = core.NewRStarSeg(buf, core.RStarSegConfig{Terrain: tr})
	case "parttree":
		ix, err = core.NewPartTreeDual(buf, core.PartTreeDualConfig{Terrain: tr})
	default:
		fail("unknown method %q", *method)
	}
	if err != nil {
		fail("create index: %v", err)
	}

	f, err := os.Open(*opsPath)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	header, err := r.Read()
	if err != nil {
		fail("read header: %v", err)
	}
	if len(header) != 6 || header[0] != "tick" {
		fail("unexpected ops header %v (want tick,op,oid,y0,t0,v)", header)
	}

	// Query batches are stamped with the tick they were generated at;
	// replay interleaves them so each batch sees exactly the state the
	// recorded ground-truth answers were computed against.
	type query struct {
		q    dual.MORQuery
		want int
	}
	batches := map[int][]query{}
	if *qPath != "" {
		qf, err := os.Open(*qPath)
		if err != nil {
			fail("%v", err)
		}
		defer qf.Close()
		qr := csv.NewReader(bufio.NewReader(qf))
		if _, err := qr.Read(); err != nil {
			fail("read query header: %v", err)
		}
		for {
			rec, err := qr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail("read queries: %v", err)
			}
			if len(rec) != 7 {
				fail("query row needs 7 fields, got %d", len(rec))
			}
			tick, err := strconv.Atoi(rec[0])
			if err != nil {
				fail("query tick: %v", err)
			}
			vals := make([]float64, 4)
			for i := 0; i < 4; i++ {
				if vals[i], err = strconv.ParseFloat(rec[2+i], 64); err != nil {
					fail("query field %d: %v", i, err)
				}
			}
			want, err := strconv.Atoi(rec[6])
			if err != nil {
				fail("query answer field: %v", err)
			}
			batches[tick] = append(batches[tick], query{
				q:    dual.MORQuery{Y1: vals[0], Y2: vals[1], T1: vals[2], T2: vals[3]},
				want: want,
			})
		}
	}

	queries, exact, close := 0, 0, 0
	var qIOs int64
	runBatch := func(tick int) {
		for _, qu := range batches[tick] {
			buf.Clear()
			before := buf.Stats()
			got := 0
			if err := ix.Query(qu.q, func(dual.OID) { got++ }); err != nil {
				fail("query: %v", err)
			}
			qIOs += buf.Stats().Sub(before).IOs()
			queries++
			switch {
			case got == qu.want:
				exact++
			case abs(got-qu.want) <= 1+qu.want/50:
				close++ // 4-byte record rounding at query boundaries
			}
		}
		delete(batches, tick)
	}

	ops, inserts, deletes := 0, 0, 0
	curTick := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("read ops: %v", err)
		}
		tick, err := strconv.Atoi(rec[0])
		if err != nil {
			fail("row %d: tick: %v", ops+2, err)
		}
		for tick > curTick {
			runBatch(curTick)
			curTick++
		}
		m, err := parseMotion(rec[2:])
		if err != nil {
			fail("row %d: %v", ops+2, err)
		}
		switch rec[1] {
		case "I":
			if err := ix.Insert(m); err != nil {
				fail("insert %d: %v", m.OID, err)
			}
			inserts++
		case "D":
			if err := ix.Delete(m); err != nil {
				fail("delete %d: %v", m.OID, err)
			}
			deletes++
		default:
			fail("row %d: unknown op %q", ops+2, rec[1])
		}
		ops++
	}
	// Remaining batches at or after the last op tick.
	for tick := curTick; len(batches) > 0; tick++ {
		runBatch(tick)
	}
	st := buf.Stats()
	fmt.Printf("replayed %d ops (%d inserts, %d deletes): %d reads, %d writes, %d pages, %d objects live\n",
		ops, inserts, deletes, st.Reads, st.Writes, buf.PagesInUse(), ix.Len())
	if *qPath == "" {
		return
	}
	fmt.Printf("answered %d queries: %.2f I/Os avg; %d exact, %d within rounding, %d diverged\n",
		queries, float64(qIOs)/float64(max(queries, 1)), exact, close, queries-exact-close)
	if queries-exact-close > 0 {
		os.Exit(1)
	}
}

func parseMotion(fields []string) (dual.Motion, error) {
	if len(fields) != 4 {
		return dual.Motion{}, fmt.Errorf("need oid,y0,t0,v")
	}
	oid, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return dual.Motion{}, err
	}
	y0, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return dual.Motion{}, err
	}
	t0, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return dual.Motion{}, err
	}
	v, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return dual.Motion{}, err
	}
	return dual.Motion{OID: dual.OID(oid), Y0: y0, T0: t0, V: v}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
