// Airspace sector loading — free 2-dimensional movement (§4.2).
//
// Aircraft cross a 1000x1000 airspace on straight tracks. A controller
// wants, for each sector of a 4x4 grid, the number of aircraft that will
// enter it within the next 15 minutes. The example runs the same queries
// through both 2-dimensional methods — the 4-dimensional dual k-d tree and
// the per-axis decomposition — and checks they agree while comparing their
// I/O costs.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"mobidx"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	terrain := mobidx.Terrain2D{XMax: 1000, YMax: 1000, VMin: 0.16, VMax: 1.66}

	kdStore := mobidx.NewMemStore(4096)
	kd, err := mobidx.New2DKDIndex(kdStore, mobidx.KD4Config{Terrain: terrain})
	if err != nil {
		panic(err)
	}
	decStore := mobidx.NewMemStore(4096)
	dec, err := mobidx.New2DDecomposedIndex(decStore, mobidx.DecomposedConfig{
		Terrain: terrain, C: 4,
	})
	if err != nil {
		panic(err)
	}

	// 5000 aircraft with per-axis velocity components in the speed band.
	comp := func() float64 {
		v := terrain.VMin + rng.Float64()*(terrain.VMax-terrain.VMin)
		if rng.Intn(2) == 0 {
			v = -v
		}
		return v
	}
	for i := 0; i < 5000; i++ {
		m := mobidx.Motion2D{
			OID: mobidx.OID(i),
			X0:  rng.Float64() * terrain.XMax,
			Y0:  rng.Float64() * terrain.YMax,
			T0:  0,
			VX:  comp(),
			VY:  comp(),
		}
		if err := kd.Insert(m); err != nil {
			panic(err)
		}
		if err := dec.Insert(m); err != nil {
			panic(err)
		}
	}
	fmt.Printf("airspace: %d aircraft indexed in both methods\n\n", kd.Len())

	// Sector loading forecast for the next 15 minutes.
	fmt.Println("aircraft entering each 250x250 sector within [now, now+15]:")
	fmt.Println("(kd-4D counts; per-axis decomposition must agree)")
	kdReadsBefore := kdStore.Stats()
	decReadsBefore := decStore.Stats()
	mismatches := 0
	for row := 3; row >= 0; row-- {
		for col := 0; col < 4; col++ {
			q := mobidx.Query2D{
				X1: float64(col) * 250, X2: float64(col+1) * 250,
				Y1: float64(row) * 250, Y2: float64(row+1) * 250,
				T1: 0, T2: 15,
			}
			a := collect(kd, q)
			b := collect(dec, q)
			if !equal(a, b) {
				mismatches++
			}
			fmt.Printf("%6d", len(a))
		}
		fmt.Println()
	}
	if mismatches > 0 {
		fmt.Printf("WARNING: %d sector answers disagreed between methods\n", mismatches)
	} else {
		fmt.Println("both methods returned identical sector sets ✓")
	}
	kdIOs := kdStore.Stats().Sub(kdReadsBefore).IOs()
	decIOs := decStore.Stats().Sub(decReadsBefore).IOs()
	fmt.Printf("\nI/O for the 16 sector queries: kd-4D %d, decomposed %d\n", kdIOs, decIOs)

	// A storm cell: which aircraft cross a small area between t=20 and 30?
	storm := mobidx.Query2D{X1: 480, X2: 560, Y1: 700, Y2: 780, T1: 20, T2: 30}
	hits := collect(kd, storm)
	fmt.Printf("\naircraft crossing the storm cell [480,560]x[700,780] during [20,30]: %d\n", len(hits))
	show := hits
	if len(show) > 8 {
		show = show[:8]
	}
	fmt.Printf("first few: %v\n", show)
}

func collect(ix mobidx.Index2D, q mobidx.Query2D) []mobidx.OID {
	var out []mobidx.OID
	if err := ix.Query(q, func(id mobidx.OID) { out = append(out, id) }); err != nil {
		panic(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []mobidx.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
