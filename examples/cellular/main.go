// Cellular bandwidth pre-allocation — the paper's mobile-communications
// motivation: "we can allocate more bandwidth for areas where high
// concentration of mobile phones is approaching".
//
// Phones move along a 10 km corridor served by cells of 500 m. The
// operator needs, at exact future instants, the phone count per cell —
// the MOR1 query of §3.6 — answered in logarithmic I/Os by the kinetic
// structure: crossing (overtake) events are precomputed and the evolving
// sorted order is stored in a partially persistent B-tree. A staggered
// pair of structures keeps the next T minutes always covered while phones
// keep reporting new motion.
package main

import (
	"fmt"
	"math/rand"

	"mobidx"
)

const (
	corridor = 10000.0 // meters
	cellSize = 500.0
	horizonT = 120.0 // structure window: rebuild every 2 minutes
)

func main() {
	rng := rand.New(rand.NewSource(99))
	store := mobidx.NewMemStore(4096)

	// 4000 phones with piecewise-constant velocities (walking to
	// driving: 1..30 m/s, either direction). Overtakes grow roughly
	// quadratically with density, so the demo stays laptop-sized; the
	// kinetic benchmarks in bench_test.go push this much higher.
	phones := make([]mobidx.KineticObject, 4000)
	for i := range phones {
		v := 1 + rng.Float64()*29
		if rng.Intn(2) == 0 {
			v = -v
		}
		phones[i] = mobidx.KineticObject{
			OID: mobidx.OID(i),
			Y0:  rng.Float64() * corridor,
			V:   v,
		}
	}

	sg, err := mobidx.NewStaggeredKinetic(store, horizonT)
	if err != nil {
		panic(err)
	}
	snapshot := func(now float64) func() []mobidx.KineticObject {
		return func() []mobidx.KineticObject {
			out := make([]mobidx.KineticObject, len(phones))
			for i, p := range phones {
				out[i] = mobidx.KineticObject{OID: p.OID, Y0: p.Y0 + p.V*now, V: p.V}
			}
			return out
		}
	}
	if err := sg.Advance(0, snapshot(0)); err != nil {
		panic(err)
	}

	// How much churn does the corridor have? Count overtakes in the
	// window (the m in the structure's O(n+m) space).
	crossings := mobidx.Crossings(phones, 0, horizonT)
	fmt.Printf("%d phones, %d overtakes within the next %.0f s\n\n",
		len(phones), len(crossings), horizonT)

	// Bandwidth planning: phone count per cell at t = 60 s, exactly.
	fmt.Println("phones per 500 m cell at t=60 s (cells 0-9 shown):")
	before := store.Stats()
	for c := 0; c < 10; c++ {
		lo := float64(c) * cellSize
		count := 0
		if err := sg.Query(lo, lo+cellSize, 60, func(mobidx.OID) { count++ }); err != nil {
			panic(err)
		}
		bar := ""
		for i := 0; i < count/8; i++ {
			bar += "#"
		}
		fmt.Printf("  cell %2d [%5.0f, %5.0f): %4d %s\n", c, lo, lo+cellSize, count, bar)
	}
	ios := store.Stats().Sub(before).IOs()
	fmt.Printf("10 instant queries cost %d page I/Os total (logarithmic per query)\n\n", ios)

	// Find the hottest cell across the whole corridor at t=90.
	hot, hotCount := -1, -1
	for c := 0; c < int(corridor/cellSize); c++ {
		lo := float64(c) * cellSize
		count := 0
		if err := sg.Query(lo, lo+cellSize, 90, func(mobidx.OID) { count++ }); err != nil {
			panic(err)
		}
		if count > hotCount {
			hot, hotCount = c, count
		}
	}
	fmt.Printf("pre-allocate bandwidth: cell %d will hold %d phones at t=90 s\n\n", hot, hotCount)

	// Time marches on; the staggered wrapper rebuilds every T so queries
	// up to now+T stay answerable as phones report new motion.
	for now := 60.0; now <= 360; now += 60 {
		// A few phones change speed (their updates feed the next rebuild).
		// Positions stay continuous: the stored (Y0, V) pair is rebased so
		// Y0 + V·now equals the phone's position at the moment of change.
		for k := 0; k < 200; k++ {
			i := rng.Intn(len(phones))
			p := phones[i]
			pos := p.Y0 + p.V*now
			v := newV(rng)
			phones[i] = mobidx.KineticObject{OID: p.OID, Y0: pos - v*now, V: v}
		}
		if err := sg.Advance(now, snapshot(now)); err != nil {
			panic(err)
		}
		count := 0
		if err := sg.Query(2000, 2500, now+45, func(mobidx.OID) { count++ }); err != nil {
			panic(err)
		}
		fmt.Printf("t=%3.0f s: %d live structures; cell [2000,2500) at t+45 will hold %d phones\n",
			now, sg.Structures(), count)
	}
	fmt.Printf("\ntotal store traffic: %+v, %d pages\n", store.Stats(), store.PagesInUse())
}

func newV(rng *rand.Rand) float64 {
	v := 1 + rng.Float64()*29
	if rng.Intn(2) == 0 {
		v = -v
	}
	return v
}
