// Quickstart: index a handful of moving objects and ask who will be where,
// when. Demonstrates the core Index1D lifecycle — insert, query, update,
// delete — and I/O accounting.
package main

import (
	"fmt"
	"sort"

	"mobidx"
)

func main() {
	// A 1000-unit stretch of road; object speeds between 0.16 and 1.66
	// units per time instant (the paper's 10..100 mph at 1 tick = 1 min).
	terrain := mobidx.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

	store := mobidx.NewMemStore(4096)
	idx, err := mobidx.NewDualBPlusIndex(store, mobidx.DualBPlusConfig{
		Terrain: terrain,
		C:       4, // four observation indexes, as in the paper's evaluation
	})
	if err != nil {
		panic(err)
	}

	// Three cars, reported at time 0.
	cars := []mobidx.Motion{
		{OID: 1, Y0: 100, T0: 0, V: 1.0},  // northbound, fast
		{OID: 2, Y0: 400, T0: 0, V: 0.25}, // northbound, slow
		{OID: 3, Y0: 900, T0: 0, V: -1.5}, // southbound
	}
	for _, c := range cars {
		if err := idx.Insert(c); err != nil {
			panic(err)
		}
	}

	// "Who will be between mile 450 and 550 at some point between t=100
	// and t=200?" Car 1 reaches 450 only at t=350 and car 3 enters the
	// range at t≈233 — both too late — while slow car 2 grazes 450
	// exactly at t=200. Widening the window to [200, 400] catches all
	// three.
	report := func(q mobidx.Query) {
		var ids []mobidx.OID
		if err := idx.Query(q, func(id mobidx.OID) { ids = append(ids, id) }); err != nil {
			panic(err)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Printf("inside [%.0f, %.0f] during [%.0f, %.0f]: %v\n", q.Y1, q.Y2, q.T1, q.T2, ids)
	}

	report(mobidx.Query{Y1: 450, Y2: 550, T1: 100, T2: 200})
	report(mobidx.Query{Y1: 450, Y2: 550, T1: 200, T2: 400})

	// Car 2 phones in new motion information at t=150: it sped up.
	old := cars[1]
	updated := mobidx.Motion{OID: 2, Y0: old.Y0 + old.V*150, T0: 150, V: 1.4}
	if err := idx.Delete(old); err != nil {
		panic(err)
	}
	if err := idx.Insert(updated); err != nil {
		panic(err)
	}
	fmt.Println("car 2 sped up at t=150")
	report(mobidx.Query{Y1: 450, Y2: 550, T1: 150, T2: 200})

	// Every answer above was computed through counted page I/Os:
	st := store.Stats()
	fmt.Printf("store traffic: %d page reads, %d page writes, %d pages in use\n",
		st.Reads, st.Writes, store.PagesInUse())
}
