// Traffic monitoring on a highway network — the paper's headline use case:
// "in databases that track cars in a highway system, we can detect future
// congestion areas".
//
// A grid of highways is modeled as a 1.5-dimensional route network (§4.1):
// an R*-tree indexes the route geometry, and every route carries its own
// Dual-B+ mobile-object index over arc-length positions. The example
// forecasts congestion by asking, for each interchange zone, how many
// vehicles will be inside it 10, 20 and 30 minutes from now.
package main

import (
	"fmt"
	"math/rand"

	"mobidx"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	store := mobidx.NewMemStore(4096)
	net, err := mobidx.NewRouteNetwork(store, mobidx.RouteNetworkConfig{
		VMin: 0.16, VMax: 1.66, C: 4,
	})
	if err != nil {
		panic(err)
	}

	// A 3x3 grid of highways over a 900x900 terrain.
	const world = 900.0
	var routeIDs []mobidx.RouteID
	id := mobidx.RouteID(0)
	for i := 0; i < 3; i++ {
		c := (float64(i) + 0.5) * world / 3
		if _, err := net.AddRoute(id, []mobidx.Point{{X: 0, Y: c}, {X: world, Y: c}}); err != nil {
			panic(err)
		}
		routeIDs = append(routeIDs, id)
		id++
		if _, err := net.AddRoute(id, []mobidx.Point{{X: c, Y: 0}, {X: c, Y: world}}); err != nil {
			panic(err)
		}
		routeIDs = append(routeIDs, id)
		id++
	}

	// 3000 vehicles spread over the network, positions reported at t=0.
	oid := mobidx.OID(0)
	for _, rid := range routeIDs {
		rt, _ := net.Route(rid)
		for k := 0; k < 500; k++ {
			v := 0.16 + rng.Float64()*1.5
			if rng.Intn(2) == 0 {
				v = -v
			}
			m := mobidx.Motion{OID: oid, Y0: rng.Float64() * rt.Length(), T0: 0, V: v}
			oid++
			if err := net.Insert(rid, m); err != nil {
				panic(err)
			}
		}
	}
	fmt.Printf("network: %d highways, %d vehicles\n\n", len(routeIDs), net.Len())

	// Interchange zones: 60x60 squares around each highway crossing.
	fmt.Println("forecast vehicle counts inside each interchange zone:")
	fmt.Printf("%-14s %8s %8s %8s\n", "interchange", "t=10", "t=20", "t=30")
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			cx := (float64(i) + 0.5) * world / 3
			cy := (float64(j) + 0.5) * world / 3
			zone := mobidx.Rect{MinX: cx - 30, MinY: cy - 30, MaxX: cx + 30, MaxY: cy + 30}
			var counts [3]int
			for s, t := range []float64{10, 20, 30} {
				seen := map[mobidx.OID]bool{}
				err := net.Query(zone, t, t+5, func(h mobidx.RouteHit) {
					seen[h.OID] = true
				})
				if err != nil {
					panic(err)
				}
				counts[s] = len(seen)
			}
			fmt.Printf("(%3.0f, %3.0f)    %8d %8d %8d\n", cx, cy, counts[0], counts[1], counts[2])
		}
	}

	// Congestion alert: zones that will hold more than a threshold.
	const threshold = 25
	fmt.Printf("\nzones predicted to exceed %d vehicles within 30 minutes:\n", threshold)
	alerts := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			cx := (float64(i) + 0.5) * world / 3
			cy := (float64(j) + 0.5) * world / 3
			zone := mobidx.Rect{MinX: cx - 30, MinY: cy - 30, MaxX: cx + 30, MaxY: cy + 30}
			seen := map[mobidx.OID]bool{}
			if err := net.Query(zone, 0, 30, func(h mobidx.RouteHit) { seen[h.OID] = true }); err != nil {
				panic(err)
			}
			if len(seen) > threshold {
				fmt.Printf("  interchange (%3.0f, %3.0f): %d vehicles passing through\n", cx, cy, len(seen))
				alerts++
			}
		}
	}
	if alerts == 0 {
		fmt.Println("  none — traffic is light")
	}

	st := store.Stats()
	fmt.Printf("\nI/O traffic for the whole session: %d reads, %d writes, %d pages used\n",
		st.Reads, st.Writes, store.PagesInUse())
}
