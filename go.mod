module mobidx

go 1.22
