// Package analysis implements mobidxlint, the project-invariant
// static-analysis suite. Every pass encodes one hand-maintained
// correctness convention of the codebase as a machine check:
//
//   - pagebufrelease — every pager.GetPageBuf is paired with Release()
//     on all return paths (CFG-lite escape analysis);
//   - batchdiscipline — every Begin() on a WAL-capable store reaches
//     Commit or Rollback in the same function;
//   - codecbounds — constant-folded page-codec offset arithmetic stays
//     inside the declared header and record strides of the page layout;
//   - floateq — no ==/!=/switch on float operands in the geometry and
//     dual-transform packages outside the approved epsilon helpers;
//   - errdrop — stricter-than-vet unchecked-error detection;
//   - nopanic — library packages never call panic directly;
//   - lockorder — per-package lock-acquisition graph: no inconsistent
//     acquisition order (deadlock cycles), no locks held across
//     blocking calls (fsync, channel ops, sleeps, waits);
//   - atomicmix — a struct field accessed via sync/atomic is never
//     also read or written plainly;
//   - ctxflow — exported blocking APIs in the serving layers accept
//     and propagate context.Context (no fabricated root contexts, no
//     dropped ctx params, no uncancellable sleeps);
//   - gorolifecycle — every goroutine in internal/ has a provable join
//     (WaitGroup) or stop (quit/ctx.Done select) path.
//
// The suite is built on the standard library only (go/parser, go/ast,
// go/types, go/importer); package discovery and export data come from
// `go list -export -deps -json`. Diagnostics are position-accurate and
// can be suppressed, one line at a time, with an annotation:
//
//	//mobidxlint:allow <pass>[,<pass>...] -- <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory by convention: an allow without a why does not
// survive review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass is one self-contained invariant check.
type Pass struct {
	// Name is the pass identifier used in diagnostics, -passes filters
	// and //mobidxlint:allow annotations.
	Name string
	// Doc is a one-line description of the invariant the pass encodes.
	Doc string
	// AppliesTo reports whether the pass runs on the package with the
	// given import path. A nil AppliesTo means every package.
	AppliesTo func(importPath string) bool
	// Run executes the pass and returns its findings.
	Run func(pkg *Package) []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Package is a parsed and type-checked package, the unit a Pass runs on.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// diag is the helper passes use to build a Diagnostic at a token.Pos.
func (p *Package) diag(pass string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Pass:    pass,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// position is a convenience for messages that reference a second location.
func (p *Package) line(pos token.Pos) int { return p.Fset.Position(pos).Line }

// AllowDirective is the annotation prefix recognized by the suite.
const AllowDirective = "//mobidxlint:allow"

// allowKey identifies one suppressed (file, line, pass) combination.
type allowKey struct {
	file string
	line int
	pass string
}

// allowSet collects every line-level suppression in a package. A
// directive on line L suppresses diagnostics of the named passes on
// lines L and L+1, so it can sit at the end of the offending line or on
// its own line directly above.
func buildAllowSet(pkg *Package) map[allowKey]bool {
	set := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, AllowDirective)
				if reason := strings.SplitN(rest, "--", 2); len(reason) > 0 {
					rest = reason[0]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pass := range strings.Split(rest, ",") {
					pass = strings.TrimSpace(pass)
					if pass == "" {
						continue
					}
					set[allowKey{pos.Filename, pos.Line, pass}] = true
					set[allowKey{pos.Filename, pos.Line + 1, pass}] = true
				}
			}
		}
	}
	return set
}

// RunPasses applies every pass to every package it applies to, drops
// diagnostics suppressed by //mobidxlint:allow annotations, and returns
// the remainder in deterministic (file, line, col, pass) order.
func RunPasses(pkgs []*Package, passes []*Pass) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowSet(pkg)
		for _, pass := range passes {
			if pass.AppliesTo != nil && !pass.AppliesTo(pkg.Path) {
				continue
			}
			for _, d := range pass.Run(pkg) {
				if allow[allowKey{d.File, d.Line, d.Pass}] || allow[allowKey{d.File, d.Line, "all"}] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics deterministically by (file, line,
// col, pass) — the order RunPasses emits and the goldens pin down. The
// CLI re-sorts after per-pass timed runs with it.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
}

// All returns the full pass suite in stable order.
func All() []*Pass {
	return []*Pass{
		PageBufRelease,
		BatchDiscipline,
		CodecBounds,
		FloatEq,
		ErrDrop,
		NoPanic,
		LockOrder,
		AtomicMix,
		CtxFlow,
		GoroLifecycle,
	}
}

// ByName resolves a comma-separated pass list; "all" (or empty) selects
// the whole suite.
func ByName(names string) ([]*Pass, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	byName := map[string]*Pass{}
	for _, p := range All() {
		byName[p.Name] = p
	}
	var out []*Pass
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// pathHasSuffix reports whether an import path is exactly suffix or ends
// with "/"+suffix — the matching used by AppliesTo filters so that the
// checks bind to package identity rather than to the module name.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// funcBodies returns every function body in the file, one entry per
// *ast.FuncDecl and per *ast.FuncLit, paired with the function's name
// ("" for literals). Passes that analyze one function at a time iterate
// over this instead of re-implementing the traversal.
type funcBody struct {
	name string
	body *ast.BlockStmt
	pos  token.Pos
}

func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{name: fn.Name.Name, body: fn.Body, pos: fn.Pos()})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "", body: fn.Body, pos: fn.Pos()})
		}
		return true
	})
	return out
}

// calleeName renders a call's function expression for diagnostics:
// "pkg.F", "recv.Method" or "f".
func calleeName(fun ast.Expr) string {
	switch e := fun.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return "(...)." + e.Sel.Name
	case *ast.IndexExpr:
		return calleeName(e.X)
	case *ast.ParenExpr:
		return calleeName(e.X)
	}
	return "call"
}

// namedReceiver resolves the defined (named) type of a method call
// receiver, dereferencing one level of pointer. Returns nil when the
// receiver is not a named or interface type.
func namedReceiver(info *types.Info, sel *ast.SelectorExpr) *types.TypeName {
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
