package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files")

// runFixture loads one testdata directory as a package and runs a single
// pass over it directly (bypassing AppliesTo, which keys on real import
// paths), honoring //mobidxlint:allow annotations the way RunPasses
// does. Diagnostics come back as golden-comparable lines with the file
// path reduced to its base name.
func runFixture(t *testing.T, pass *Pass, dir string) []string {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	allow := buildAllowSet(pkg)
	var lines []string
	for _, d := range pass.Run(pkg) {
		if allow[allowKey{d.File, d.Line, d.Pass}] || allow[allowKey{d.File, d.Line, "all"}] {
			continue
		}
		d.File = filepath.Base(d.File)
		lines = append(lines, d.String())
	}
	return lines
}

// TestGolden checks every pass against a failing and a passing fixture:
// the bad directory must reproduce its expect.txt line for line, and the
// good directory must produce no findings at all. Run with -update to
// regenerate the goldens after changing a pass or a fixture.
func TestGolden(t *testing.T) {
	for _, pass := range All() {
		pass := pass
		t.Run(pass.Name+"/bad", func(t *testing.T) {
			dir := filepath.Join("testdata", pass.Name, "bad")
			got := runFixture(t, pass, dir)
			if len(got) == 0 {
				t.Fatalf("%s produced no findings on its bad fixture", pass.Name)
			}
			goldenPath := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if g, w := strings.Join(got, "\n")+"\n", string(want); g != w {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", g, w)
			}
		})
		t.Run(pass.Name+"/good", func(t *testing.T) {
			got := runFixture(t, pass, filepath.Join("testdata", pass.Name, "good"))
			if len(got) != 0 {
				t.Errorf("%s flagged the clean fixture:\n%s", pass.Name, strings.Join(got, "\n"))
			}
		})
	}
}

// TestAllowDirective checks both placement forms of //mobidxlint:allow:
// the annotated drops vanish, the unannotated one is still reported.
func TestAllowDirective(t *testing.T) {
	got := runFixture(t, ErrDrop, filepath.Join("testdata", "allow"))
	if len(got) != 1 {
		t.Fatalf("want exactly the unannotated finding, got %d:\n%s", len(got), strings.Join(got, "\n"))
	}
	if !strings.Contains(got[0], "allow.go:18") {
		t.Errorf("surviving finding anchored to the wrong line: %s", got[0])
	}
}

// TestRepoClean is the self-check the verify gate relies on: the full
// suite, with AppliesTo filters and annotations in force, finds nothing
// in the repository's own production code.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if diags := RunPasses(pkgs, All()); len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		t.Errorf("mobidxlint is not clean on its own repository:\n%s", b.String())
	}
}

// TestByName covers the -passes flag resolution used by the CLI.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d passes, err %v", len(all), err)
	}
	two, err := ByName("errdrop, nopanic")
	if err != nil || len(two) != 2 || two[0] != ErrDrop || two[1] != NoPanic {
		t.Fatalf("ByName(errdrop, nopanic) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchpass"); err == nil {
		t.Fatal("ByName(nosuchpass) should fail")
	}
}
