package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files")

// runFixture loads one testdata directory as a package and runs a single
// pass over it directly (bypassing AppliesTo, which keys on real import
// paths), honoring //mobidxlint:allow annotations the way RunPasses
// does. Diagnostics come back as golden-comparable lines with the file
// path reduced to its base name.
func runFixture(t *testing.T, pass *Pass, dir string) []string {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	allow := buildAllowSet(pkg)
	var lines []string
	for _, d := range pass.Run(pkg) {
		if allow[allowKey{d.File, d.Line, d.Pass}] || allow[allowKey{d.File, d.Line, "all"}] {
			continue
		}
		d.File = filepath.Base(d.File)
		lines = append(lines, d.String())
	}
	return lines
}

// TestGolden checks every pass against a failing and a passing fixture:
// the bad directory must reproduce its expect.txt line for line, and the
// good directory must produce no findings at all. Run with -update to
// regenerate the goldens after changing a pass or a fixture.
func TestGolden(t *testing.T) {
	for _, pass := range All() {
		pass := pass
		t.Run(pass.Name+"/bad", func(t *testing.T) {
			dir := filepath.Join("testdata", pass.Name, "bad")
			got := runFixture(t, pass, dir)
			if len(got) == 0 {
				t.Fatalf("%s produced no findings on its bad fixture", pass.Name)
			}
			goldenPath := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if g, w := strings.Join(got, "\n")+"\n", string(want); g != w {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", g, w)
			}
		})
		t.Run(pass.Name+"/good", func(t *testing.T) {
			got := runFixture(t, pass, filepath.Join("testdata", pass.Name, "good"))
			if len(got) != 0 {
				t.Errorf("%s flagged the clean fixture:\n%s", pass.Name, strings.Join(got, "\n"))
			}
		})
	}
}

// TestAllowDirective checks both placement forms of //mobidxlint:allow:
// the annotated drops vanish, the unannotated one is still reported.
func TestAllowDirective(t *testing.T) {
	got := runFixture(t, ErrDrop, filepath.Join("testdata", "allow"))
	if len(got) != 1 {
		t.Fatalf("want exactly the unannotated finding, got %d:\n%s", len(got), strings.Join(got, "\n"))
	}
	if !strings.Contains(got[0], "allow.go:18") {
		t.Errorf("surviving finding anchored to the wrong line: %s", got[0])
	}
}

// TestAllowConcurrency checks the allow directive against the new
// concurrency passes: both placement forms suppress, an unannotated
// violation survives, and an annotation naming one pass does not
// silence another.
func TestAllowConcurrency(t *testing.T) {
	dir := filepath.Join("testdata", "allowconc")

	lock := runFixture(t, LockOrder, dir)
	if len(lock) != 2 {
		t.Fatalf("lockorder: want the unannotated and wrong-pass findings, got %d:\n%s",
			len(lock), strings.Join(lock, "\n"))
	}
	if !strings.Contains(lock[0], "allowconc.go:31") || !strings.Contains(lock[1], "allowconc.go:38") {
		t.Errorf("lockorder survivors anchored to the wrong lines:\n%s", strings.Join(lock, "\n"))
	}

	goro := runFixture(t, GoroLifecycle, dir)
	if len(goro) != 1 {
		t.Fatalf("gorolifecycle: want exactly the unannotated spawn, got %d:\n%s",
			len(goro), strings.Join(goro, "\n"))
	}
	if !strings.Contains(goro[0], "allowconc.go:53") {
		t.Errorf("gorolifecycle survivor anchored to the wrong line: %s", goro[0])
	}
}

// TestSortDiagnostics pins the deterministic output order every pass
// and the CLI rely on: file, then line, then column, then pass name.
func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Pass: "nopanic", File: "b.go", Line: 1, Col: 1},
		{Pass: "errdrop", File: "a.go", Line: 9, Col: 2},
		{Pass: "lockorder", File: "a.go", Line: 9, Col: 1},
		{Pass: "ctxflow", File: "a.go", Line: 2, Col: 5},
		{Pass: "atomicmix", File: "a.go", Line: 9, Col: 1},
	}
	SortDiagnostics(diags)
	want := []string{"ctxflow", "atomicmix", "lockorder", "errdrop", "nopanic"}
	for i, d := range diags {
		if d.Pass != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, d.Pass, want[i], diags)
		}
	}
}

// TestPassFilter drives the CLI's -passes resolution end to end for a
// new pass: selecting exactly lockorder runs lockorder and nothing
// else, even on a fixture that would trip other passes too.
func TestPassFilter(t *testing.T) {
	selected, err := ByName("lockorder")
	if err != nil || len(selected) != 1 || selected[0] != LockOrder {
		t.Fatalf("ByName(lockorder) = %v, err %v", selected, err)
	}
	got := runFixture(t, selected[0], filepath.Join("testdata", "lockorder", "bad"))
	if len(got) == 0 {
		t.Fatal("filtered run produced no findings on the bad fixture")
	}
	for _, line := range got {
		if !strings.Contains(line, " lockorder: ") {
			t.Errorf("filtered run leaked a foreign diagnostic: %s", line)
		}
	}
}

// TestRepoClean is the self-check the verify gate relies on: the full
// suite, with AppliesTo filters and annotations in force, finds nothing
// in the repository's own production code.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if diags := RunPasses(pkgs, All()); len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		t.Errorf("mobidxlint is not clean on its own repository:\n%s", b.String())
	}
}

// TestByName covers the -passes flag resolution used by the CLI.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d passes, err %v", len(all), err)
	}
	two, err := ByName("errdrop, nopanic")
	if err != nil || len(two) != 2 || two[0] != ErrDrop || two[1] != NoPanic {
		t.Fatalf("ByName(errdrop, nopanic) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchpass"); err == nil {
		t.Fatal("ByName(nosuchpass) should fail")
	}
}
