package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix reports struct fields that are accessed through sync/atomic
// functions (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.f), ...) in
// one place and by a plain read or write somewhere else. A field is
// either always atomic or always guarded — mixing the two is the
// classic stats-counter race: the plain access tears or is reordered
// against the atomic one, the race detector only catches it when both
// sides actually collide in a run, and the typed atomic.* wrappers that
// make the mistake impossible are one refactor away.
//
// Plain accesses inside constructor functions (New*/new*/make*/Make*)
// are exempt: before the value is published there is no concurrency to
// order. Typed atomic.Int64-style fields are out of scope — their only
// access path is their methods, and `go vet`'s copylocks already flags
// value copies.
var AtomicMix = &Pass{
	Name: "atomicmix",
	Doc:  "a struct field accessed via sync/atomic must never also be read or written plainly",
	Run:  runAtomicMix,
}

// fieldID identifies one struct field across the package.
type fieldID struct {
	owner string // named type
	field string
}

type fieldAccess struct {
	pos token.Pos
	fn  string // enclosing function key (for the constructor exemption)
}

func runAtomicMix(pkg *Package) []Diagnostic {
	atomicUse := map[fieldID]token.Pos{} // first atomic access
	var plainUses []struct {
		id fieldID
		fieldAccess
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnKey := funcKey(fn)
			// Mark the selector expressions consumed by atomic calls so
			// the plain-access walk below can skip them.
			inAtomic := map[ast.Expr]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if sel, ok := unparen(u.X).(*ast.SelectorExpr); ok {
							if id, ok := fieldOf(pkg.Info, sel); ok {
								if _, seen := atomicUse[id]; !seen {
									atomicUse[id] = sel.Pos()
								}
								inAtomic[sel] = true
							}
						}
					}
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomic[sel] {
					return true
				}
				if id, ok := fieldOf(pkg.Info, sel); ok {
					plainUses = append(plainUses, struct {
						id fieldID
						fieldAccess
					}{id, fieldAccess{pos: sel.Pos(), fn: fnKey}})
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	sort.Slice(plainUses, func(i, j int) bool { return plainUses[i].pos < plainUses[j].pos })
	for _, use := range plainUses {
		atomicPos, mixed := atomicUse[use.id]
		if !mixed {
			continue
		}
		if isConstructorName(use.fn) {
			continue
		}
		diags = append(diags, pkg.diag("atomicmix", use.pos,
			"field %s.%s is accessed with sync/atomic at line %d but plainly here; every access to an atomic field must go through sync/atomic (or migrate the field to an atomic.* type)",
			use.id.owner, use.id.field, pkg.line(atomicPos)))
	}
	SortDiagnostics(diags)
	return diags
}

// isAtomicFuncCall reports whether the call is a sync/atomic package
// function (not a method on a typed atomic value).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves a selector to (owner named type, field name); ok is
// false for method selections, package selectors and anonymous structs.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (fieldID, bool) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return fieldID{}, false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fieldID{}, false
	}
	return fieldID{owner: named.Obj().Name(), field: selection.Obj().Name()}, true
}

// isConstructorName reports pre-publication functions where plain
// initialization of an otherwise-atomic field is safe by construction.
func isConstructorName(fn string) bool {
	name := fn
	if i := strings.LastIndex(fn, "."); i >= 0 {
		name = fn[i+1:]
	}
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Make") || strings.HasPrefix(name, "make") ||
		strings.HasPrefix(name, "Open") || strings.HasPrefix(name, "open")
}
