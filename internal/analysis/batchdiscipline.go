package analysis

import (
	"go/ast"
)

// BatchDiscipline checks that a WAL batch opened with Begin() on a
// *pager.WALStore, *pager.Buffered or pager.Tx — or an explicit
// transaction opened with BeginTxn() — reaches a Commit() or Rollback()
// in the same function. An open batch that escapes the function silently
// stages writes forever (they are never logged, never become visible to
// snapshots, and poison the next Begin); an escaped Txn additionally
// pins its journal and blocks Close. So the pairing is a hard project
// invariant. Functions whose job *is* the batch machinery (Begin,
// BeginTxn, Commit, Rollback, RunBatch wrappers) are exempt; a batch or
// txn that intentionally escapes must carry a
// //mobidxlint:allow batchdiscipline annotation with a reason.
var BatchDiscipline = &Pass{
	Name: "batchdiscipline",
	Doc:  "every Begin()/BeginTxn() on a WAL-capable store must reach Commit or Rollback in the same function",
	Run:  runBatchDiscipline,
}

// batchTypes are the pager types whose Begin/Commit/Rollback triple
// forms the batch protocol. FaultStore joined when it grew Batcher
// forwarding for the sharded serving layer (a FaultStore between an
// index and its WAL must relay the protocol, so a Begin through it is as
// binding as one on the WAL itself).
var batchTypes = map[string]bool{
	"WALStore":   true,
	"Buffered":   true,
	"Tx":         true,
	"FaultStore": true,
	// Txn is the explicit-transaction handle BeginTxn returns; its
	// Commit/Rollback close the protocol, and any future Begin-shaped
	// method on it is as binding as the store's own.
	"Txn": true,
}

// batchExemptFuncs implement the protocol itself and legitimately call
// one half of it.
var batchExemptFuncs = map[string]bool{
	"Begin":    true,
	"BeginTxn": true,
	"Commit":   true,
	"Rollback": true,
	"RunBatch": true,
}

func runBatchDiscipline(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || batchExemptFuncs[fn.Name.Name] {
				continue
			}
			// Collect Begin calls and look for a closing call anywhere
			// in the function, nested closures included — a deferred
			// func() { w.Rollback() }() is a valid abort path.
			var begins []*ast.CallExpr
			closes := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Begin", "BeginTxn":
					if tn := namedReceiver(pkg.Info, sel); tn != nil &&
						batchTypes[tn.Name()] && tn.Pkg() != nil && tn.Pkg().Name() == "pager" {
						begins = append(begins, call)
					}
				case "Commit", "Rollback":
					closes = true
				}
				return true
			})
			if closes {
				continue
			}
			for _, call := range begins {
				diags = append(diags, pkg.diag("batchdiscipline", call.Pos(),
					"batch opened with %s() never reaches Commit or Rollback in %s; "+
						"wrap the work in pager.RunBatch or close the batch on every path",
					calleeName(call.Fun), fn.Name.Name))
			}
		}
	}
	return diags
}
