package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// CodecBounds constant-folds the offset arithmetic of the binary page
// codecs (the writeNode/writeBucket/writeDir/readNode families in the
// bptree, kdtree, rstar and parttree packages) and verifies that every
// fixed-width access stays inside the layout the package declares:
//
//   - a codec function is one that steps an offset accumulator that was
//     initialized to a constant (`off := headerSize; ...; off += pointSize`);
//   - every access at `buf[off+k]` of width w (width inferred from the
//     put16/put32/putf32/binary.LittleEndian.* helper, or 1 for a direct
//     byte write) must satisfy k+w ≤ stride for the `off += stride` that
//     closes its record — records may not bleed into their successors;
//   - every access at a wholly constant offset c of width w must satisfy
//     c+w ≤ H, where H is the accumulator's initial constant — the page
//     header may not bleed into the record area.
//
// Together with the runtime capacity formulas (`cap = (PageSize−H)/S`,
// checked by every constructor against the store's PageSize), these two
// facts imply that every write lands inside the page: H + cap·S ≤
// PageSize. The pass checks exactly the half of that argument the
// compiler can see; offsets it cannot fold (a stride fetched from a
// codec method value) are skipped, never guessed.
var CodecBounds = &Pass{
	Name: "codecbounds",
	Doc:  "constant-folded codec offsets must stay inside the declared header and record strides",
	AppliesTo: func(path string) bool {
		return pathHasSuffix(path, "internal/bptree") ||
			pathHasSuffix(path, "internal/kdtree") ||
			pathHasSuffix(path, "internal/rstar") ||
			pathHasSuffix(path, "internal/parttree")
	},
	Run: runCodecBounds,
}

// accessWidths maps the project's fixed-width codec helpers (and the
// encoding/binary little-endian methods) to the byte width they touch.
var accessWidths = map[string]int64{
	"put16": 2, "get16": 2, "PutUint16": 2, "Uint16": 2,
	"put32": 4, "get32": 4, "PutUint32": 4, "Uint32": 4,
	"putf32": 4, "getf32": 4,
	"put64": 8, "get64": 8, "PutUint64": 8, "Uint64": 8,
}

func runCodecBounds(pkg *Package) []Diagnostic {
	c := &codecChecker{pkg: pkg}
	for _, file := range pkg.Files {
		for _, fn := range funcBodies(file) {
			c.checkFunc(fn)
		}
	}
	return c.diags
}

type codecChecker struct {
	pkg   *Package
	diags []Diagnostic
}

// codecAccess is one fixed-width access pending a bounds check against
// the stride that closes its record.
type codecAccess struct {
	off   *types.Var // accumulator variable, nil for wholly constant offsets
	k     int64      // constant displacement from the accumulator
	width int64
	pos   token.Pos
	via   string // helper name, for the diagnostic
}

func (c *codecChecker) checkFunc(fn funcBody) {
	// Find the offset accumulators: integer variables defined from a
	// constant and stepped with += somewhere in the function.
	inits := map[*types.Var]int64{}
	stepped := map[*types.Var]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.DEFINE:
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v, ok := c.pkg.Info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if val, ok := c.constInt(as.Rhs[i]); ok {
					inits[v] = val
				}
			}
		case token.ADD_ASSIGN:
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
					stepped[v] = true
				}
			}
		}
		return true
	})
	// A stepped variable is only an offset accumulator if it actually
	// appears in a byte-access offset expression — otherwise chunking
	// counters (`for i := 0; ...; i += per`) masquerade as accumulators
	// and drag the header bound down to their zero init.
	usedAsOffset := c.offsetVars(fn.body)
	accs := map[*types.Var]int64{}
	headerBound := int64(-1)
	for v, init := range inits {
		if stepped[v] && usedAsOffset[v] {
			accs[v] = init
			if headerBound < 0 || init < headerBound {
				headerBound = init
			}
		}
	}
	if len(accs) == 0 {
		return // not a codec function
	}
	c.walkList(fn.body.List, accs, headerBound)
}

// offsetVars pre-scans the body for every fixed-width access and
// returns the set of variables used as the base of an access offset.
func (c *codecChecker) offsetVars(body *ast.BlockStmt) map[*types.Var]bool {
	used := map[*types.Var]bool{}
	mark := func(low ast.Expr) {
		if v, _, ok := c.splitOffset(low); ok && v != nil {
			used[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, width := c.helperWidth(n); width != 0 && len(n.Args) > 0 {
				if b, ok := unparen(n.Args[0]).(*ast.SliceExpr); ok {
					mark(b.Low)
					return false
				}
			}
		case *ast.IndexExpr:
			if c.isByteSlice(n.X) {
				mark(n.Index)
			}
		}
		return true
	})
	return used
}

// walkList processes one statement list in order, accumulating pending
// accesses and checking them when the accumulator they reference is
// stepped: `off += stride` bounds everything written since the previous
// step. Branches are processed independently — in the codecs, a record's
// writes and the step that closes them always live in the same block.
func (c *codecChecker) walkList(list []ast.Stmt, accs map[*types.Var]int64, headerBound int64) {
	var pending []codecAccess
	flush := func(v *types.Var, stride int64, known bool) {
		kept := pending[:0]
		for _, a := range pending {
			if a.off != v {
				kept = append(kept, a)
				continue
			}
			if known && a.k+a.width > stride {
				c.diags = append(c.diags, c.pkg.diag("codecbounds", a.pos,
					"%s touches bytes [%s+%d, %s+%d) but the record stride is %d: the write overruns into the next record",
					a.via, v.Name(), a.k, v.Name(), a.k+a.width, stride))
			}
		}
		pending = kept
	}
	for _, s := range list {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
						if _, isAcc := accs[v]; isAcc {
							stride, known := c.constInt(s.Rhs[0])
							flush(v, stride, known)
							continue
						}
					}
				}
			}
			pending = append(pending, c.extract(s, accs, headerBound)...)
		case *ast.ExprStmt:
			pending = append(pending, c.extract(s, accs, headerBound)...)
		case *ast.IfStmt:
			c.walkList(s.Body.List, accs, headerBound)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				c.walkList(e.List, accs, headerBound)
			case *ast.IfStmt:
				c.walkList([]ast.Stmt{e}, accs, headerBound)
			}
		case *ast.ForStmt:
			c.walkList(s.Body.List, accs, headerBound)
		case *ast.RangeStmt:
			c.walkList(s.Body.List, accs, headerBound)
		case *ast.BlockStmt:
			c.walkList(s.List, accs, headerBound)
		case *ast.SwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					c.walkList(cc.Body, accs, headerBound)
				}
			}
		}
	}
	// Accesses never followed by a step in this list (trailing header
	// fix-ups like `put16(d[2:], count)` after the loop) were already
	// emitted as fixed accesses where foldable; accumulator-relative
	// leftovers have no record stride to check against and are skipped.
}

// extract pulls every fixed-width access out of one statement. Wholly
// constant offsets are checked against the header bound immediately;
// accumulator-relative ones are returned for the stride check.
func (c *codecChecker) extract(s ast.Stmt, accs map[*types.Var]int64, headerBound int64) []codecAccess {
	var out []codecAccess
	record := func(low ast.Expr, width int64, pos token.Pos, via string) {
		v, k, ok := c.splitOffset(low)
		if !ok {
			return
		}
		if v == nil {
			if headerBound >= 0 && k+width > headerBound {
				c.diags = append(c.diags, c.pkg.diag("codecbounds", pos,
					"%s touches bytes [%d, %d) but the header region is only %d bytes: the fixed field overruns the record area",
					via, k, k+width, headerBound))
			}
			return
		}
		if _, isAcc := accs[v]; isAcc {
			out = append(out, codecAccess{off: v, k: k, width: width, pos: pos, via: via})
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name, width := c.helperWidth(n)
			if width == 0 || len(n.Args) == 0 {
				return true
			}
			if b, ok := unparen(n.Args[0]).(*ast.SliceExpr); ok {
				record(b.Low, width, n.Pos(), name)
				return false // the slice's own byte accesses are this helper's
			}
		case *ast.IndexExpr:
			// Direct single-byte reads and writes into a []byte page
			// image: data[0] = typeLeaf, int(d[off+2]).
			if c.isByteSlice(n.X) {
				record(n.Index, 1, n.Pos(), "byte access")
			}
		}
		return true
	})
	return out
}

// isByteSlice reports whether the expression has type []byte.
func (c *codecChecker) isByteSlice(e ast.Expr) bool {
	tv, ok := c.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// helperWidth identifies a call to a fixed-width codec helper and
// returns its name and byte width (0 when the call is something else).
func (c *codecChecker) helperWidth(call *ast.CallExpr) (string, int64) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if w, ok := accessWidths[fun.Name]; ok {
			return fun.Name, w
		}
	case *ast.SelectorExpr:
		if w, ok := accessWidths[fun.Sel.Name]; ok {
			return calleeName(fun), w
		}
	}
	return "", 0
}

// splitOffset decomposes a slice/index offset expression into
// accumulator ± constant. (nil, c, true) means wholly constant;
// (v, k, true) means v+k; ok=false means not foldable.
func (c *codecChecker) splitOffset(e ast.Expr) (*types.Var, int64, bool) {
	if e == nil {
		return nil, 0, true
	}
	e = unparen(e)
	if val, ok := c.constInt(e); ok {
		return nil, val, true
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
			return v, 0, true
		}
		return nil, 0, false
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return nil, 0, false
	}
	if id, ok := unparen(bin.X).(*ast.Ident); ok {
		if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
			if k, ok := c.constInt(bin.Y); ok {
				if bin.Op == token.SUB {
					k = -k
				}
				return v, k, true
			}
		}
	}
	if bin.Op == token.ADD {
		if id, ok := unparen(bin.Y).(*ast.Ident); ok {
			if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
				if k, ok := c.constInt(bin.X); ok {
					return v, k, true
				}
			}
		}
	}
	return nil, 0, false
}

// constInt evaluates e as a compile-time integer constant via the type
// checker's folded value.
func (c *codecChecker) constInt(e ast.Expr) (int64, bool) {
	tv, ok := c.pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}
