package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline in the serving layers
// (internal/shard, internal/core), where a dropped or fabricated
// context silently detaches a query from its caller's deadline — the
// retry/hedge machinery then keeps burning shard attempts for a caller
// that has long hung up. Three rules:
//
//   - no context.Background() / context.TODO() below the facade: the
//     root context is created by the caller, everything underneath
//     threads it. Compat wrappers that exist precisely to supply the
//     root context for context-free callers carry an allow annotation;
//   - a ctx parameter on an exported function or method must actually
//     flow: a body that never references its ctx cannot propagate
//     cancellation to the Executor or store call under it;
//   - no time.Sleep in a function that takes a ctx: a sleeping retry
//     loop must select on ctx.Done() (a timer select), or cancellation
//     waits out the full backoff.
var CtxFlow = &Pass{
	Name: "ctxflow",
	Doc:  "exported blocking APIs in shard/core must accept and propagate context.Context",
	AppliesTo: func(path string) bool {
		return pathHasSuffix(path, "internal/shard") || pathHasSuffix(path, "internal/core")
	},
	Run: runCtxFlow,
}

func runCtxFlow(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		// Rule 1: no fabricated root contexts anywhere in the package.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
			diags = append(diags, pkg.diag("ctxflow", call.Pos(),
				"context.%s() fabricated below the facade; thread the caller's ctx down instead",
				sel.Sel.Name))
			return true
		})

		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParam := ctxParamOf(pkg.Info, fn)

			// Rule 2: an exported API's ctx must flow somewhere.
			if ctxParam != nil && isExportedAPI(fn) && !identUsed(pkg.Info, fn.Body, ctxParam) {
				diags = append(diags, pkg.diag("ctxflow", fn.Pos(),
					"ctx parameter of exported %s is never used; propagate it to the calls underneath or select on ctx.Done()",
					fn.Name.Name))
			}

			// Rule 3: no uncancellable sleeps in ctx-aware functions.
			if ctxParam != nil {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sleep" {
						if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
							diags = append(diags, pkg.diag("ctxflow", call.Pos(),
								"time.Sleep in ctx-aware %s cannot be cancelled; use a timer select on ctx.Done()",
								fn.Name.Name))
						}
					}
					return true
				})
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// ctxParamOf returns the *types.Var of the function's context.Context
// parameter, or nil.
func ctxParamOf(info *types.Info, fn *ast.FuncDecl) *types.Var {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				tn := named.Obj()
				if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
					return obj
				}
			}
		}
	}
	return nil
}

// isExportedAPI reports whether fn is part of the package's exported
// surface: an exported function, or an exported method on an exported
// named receiver type.
func isExportedAPI(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// identUsed reports whether the object is referenced anywhere in body.
func identUsed(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
