package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop is the stricter-than-vet unchecked-error check. It reports
//
//   - expression-statement calls whose result tuple contains an error
//     (a "bare call": the error vanishes without a trace);
//   - assignments that send an error result into the blank identifier;
//   - deferred and goroutine calls that drop an error.
//
// A storage engine has no harmless I/O errors — a dropped Write error on
// one path is a torn page discovered thousands of operations later — so
// the default is that every error is handled. The allowlist covers the
// only idioms where dropping is sound: terminal printing through fmt to
// stdout/stderr, writers that are documented to never fail
// (bytes.Buffer, strings.Builder, hash.Hash), and `defer f.Close()` on
// read paths. Intentional drops (fault injection, best-effort cache
// warming) must carry a //mobidxlint:allow errdrop annotation with the
// reason.
var ErrDrop = &Pass{
	Name: "errdrop",
	Doc:  "no error result may be silently dropped (bare calls, assignments to _)",
	Run:  runErrDrop,
}

func runErrDrop(pkg *Package) []Diagnostic {
	c := &errDropChecker{pkg: pkg}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					c.checkBare(call, "")
				}
			case *ast.DeferStmt:
				if !c.isMethodNamed(n.Call, "Close") {
					c.checkBare(n.Call, "deferred ")
				}
			case *ast.GoStmt:
				c.checkBare(n.Call, "goroutine ")
			case *ast.AssignStmt:
				c.checkAssign(n)
			}
			return true
		})
	}
	return c.diags
}

type errDropChecker struct {
	pkg   *Package
	diags []Diagnostic
}

// errorResults returns how many of the call's results are of type error.
func (c *errDropChecker) errorResults(call *ast.CallExpr) int {
	tv, ok := c.pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	count := 0
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				count++
			}
		}
	default:
		if isErrorType(t) {
			count++
		}
	}
	return count
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func (c *errDropChecker) checkBare(call *ast.CallExpr, kind string) {
	if c.errorResults(call) == 0 || c.allowedBare(call) {
		return
	}
	c.diags = append(c.diags, c.pkg.diag("errdrop", call.Pos(),
		"%scall to %s drops its error result", kind, calleeName(call.Fun)))
}

// checkAssign flags error results routed into the blank identifier.
func (c *errDropChecker) checkAssign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// a, b := f() — match blanks against the result tuple.
		call, ok := unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok || c.allowedBare(call) {
			return
		}
		tv, ok := c.pkg.Info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
				c.diags = append(c.diags, c.pkg.diag("errdrop", lhs.Pos(),
					"error result of %s is assigned to _", calleeName(call.Fun)))
			}
		}
		return
	}
	if len(s.Rhs) != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		tv, ok := c.pkg.Info.Types[s.Rhs[i]]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		if call, ok := unparen(s.Rhs[i]).(*ast.CallExpr); ok && c.allowedBare(call) {
			continue
		}
		c.diags = append(c.diags, c.pkg.diag("errdrop", lhs.Pos(),
			"error value is assigned to _"))
	}
}

// neverFailingWriters under-approximates types whose Write/WriteString/
// WriteByte error results are documented to always be nil.
var neverFailingWriters = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

// isNeverFailingWriter reports whether the expression is (a pointer to)
// a writer whose errors are always nil, so fmt.Fprintf into it cannot
// fail either.
func (c *errDropChecker) isNeverFailingWriter(e ast.Expr) bool {
	tv, ok := c.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	// hash.Hash: "Write ... never returns an error" per the package
	// contract, so Fprintf into a digest cannot fail either.
	if named.Obj().Pkg().Path() == "hash" {
		return true
	}
	return neverFailingWriters[named.Obj().Pkg().Name()+"."+named.Obj().Name()]
}

func (c *errDropChecker) allowedBare(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// fmt.Print* to the process's own terminal streams.
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if obj, isPkg := c.pkg.Info.Uses[pkgID].(*types.PkgName); isPkg && obj.Imported().Path() == "fmt" {
				switch fun.Sel.Name {
				case "Print", "Printf", "Println":
					return true
				case "Fprint", "Fprintf", "Fprintln":
					return len(call.Args) > 0 &&
						(isStdStream(c.pkg, call.Args[0]) || c.isNeverFailingWriter(call.Args[0]))
				}
			}
		}
		// Methods on writers that never fail.
		if tn := namedReceiver(c.pkg.Info, fun); tn != nil && tn.Pkg() != nil {
			if neverFailingWriters[tn.Pkg().Name()+"."+tn.Name()] {
				return true
			}
			// hash.Hash implementations: "Write ... never returns an
			// error" per the hash package contract.
			if tn.Pkg().Path() == "hash" {
				return true
			}
		}
	}
	return false
}

// isStdStream matches os.Stdout / os.Stderr.
func isStdStream(pkg *Package, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, isPkg := pkg.Info.Uses[pkgID].(*types.PkgName)
	return isPkg && obj.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// isMethodNamed reports whether the call is a method call with the given
// selector name.
func (c *errDropChecker) isMethodNamed(call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}
