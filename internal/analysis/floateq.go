package analysis

import (
	"go/ast"
	"go/types"
)

// FloatEq forbids exact floating-point comparison — == and != binary
// expressions and switch statements over a float tag — in the geometry
// and dual-transform packages. Exact comparison is how epsilon
// discipline erodes: one `v == 0` upstream of a division turns a
// near-stationary object into an infinite residence interval. All
// comparisons must go through the epsilon helpers in internal/geom
// (geom.ApproxEq, or explicit ±geom.Eps bounds, neither of which uses
// ==). The approved helpers themselves are exempt by name.
var FloatEq = &Pass{
	Name: "floateq",
	Doc:  "no ==/!=/switch on float operands in geometry code outside the approved epsilon helpers",
	AppliesTo: func(path string) bool {
		return pathHasSuffix(path, "internal/geom") ||
			pathHasSuffix(path, "internal/dual") ||
			pathHasSuffix(path, "internal/twod") ||
			pathHasSuffix(path, "internal/subscribe")
	},
	Run: runFloatEq,
}

// floatEqApproved names the epsilon helpers allowed to compare floats
// exactly (e.g. a fast path that short-circuits on bit equality before
// falling back to a tolerance check).
var floatEqApproved = map[string]bool{
	"ApproxEq": true,
}

func runFloatEq(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	isFloat := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	for _, file := range pkg.Files {
		for _, fn := range file.Decls {
			decl, ok := fn.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if floatEqApproved[decl.Name.Name] {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op.String() != "==" && n.Op.String() != "!=" {
						return true
					}
					if isFloat(n.X) || isFloat(n.Y) {
						diags = append(diags, pkg.diag("floateq", n.OpPos,
							"exact float comparison (%s) in %s; use geom.ApproxEq or an explicit ±geom.Eps bound",
							n.Op, decl.Name.Name))
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && isFloat(n.Tag) {
						diags = append(diags, pkg.diag("floateq", n.Switch,
							"switch on a float tag in %s compares exactly; use epsilon comparisons",
							decl.Name.Name))
					}
				}
				return true
			})
		}
	}
	return diags
}
