package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLifecycle demands a provable join or stop path for every
// goroutine launched in internal/ packages — the static half of the
// discipline internal/leakcheck enforces dynamically at test time. A
// `go` statement passes when the goroutine body shows one of:
//
//   - WaitGroup pairing: the body calls Done() on a sync.WaitGroup
//     (directly or deferred), so some Wait() joins it;
//   - a cancellation path: the body receives from ctx.Done() or from a
//     quit/stop/done/close-named channel — in a select, a direct
//     receive, or a range;
//   - for `go name(...)` / `go recv.method(...)`, the same evidence in
//     the named callee's body when it is declared in this package.
//
// Anything else — fire-and-forget literals, goroutines whose stop
// protocol lives behind an interface, bounded helpers that are *meant*
// to outlive their spawner — is reported and must either grow a join
// path or carry an allow annotation explaining why its lifetime is
// provably bounded some other way.
var GoroLifecycle = &Pass{
	Name: "gorolifecycle",
	Doc:  "every goroutine in internal/ needs a provable join (WaitGroup) or stop (quit/ctx select) path",
	AppliesTo: func(path string) bool {
		return strings.Contains(path, "internal/")
	},
	Run: runGoroLifecycle,
}

func runGoroLifecycle(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, where := goroutineBody(pkg, gs.Call)
			if body == nil {
				diags = append(diags, pkg.diag("gorolifecycle", gs.Pos(),
					"goroutine body (%s) is not visible in this package, so no join or stop path can be proven; annotate with the lifecycle argument",
					where))
				return true
			}
			if hasWaitGroupDone(pkg.Info, body) || hasStopSignal(pkg.Info, body) {
				return true
			}
			diags = append(diags, pkg.diag("gorolifecycle", gs.Pos(),
				"goroutine%s has no provable join or stop path: pair it with a WaitGroup Done or select on a quit/ctx.Done channel in its body",
				where))
			return true
		})
	}
	SortDiagnostics(diags)
	return diags
}

// goroutineBody resolves the body the spawned goroutine runs: the
// literal's body for `go func(){...}()`, the declared body for
// `go name(...)` / `go recv.method(...)` when the callee is declared in
// this package; nil otherwise.
func goroutineBody(pkg *Package, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		if body := declaredBody(pkg, fun); body != nil {
			return body, " " + fun.Name
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if body := declaredBody(pkg, fun.Sel); body != nil {
			return body, " " + calleeName(call.Fun)
		}
		return nil, calleeName(call.Fun)
	}
	return nil, "dynamic call"
}

// declaredBody finds the FuncDecl body for an identifier resolving to a
// function declared in this package.
func declaredBody(pkg *Package, id *ast.Ident) *ast.BlockStmt {
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() != pkg.Pkg {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pkg.Info.Defs[fn.Name] == obj {
				return fn.Body
			}
		}
	}
	return nil
}

// hasWaitGroupDone reports a Done() call on a sync.WaitGroup anywhere
// in the body (defers and nested literals included — the deferred
// `defer wg.Done()` is the idiomatic form).
func hasWaitGroupDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
			return true
		}
		if tn := namedReceiver(info, sel); tn != nil && tn.Pkg() != nil &&
			tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasStopSignal reports a receive (select comm, direct, or range) from
// ctx.Done() or from a channel whose name signals shutdown.
func hasStopSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	check := func(e ast.Expr) {
		if e != nil && isStopChannel(info, e) {
			found = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				check(n.X)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					check(n.X)
				}
			}
		}
		return true
	})
	return found
}

// stopNames are the channel-name fragments accepted as a stop signal.
var stopNames = []string{"quit", "stop", "done", "close", "closing", "exit", "cancel", "shutdown"}

// isStopChannel reports whether the received-from expression is
// ctx.Done() (a Done() call on a context.Context) or a channel whose
// identifier or field name contains a stop fragment.
func isStopChannel(info *types.Info, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		sel, ok := unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		if tn := namedReceiver(info, sel); tn != nil && tn.Pkg() != nil &&
			tn.Pkg().Path() == "context" && tn.Name() == "Context" {
			return true
		}
		return false
	case *ast.Ident:
		return nameSignalsStop(e.Name)
	case *ast.SelectorExpr:
		return nameSignalsStop(e.Sel.Name)
	}
	return false
}

func nameSignalsStop(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range stopNames {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}
