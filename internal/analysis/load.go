package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *listPkgError
}

type listPkgError struct {
	Err string
}

// goListRaw runs `go list -export -deps -json` over the given patterns
// and returns the raw JSON stream. -export makes the go tool emit
// compiled export data for every listed package, which is what lets the
// suite type-check source packages with the stdlib gc importer and no
// third-party loader.
func goListRaw(dir string, patterns []string) ([]byte, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return stdout.Bytes(), nil
}

// decodeGoList decodes the `go list -json` stream.
func decodeGoList(raw []byte, patterns []string) ([]*listPkg, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var out []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		out = append(out, &p)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listPkg, error) {
	raw, err := goListRaw(dir, patterns)
	if err != nil {
		return nil, err
	}
	return decodeGoList(raw, patterns)
}

// exportLookup adapts the Export paths reported by `go list` to the
// lookup function the gc importer expects.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Load discovers the packages matching the patterns (relative to dir;
// empty dir means the current directory), parses their non-test sources
// and type-checks them against the export data of their dependencies.
// Test files are deliberately out of scope: the invariants the suite
// encodes protect production code paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return loadFromListed(listed)
}

// LoadCached is Load with the `go list -export -deps -json` invocation
// cached in cacheFile, keyed on a digest of go.mod/go.sum and every .go
// file's (path, size, mtime) under dir. A hit skips the go tool
// entirely — the expensive part of a lint run on a warm tree — and
// falls back to a fresh listing when any cached export-data file has
// been pruned from the build cache since.
func LoadCached(dir, cacheFile string, patterns ...string) ([]*Package, error) {
	key, keyErr := listCacheKey(dir, patterns)
	if keyErr == nil {
		if raw, ok := readListCache(cacheFile, key); ok {
			if listed, err := decodeGoList(raw, patterns); err == nil && exportsPresent(listed) {
				return loadFromListed(listed)
			}
		}
	}
	raw, err := goListRaw(dir, patterns)
	if err != nil {
		return nil, err
	}
	listed, err := decodeGoList(raw, patterns)
	if err != nil {
		return nil, err
	}
	if keyErr == nil {
		writeListCache(cacheFile, key, raw)
	}
	return loadFromListed(listed)
}

// listCacheEntry is the on-disk cache: the key the listing was taken
// under and the raw `go list` stream.
type listCacheEntry struct {
	Key    string
	Output []byte
}

// listCacheKey digests everything the go list output depends on within
// the module: the patterns, go.mod/go.sum, and every .go file's path,
// size and mtime (content hashing would cost more than the go tool).
func listCacheKey(dir string, patterns []string) (string, error) {
	root := dir
	if root == "" {
		root = "."
	}
	h := sha256.New()
	fmt.Fprintf(h, "patterns %q\n", patterns)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".verifycache" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") && name != "go.mod" && name != "go.sum" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%s %d %d\n", path, info.Size(), info.ModTime().UnixNano())
		return nil
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func readListCache(cacheFile, key string) ([]byte, bool) {
	data, err := os.ReadFile(cacheFile)
	if err != nil {
		return nil, false
	}
	var entry listCacheEntry
	if json.Unmarshal(data, &entry) != nil || entry.Key != key {
		return nil, false
	}
	return entry.Output, true
}

// writeListCache persists the listing; failures are ignored (the cache
// is an optimization, never a correctness dependency).
func writeListCache(cacheFile, key string, raw []byte) {
	data, err := json.Marshal(&listCacheEntry{Key: key, Output: raw})
	if err != nil {
		return
	}
	if dir := filepath.Dir(cacheFile); dir != "." {
		_ = os.MkdirAll(dir, 0o755) //mobidxlint:allow errdrop -- best-effort cache: a failed mkdir only costs the next run a re-list
	}
	_ = os.WriteFile(cacheFile, data, 0o644) //mobidxlint:allow errdrop -- best-effort cache: a failed write only costs the next run a re-list
}

// exportsPresent verifies every export-data file a cached listing
// references still exists — the go build cache may have pruned them.
func exportsPresent(listed []*listPkg) bool {
	for _, p := range listed {
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return false
			}
		}
	}
	return true
}

// loadFromListed parses and type-checks the target packages of one
// `go list` result set.
func loadFromListed(listed []*listPkg) ([]*Package, error) {
	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  t.Name,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files as one
// package, resolving any imports through `go list -export`. This is how
// the golden-file tests load fixtures from testdata, which the go tool
// itself refuses to traverse.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for path := range importSet {
			imports = append(imports, path)
		}
		sort.Strings(imports)
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(exports))}
	path := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}
