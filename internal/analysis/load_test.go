package analysis

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeModule lays down a one-package module the go tool can list
// without network access (no imports outside the standard library).
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.21\n",
		"a.go":   "package a\n\nfunc A() int { return 1 }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestListCacheKey pins the invalidation triggers: stable on an
// untouched tree, changed by content-size or mtime changes and by new
// files, and insensitive to non-Go files.
func TestListCacheKey(t *testing.T) {
	dir := writeModule(t)
	k1, err := listCacheKey(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := listCacheKey(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("key not stable on an untouched tree")
	}
	if k3, _ := listCacheKey(dir, []string{"./a"}); k3 == k1 {
		t.Error("key ignores the patterns")
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not go"), 0o644); err != nil {
		t.Fatal(err)
	}
	if k4, _ := listCacheKey(dir, []string{"./..."}); k4 != k1 {
		t.Error("key changed for a non-Go file")
	}
	// Content change of the same byte length, mtime forced forward: the
	// key watches (size, mtime), so this must still invalidate.
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a\n\nfunc A() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(filepath.Join(dir, "a.go"), future, future); err != nil {
		t.Fatal(err)
	}
	if k5, _ := listCacheKey(dir, []string{"./..."}); k5 == k1 {
		t.Error("key unchanged after touching a Go file")
	}
}

// TestLoadCached exercises the full path: a cold call populates the
// cache file, a warm call serves from it (proven by corrupting the raw
// go tool path out from under it being unnecessary — the cache file's
// mtime stays put), and an edit invalidates.
func TestLoadCached(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	dir := writeModule(t)
	cache := filepath.Join(dir, ".verifycache", "golist.json")

	pkgs, err := LoadCached(dir, cache, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "a" {
		t.Fatalf("cold load = %v", pkgs)
	}
	info1, err := os.Stat(cache)
	if err != nil {
		t.Fatalf("cold load did not write the cache: %v", err)
	}

	pkgs, err = LoadCached(dir, cache, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("warm load = %v", pkgs)
	}
	info2, err := os.Stat(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !info1.ModTime().Equal(info2.ModTime()) || info1.Size() != info2.Size() {
		t.Error("warm load rewrote the cache file; expected a pure hit")
	}

	// Invalidate: add a function, force the mtime forward.
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte("package a\n\nfunc A() int { return 1 }\n\nfunc B() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(src, future, future); err != nil {
		t.Fatal(err)
	}
	pkgs, err = LoadCached(dir, cache, "./...")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for id := range pkgs[0].Info.Defs {
		if id.Name == "B" {
			found = true
		}
	}
	if !found {
		t.Error("stale cache served after the source changed")
	}
}

// TestListCacheRoundtrip covers the read/write primitives directly,
// including the key-mismatch miss.
func TestListCacheRoundtrip(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "sub", "golist.json")
	if _, ok := readListCache(cache, "k"); ok {
		t.Error("missing file must miss")
	}
	writeListCache(cache, "k", []byte(`{"ImportPath":"x"}`))
	raw, ok := readListCache(cache, "k")
	if !ok || string(raw) != `{"ImportPath":"x"}` {
		t.Errorf("roundtrip = %q, %v", raw, ok)
	}
	if _, ok := readListCache(cache, "other"); ok {
		t.Error("key mismatch must miss")
	}
}
