package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package lock-acquisition graph over sync.Mutex
// and sync.RWMutex values and reports two classes of hazard the race
// detector cannot see:
//
//   - inconsistent acquisition order: lock A is (transitively, through
//     same-package calls) acquired while B is held on one path and B
//     while A is held on another — the classic two-goroutine deadlock;
//     a lock acquired while an acquisition of the same lock is already
//     pending is the one-goroutine special case;
//   - a lock held across a blocking operation: a Sync/fsync, a channel
//     send or receive outside a select with a default clause, a select
//     with no default, time.Sleep, a WaitGroup.Wait, or a
//     sync.Cond.Wait taken with more than one lock held (Wait releases
//     only the cond's own lock). Under a contended latch each of these
//     turns one slow goroutine into a convoy.
//
// Lock identity is (receiver type, field) — two instances of the same
// type share an identity, so hand-over-hand patterns over sibling
// instances are reported conservatively and need an annotation when the
// instances are provably distinct. The walk is CFG-lite and linear:
// branch bodies are analyzed with a cloned held-set, defer Unlock keeps
// the lock held to function end, goroutine bodies start with an empty
// held-set. Calls into other packages are opaque (documented blind
// spot: a cycle that closes through a callback or an interface cannot
// be seen here).
var LockOrder = &Pass{
	Name: "lockorder",
	Doc:  "per-package lock-acquisition graph: no order cycles, no locks held across blocking calls",
	AppliesTo: func(path string) bool {
		return pathHasSuffix(path, "internal/pager") ||
			pathHasSuffix(path, "internal/shard") ||
			pathHasSuffix(path, "internal/subscribe") ||
			pathHasSuffix(path, "internal/ingest")
	},
	Run: runLockOrder,
}

// lockKey names one lock: "Type.field" for a mutex field, "pkg.var" for
// a package-level mutex, "func:name" for a function-local one.
type lockKey string

// lockEdge is one observed ordering: to was acquired while from was held.
type lockEdge struct {
	from, to lockKey
	pos      token.Pos // acquisition (or call) site establishing the edge
	via      string    // "" for a direct nested acquire, else the callee chain
}

// lockCall is a same-package call made while locks were held.
type lockCall struct {
	callee string // function key: "Type.method" or "func"
	held   []lockKey
	pos    token.Pos
}

// blockSite is a potentially blocking operation and the locks held at it.
type blockSite struct {
	desc     string
	held     []lockKey
	pos      token.Pos
	condWait bool // only a hazard when ≥2 locks are held
}

// lockFunc is the per-function summary the fixed point runs on.
type lockFunc struct {
	key      string
	acquires map[lockKey]token.Pos // every direct Lock/RLock in the body
	calls    []lockCall
	blocks   []blockSite
	mayBlock string // non-empty: why this function may block (first cause)
}

type lockChecker struct {
	pkg   *Package
	funcs map[string]*lockFunc
	order []string // function keys in source order (determinism)
	edges []lockEdge
}

func runLockOrder(pkg *Package) []Diagnostic {
	c := &lockChecker{pkg: pkg, funcs: map[string]*lockFunc{}}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key := funcKey(fn)
			lf := &lockFunc{key: key, acquires: map[lockKey]token.Pos{}}
			c.funcs[key] = lf
			c.order = append(c.order, key)
			w := &lockWalker{c: c, fn: lf}
			w.stmts(fn.Body.List, map[lockKey]token.Pos{})
		}
	}
	c.propagate()
	return c.report()
}

// funcKey renders a FuncDecl's package-unique name: "Type.method" or "fn".
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// lockWalker is the linear CFG-lite traversal of one function body.
type lockWalker struct {
	c  *lockChecker
	fn *lockFunc
}

func heldKeys(held map[lockKey]token.Pos) []lockKey {
	out := make([]lockKey, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cloneHeld(held map[lockKey]token.Pos) map[lockKey]token.Pos {
	out := make(map[lockKey]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[lockKey]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[lockKey]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
		w.block("channel send", s.Arrow, held, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, which
		// is exactly how the walk already models it: do nothing. Any
		// other deferred call runs at return time under an unknowable
		// lock state; record same-package callees with no held locks so
		// their acquisitions still feed the transitive graph.
		if kind, _ := w.lockOp(s.Call); kind == lockOpUnlock {
			return
		}
		w.scanCall(s.Call, map[lockKey]token.Pos{})
	case *ast.GoStmt:
		// The goroutine starts with its own (empty) lock state.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, map[lockKey]token.Pos{})
		}
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, map[lockKey]token.Pos{})
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := cloneHeld(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.c.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.block("range over channel", s.For, held, false)
			}
		}
		w.scanExpr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s, held)
	}
}

// selectStmt treats a select with a default clause as non-blocking (its
// comm cases are attempts); one without is itself a blocking point.
func (w *lockWalker) selectStmt(s *ast.SelectStmt, held map[lockKey]token.Pos) {
	hasDefault := false
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.block("select with no default clause", s.Select, held, false)
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		// The comm statements themselves are covered by the select-level
		// verdict; scan them only for nested calls and lock ops.
		if cc.Comm != nil {
			ast.Inspect(cc.Comm, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					w.scanCall(call, held)
					return false
				}
				return true
			})
		}
		w.stmts(cc.Body, cloneHeld(held))
	}
}

// scanExpr walks an expression in evaluation order, handling lock
// operations, blocking receives, same-package calls, and nested
// function literals (walked with an empty held-set: when they run, and
// under which locks, is unknowable here — their acquisitions still feed
// the per-function summary).
func (w *lockWalker) scanExpr(e ast.Expr, held map[lockKey]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.scanCall(n, held)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block("channel receive", n.OpPos, held, false)
			}
		case *ast.FuncLit:
			w.stmts(n.Body.List, map[lockKey]token.Pos{})
			return false
		}
		return true
	})
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpLock
	lockOpUnlock
)

// lockOp classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and resolves the lock's identity.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockOpKind, lockKey) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOpNone, ""
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockOpLock
	case "Unlock", "RUnlock":
		kind = lockOpUnlock
	default:
		return lockOpNone, ""
	}
	tv, ok := w.c.pkg.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return lockOpNone, ""
	}
	return kind, w.lockIdent(sel.X)
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockIdent names the mutex expression: field selectors become
// "OwnerType.field", package vars "pkg.var", locals "func:var".
func (w *lockWalker) lockIdent(e ast.Expr) lockKey {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		if tn := namedReceiver(w.c.pkg.Info, e); tn != nil {
			return lockKey(tn.Name() + "." + e.Sel.Name)
		}
		return lockKey("(...)." + e.Sel.Name)
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			if obj.Parent() == w.c.pkg.Pkg.Scope() {
				return lockKey(w.c.pkg.Name + "." + e.Name)
			}
		}
		return lockKey(w.fn.key + ":" + e.Name)
	}
	return lockKey("lock")
}

func (w *lockWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.c.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.c.pkg.Info.Defs[id]
}

// scanCall handles one call expression: lock ops mutate held, blocking
// calls are recorded against held, same-package callees are recorded
// for the transitive fixed point. Arguments are scanned first
// (evaluation order).
func (w *lockWalker) scanCall(call *ast.CallExpr, held map[lockKey]token.Pos) {
	for _, arg := range call.Args {
		w.scanExpr(arg, held)
	}
	if kind, key := w.lockOp(call); kind != lockOpNone {
		switch kind {
		case lockOpLock:
			if _, already := w.fn.acquires[key]; !already {
				w.fn.acquires[key] = call.Pos()
			}
			for from := range held {
				w.c.addEdgeFrom(w.fn, from, key, call.Pos(), "")
			}
			held[key] = call.Pos()
		case lockOpUnlock:
			delete(held, key)
		}
		return
	}
	if desc, condWait := blockingCall(w.c.pkg.Info, call); desc != "" {
		w.block(desc, call.Pos(), held, condWait)
		return
	}
	if callee := w.samePackageCallee(call); callee != "" {
		w.fn.calls = append(w.fn.calls, lockCall{callee: callee, held: heldKeys(held), pos: call.Pos()})
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: runs right here, under held.
		w.stmts(lit.Body.List, cloneHeld(held))
	}
}

// block records a blocking operation and the locks held across it.
func (w *lockWalker) block(desc string, pos token.Pos, held map[lockKey]token.Pos, condWait bool) {
	w.fn.blocks = append(w.fn.blocks, blockSite{desc: desc, held: heldKeys(held), pos: pos, condWait: condWait})
	if w.fn.mayBlock == "" && !condWait {
		w.fn.mayBlock = desc
	}
}

// blockingCall classifies calls that can park the goroutine: any
// .Sync() (fsync discipline), time.Sleep, WaitGroup.Wait, Cond.Wait.
func blockingCall(info *types.Info, call *ast.CallExpr) (desc string, condWait bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sync":
		if len(call.Args) == 0 {
			return "blocking call " + calleeName(call.Fun) + "() (fsync)", false
		}
	case "Sleep":
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			return "time.Sleep", false
		}
	case "Wait":
		if tn := namedReceiver(info, sel); tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == "sync" {
			switch tn.Name() {
			case "WaitGroup":
				return "sync.WaitGroup.Wait", false
			case "Cond":
				return "sync.Cond.Wait", true
			}
		}
	}
	return "", false
}

// samePackageCallee resolves a call to a function or method declared in
// this package, returning its funcKey ("" otherwise).
func (w *lockWalker) samePackageCallee(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := w.c.pkg.Info.Uses[fun].(*types.Func); ok && obj.Pkg() == w.c.pkg.Pkg {
			return obj.Name()
		}
	case *ast.SelectorExpr:
		if obj, ok := w.c.pkg.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() == w.c.pkg.Pkg {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				t := recv.Type()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					return named.Obj().Name() + "." + obj.Name()
				}
			}
			return obj.Name()
		}
	}
	return ""
}

// addEdgeFrom records a direct ordering edge observed inside fn.
func (c *lockChecker) addEdgeFrom(fn *lockFunc, from, to lockKey, pos token.Pos, via string) {
	c.edges = append(c.edges, lockEdge{from: from, to: to, pos: pos, via: via})
}

func (c *lockChecker) propagate() {
	// Transitive lock acquisition: acquiresAll(f) = direct ∪ callees'.
	acquiresAll := map[string]map[lockKey]bool{}
	for key, lf := range c.funcs {
		set := map[lockKey]bool{}
		for k := range lf.acquires {
			set[k] = true
		}
		acquiresAll[key] = set
	}
	for changed := true; changed; {
		changed = false
		for _, key := range c.order {
			lf := c.funcs[key]
			set := acquiresAll[key]
			for _, call := range lf.calls {
				for k := range acquiresAll[call.callee] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}
	// Transitive may-block with one representative cause.
	for changed := true; changed; {
		changed = false
		for _, key := range c.order {
			lf := c.funcs[key]
			if lf.mayBlock != "" {
				continue
			}
			for _, call := range lf.calls {
				if callee, ok := c.funcs[call.callee]; ok && callee.mayBlock != "" {
					lf.mayBlock = call.callee + ": " + callee.mayBlock
					changed = true
					break
				}
			}
		}
	}
	// Expand call sites into edges and call-level blocking findings.
	for _, key := range c.order {
		lf := c.funcs[key]
		for _, call := range lf.calls {
			if len(call.held) == 0 {
				continue
			}
			for k := range acquiresAll[call.callee] {
				for _, from := range call.held {
					c.edges = append(c.edges, lockEdge{from: from, to: k, pos: call.pos, via: call.callee})
				}
			}
			if callee, ok := c.funcs[call.callee]; ok && callee.mayBlock != "" {
				lf.blocks = append(lf.blocks, blockSite{
					desc: "call to " + call.callee + ", which may block (" + callee.mayBlock + ")",
					held: call.held,
					pos:  call.pos,
				})
			}
		}
	}
}

func (c *lockChecker) report() []Diagnostic {
	var diags []Diagnostic

	// Deduplicate edges keeping the first (lowest-position) witness.
	type edgeID struct{ from, to lockKey }
	best := map[edgeID]lockEdge{}
	var ids []edgeID
	for _, e := range c.edges {
		id := edgeID{e.from, e.to}
		if prev, ok := best[id]; !ok || e.pos < prev.pos {
			if !ok {
				ids = append(ids, id)
			}
			best[id] = e
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].from != ids[j].from {
			return ids[i].from < ids[j].from
		}
		return ids[i].to < ids[j].to
	})

	adj := map[lockKey][]lockKey{}
	for _, id := range ids {
		adj[id.from] = append(adj[id.from], id.to)
	}
	reachable := func(from, to lockKey) bool {
		seen := map[lockKey]bool{}
		stack := []lockKey{from}
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if k == to {
				return true
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			stack = append(stack, adj[k]...)
		}
		return false
	}

	for _, id := range ids {
		e := best[id]
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		if id.from == id.to {
			diags = append(diags, c.pkg.diag("lockorder", e.pos,
				"%s is acquired%s while an acquisition of %s is already held — self-deadlock if both are the same instance",
				id.to, via, id.from))
			continue
		}
		if reachable(id.to, id.from) {
			diags = append(diags, c.pkg.diag("lockorder", e.pos,
				"lock order cycle: %s is acquired%s while %s is held here, but elsewhere %s is acquired while %s is held — inconsistent order can deadlock",
				id.to, via, id.from, id.from, id.to))
		}
	}

	// Blocking operations under held locks.
	for _, key := range c.order {
		lf := c.funcs[key]
		for _, b := range lf.blocks {
			if len(b.held) == 0 {
				continue
			}
			if b.condWait && len(b.held) < 2 {
				continue // Wait with only the cond's own lock is the protocol
			}
			diags = append(diags, c.pkg.diag("lockorder", b.pos,
				"%s held across %s; release the lock first or annotate why the hold is required",
				joinLockKeys(b.held), b.desc))
		}
	}
	SortDiagnostics(diags)
	return diags
}

func joinLockKeys(keys []lockKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = string(k)
	}
	return strings.Join(parts, ", ")
}
