package analysis

import (
	"go/ast"
	"strings"
)

// NoPanic forbids direct panic calls in library packages (everything
// under internal/ plus the root facade). Index and storage code must
// surface failures as errors — a panic inside a page codec takes the
// whole serving process down, where an error fails one query. The only
// sanctioned way to crash is an invariant-violation helper (a function
// whose name starts with "must", "panic" or "invariant"), which keeps
// the crash sites greppable and the policy auditable. Command-line tools
// and examples are outside the pass's AppliesTo filter.
var NoPanic = &Pass{
	Name: "nopanic",
	Doc:  "library packages may not call panic except via invariant-violation helpers",
	AppliesTo: func(path string) bool {
		if strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/") {
			return true
		}
		// The root facade: a module path with no slash-separated
		// cmd/examples/internal qualifier.
		return !strings.ContainsAny(path, "/")
	},
	Run: runNoPanic,
}

// invariantHelperPrefixes name the functions allowed to panic.
var invariantHelperPrefixes = []string{"must", "panic", "invariant"}

func isInvariantHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range invariantHelperPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runNoPanic(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isInvariantHelper(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Only the builtin: a local function named panic (which
				// the helper rule would already bless) resolves to an
				// object; the builtin resolves to types.Builtin.
				if obj := pkg.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
					return true
				}
				diags = append(diags, pkg.diag("nopanic", call.Pos(),
					"library code calls panic in %s; return an error, or route the crash "+
						"through a must*/invariant* helper", fn.Name.Name))
				return true
			})
		}
	}
	return diags
}
