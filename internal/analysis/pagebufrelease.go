package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PageBufRelease checks that every scratch buffer obtained from
// pager.GetPageBuf is returned to the pool with Release() on every path
// out of the acquiring function — including early error returns, the
// classic way a pooled buffer leaks. The analysis is a CFG-lite forward
// walk over the statement tree: it clones the live-buffer set at every
// branch, merges the states of branches that fall through, and reports
// any return reached with an unreleased buffer.
//
// Ownership transfers are recognized conservatively: passing the buffer
// itself (not its .B bytes) to another function, returning it, storing
// it anywhere, or capturing it in a closure all end tracking, so the
// pass never reports a buffer whose lifetime legitimately escapes the
// function.
var PageBufRelease = &Pass{
	Name: "pagebufrelease",
	Doc:  "every pager.GetPageBuf must be paired with Release() on all return paths",
	Run:  runPageBufRelease,
}

func runPageBufRelease(pkg *Package) []Diagnostic {
	r := &bufReleaseChecker{pkg: pkg}
	for _, file := range pkg.Files {
		for _, fn := range funcBodies(file) {
			live := bufLive{}
			fallsThrough := r.stmts(fn.body.List, live)
			if fallsThrough {
				r.reportLive(live, fn.body.Rbrace, "function end")
			}
		}
	}
	return r.diags
}

// bufLive maps each tracked *PageBuf variable to its acquisition site.
type bufLive map[*types.Var]token.Pos

func (l bufLive) clone() bufLive {
	out := make(bufLive, len(l))
	for v, pos := range l {
		out[v] = pos
	}
	return out
}

type bufReleaseChecker struct {
	pkg   *Package
	diags []Diagnostic
}

func (r *bufReleaseChecker) reportLive(live bufLive, at token.Pos, where string) {
	for v, acquired := range live {
		r.diags = append(r.diags, r.pkg.diag("pagebufrelease", at,
			"%s acquired from pager.GetPageBuf at line %d is not Released on the path reaching %s",
			v.Name(), r.pkg.line(acquired), where))
	}
}

// stmts walks a statement list, mutating live, and reports whether
// control can fall out of the end of the list.
func (r *bufReleaseChecker) stmts(list []ast.Stmt, live bufLive) bool {
	for _, s := range list {
		if !r.stmt(s, live) {
			return false
		}
	}
	return true
}

// stmt processes one statement; the return value is false when the
// statement terminates control flow (return, panic, os.Exit, ...).
func (r *bufReleaseChecker) stmt(s ast.Stmt, live bufLive) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		r.assign(s, live)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						r.escapes(val, live)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if v := r.releaseTarget(call, live); v != nil {
				delete(live, v)
				return true
			}
			if isTerminatorCall(call) {
				// A panicking path may leak to the pool collector; that
				// is acceptable, the pool is only an optimization.
				return false
			}
		}
		r.escapes(s.X, live)
	case *ast.DeferStmt:
		if v := r.releaseTarget(s.Call, live); v != nil {
			// defer pb.Release() covers every subsequent exit.
			delete(live, v)
			return true
		}
		r.escapes(s.Call, live)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			r.escapes(res, live)
		}
		r.reportLive(live, s.Pos(), "this return")
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			r.stmt(s.Init, live)
		}
		r.escapes(s.Cond, live)
		thenLive := live.clone()
		thenFT := r.stmts(s.Body.List, thenLive)
		elseLive := live.clone()
		elseFT := true
		if s.Else != nil {
			elseFT = r.stmt(s.Else, elseLive)
		}
		mergeBranches(live, []bufLive{thenLive, elseLive}, []bool{thenFT, elseFT})
		return thenFT || elseFT
	case *ast.BlockStmt:
		return r.stmts(s.List, live)
	case *ast.LabeledStmt:
		return r.stmt(s.Stmt, live)
	case *ast.ForStmt:
		if s.Init != nil {
			r.stmt(s.Init, live)
		}
		if s.Cond != nil {
			r.escapes(s.Cond, live)
		}
		r.loopBody(s.Body, live)
	case *ast.RangeStmt:
		r.escapes(s.X, live)
		r.loopBody(s.Body, live)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return r.caseBodies(s, live)
	case *ast.GoStmt:
		r.escapes(s.Call, live)
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this list; the buffers
		// still live here stay tracked in the enclosing scope's state.
		return false
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				r.escapes(e, live)
				return false
			}
			return true
		})
	}
	return true
}

// loopBody analyzes a loop body in a cloned state: the loop may run zero
// times, so releases inside it do not count for the code after it, and a
// buffer acquired inside the body must be released before the iteration
// ends.
func (r *bufReleaseChecker) loopBody(body *ast.BlockStmt, live bufLive) {
	inner := live.clone()
	if r.stmts(body.List, inner) {
		for v, acquired := range inner {
			if _, outer := live[v]; !outer {
				r.diags = append(r.diags, r.pkg.diag("pagebufrelease", acquired,
					"%s acquired from pager.GetPageBuf is not Released by the end of the loop iteration",
					v.Name()))
			}
		}
	}
}

// caseBodies handles switch/type-switch/select: each clause runs on a
// clone, and the fall-out state is the union of every clause that falls
// through plus — when there is no default — the no-match path.
func (r *bufReleaseChecker) caseBodies(s ast.Stmt, live bufLive) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			r.stmt(s.Init, live)
		}
		if s.Tag != nil {
			r.escapes(s.Tag, live)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			r.stmt(s.Init, live)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var states []bufLive
	var falls []bool
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				r.escapes(e, live)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			list = c.Body
		}
		cl := live.clone()
		states = append(states, cl)
		falls = append(falls, r.stmts(list, cl))
	}
	if !hasDefault {
		states = append(states, live.clone())
		falls = append(falls, true)
	}
	ft := false
	for _, f := range falls {
		ft = ft || f
	}
	mergeBranches(live, states, falls)
	return ft
}

// mergeBranches replaces live with the union of the branch states that
// fall through: a buffer is still owed a Release after the branch if any
// reachable path left it unreleased.
func mergeBranches(live bufLive, states []bufLive, falls []bool) {
	for v := range live {
		delete(live, v)
	}
	for i, st := range states {
		if !falls[i] {
			continue
		}
		for v, pos := range st {
			live[v] = pos
		}
	}
}

// assign tracks GetPageBuf acquisitions and scans everything else on the
// statement for escapes.
func (r *bufReleaseChecker) assign(s *ast.AssignStmt, live bufLive) {
	for i, rhs := range s.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !r.isGetPageBuf(call) {
			r.escapes(rhs, live)
			continue
		}
		for _, arg := range call.Args {
			r.escapes(arg, live)
		}
		if i >= len(s.Lhs) {
			continue
		}
		id, isIdent := s.Lhs[i].(*ast.Ident)
		if !isIdent {
			// Acquired into a field, slice element, ...: the buffer's
			// lifetime escapes this function; give up tracking.
			continue
		}
		if id.Name == "_" {
			r.diags = append(r.diags, r.pkg.diag("pagebufrelease", s.Pos(),
				"result of pager.GetPageBuf is discarded and can never be Released"))
			continue
		}
		if v := r.objOf(id); v != nil {
			if _, tracked := live[v]; tracked {
				r.diags = append(r.diags, r.pkg.diag("pagebufrelease", s.Pos(),
					"%s is reassigned from pager.GetPageBuf while still holding an unreleased buffer", v.Name()))
			}
			live[v] = s.Pos()
		}
	}
}

// escapes removes from live every tracked variable that is used in a way
// other than pb.Release() / pb.B: such a use hands the buffer to code
// this pass cannot see, so requiring a local Release would be wrong.
func (r *bufReleaseChecker) escapes(e ast.Expr, live bufLive) {
	if e == nil || len(live) == 0 {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// pb.B and pb.Release are the blessed uses; anything else
			// selected from a tracked variable is an escape.
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if v := r.objOf(id); v != nil {
					if _, tracked := live[v]; tracked {
						if n.Sel.Name == "B" || n.Sel.Name == "Release" {
							return false
						}
						delete(live, v)
						return false
					}
				}
			}
		case *ast.Ident:
			if v := r.objOf(n); v != nil {
				if _, tracked := live[v]; tracked {
					delete(live, v)
				}
			}
		}
		return true
	}
	ast.Inspect(e, walk)
}

// releaseTarget returns the tracked variable released by a pb.Release()
// call, or nil when the call is something else.
func (r *bufReleaseChecker) releaseTarget(call *ast.CallExpr, live bufLive) *types.Var {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v := r.objOf(id)
	if v == nil {
		return nil
	}
	if _, tracked := live[v]; !tracked {
		return nil
	}
	return v
}

// isGetPageBuf reports whether the call resolves to pager.GetPageBuf.
func (r *bufReleaseChecker) isGetPageBuf(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := r.pkg.Info.Uses[id]
	if obj == nil || obj.Name() != "GetPageBuf" || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == "pager"
}

func (r *bufReleaseChecker) objOf(id *ast.Ident) *types.Var {
	obj := r.pkg.Info.Uses[id]
	if obj == nil {
		obj = r.pkg.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isTerminatorCall reports whether the call never returns: builtin
// panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
