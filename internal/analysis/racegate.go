package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file cross-checks scripts/verify.sh's race-detector gate against
// the code: every package under internal/ that launches a goroutine —
// in production code or in its tests — must be matched by one of the
// patterns in the script's RACE_PKGS variable. The check is syntactic
// (a parse for GoStmt, no type information), so it runs in milliseconds
// and cannot be fooled by build tags it does not understand: any `go`
// statement in any .go file counts.

// RaceGatePatterns extracts the RACE_PKGS package patterns from a
// verify.sh-style script. The variable must be assigned once as
// RACE_PKGS="..." (double quotes, optional backslash-newline
// continuations inside the quotes, whitespace-separated patterns).
func RaceGatePatterns(scriptPath string) ([]string, error) {
	data, err := os.ReadFile(scriptPath)
	if err != nil {
		return nil, err
	}
	const marker = `RACE_PKGS="`
	i := strings.Index(string(data), marker)
	if i < 0 {
		return nil, fmt.Errorf("%s: no RACE_PKGS=\"...\" assignment found", scriptPath)
	}
	rest := string(data)[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return nil, fmt.Errorf("%s: RACE_PKGS assignment has no closing quote", scriptPath)
	}
	raw := strings.ReplaceAll(rest[:j], "\\\n", " ")
	patterns := strings.Fields(raw)
	if len(patterns) == 0 {
		return nil, fmt.Errorf("%s: RACE_PKGS is empty", scriptPath)
	}
	return patterns, nil
}

// GoroutinePackages walks the module tree under root and returns the
// relative directories (using forward slashes, e.g. "internal/shard")
// whose .go files — tests included — contain at least one go statement.
// Directories the go tool ignores (testdata, hidden, _-prefixed) are
// skipped.
func GoroutinePackages(root string) ([]string, error) {
	seen := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		dir := filepath.ToSlash(rel)
		if seen[dir] {
			return nil
		}
		// ParseFile with nothing skipped; a file that fails to parse is
		// reported rather than silently treated as goroutine-free.
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		if fileHasGoStmt(file) {
			seen[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fileHasGoStmt(file *ast.File) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// raceGateCovers reports whether the pattern list covers the package
// directory. Patterns follow go-tool syntax relative to the module
// root: "./internal/shard/..." covers internal/shard and everything
// below it, "./internal/shard" covers exactly that directory.
func raceGateCovers(patterns []string, dir string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			if dir == base || strings.HasPrefix(dir, base+"/") {
				return true
			}
			continue
		}
		if dir == p {
			return true
		}
	}
	return false
}

// RaceGateUncovered returns, sorted, every goroutine-launching package
// under root/internal that no RACE_PKGS pattern in scriptPath covers.
// An empty result means the race gate runs everything that can race.
func RaceGateUncovered(root, scriptPath string) ([]string, error) {
	patterns, err := RaceGatePatterns(scriptPath)
	if err != nil {
		return nil, err
	}
	pkgs, err := GoroutinePackages(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, dir := range pkgs {
		full := "internal/" + dir
		if dir == "." {
			full = "internal"
		}
		if !raceGateCovers(patterns, full) {
			missing = append(missing, full)
		}
	}
	return missing, nil
}
