package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRaceGateCoverage is the CI cross-check: every internal package
// that launches a goroutine anywhere (production or test code) must be
// inside scripts/verify.sh's RACE_PKGS list, so adding a `go` statement
// to an ungated package fails this test until the gate is widened.
func TestRaceGateCoverage(t *testing.T) {
	missing, err := RaceGateUncovered("../..", filepath.Join("..", "..", "scripts", "verify.sh"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("packages launch goroutines but are not in verify.sh's RACE_PKGS race gate:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// TestRaceGatePatterns pins the parser to the shell forms verify.sh
// actually uses: double quotes and backslash-newline continuations.
func TestRaceGatePatterns(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "verify.sh")
	content := "#!/bin/sh\nRACE_PKGS=\"./internal/a/... \\\n\t./internal/b ./internal/c/...\"\ngo test -race $RACE_PKGS\n"
	if err := os.WriteFile(script, []byte(content), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := RaceGatePatterns(script)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"./internal/a/...", "./internal/b", "./internal/c/..."}
	if len(got) != len(want) {
		t.Fatalf("patterns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("patterns = %v, want %v", got, want)
		}
	}

	if _, err := RaceGatePatterns(filepath.Join(dir, "nosuch.sh")); err == nil {
		t.Error("missing script should error")
	}
	bare := filepath.Join(dir, "bare.sh")
	if err := os.WriteFile(bare, []byte("#!/bin/sh\ntrue\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := RaceGatePatterns(bare); err == nil {
		t.Error("script without RACE_PKGS should error")
	}
}

// TestRaceGateCovers pins the pattern semantics: /... is recursive,
// a bare pattern is exact.
func TestRaceGateCovers(t *testing.T) {
	patterns := []string{"./internal/shard/...", "./internal/core"}
	cases := []struct {
		dir  string
		want bool
	}{
		{"internal/shard", true},
		{"internal/shard/chaostest", true},
		{"internal/shardx", false},
		{"internal/core", true},
		{"internal/core/sub", false},
		{"internal/pager", false},
	}
	for _, c := range cases {
		if got := raceGateCovers(patterns, c.dir); got != c.want {
			t.Errorf("covers(%q) = %v, want %v", c.dir, got, c.want)
		}
	}
}
