package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the interchange format CI systems render as
// inline code annotations. Only the required subset of the schema is
// emitted: one run, one tool driver carrying a rule per pass, one
// result per diagnostic with a physical location. File paths are
// emitted relative to root (when they are under it) with forward
// slashes, per §3.4.2 of the spec.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. passes supplies the
// rule metadata (every pass becomes a rule whether or not it fired, so
// the rule catalogue is stable across runs); root, when non-empty, is
// the directory file paths are made relative to.
func SARIF(diags []Diagnostic, passes []*Pass, root string) ([]byte, error) {
	rules := make([]sarifRule, len(passes))
	ruleIndex := map[string]int{}
	for i, p := range passes {
		rules[i] = sarifRule{ID: p.Name, ShortDescription: sarifMessage{Text: p.Doc}}
		ruleIndex[p.Name] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Pass]
		if !ok {
			idx = len(rules)
			ruleIndex[d.Pass] = idx
			rules = append(rules, sarifRule{ID: d.Pass, ShortDescription: sarifMessage{Text: d.Pass}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Pass,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.File, root)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "mobidxlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// sarifURI renders the diagnostic path as a relative forward-slash URI.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}
