package analysis

import (
	"encoding/json"
	"testing"
)

// TestSARIFShape decodes the emitted document back through generic maps
// and asserts the SARIF 2.1.0 required subset: version/$schema, one run
// with a named tool driver carrying a rule per pass, and one result per
// diagnostic whose ruleIndex points at the matching rule and whose
// physical location carries a root-relative forward-slash URI.
func TestSARIFShape(t *testing.T) {
	diags := []Diagnostic{
		{Pass: "errdrop", File: "/repo/internal/pager/wal.go", Line: 12, Col: 3, Message: "dropped"},
		{Pass: "lockorder", File: "/repo/internal/shard/router.go", Line: 7, Col: 1, Message: "held"},
		{Pass: "ghostpass", File: "elsewhere/x.go", Line: 1, Col: 1, Message: "unknown rule"},
	}
	raw, err := SARIF(diags, All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %q", s)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "mobidxlint" {
		t.Errorf("driver.name = %q", name)
	}
	rules := driver["rules"].([]any)
	// Every pass is a rule (stable catalogue) plus the unknown ghostpass.
	if len(rules) != len(All())+1 {
		t.Errorf("rules = %d, want %d", len(rules), len(All())+1)
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rule := r.(map[string]any)
		ruleIDs[i] = rule["id"].(string)
		if txt, _ := rule["shortDescription"].(map[string]any)["text"].(string); txt == "" {
			t.Errorf("rule %s has an empty shortDescription", ruleIDs[i])
		}
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(diags) {
		t.Fatalf("results = %v, want %d entries", run["results"], len(diags))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if lvl, _ := res["level"].(string); lvl != "error" {
			t.Errorf("result %d level = %q", i, lvl)
		}
		idx := int(res["ruleIndex"].(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != res["ruleId"].(string) {
			t.Errorf("result %d ruleIndex %d does not point at ruleId %v", i, idx, res["ruleId"])
		}
		if msg, _ := res["message"].(map[string]any)["text"].(string); msg != diags[i].Message {
			t.Errorf("result %d message = %q, want %q", i, msg, diags[i].Message)
		}
		loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
		region := loc["region"].(map[string]any)
		if int(region["startLine"].(float64)) != diags[i].Line || int(region["startColumn"].(float64)) != diags[i].Col {
			t.Errorf("result %d region = %v, want %d:%d", i, region, diags[i].Line, diags[i].Col)
		}
	}
	uri0 := results[0].(map[string]any)["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)["uri"].(string)
	if uri0 != "internal/pager/wal.go" {
		t.Errorf("uri = %q, want root-relative forward-slash path", uri0)
	}
	uri2 := results[2].(map[string]any)["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)["uri"].(string)
	if uri2 != "elsewhere/x.go" {
		t.Errorf("outside-root uri = %q, want path left as-is", uri2)
	}
}

// TestSARIFEmpty: a clean run still emits the full rule catalogue and an
// empty (non-null) results array.
func TestSARIFEmpty(t *testing.T) {
	raw, err := SARIF(nil, All(), "")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
			Tool    struct {
				Driver struct {
					Rules []any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Results == nil || len(doc.Runs[0].Results) != 0 {
		t.Errorf("clean run must carry an empty results array, got %+v", doc.Runs)
	}
	if len(doc.Runs[0].Tool.Driver.Rules) != len(All()) {
		t.Errorf("rules = %d, want %d", len(doc.Runs[0].Tool.Driver.Rules), len(All()))
	}
}
