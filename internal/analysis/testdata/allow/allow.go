// Package allow exercises the //mobidxlint:allow directive: the two
// annotated drops (own-line and same-line forms) are suppressed, the
// unannotated one is reported.
package allow

import "os"

func ownLine(f *os.File) {
	//mobidxlint:allow errdrop -- fixture: drop is deliberate
	_ = f.Sync()
}

func sameLine(f *os.File) {
	_ = f.Sync() //mobidxlint:allow errdrop -- fixture: same-line form
}

func unannotated(f *os.File) {
	_ = f.Sync()
}
