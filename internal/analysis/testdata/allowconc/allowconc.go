// Package allowconc exercises //mobidxlint:allow on the concurrency
// passes: both placement forms suppress, an unannotated violation
// survives, and an annotation for one pass does not silence another.
package allowconc

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

// suppressed by the line-above form:
func (t *T) SendAllowedAbove() {
	t.mu.Lock()
	//mobidxlint:allow lockorder -- fixture: the channel is buffered by construction
	t.ch <- 1
	t.mu.Unlock()
}

// suppressed by the same-line form:
func (t *T) SendAllowedInline() {
	t.mu.Lock()
	t.ch <- 2 //mobidxlint:allow lockorder -- fixture: same-line form
	t.mu.Unlock()
}

// not annotated: the finding must survive.
func (t *T) SendReported() {
	t.mu.Lock()
	t.ch <- 3
	t.mu.Unlock()
}

// annotated for the wrong pass: lockorder must still report it.
func (t *T) SendWrongPass() {
	t.mu.Lock()
	t.ch <- 4 //mobidxlint:allow gorolifecycle -- fixture: wrong pass name
	t.mu.Unlock()
}

// gorolifecycle: the allow silences the spawn it names...
func (t *T) SpawnAllowed() {
	//mobidxlint:allow gorolifecycle -- fixture: drains a bounded channel
	go func() {
		for range t.ch {
		}
	}()
}

// ...and the unannotated spawn is still reported.
func (t *T) SpawnReported() {
	go func() {
		for range t.ch {
		}
	}()
}
