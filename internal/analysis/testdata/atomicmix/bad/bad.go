// Package bad mixes sync/atomic and plain access to the same fields —
// the stats-counter race the atomicmix pass exists to catch.
package bad

import "sync/atomic"

type Stats struct {
	hits   int64
	misses int64
}

// Inc is the atomic side of hits.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
}

// Hits reads hits plainly: torn against Inc.
func (s *Stats) Hits() int64 {
	return s.hits
}

// Bump writes misses plainly...
func (s *Stats) Bump() {
	s.misses++
}

// Misses ...while the read side is atomic.
func (s *Stats) Misses() int64 {
	return atomic.LoadInt64(&s.misses)
}
