// Package good holds the access disciplines atomicmix must accept:
// all-atomic fields, constructor-time plain initialization, plain
// fields that are never touched atomically, and typed atomics.
package good

import (
	"sync"
	"sync/atomic"
)

type Stats struct {
	hits  int64
	typed atomic.Int64
}

// NewStats initializes plainly before publication — exempt.
func NewStats() *Stats {
	s := &Stats{}
	s.hits = 0
	return s
}

// Inc and Hits both go through sync/atomic.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) Hits() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Typed atomics only expose atomic methods; nothing to mix.
func (s *Stats) IncTyped() {
	s.typed.Add(1)
}

type Guarded struct {
	mu sync.Mutex
	n  int64
}

// Plain-only access under a lock is a different, valid discipline.
func (g *Guarded) Inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *Guarded) Get() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
