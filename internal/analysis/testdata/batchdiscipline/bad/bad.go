// Package bad opens WAL batches that never reach Commit or Rollback in
// the same function — the shape the batchdiscipline pass reports.
package bad

import "mobidx/internal/pager"

func unclosedWAL(w *pager.WALStore) error {
	if err := w.Begin(); err != nil {
		return err
	}
	return w.Write(&pager.Page{ID: 1, Data: make([]byte, 8)})
}

func unclosedBuffered(b *pager.Buffered) error {
	return b.Begin()
}

func unclosedFault(f *pager.FaultStore) error {
	return f.Begin()
}

func unclosedTxn(w *pager.WALStore) error {
	txn, err := w.BeginTxn()
	if err != nil {
		return err
	}
	return txn.Write(&pager.Page{ID: 2, Data: make([]byte, 8)})
}
