// Package good holds batch usage the batchdiscipline pass must accept:
// Begin paired with Commit on success and Rollback on failure, and the
// RunBatch wrapper that encapsulates the pairing.
package good

import "mobidx/internal/pager"

func committed(w *pager.WALStore, p *pager.Page) error {
	if err := w.Begin(); err != nil {
		return err
	}
	if err := w.Write(p); err != nil {
		return w.Rollback()
	}
	return w.Commit()
}

func viaRunBatch(w *pager.WALStore, p *pager.Page) error {
	return pager.RunBatch(w, func() error { return w.Write(p) })
}

func bufferedCommit(b *pager.Buffered, p *pager.Page) error {
	if err := b.Begin(); err != nil {
		return err
	}
	if err := b.Write(p); err != nil {
		if rerr := b.Rollback(); rerr != nil {
			return rerr
		}
		return err
	}
	return b.Commit()
}

func faultCommit(f *pager.FaultStore, p *pager.Page) error {
	if err := f.Begin(); err != nil {
		return err
	}
	if err := f.Write(p); err != nil {
		if rerr := f.Rollback(); rerr != nil {
			return rerr
		}
		return err
	}
	return f.Commit()
}

func txnCommit(w *pager.WALStore, p *pager.Page) error {
	txn, err := w.BeginTxn()
	if err != nil {
		return err
	}
	if err := txn.Write(p); err != nil {
		if rerr := txn.Rollback(); rerr != nil {
			return rerr
		}
		return err
	}
	return txn.Commit()
}
