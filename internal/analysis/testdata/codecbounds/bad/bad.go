// Package bad encodes records that overrun their declared layout: a
// fixed header field that bleeds into the record area and a per-record
// write that bleeds into the next record. Both offsets constant-fold,
// so the codecbounds pass must reject them.
package bad

import "encoding/binary"

const headerSize = 8
const recSize = 12

func put16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func writeBad(d []byte, recs [][3]uint32) {
	d[0] = 1
	put32(d[6:], 9)
	off := headerSize
	for _, r := range recs {
		put32(d[off:], r[0])
		put32(d[off+4:], r[1])
		put32(d[off+10:], r[2])
		off += recSize
	}
	put16(d[2:], uint16(len(recs)))
}
