// Package good encodes the same page shape as the bad fixture but with
// every constant-folded access inside the header region and the record
// stride, including the per-branch stride pattern the real codecs use.
package good

import "encoding/binary"

const headerSize = 8
const recSize = 12
const wideSize = 16

func put16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func writeGood(d []byte, recs [][3]uint32, wide bool) {
	d[0] = 1
	put32(d[4:], 9)
	off := headerSize
	for _, r := range recs {
		if wide {
			put32(d[off:], r[0])
			put32(d[off+4:], r[1])
			put32(d[off+8:], r[2])
			put32(d[off+12:], 0)
			off += wideSize
		} else {
			put32(d[off:], r[0])
			put32(d[off+4:], r[1])
			put32(d[off+8:], r[2])
			off += recSize
		}
	}
	put16(d[2:], uint16(len(recs)))
}

func chunked(d []byte, pts []float64) {
	off := headerSize
	for i := 0; i < len(pts); i += 4 {
		put32(d[off:], uint32(i))
		off += recSize
	}
}
