// Package bad violates each ctxflow rule: fabricated root contexts
// below the facade, an exported API that drops its ctx, and an
// uncancellable sleep in a ctx-aware retry loop.
package bad

import (
	"context"
	"time"
)

type Store struct{}

func (s *Store) do(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Fetch fabricates a root context instead of threading its own.
func Fetch(ctx context.Context, s *Store) error {
	return s.do(context.Background())
}

// Probe drops its ctx entirely and fabricates a TODO underneath.
func Probe(ctx context.Context, s *Store) error {
	return s.do(context.TODO())
}

// Retry sleeps where it should select on ctx.Done().
func Retry(ctx context.Context, s *Store) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = s.do(ctx); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}
