// Package good threads context the way ctxflow demands: the ctx
// parameter reaches every blocking call, retry waits are timer selects
// on ctx.Done(), and no root context is fabricated below the facade.
package good

import (
	"context"
	"time"
)

type Store struct{}

func (s *Store) do(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Fetch threads its ctx down.
func Fetch(ctx context.Context, s *Store) error {
	return s.do(ctx)
}

// FetchBounded derives a child deadline from the caller's ctx.
func FetchBounded(ctx context.Context, s *Store) error {
	actx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	return s.do(actx)
}

// Retry backs off with a cancellable timer select.
func Retry(ctx context.Context, s *Store) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = s.do(ctx); err == nil {
			return nil
		}
		timer := time.NewTimer(time.Millisecond)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
		timer.Stop()
	}
	return err
}
