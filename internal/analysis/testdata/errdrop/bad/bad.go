// Package bad drops errors in every way the errdrop pass reports: bare
// calls, blank assignments (direct and through a result tuple), deferred
// non-Close calls, goroutine calls, and fmt writes to a fallible writer.
package bad

import (
	"fmt"
	"os"
)

func bare(f *os.File) {
	f.Sync()
}

func blank(f *os.File) {
	_ = f.Sync()
}

func tupleBlank() {
	_, _ = os.Create("x")
}

func deferredSync(f *os.File) {
	defer f.Sync()
}

func goroutine(f *os.File) {
	go f.Sync()
}

func fprintfToFile(f *os.File) {
	fmt.Fprintf(f, "x")
}
