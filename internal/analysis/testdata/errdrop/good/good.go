// Package good handles errors the ways the errdrop pass accepts:
// explicit checks, the defer-Close read-path idiom, terminal printing,
// and writers that are documented to never fail.
package good

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

func deferClose(f *os.File) {
	defer f.Close()
}

func terminal() {
	fmt.Println("progress")
	fmt.Fprintln(os.Stderr, "warning")
}

func builder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("y")
	return b.String()
}

func buffer() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "x=%d", 1)
	return b.Bytes()
}
