// Package bad compares floats exactly — the erosion of epsilon
// discipline the floateq pass exists to stop.
package bad

func sameSpeed(a, b float64) bool { return a == b }

func moving(v float64) bool { return v != 0 }

func classify(v float64) int {
	switch v {
	case 0:
		return 0
	}
	return 1
}
