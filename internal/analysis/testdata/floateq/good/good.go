// Package good compares floats the sanctioned ways: through an approved
// epsilon helper (which may use == internally as a bit-equality fast
// path) or with explicit ±eps bounds.
package good

import "math"

const eps = 1e-9

func ApproxEq(a, b float64) bool { return a == b || math.Abs(a-b) <= eps }

func moving(v float64) bool { return math.Abs(v) > eps }

func inRange(v, lo, hi float64) bool { return v >= lo-eps && v <= hi+eps }
