// Package bad launches goroutines with no provable join or stop path:
// a fire-and-forget literal with an unbounded loop, a named method
// whose body shows no lifecycle, and a callee invisible to the package.
package bad

import "io"

type Worker struct {
	ch chan int
}

// Spawn leaks: the literal loops forever with no stop signal.
func (w *Worker) Spawn() {
	go func() {
		for v := range w.ch {
			_ = v
		}
	}()
}

// SpawnNamed leaks: run's body has neither Done pairing nor a stop
// select.
func (w *Worker) SpawnNamed() {
	go w.run()
}

func (w *Worker) run() {
	for v := range w.ch {
		_ = v
	}
}

// SpawnOpaque spawns a body this package cannot see.
func SpawnOpaque(c io.Closer) {
	go c.Close() //nolint — the lint under test fires here
}
