// Package good launches goroutines with the lifecycle evidence the
// pass demands: WaitGroup pairing, ctx.Done selects, quit channels,
// and a named worker whose declared body carries its own stop path.
package good

import (
	"context"
	"sync"
)

type Pool struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
}

// Joined pairs every goroutine with the pool's WaitGroup.
func (p *Pool) Joined(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for v := range p.work {
				_ = v
			}
		}()
	}
	close(p.work)
	p.wg.Wait()
}

// Cancellable stops on ctx.Done.
func (p *Pool) Cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case v := <-p.work:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// QuitChannel stops when the quit channel closes.
func (p *Pool) QuitChannel() {
	go func() {
		for {
			select {
			case v := <-p.work:
				_ = v
			case <-p.quit:
				return
			}
		}
	}()
}

// Named spawns a declared worker whose body selects on quit.
func (p *Pool) Named() {
	go p.loop()
}

func (p *Pool) loop() {
	for {
		select {
		case v := <-p.work:
			_ = v
		case <-p.quit:
			return
		}
	}
}
