// Package bad exercises every lockorder hazard class: an order cycle
// across two types, a transitive self-acquisition, a direct nested
// same-key acquire, and locks held across each blocking-operation kind.
package bad

import (
	"os"
	"sync"
	"time"
)

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

// One establishes A.mu -> B.mu (Two acquires B.mu while A.mu is held).
func (a *A) One() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.Two()
}

func (b *B) Two() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Back establishes B.mu -> A.mu: together with One, an order cycle.
func (b *B) Back() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.Direct()
}

func (a *A) Direct() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// Re acquires A.mu transitively (via helper) while A.mu is held.
func (a *A) Re() {
	a.mu.Lock()
	a.helper()
	a.mu.Unlock()
}

func (a *A) helper() {
	a.mu.Lock()
	a.mu.Unlock()
}

// Nested acquires the same lock key directly while it is held.
func Nested(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

type F struct {
	mu sync.Mutex
	f  *os.File
}

// Flush holds F.mu across an fsync.
func (f *F) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.f.Sync()
}

// Sleepy holds F.mu across time.Sleep.
func (f *F) Sleepy() {
	f.mu.Lock()
	time.Sleep(time.Millisecond)
	f.mu.Unlock()
}

// Send holds F.mu across a bare channel send.
func (f *F) Send(ch chan int) {
	f.mu.Lock()
	ch <- 1
	f.mu.Unlock()
}

// Recv holds F.mu across a bare channel receive.
func (f *F) Recv(ch chan int) int {
	f.mu.Lock()
	v := <-ch
	f.mu.Unlock()
	return v
}

// Sel holds F.mu across a select with no default clause.
func (f *F) Sel(ch chan int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-ch:
	case <-time.After(time.Millisecond):
	}
}

// Indirect holds F.mu across a call to Flush, which may block.
func (f *F) Indirect(other *F) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return other.flushNoLock()
}

func (f *F) flushNoLock() error {
	return f.f.Sync()
}
