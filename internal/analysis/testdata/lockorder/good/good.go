// Package good holds locking patterns the lockorder pass must accept:
// a consistent acquisition hierarchy, blocking work done with the latch
// released, non-blocking sends under a latch, and the sync.Cond
// protocol.
package good

import (
	"os"
	"sync"
	"time"
)

type Outer struct {
	mu    sync.Mutex
	inner *Inner
}

type Inner struct {
	mu sync.Mutex
	n  int
}

// Consistent hierarchy: Outer.mu is always taken before Inner.mu,
// nowhere the reverse.
func (o *Outer) Touch() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.bump()
}

func (i *Inner) bump() {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

type Store struct {
	mu sync.Mutex
	f  *os.File
}

// SyncOutside stages under the latch, then syncs with it released.
func (s *Store) SyncOutside() error {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	return f.Sync()
}

// UnlockRelock releases the latch around the blocking wait, the
// leader/follower shape group commit uses.
func (s *Store) UnlockRelock(ch chan struct{}) {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// NonBlockingSend offers under the latch through a select with a
// default clause — it cannot park.
func (s *Store) NonBlockingSend(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
}

type Waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

// Wait holds exactly the cond's own lock across Cond.Wait — the
// documented protocol, not a hazard.
func (w *Waiter) Wait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.done {
		w.cond.Wait()
	}
}

// SleepUnlocked sleeps with no latch held.
func (s *Store) SleepUnlocked() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}
