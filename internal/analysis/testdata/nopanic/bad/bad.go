// Package bad panics directly from ordinary library functions — the
// crash-the-server shape the nopanic pass reports.
package bad

func decode(b []byte) byte {
	if len(b) == 0 {
		panic("empty page")
	}
	return b[0]
}

func index(i, n int) int {
	if i >= n {
		panic("out of range")
	}
	return i
}
