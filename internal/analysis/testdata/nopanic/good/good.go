// Package good crashes only through invariant-violation helpers and
// otherwise surfaces failures as errors — the policy nopanic enforces.
package good

import "fmt"

func mustLen(b []byte, n int) {
	if len(b) < n {
		panic(fmt.Sprintf("page too short: %d < %d", len(b), n))
	}
}

func invariantViolated(msg string) {
	panic("invariant violated: " + msg)
}

func decode(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty page")
	}
	mustLen(b, 1)
	return b[0], nil
}
