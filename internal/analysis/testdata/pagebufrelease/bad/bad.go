// Package bad exercises every leak shape the pagebufrelease pass
// reports: a return with the buffer still live, an early return that
// skips the release on one path, a discarded acquisition, and a
// reassignment that overwrites a live buffer.
package bad

import "mobidx/internal/pager"

func leakOnReturn(s pager.Store) error {
	pb := pager.GetPageBuf(64)
	pb.B[0] = 1
	return s.Write(&pager.Page{ID: 1, Data: pb.B})
}

func leakOnOnePath(cond bool) {
	pb := pager.GetPageBuf(64)
	if cond {
		return
	}
	pb.Release()
}

func discarded() {
	_ = pager.GetPageBuf(32)
}

func reassigned() {
	pb := pager.GetPageBuf(32)
	pb = pager.GetPageBuf(64)
	pb.Release()
}
