// Package good holds PageBuf usage the pagebufrelease pass must accept:
// release on every path, deferred release, and ownership hand-off.
package good

import "mobidx/internal/pager"

func releaseAllPaths(s pager.Store, cond bool) error {
	pb := pager.GetPageBuf(64)
	if cond {
		pb.Release()
		return nil
	}
	err := s.Write(&pager.Page{ID: 1, Data: pb.B})
	pb.Release()
	return err
}

func deferred(s pager.Store) error {
	pb := pager.GetPageBuf(64)
	defer pb.Release()
	return s.Write(&pager.Page{ID: 2, Data: pb.B})
}

func consume(pb *pager.PageBuf) { pb.Release() }

func handedOff() {
	pb := pager.GetPageBuf(16)
	consume(pb)
}

func releasedInLoop(s pager.Store, n int) error {
	for i := 0; i < n; i++ {
		pb := pager.GetPageBuf(32)
		if err := s.Write(&pager.Page{ID: pager.PageID(i + 1), Data: pb.B}); err != nil {
			pb.Release()
			return err
		}
		pb.Release()
	}
	return nil
}
