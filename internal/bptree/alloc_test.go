package bptree

import (
	"math/rand"
	"testing"

	"mobidx/internal/pager"
)

// allocTree builds a Compact tree of n entries behind a buffer pool large
// enough to hold it whole, then warms the pool, so the measured loops run
// against the steady-state serving configuration: every descent is a pool
// hit served through the zero-copy view path.
func allocTree(t testing.TB, n int) (*Tree, []Entry) {
	t.Helper()
	rng := rand.New(rand.NewSource(1999))
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: Compact.roundKey(rng.Float64() * 1000), Val: uint64(i), Aux: Compact.roundKey(rng.Float64())}
	}
	SortEntries(es)
	tr, err := New(pager.NewBuffered(pager.NewMemStore(4096), 4096), Config{Codec: Compact})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoadSorted(es, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range es[:64] {
		if _, _, err := tr.Get(e.Key, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	return tr, es
}

// The regression gate for the tentpole claim: a steady-state point query
// performs zero heap allocations above the buffer pool.
func TestPointQueryZeroAlloc(t *testing.T) {
	tr, es := allocTree(t, 50000)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e := es[i%len(es)]
		i++
		if _, _, err := tr.Get(e.Key, e.Val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("point query allocates %.1f objects/op, want 0", allocs)
	}
}

// A range scan into a caller-owned buffer with sufficient capacity must
// also run allocation-free.
func TestRangeAppendZeroAlloc(t *testing.T) {
	tr, es := allocTree(t, 50000)
	buf := make([]Entry, 0, 4096)
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		lo := es[(i*37)%len(es)].Key
		i++
		var err error
		buf, err = tr.RangeAppend(buf[:0], lo, lo+0.5)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RangeAppend allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkPointQuery(b *testing.B) {
	tr, es := allocTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := es[i%len(es)]
		if _, _, err := tr.Get(e.Key, e.Val); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEntries(n int) []Entry {
	rng := rand.New(rand.NewSource(7))
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: rng.Float64() * 1000, Val: uint64(i), Aux: rng.Float64()}
	}
	return es
}

func BenchmarkBuildIncremental(b *testing.B) {
	es := benchEntries(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := New(pager.NewBuffered(pager.NewMemStore(4096), 64), Config{Codec: Compact})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range es {
			if err := tr.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBuildBulk(b *testing.B) {
	es := benchEntries(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := New(pager.NewBuffered(pager.NewMemStore(4096), 64), Config{Codec: Compact})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(es, 0); err != nil {
			b.Fatal(err)
		}
	}
}
