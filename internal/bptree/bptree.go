// Package bptree implements a disk-paged B+-tree (Comer, "The Ubiquitous
// B-Tree") over float64 keys with a fixed-size payload per entry. It is the
// substrate of the paper's query-approximation method (§3.5.2): each of the
// c "observation" indices is one such tree keyed on the Hough-Y
// b-coordinate.
//
// Entries carry (key, val, aux): the b-coordinate, the object id, and the
// object's velocity, matching the paper's record layout of three 4-byte
// numbers. With the Compact codec and 4096-byte pages the leaf capacity is
// 340 entries (the paper computes B = 341, ignoring the page header).
//
// Entries are ordered by the composite (key, val), and separators carry
// both components. Mobile-object workloads create huge duplicate-key runs
// (every object bootstrapped at t=0 shares the same first crossing time),
// and ordering by key alone would force Delete to scan a run linearly;
// composite ordering keeps every operation a single O(log_B n) root-to-leaf
// descent.
//
// Nodes are serialized with encoding/binary into pages of a pager.Store;
// every node touch is a counted I/O. Deletion rebalances by borrowing from
// or merging with siblings, so space stays proportional to the live entry
// count under the heavy churn of mobile-object updates.
package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mobidx/internal/pager"
)

// Entry is one stored record.
type Entry struct {
	Key float64 // search key (b-coordinate in the paper's use)
	Val uint64  // object identifier; tiebreaker within equal keys
	Aux float64 // auxiliary payload (velocity in the paper's use)
}

// less orders entries by (Key, Val).
func (e Entry) less(k float64, v uint64) bool {
	if e.Key != k {
		return e.Key < k
	}
	return e.Val < v
}

// Codec selects the on-page precision of entries.
type Codec int

const (
	// Wide stores 8-byte keys/aux and 8-byte values (24-byte entries).
	Wide Codec = iota
	// Compact stores 4-byte keys/aux and 4-byte values (12-byte entries),
	// reproducing the record size of the paper's experiments (§5).
	Compact
)

func (c Codec) leafEntrySize() int {
	if c == Compact {
		return 12
	}
	return 24
}

// Internal entries hold a separator (key, val) plus a child pointer.
func (c Codec) intEntrySize() int {
	if c == Compact {
		return 12 // 4-byte key + 4-byte val + 4-byte child id
	}
	return 20 // 8-byte key + 8-byte val + 4-byte child id
}

// roundKey maps a key to the value it will compare as after a round trip
// through the codec; callers must compare against rounded keys.
func (c Codec) roundKey(k float64) float64 {
	if c == Compact {
		return float64(float32(k))
	}
	return k
}

// RoundKey maps a key (or Aux) to the value it will compare as after a
// round trip through the codec. Callers preparing input for BulkLoadSorted
// round with it before sorting, so the tree can skip its own copy-and-sort
// pass.
func (c Codec) RoundKey(k float64) float64 { return c.roundKey(k) }

// Config configures a tree.
type Config struct {
	Codec Codec
}

// Page layout. Header (12 bytes):
//
//	off 0: node type (1 = leaf, 2 = internal)
//	off 1: unused
//	off 2: entry count (uint16)
//	off 4: next-leaf page id (uint32; leaves only)
//	off 8: unused (uint32)
//
// Leaf body: count entries of leafEntrySize bytes.
// Internal body: leftmost child id (uint32) then count separator entries.
const headerSize = 12

const (
	typeLeaf     = 1
	typeInternal = 2
)

// Tree is a B+-tree rooted in a pager.Store.
type Tree struct {
	store   pager.Store
	codec   Codec
	root    pager.PageID
	height  int // 1 = root is a leaf
	size    int
	leafCap int
	intCap  int
}

// New creates an empty tree in store.
func New(store pager.Store, cfg Config) (*Tree, error) {
	t := &Tree{store: store, codec: cfg.Codec}
	body := store.PageSize() - headerSize
	t.leafCap = body / cfg.Codec.leafEntrySize()
	t.intCap = (body - 4) / cfg.Codec.intEntrySize()
	if t.leafCap < 4 || t.intCap < 4 {
		return nil, fmt.Errorf("bptree: page size %d too small", store.PageSize())
	}
	err := pager.RunBatch(store, func() error {
		p, err := store.Allocate()
		if err != nil {
			return err
		}
		root := &node{id: p.ID, leaf: true}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = p.ID
		t.height = 1
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of live entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafCap returns the page capacity B for leaf entries.
func (t *Tree) LeafCap() int { return t.leafCap }

// node is the in-memory image of one page.
type node struct {
	id      pager.PageID
	leaf    bool
	entries []Entry        // leaf entries
	keys    []float64      // internal separator keys
	vals    []uint64       // internal separator vals (composite tiebreak)
	kids    []pager.PageID // internal children; len(kids) == len(keys)+1
	next    pager.PageID   // leaf chain
}

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	return t.decode(p)
}

// decode parses a page into a node. Every structural field read from the
// page is bounds-checked before use, so a corrupted page — torn write, bit
// rot, wrong page fed back by a broken store — yields a typed error
// wrapping pager.ErrPageCorrupt, never a slice-bounds panic.
func (t *Tree) decode(p *pager.Page) (*node, error) {
	d := p.Data
	if len(d) < headerSize {
		return nil, fmt.Errorf("bptree: page %d: %d bytes, want >= %d: %w",
			p.ID, len(d), headerSize, pager.ErrPageCorrupt)
	}
	n := &node{id: p.ID}
	switch d[0] {
	case typeLeaf:
		n.leaf = true
	case typeInternal:
	default:
		return nil, fmt.Errorf("bptree: page %d: bad node type %d: %w", p.ID, d[0], pager.ErrPageCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(d[2:4]))
	n.next = pager.PageID(binary.LittleEndian.Uint32(d[4:8]))
	off := headerSize
	if n.leaf {
		es := t.codec.leafEntrySize()
		if count > (len(d)-headerSize)/es {
			return nil, fmt.Errorf("bptree: page %d: leaf count %d exceeds page capacity %d: %w",
				p.ID, count, (len(d)-headerSize)/es, pager.ErrPageCorrupt)
		}
		n.entries = make([]Entry, count)
		for i := 0; i < count; i++ {
			n.entries[i] = t.decodeEntry(d[off : off+es])
			off += es
		}
		return n, nil
	}
	es := t.codec.intEntrySize()
	if count > (len(d)-headerSize-4)/es {
		return nil, fmt.Errorf("bptree: page %d: internal count %d exceeds page capacity %d: %w",
			p.ID, count, (len(d)-headerSize-4)/es, pager.ErrPageCorrupt)
	}
	n.kids = make([]pager.PageID, 0, count+1)
	n.keys = make([]float64, 0, count)
	n.vals = make([]uint64, 0, count)
	n.kids = append(n.kids, pager.PageID(binary.LittleEndian.Uint32(d[off:off+4])))
	off += 4
	for i := 0; i < count; i++ {
		if t.codec == Compact {
			n.keys = append(n.keys, float64(math.Float32frombits(binary.LittleEndian.Uint32(d[off:off+4]))))
			n.vals = append(n.vals, uint64(binary.LittleEndian.Uint32(d[off+4:off+8])))
			n.kids = append(n.kids, pager.PageID(binary.LittleEndian.Uint32(d[off+8:off+12])))
			off += 12
		} else {
			n.keys = append(n.keys, math.Float64frombits(binary.LittleEndian.Uint64(d[off:off+8])))
			n.vals = append(n.vals, binary.LittleEndian.Uint64(d[off+8:off+16]))
			n.kids = append(n.kids, pager.PageID(binary.LittleEndian.Uint32(d[off+16:off+20])))
			off += 20
		}
	}
	for _, kid := range n.kids {
		if kid == pager.NilPage {
			return nil, fmt.Errorf("bptree: page %d: nil child pointer: %w", p.ID, pager.ErrPageCorrupt)
		}
	}
	return n, nil
}

// Meta captures the position and shape of a tree inside its store, so the
// tree can be reattached after the store is closed and reopened (see
// Attach). It fits in a pager.FileStore's user-metadata area.
type Meta struct {
	Root   pager.PageID
	Height int
	Size   int
}

// Meta returns the tree's current persistence metadata. Valid until the
// next mutating operation.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Size: t.size} }

// Attach reattaches a tree previously built in store (same page size and
// codec) from its Meta, typically after a pager.OpenFileStore. The root
// page is read immediately to validate the metadata.
func Attach(store pager.Store, cfg Config, m Meta) (*Tree, error) {
	t := &Tree{store: store, codec: cfg.Codec}
	body := store.PageSize() - headerSize
	t.leafCap = body / cfg.Codec.leafEntrySize()
	t.intCap = (body - 4) / cfg.Codec.intEntrySize()
	if t.leafCap < 4 || t.intCap < 4 {
		return nil, fmt.Errorf("bptree: page size %d too small", store.PageSize())
	}
	if m.Root == pager.NilPage || m.Height < 1 || m.Size < 0 {
		return nil, fmt.Errorf("bptree: invalid meta %+v", m)
	}
	t.root, t.height, t.size = m.Root, m.Height, m.Size
	n, err := t.readNode(m.Root)
	if err != nil {
		return nil, fmt.Errorf("bptree: attach: %w", err)
	}
	if n.leaf != (m.Height == 1) {
		return nil, fmt.Errorf("bptree: attach: root leafness disagrees with height %d: %w",
			m.Height, pager.ErrPageCorrupt)
	}
	return t, nil
}

func (t *Tree) decodeEntry(b []byte) Entry {
	if t.codec == Compact {
		return Entry{
			Key: float64(math.Float32frombits(binary.LittleEndian.Uint32(b[0:4]))),
			Aux: float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4:8]))),
			Val: uint64(binary.LittleEndian.Uint32(b[8:12])),
		}
	}
	return Entry{
		Key: math.Float64frombits(binary.LittleEndian.Uint64(b[0:8])),
		Aux: math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
		Val: binary.LittleEndian.Uint64(b[16:24]),
	}
}

func (t *Tree) encodeEntry(b []byte, e Entry) {
	if t.codec == Compact {
		binary.LittleEndian.PutUint32(b[0:4], math.Float32bits(float32(e.Key)))
		binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(float32(e.Aux)))
		binary.LittleEndian.PutUint32(b[8:12], uint32(e.Val))
		return
	}
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(e.Key))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(e.Aux))
	binary.LittleEndian.PutUint64(b[16:24], e.Val)
}

func (t *Tree) writeNode(n *node) error {
	pb := pager.GetPageBuf(t.store.PageSize())
	data := pb.B
	if n.leaf {
		data[0] = typeLeaf
		binary.LittleEndian.PutUint16(data[2:4], uint16(len(n.entries)))
		binary.LittleEndian.PutUint32(data[4:8], uint32(n.next))
		off := headerSize
		es := t.codec.leafEntrySize()
		for _, e := range n.entries {
			t.encodeEntry(data[off:off+es], e)
			off += es
		}
	} else {
		data[0] = typeInternal
		binary.LittleEndian.PutUint16(data[2:4], uint16(len(n.keys)))
		off := headerSize
		binary.LittleEndian.PutUint32(data[off:off+4], uint32(n.kids[0]))
		off += 4
		for i, k := range n.keys {
			if t.codec == Compact {
				binary.LittleEndian.PutUint32(data[off:off+4], math.Float32bits(float32(k)))
				binary.LittleEndian.PutUint32(data[off+4:off+8], uint32(n.vals[i]))
				binary.LittleEndian.PutUint32(data[off+8:off+12], uint32(n.kids[i+1]))
				off += 12
			} else {
				binary.LittleEndian.PutUint64(data[off:off+8], math.Float64bits(k))
				binary.LittleEndian.PutUint64(data[off+8:off+16], n.vals[i])
				binary.LittleEndian.PutUint32(data[off+16:off+20], uint32(n.kids[i+1]))
				off += 20
			}
		}
	}
	err := t.store.Write(&pager.Page{ID: n.id, Data: data})
	pb.Release()
	return err
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &node{id: p.ID, leaf: leaf}, nil
}

// sepLess reports whether separator i of n is < (k, v).
func sepLess(n *node, i int, k float64, v uint64) bool {
	if n.keys[i] != k {
		return n.keys[i] < k
	}
	return n.vals[i] < v
}

// childIndex returns the child to descend into for composite (k, v): the
// first child whose separator exceeds (k, v); entries equal to a separator
// live in the subtree right of it.
func childIndex(n *node, k float64, v uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if sepLess(n, mid, k, v) || (n.keys[mid] == k && n.vals[mid] == v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index whose entry is > (k, v).
func upperBound(es []Entry, k float64, v uint64) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].less(k, v) || (es[mid].Key == k && es[mid].Val == v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index whose entry is >= (k, v).
func lowerBound(es []Entry, k float64, v uint64) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].less(k, v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds an entry. Duplicate keys are allowed; the (key, val) pair
// need not be unique either (exact duplicates sit adjacent).
//
// On a store that supports atomic batches (pager.Batcher, e.g. a
// WALStore) the insert — including any cascade of leaf and internal
// splits — commits as one batch: a crash mid-split leaves no trace. On a
// failed mutation the store is rolled back, but the in-memory Tree may be
// stale; reopen it from the store (Attach) before further use.
func (t *Tree) Insert(e Entry) error {
	return pager.RunBatch(t.store, func() error { return t.insert(e) })
}

func (t *Tree) insert(e Entry) error {
	e.Key = t.codec.roundKey(e.Key)
	e.Aux = t.codec.roundKey(e.Aux)
	sepKey, sepVal, sepChild, err := t.insertAt(t.root, e, t.height)
	if err != nil {
		return err
	}
	if sepChild != pager.NilPage {
		nr, err := t.allocNode(false)
		if err != nil {
			return err
		}
		nr.kids = []pager.PageID{t.root, sepChild}
		nr.keys = []float64{sepKey}
		nr.vals = []uint64{sepVal}
		if err := t.writeNode(nr); err != nil {
			return err
		}
		t.root = nr.id
		t.height++
	}
	t.size++
	return nil
}

func (t *Tree) insertAt(id pager.PageID, e Entry, height int) (float64, uint64, pager.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, 0, pager.NilPage, err
	}
	if n.leaf {
		pos := upperBound(n.entries, e.Key, e.Val)
		n.entries = append(n.entries, Entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = e
		if len(n.entries) <= t.leafCap {
			return 0, 0, pager.NilPage, t.writeNode(n)
		}
		right, err := t.allocNode(true)
		if err != nil {
			return 0, 0, pager.NilPage, err
		}
		mid := len(n.entries) / 2
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid]
		right.next = n.next
		n.next = right.id
		if err := t.writeNode(n); err != nil {
			return 0, 0, pager.NilPage, err
		}
		if err := t.writeNode(right); err != nil {
			return 0, 0, pager.NilPage, err
		}
		// Separator: entries >= (sepKey, sepVal) live right of it. The
		// separator equals the right node's first entry, and childIndex
		// sends equal composites right — consistent.
		sep := right.entries[0]
		return sep.Key, sep.Val, right.id, nil
	}
	ci := childIndex(n, e.Key, e.Val)
	sepKey, sepVal, sepChild, err := t.insertAt(n.kids[ci], e, height-1)
	if err != nil || sepChild == pager.NilPage {
		return 0, 0, pager.NilPage, err
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sepKey
	n.vals = append(n.vals, 0)
	copy(n.vals[ci+1:], n.vals[ci:])
	n.vals[ci] = sepVal
	n.kids = append(n.kids, pager.NilPage)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = sepChild
	if len(n.keys) <= t.intCap {
		return 0, 0, pager.NilPage, t.writeNode(n)
	}
	right, err := t.allocNode(false)
	if err != nil {
		return 0, 0, pager.NilPage, err
	}
	mid := len(n.keys) / 2
	upK, upV := n.keys[mid], n.vals[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.vals = append(right.vals, n.vals[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.kids = n.kids[:mid+1]
	if err := t.writeNode(n); err != nil {
		return 0, 0, pager.NilPage, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, pager.NilPage, err
	}
	return upK, upV, right.id, nil
}

// normFill validates a fill fraction; zero selects 0.9 (full packing
// would make the very next inserts split every leaf).
func normFill(fill float64) (float64, error) {
	if fill == 0 {
		fill = 0.9
	}
	if fill <= 0 || fill > 1 {
		return 0, fmt.Errorf("bptree: fill fraction %v outside (0, 1]", fill)
	}
	return fill, nil
}

// BulkLoad replaces the tree's contents with the given entries, building
// bottom-up with leaves packed to the given fill fraction: the entries
// are sorted once, the leaf level is emitted left to right, and each
// internal level is packed from the level below — one sequential page
// write per node, against O(n log_B n) page I/Os for n root-to-leaf
// Inserts. The entries need not be sorted; the input slice is not
// modified.
func (t *Tree) BulkLoad(entries []Entry, fill float64) error {
	fill, err := normFill(fill)
	if err != nil {
		return err
	}
	es := make([]Entry, len(entries))
	for i, e := range entries {
		es[i] = Entry{Key: t.codec.roundKey(e.Key), Val: e.Val, Aux: t.codec.roundKey(e.Aux)}
	}
	sortEntries(es)
	return pager.RunBatch(t.store, func() error { return t.bulkLoad(es, fill) })
}

// BulkLoadSorted is BulkLoad for entries already in (Key, Val) order with
// keys and aux values already at codec precision (SortEntries on
// codec-rounded entries produces exactly this). It skips the copy and the
// sort — the fast path for dataset generators that emit sorted runs — and
// fails without touching the tree if the input breaks either premise.
func (t *Tree) BulkLoadSorted(entries []Entry, fill float64) error {
	fill, err := normFill(fill)
	if err != nil {
		return err
	}
	for i, e := range entries {
		if t.codec.roundKey(e.Key) != e.Key || t.codec.roundKey(e.Aux) != e.Aux {
			return fmt.Errorf("bptree: BulkLoadSorted entry %d not at codec precision", i)
		}
		if i > 0 && e.less(entries[i-1].Key, entries[i-1].Val) {
			return fmt.Errorf("bptree: BulkLoadSorted entries out of order at %d", i)
		}
	}
	return pager.RunBatch(t.store, func() error { return t.bulkLoad(entries, fill) })
}

// SortEntries sorts entries in place by (Key, Val) — the order
// BulkLoadSorted requires — with one scratch allocation regardless of
// input size.
func SortEntries(es []Entry) { sortEntries(es) }

// bulkLoad packs sorted, codec-rounded entries bottom-up. es is read, not
// modified or retained.
func (t *Tree) bulkLoad(es []Entry, fill float64) error {
	if err := t.destroy(t.root, t.height); err != nil {
		return err
	}
	perLeaf := int(fill * float64(t.leafCap))
	if perLeaf < 1 {
		perLeaf = 1
	}
	// Build the leaf level.
	type childRef struct {
		firstK float64
		firstV uint64
		id     pager.PageID
	}
	var level []childRef
	var prev *node
	for start := 0; start < len(es) || start == 0; start += perLeaf {
		end := start + perLeaf
		if end > len(es) {
			end = len(es)
		}
		leaf, err := t.allocNode(true)
		if err != nil {
			return err
		}
		leaf.entries = append(leaf.entries, es[start:end]...)
		if prev != nil {
			prev.next = leaf.id
			if err := t.writeNode(prev); err != nil {
				return err
			}
		}
		var fk float64
		var fv uint64
		if len(leaf.entries) > 0 {
			fk, fv = leaf.entries[0].Key, leaf.entries[0].Val
		}
		level = append(level, childRef{firstK: fk, firstV: fv, id: leaf.id})
		prev = leaf
		if end >= len(es) {
			break
		}
	}
	if err := t.writeNode(prev); err != nil {
		return err
	}
	height := 1
	perInt := int(fill * float64(t.intCap))
	if perInt < 2 {
		perInt = 2
	}
	for len(level) > 1 {
		var next []childRef
		for start := 0; start < len(level); start += perInt {
			end := start + perInt
			if end > len(level) {
				end = len(level)
			}
			in, err := t.allocNode(false)
			if err != nil {
				return err
			}
			group := level[start:end]
			in.kids = append(in.kids, group[0].id)
			for _, c := range group[1:] {
				in.keys = append(in.keys, c.firstK)
				in.vals = append(in.vals, c.firstV)
				in.kids = append(in.kids, c.id)
			}
			if err := t.writeNode(in); err != nil {
				return err
			}
			next = append(next, childRef{firstK: group[0].firstK, firstV: group[0].firstV, id: in.id})
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.size = len(es)
	return nil
}

// sortEntries orders entries by (Key, Val) with a simple merge sort (the
// stdlib sort is fine too; this keeps allocation predictable for large
// loads).
func sortEntries(es []Entry) {
	if len(es) < 2 {
		return
	}
	buf := make([]Entry, len(es))
	mergeSortEntries(es, buf)
}

func mergeSortEntries(es, buf []Entry) {
	if len(es) < 32 {
		// Insertion sort for small runs.
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].less(es[j-1].Key, es[j-1].Val); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		return
	}
	mid := len(es) / 2
	mergeSortEntries(es[:mid], buf[:mid])
	mergeSortEntries(es[mid:], buf[mid:])
	copy(buf, es)
	i, j, k := 0, mid, 0
	for i < mid && j < len(es) {
		if buf[j].less(buf[i].Key, buf[i].Val) {
			es[k] = buf[j]
			j++
		} else {
			es[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		es[k] = buf[i]
		i++
		k++
	}
}

// ErrNotFound is returned by Delete when no matching entry exists.
var ErrNotFound = errors.New("bptree: entry not found")

// Delete removes one entry with the given key and value in a single
// root-to-leaf descent (composite ordering makes the position unique even
// among massive duplicate-key runs). Like Insert, the whole operation —
// deletion plus any rebalances and root collapses — is one atomic batch
// on a batching store.
func (t *Tree) Delete(key float64, val uint64) error {
	return pager.RunBatch(t.store, func() error { return t.deleteOne(key, val) })
}

func (t *Tree) deleteOne(key float64, val uint64) error {
	key = t.codec.roundKey(key)
	deleted, _, err := t.deleteAt(t.root, key, val, t.height)
	if err != nil {
		return err
	}
	if !deleted {
		return ErrNotFound
	}
	t.size--
	for {
		n, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if n.leaf || len(n.kids) > 1 {
			return nil
		}
		old := t.root
		t.root = n.kids[0]
		t.height--
		if err := t.store.Free(old); err != nil {
			return err
		}
	}
}

func (t *Tree) minLeaf() int { return t.leafCap / 2 }
func (t *Tree) minInt() int  { return t.intCap / 2 }

func (t *Tree) deleteAt(id pager.PageID, key float64, val uint64, height int) (bool, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i := lowerBound(n.entries, key, val)
		if i >= len(n.entries) || n.entries[i].Key != key || n.entries[i].Val != val {
			return false, false, nil
		}
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, len(n.entries) < t.minLeaf(), nil
	}
	ci := childIndex(n, key, val)
	deleted, under, err := t.deleteAt(n.kids[ci], key, val, height-1)
	if err != nil || !deleted {
		return deleted, false, err
	}
	if !under {
		return true, false, nil
	}
	under2, err := t.rebalanceChild(n, ci)
	if err != nil {
		return false, false, err
	}
	return true, under2, nil
}

// rebalanceChild fixes the underfull child at index ci of parent n by
// borrowing from or merging with an adjacent sibling.
func (t *Tree) rebalanceChild(n *node, ci int) (bool, error) {
	child, err := t.readNode(n.kids[ci])
	if err != nil {
		return false, err
	}
	var left, right *node
	if ci > 0 {
		if left, err = t.readNode(n.kids[ci-1]); err != nil {
			return false, err
		}
	}
	if ci < len(n.kids)-1 {
		if right, err = t.readNode(n.kids[ci+1]); err != nil {
			return false, err
		}
	}
	if child.leaf {
		switch {
		case left != nil && len(left.entries) > t.minLeaf():
			e := left.entries[len(left.entries)-1]
			left.entries = left.entries[:len(left.entries)-1]
			child.entries = append([]Entry{e}, child.entries...)
			n.keys[ci-1] = e.Key
			n.vals[ci-1] = e.Val
			return false, writeAll(t, left, child, n)
		case right != nil && len(right.entries) > t.minLeaf():
			e := right.entries[0]
			right.entries = right.entries[1:]
			child.entries = append(child.entries, e)
			n.keys[ci] = right.entries[0].Key
			n.vals[ci] = right.entries[0].Val
			return false, writeAll(t, right, child, n)
		case left != nil:
			left.entries = append(left.entries, child.entries...)
			left.next = child.next
			if err := t.store.Free(child.id); err != nil {
				return false, err
			}
			removeChild(n, ci)
			return len(n.keys) < t.minInt(), writeAll(t, left, n)
		case right != nil:
			child.entries = append(child.entries, right.entries...)
			child.next = right.next
			if err := t.store.Free(right.id); err != nil {
				return false, err
			}
			removeChild(n, ci+1)
			return len(n.keys) < t.minInt(), writeAll(t, child, n)
		default:
			return false, t.writeNode(child)
		}
	}
	switch {
	case left != nil && len(left.keys) > t.minInt():
		child.keys = append([]float64{n.keys[ci-1]}, child.keys...)
		child.vals = append([]uint64{n.vals[ci-1]}, child.vals...)
		child.kids = append([]pager.PageID{left.kids[len(left.kids)-1]}, child.kids...)
		n.keys[ci-1] = left.keys[len(left.keys)-1]
		n.vals[ci-1] = left.vals[len(left.vals)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.vals = left.vals[:len(left.vals)-1]
		left.kids = left.kids[:len(left.kids)-1]
		return false, writeAll(t, left, child, n)
	case right != nil && len(right.keys) > t.minInt():
		child.keys = append(child.keys, n.keys[ci])
		child.vals = append(child.vals, n.vals[ci])
		child.kids = append(child.kids, right.kids[0])
		n.keys[ci] = right.keys[0]
		n.vals[ci] = right.vals[0]
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		right.kids = right.kids[1:]
		return false, writeAll(t, right, child, n)
	case left != nil:
		left.keys = append(left.keys, n.keys[ci-1])
		left.vals = append(left.vals, n.vals[ci-1])
		left.keys = append(left.keys, child.keys...)
		left.vals = append(left.vals, child.vals...)
		left.kids = append(left.kids, child.kids...)
		if err := t.store.Free(child.id); err != nil {
			return false, err
		}
		removeChild(n, ci)
		return len(n.keys) < t.minInt(), writeAll(t, left, n)
	case right != nil:
		child.keys = append(child.keys, n.keys[ci])
		child.vals = append(child.vals, n.vals[ci])
		child.keys = append(child.keys, right.keys...)
		child.vals = append(child.vals, right.vals...)
		child.kids = append(child.kids, right.kids...)
		if err := t.store.Free(right.id); err != nil {
			return false, err
		}
		removeChild(n, ci+1)
		return len(n.keys) < t.minInt(), writeAll(t, child, n)
	default:
		return false, t.writeNode(child)
	}
}

// removeChild removes child slot ci and the separator left of it.
func removeChild(n *node, ci int) {
	n.kids = append(n.kids[:ci], n.kids[ci+1:]...)
	n.keys = append(n.keys[:ci-1], n.keys[ci:]...)
	n.vals = append(n.vals[:ci-1], n.vals[ci:]...)
}

func writeAll(t *Tree, ns ...*node) error {
	for _, n := range ns {
		if err := t.writeNode(n); err != nil {
			return err
		}
	}
	return nil
}

// Range calls fn for every entry with lo <= key <= hi, in (key, val)
// order, until fn returns false. Keys are compared after codec rounding.
func (t *Tree) Range(lo, hi float64, fn func(Entry) bool) error {
	lo = t.codec.roundKey(lo)
	hi = t.codec.roundKey(hi)
	id := t.root
	height := t.height
	for height > 1 {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		id = n.kids[childIndex(n, lo, 0)]
		height--
	}
	for id != pager.NilPage {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for _, e := range n.entries[lowerBound(n.entries, lo, 0):] {
			if e.Key > hi {
				return nil
			}
			if !fn(e) {
				return nil
			}
		}
		id = n.next
	}
	return nil
}

// Floor returns the entry with the largest (key, val) whose key is <= key,
// or ok=false when every key exceeds key.
func (t *Tree) Floor(key float64) (Entry, bool, error) {
	key = t.codec.roundKey(key)
	return t.floorAt(t.root, t.height, key)
}

func (t *Tree) floorAt(id pager.PageID, height int, key float64) (Entry, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return Entry{}, false, err
	}
	if n.leaf {
		i := upperBound(n.entries, key, math.MaxUint64)
		if i == 0 {
			return Entry{}, false, nil
		}
		return n.entries[i-1], true, nil
	}
	for ci := childIndex(n, key, math.MaxUint64); ci >= 0; ci-- {
		e, ok, err := t.floorAt(n.kids[ci], height-1, key)
		if err != nil {
			return Entry{}, false, err
		}
		if ok {
			return e, true, nil
		}
	}
	return Entry{}, false, nil
}

// Max returns the largest entry, or ok=false when the tree is empty.
func (t *Tree) Max() (Entry, bool, error) {
	return t.Floor(math.Inf(1))
}

// Min returns the smallest entry, or ok=false when the tree is empty.
func (t *Tree) Min() (Entry, bool, error) {
	id := t.root
	height := t.height
	for height > 1 {
		n, err := t.readNode(id)
		if err != nil {
			return Entry{}, false, err
		}
		id = n.kids[0]
		height--
	}
	for id != pager.NilPage {
		n, err := t.readNode(id)
		if err != nil {
			return Entry{}, false, err
		}
		if len(n.entries) > 0 {
			return n.entries[0], true, nil
		}
		id = n.next
	}
	return Entry{}, false, nil
}

// Destroy frees every page of the tree, atomically on a batching store;
// the tree must not be used after.
func (t *Tree) Destroy() error {
	return pager.RunBatch(t.store, func() error { return t.destroy(t.root, t.height) })
}

func (t *Tree) destroy(id pager.PageID, height int) error {
	if height > 1 {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for _, kid := range n.kids {
			if err := t.destroy(kid, height-1); err != nil {
				return err
			}
		}
	}
	return t.store.Free(id)
}

// CheckInvariants walks the whole tree verifying structural invariants:
// composite ordering, separator consistency, and entry count. It is
// exported for tests.
func (t *Tree) CheckInvariants() error {
	loK, loV := math.Inf(-1), uint64(0)
	hiK, hiV := math.Inf(1), uint64(math.MaxUint64)
	count, err := t.check(t.root, t.height, loK, loV, hiK, hiV)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("bptree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}

// cmpKV compares composites (a, av) and (b, bv).
func cmpKV(a float64, av uint64, b float64, bv uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case av < bv:
		return -1
	case av > bv:
		return 1
	default:
		return 0
	}
}

func (t *Tree) check(id pager.PageID, height int, loK float64, loV uint64, hiK float64, hiV uint64) (int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.leaf {
		if height != 1 {
			return 0, fmt.Errorf("bptree: leaf at height %d", height)
		}
		prevK, prevV := math.Inf(-1), uint64(0)
		for _, e := range n.entries {
			if cmpKV(e.Key, e.Val, prevK, prevV) < 0 {
				return 0, fmt.Errorf("bptree: leaf %d not sorted", id)
			}
			if cmpKV(e.Key, e.Val, loK, loV) < 0 || cmpKV(e.Key, e.Val, hiK, hiV) > 0 {
				return 0, fmt.Errorf("bptree: leaf %d entry (%v,%d) outside separators", id, e.Key, e.Val)
			}
			prevK, prevV = e.Key, e.Val
		}
		return len(n.entries), nil
	}
	if len(n.kids) != len(n.keys)+1 || len(n.vals) != len(n.keys) {
		return 0, fmt.Errorf("bptree: node %d malformed (%d kids, %d keys, %d vals)",
			id, len(n.kids), len(n.keys), len(n.vals))
	}
	total := 0
	for i, kid := range n.kids {
		cloK, cloV := loK, loV
		chiK, chiV := hiK, hiV
		if i > 0 {
			cloK, cloV = n.keys[i-1], n.vals[i-1]
		}
		if i < len(n.keys) {
			chiK, chiV = n.keys[i], n.vals[i]
		}
		if cmpKV(cloK, cloV, chiK, chiV) > 0 {
			return 0, fmt.Errorf("bptree: node %d separators out of order", id)
		}
		c, err := t.check(kid, height-1, cloK, cloV, chiK, chiV)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
