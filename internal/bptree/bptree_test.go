package bptree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/pager"
)

func newTree(t *testing.T, pageSize int, codec Codec) (*Tree, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(pageSize)
	tr, err := New(st, Config{Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func TestCapacities(t *testing.T) {
	tr, _ := newTree(t, 4096, Compact)
	// (4096-12)/12 = 340: the paper's B=341 modulo the page header.
	if tr.LeafCap() != 340 {
		t.Fatalf("compact leaf cap = %d, want 340", tr.LeafCap())
	}
	tw, _ := newTree(t, 4096, Wide)
	if tw.LeafCap() != 170 {
		t.Fatalf("wide leaf cap = %d, want 170", tw.LeafCap())
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, 256, Wide)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Entry{Key: float64(i), Val: uint64(i), Aux: float64(i) / 2}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []Entry
	if err := tr.Range(10, 19, func(e Entry) bool { got = append(got, e); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range returned %d entries, want 10", len(got))
	}
	for i, e := range got {
		if e.Key != float64(10+i) || e.Val != uint64(10+i) || e.Aux != float64(10+i)/2 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 256, Wide)
	for i := 0; i < 50; i++ {
		_ = tr.Insert(Entry{Key: float64(i), Val: uint64(i)})
	}
	n := 0
	_ = tr.Range(0, 49, func(Entry) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _ := newTree(t, 256, Wide)
	// Many duplicates, enough to span multiple leaves.
	for i := 0; i < 200; i++ {
		if err := tr.Insert(Entry{Key: 7, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		_ = tr.Insert(Entry{Key: float64(i), Val: 1000 + uint64(i)})
	}
	seen := map[uint64]bool{}
	_ = tr.Range(7, 7, func(e Entry) bool { seen[e.Val] = true; return true })
	if len(seen) != 201 { // 200 dups + the i=7 single
		t.Fatalf("found %d entries with key 7, want 201", len(seen))
	}
	// Delete each duplicate by value, including ones deep among equals.
	for i := 0; i < 200; i++ {
		if err := tr.Delete(7, uint64(i)); err != nil {
			t.Fatalf("delete dup %d: %v", i, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after deleting dup %d: %v", i, err)
		}
	}
	count := 0
	_ = tr.Range(7, 7, func(Entry) bool { count++; return true })
	if count != 1 {
		t.Fatalf("after deleting dups, %d entries with key 7 remain", count)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr, _ := newTree(t, 256, Wide)
	_ = tr.Insert(Entry{Key: 1, Val: 1})
	if err := tr.Delete(2, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := tr.Delete(1, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("matching key wrong val: err = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Fatal("failed delete changed Len")
	}
}

// Randomized differential test against a sorted reference slice.
func TestRandomOpsAgainstReference(t *testing.T) {
	type kv struct {
		k float64
		v uint64
	}
	for _, pageSize := range []int{256, 512} {
		tr, st := newTree(t, pageSize, Wide)
		rng := rand.New(rand.NewSource(99))
		var ref []kv
		nextVal := uint64(0)
		for op := 0; op < 6000; op++ {
			switch {
			case len(ref) == 0 || rng.Float64() < 0.6:
				k := math.Floor(rng.Float64()*500) / 2 // coarse keys force duplicates
				v := nextVal
				nextVal++
				if err := tr.Insert(Entry{Key: k, Val: v}); err != nil {
					t.Fatal(err)
				}
				ref = append(ref, kv{k, v})
			default:
				i := rng.Intn(len(ref))
				if err := tr.Delete(ref[i].k, ref[i].v); err != nil {
					t.Fatalf("op %d: delete (%v,%d): %v", op, ref[i].k, ref[i].v, err)
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if op%500 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
		}
		// Compare several random ranges.
		for trial := 0; trial < 50; trial++ {
			lo := rng.Float64() * 250
			hi := lo + rng.Float64()*100
			want := map[uint64]bool{}
			for _, e := range ref {
				if e.k >= lo && e.k <= hi {
					want[e.v] = true
				}
			}
			got := map[uint64]bool{}
			keysSorted := true
			prev := math.Inf(-1)
			_ = tr.Range(lo, hi, func(e Entry) bool {
				got[e.Val] = true
				if e.Key < prev {
					keysSorted = false
				}
				prev = e.Key
				return true
			})
			if !keysSorted {
				t.Fatal("range not sorted")
			}
			if len(got) != len(want) {
				t.Fatalf("range [%v,%v]: got %d, want %d", lo, hi, len(got), len(want))
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("range missing val %d", v)
				}
			}
		}
		_ = st
	}
}

func TestDrainToEmpty(t *testing.T) {
	tr, st := newTree(t, 256, Wide)
	const N = 2000
	for i := 0; i < N; i++ {
		_ = tr.Insert(Entry{Key: float64(i % 37), Val: uint64(i)})
	}
	pagesFull := st.PagesInUse()
	for i := 0; i < N; i++ {
		if err := tr.Delete(float64(i%37), uint64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All but the root page must have been reclaimed.
	if st.PagesInUse() != 1 {
		t.Fatalf("pages in use after drain = %d (was %d), want 1", st.PagesInUse(), pagesFull)
	}
	// The tree must still work.
	_ = tr.Insert(Entry{Key: 5, Val: 5})
	n := 0
	_ = tr.Range(0, 10, func(Entry) bool { n++; return true })
	if n != 1 {
		t.Fatal("tree unusable after drain")
	}
}

func TestMin(t *testing.T) {
	tr, _ := newTree(t, 256, Wide)
	if _, ok, _ := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	for _, k := range []float64{5, 3, 9, 1, 7} {
		_ = tr.Insert(Entry{Key: k, Val: uint64(k)})
	}
	e, ok, err := tr.Min()
	if err != nil || !ok || e.Key != 1 {
		t.Fatalf("Min = %+v ok=%v err=%v", e, ok, err)
	}
}

func TestDestroyFreesAllPages(t *testing.T) {
	tr, st := newTree(t, 256, Wide)
	for i := 0; i < 3000; i++ {
		_ = tr.Insert(Entry{Key: rand.Float64() * 1000, Val: uint64(i)})
	}
	if st.PagesInUse() < 10 {
		t.Fatalf("expected a multi-page tree, got %d pages", st.PagesInUse())
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() != 0 {
		t.Fatalf("pages in use after Destroy = %d", st.PagesInUse())
	}
}

func TestCompactCodecRounding(t *testing.T) {
	tr, _ := newTree(t, 4096, Compact)
	k := 1234.5678901 // not representable in float32
	if err := tr.Insert(Entry{Key: k, Val: 1}); err != nil {
		t.Fatal(err)
	}
	// Delete with the same unrounded key must still find the entry.
	if err := tr.Delete(k, 1); err != nil {
		t.Fatalf("delete with unrounded key: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatal("entry not deleted")
	}
}

// Query cost must stay logarithmic: O(log_B n + output/B) page reads.
func TestRangeIOCost(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := New(st, Config{Codec: Compact})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const N = 200000
	for i := 0; i < N; i++ {
		_ = tr.Insert(Entry{Key: rng.Float64() * 1e6, Val: uint64(i)})
	}
	if tr.Height() > 3 {
		t.Fatalf("height %d for N=%d, B=%d", tr.Height(), N, tr.LeafCap())
	}
	before := st.Stats()
	n := 0
	_ = tr.Range(500000, 501000, func(Entry) bool { n++; return true })
	reads := st.Stats().Sub(before).Reads
	// Output is ~200 entries -> ~1-3 leaves, plus height-1 internal reads.
	if reads > int64(tr.Height()+4) {
		t.Fatalf("range cost %d reads for %d results (height %d)", reads, n, tr.Height())
	}
}

// Entries inserted in sorted order (the common pattern for b-coordinates
// drifting forward in time) must keep space linear.
func TestSortedInsertSpace(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, _ := New(st, Config{Codec: Compact})
	const N = 100000
	for i := 0; i < N; i++ {
		_ = tr.Insert(Entry{Key: float64(i), Val: uint64(i)})
	}
	// Worst case for sorted inserts is ~2x minimum pages (half-full leaves).
	minPages := N / tr.LeafCap()
	if got := st.PagesInUse(); got > 3*minPages {
		t.Fatalf("space %d pages, want <= %d", got, 3*minPages)
	}
}

// Fuzz the key distribution: adversarially clustered keys.
func TestClusteredKeys(t *testing.T) {
	tr, _ := newTree(t, 512, Wide)
	rng := rand.New(rand.NewSource(3))
	var keys []float64
	for i := 0; i < 3000; i++ {
		base := float64(rng.Intn(5)) * 1000
		k := base + rng.Float64()*0.001
		keys = append(keys, k)
		if err := tr.Insert(Entry{Key: k, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(keys)
	count := 0
	_ = tr.Range(math.Inf(-1), math.Inf(1), func(Entry) bool { count++; return true })
	if count != len(keys) {
		t.Fatalf("full scan found %d, want %d", count, len(keys))
	}
}
