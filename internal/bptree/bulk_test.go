package bptree

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/pager"
)

// scan collects the full contents of a tree in (key, val) order.
func scan(t *testing.T, tr *Tree) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.Range(math.Inf(-1), math.Inf(1), func(e Entry) bool { out = append(out, e); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BulkLoadSorted must build exactly the tree BulkLoad builds, without the
// internal sort, for both codecs.
func TestBulkLoadSortedMatchesBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, codec := range []Codec{Wide, Compact} {
		for _, n := range []int{0, 1, 339, 5000} {
			es := make([]Entry, n)
			for i := range es {
				es[i] = Entry{Key: rng.Float64() * 100, Val: uint64(rng.Intn(1 << 20)), Aux: rng.Float64()}
			}
			ref, err := New(pager.NewMemStore(4096), Config{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.BulkLoad(es, 0); err != nil {
				t.Fatal(err)
			}
			// Pre-round and pre-sort, as a dataset generator would.
			sorted := make([]Entry, n)
			for i, e := range es {
				sorted[i] = Entry{Key: codec.roundKey(e.Key), Val: e.Val, Aux: codec.roundKey(e.Aux)}
			}
			SortEntries(sorted)
			tr, err := New(pager.NewMemStore(4096), Config{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BulkLoadSorted(sorted, 0); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("codec=%v n=%d: %v", codec, n, err)
			}
			if !sameEntries(scan(t, ref), scan(t, tr)) {
				t.Fatalf("codec=%v n=%d: sorted bulk load diverges from BulkLoad", codec, n)
			}
			if ref.Height() != tr.Height() {
				t.Fatalf("codec=%v n=%d: height %d vs %d", codec, n, ref.Height(), tr.Height())
			}
		}
	}
}

func TestBulkLoadSortedRejectsBadInput(t *testing.T) {
	tr, _ := New(pager.NewMemStore(4096), Config{Codec: Wide})
	if err := tr.Insert(Entry{Key: 7, Val: 7}); err != nil {
		t.Fatal(err)
	}
	unsorted := []Entry{{Key: 2, Val: 0}, {Key: 1, Val: 0}}
	if err := tr.BulkLoadSorted(unsorted, 0); err == nil {
		t.Fatal("unsorted input accepted")
	}
	// The failed call must not have touched the tree.
	if got := scan(t, tr); len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("tree modified by rejected BulkLoadSorted: %v", got)
	}

	ctr, _ := New(pager.NewMemStore(4096), Config{Codec: Compact})
	offPrecision := []Entry{{Key: 1.0000000001, Val: 0}}
	if err := ctr.BulkLoadSorted(offPrecision, 0); err == nil {
		t.Fatal("key off codec precision accepted")
	}
}

// Fill-factor sweep: at 0.7, 0.9 and 1.0 fill the bulk-loaded tree stays
// balanced (its height matches the packing arithmetic), keeps every
// entry, and accepts subsequent inserts without violating invariants.
func TestBulkLoadFillFactorSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: rng.Float64() * 1000, Val: uint64(i), Aux: rng.Float64()}
	}
	for _, codec := range []Codec{Wide, Compact} {
		for _, fill := range []float64{0.7, 0.9, 1.0} {
			tr, err := New(pager.NewMemStore(4096), Config{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BulkLoad(es, fill); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("codec=%v fill=%v: %v", codec, fill, err)
			}
			if tr.Len() != n {
				t.Fatalf("codec=%v fill=%v: Len=%d", codec, fill, tr.Len())
			}
			// Balance: a packed tree's height is the packing arithmetic's
			// height, within one level.
			perLeaf := int(fill * float64(tr.leafCap))
			wantLeaves := (n + perLeaf - 1) / perLeaf
			wantHeight := 1
			perInt := int(fill * float64(tr.intCap))
			for level := wantLeaves; level > 1; level = (level + perInt - 1) / perInt {
				wantHeight++
			}
			if tr.Height() != wantHeight {
				t.Fatalf("codec=%v fill=%v: height %d, packing predicts %d", codec, fill, tr.Height(), wantHeight)
			}
			// The tree stays fully mutable, even at fill 1.0 where every
			// leaf is one insert away from splitting.
			for i := 0; i < 500; i++ {
				e := Entry{Key: rng.Float64() * 1000, Val: uint64(n + i)}
				if err := tr.Insert(e); err != nil {
					t.Fatalf("codec=%v fill=%v: insert %d: %v", codec, fill, i, err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("codec=%v fill=%v after inserts: %v", codec, fill, err)
			}
			if tr.Len() != n+500 {
				t.Fatalf("codec=%v fill=%v: Len=%d after inserts", codec, fill, tr.Len())
			}
		}
	}
}

// Get must agree with the decoding Range path on hits and misses, for
// both codecs, on bulk-loaded and incrementally built trees.
func TestGetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 3000
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: rng.Float64() * 50, Val: uint64(i), Aux: rng.Float64()}
	}
	for _, codec := range []Codec{Wide, Compact} {
		inc, _ := New(pager.NewMemStore(4096), Config{Codec: codec})
		for _, e := range es {
			if err := inc.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		bulk, _ := New(pager.NewBuffered(pager.NewMemStore(4096), 64), Config{Codec: codec})
		if err := bulk.BulkLoad(es, 0); err != nil {
			t.Fatal(err)
		}
		for _, tr := range []*Tree{inc, bulk} {
			for i := 0; i < 500; i++ {
				e := es[rng.Intn(n)]
				got, ok, err := tr.Get(e.Key, e.Val)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("codec=%v: Get(%v,%d) missed a present entry", codec, e.Key, e.Val)
				}
				if got.Val != e.Val || got.Key != codec.roundKey(e.Key) {
					t.Fatalf("codec=%v: Get returned %+v for %+v", codec, got, e)
				}
				if _, ok, _ := tr.Get(e.Key, uint64(n)+uint64(i)+1); ok {
					t.Fatalf("codec=%v: Get hit an absent composite", codec)
				}
			}
		}
	}
}

// RangeAppend must return exactly what Range yields, and reuse the
// caller's buffer.
func TestRangeAppendMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, codec := range []Codec{Wide, Compact} {
		tr, _ := New(pager.NewMemStore(4096), Config{Codec: codec})
		for i := 0; i < 4000; i++ {
			if err := tr.Insert(Entry{Key: rng.Float64() * 100, Val: uint64(i), Aux: rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]Entry, 0, 4096)
		for i := 0; i < 100; i++ {
			lo := rng.Float64() * 100
			hi := lo + rng.Float64()*20
			var want []Entry
			if err := tr.Range(lo, hi, func(e Entry) bool { want = append(want, e); return true }); err != nil {
				t.Fatal(err)
			}
			got, err := tr.RangeAppend(buf[:0], lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if !sameEntries(want, got) {
				t.Fatalf("codec=%v [%v,%v]: RangeAppend %d entries, Range %d", codec, lo, hi, len(got), len(want))
			}
			buf = got
		}
	}
}

// Ceil and Pred must agree with the decoding reference paths (a
// first-hit Range for the successor, Floor for the predecessor) on
// random probes, including probes below the minimum, above the maximum,
// and after a deletion wave that empties leaf tails — the cases that
// exercise Ceil's next-leaf hop and Pred's fallback descent.
func TestCeilPredDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, codec := range []Codec{Wide, Compact} {
		tr, _ := New(pager.NewMemStore(512), Config{Codec: codec})
		live := make([]Entry, 0, 3000)
		for i := 0; i < 3000; i++ {
			e := Entry{Key: rng.Float64()*200 - 50, Val: uint64(i), Aux: rng.Float64()}
			if err := tr.Insert(e); err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
		}
		check := func(stage string) {
			for i := 0; i < 400; i++ {
				key := rng.Float64()*320 - 110 // well past both ends
				var wantC Entry
				wantCok := false
				if err := tr.Range(key, math.Inf(1), func(e Entry) bool {
					wantC, wantCok = e, true
					return false
				}); err != nil {
					t.Fatal(err)
				}
				gotC, okC, err := tr.Ceil(key)
				if err != nil {
					t.Fatal(err)
				}
				if okC != wantCok || gotC != wantC {
					t.Fatalf("codec=%v %s: Ceil(%v) = %+v,%v; reference %+v,%v",
						codec, stage, key, gotC, okC, wantC, wantCok)
				}
				wantP, wantPok, err := tr.Floor(key)
				if err != nil {
					t.Fatal(err)
				}
				gotP, okP, err := tr.Pred(key)
				if err != nil {
					t.Fatal(err)
				}
				if okP != wantPok || gotP != wantP {
					t.Fatalf("codec=%v %s: Pred(%v) = %+v,%v; Floor %+v,%v",
						codec, stage, key, gotP, okP, wantP, wantPok)
				}
			}
		}
		check("full")
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		for _, e := range live[:2400] {
			if err := tr.Delete(e.Key, e.Val); err != nil {
				t.Fatal(err)
			}
		}
		check("after deletes")
	}
}
