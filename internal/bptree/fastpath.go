// Zero-allocation read path. Point lookups and range scans descend the
// tree over raw page images obtained through pager.ViewBytes — binary
// searching the encoded separators and entries in place instead of
// decoding every node into a fresh *node — so a steady-state query whose
// pages sit in the buffer pool performs no heap allocation at all. The
// AllocsPerRun gates in alloc_test.go hold this path to exactly zero
// allocs per op; the decoding Range/Floor path in bptree.go remains the
// reference implementation it is differential-tested against.
package bptree

import (
	"encoding/binary"
	"fmt"
	"math"

	"mobidx/internal/pager"
)

// checkImage bounds-checks a raw page image of the expected node type and
// returns its entry count. Same guarantees as decode: a corrupted page
// yields a typed error wrapping pager.ErrPageCorrupt, never a panic.
func (t *Tree) checkImage(d []byte, id pager.PageID, wantLeaf bool) (int, error) {
	if len(d) < headerSize+4 {
		return 0, fmt.Errorf("bptree: page %d: %d bytes, want >= %d: %w",
			id, len(d), headerSize+4, pager.ErrPageCorrupt)
	}
	want := byte(typeInternal)
	if wantLeaf {
		want = typeLeaf
	}
	if d[0] != want {
		return 0, fmt.Errorf("bptree: page %d: node type %d, want %d: %w",
			id, d[0], want, pager.ErrPageCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(d[2:4]))
	var cap int
	if wantLeaf {
		cap = (len(d) - headerSize) / t.codec.leafEntrySize()
	} else {
		cap = (len(d) - headerSize - 4) / t.codec.intEntrySize()
	}
	if count > cap {
		return 0, fmt.Errorf("bptree: page %d: count %d exceeds page capacity %d: %w",
			id, count, cap, pager.ErrPageCorrupt)
	}
	return count, nil
}

// sepAt decodes separator i's composite (key, val) from an internal page
// image.
func (t *Tree) sepAt(d []byte, i int) (float64, uint64) {
	if t.codec == Compact {
		off := headerSize + 4 + i*12
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(d[off:]))),
			uint64(binary.LittleEndian.Uint32(d[off+4:]))
	}
	off := headerSize + 4 + i*20
	return math.Float64frombits(binary.LittleEndian.Uint64(d[off:])),
		binary.LittleEndian.Uint64(d[off+8:])
}

// childAt decodes child slot ci (0..count) from an internal page image.
func (t *Tree) childAt(d []byte, ci int) pager.PageID {
	if ci == 0 {
		return pager.PageID(binary.LittleEndian.Uint32(d[headerSize:]))
	}
	es := t.codec.intEntrySize()
	off := headerSize + 4 + (ci-1)*es + es - 4
	return pager.PageID(binary.LittleEndian.Uint32(d[off:]))
}

// imageChildIndex is childIndex over an internal page image: the first
// child whose separator exceeds (k, v); composites equal to a separator
// descend right of it.
func (t *Tree) imageChildIndex(d []byte, count int, k float64, v uint64) int {
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		sk, sv := t.sepAt(d, mid)
		if sk < k || (sk == k && sv <= v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafKV decodes leaf entry i's composite (key, val) from a page image.
func (t *Tree) leafKV(d []byte, i int) (float64, uint64) {
	if t.codec == Compact {
		off := headerSize + i*12
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(d[off:]))),
			uint64(binary.LittleEndian.Uint32(d[off+8:]))
	}
	off := headerSize + i*24
	return math.Float64frombits(binary.LittleEndian.Uint64(d[off:])),
		binary.LittleEndian.Uint64(d[off+16:])
}

// imageLowerBound is lowerBound over a leaf page image: the first index
// whose entry is >= (k, v).
func (t *Tree) imageLowerBound(d []byte, count int, k float64, v uint64) int {
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		ek, ev := t.leafKV(d, mid)
		if ek < k || (ek == k && ev < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descendToLeaf walks internal levels toward the leaf that would hold
// composite (k, v), over raw page images.
func (t *Tree) descendToLeaf(k float64, v uint64) (pager.PageID, error) {
	id := t.root
	for h := t.height; h > 1; h-- {
		d, err := pager.ViewBytes(t.store, id)
		if err != nil {
			return pager.NilPage, err
		}
		count, err := t.checkImage(d, id, false)
		if err != nil {
			return pager.NilPage, err
		}
		kid := t.childAt(d, t.imageChildIndex(d, count, k, v))
		if kid == pager.NilPage {
			return pager.NilPage, fmt.Errorf("bptree: page %d: nil child pointer: %w", id, pager.ErrPageCorrupt)
		}
		id = kid
	}
	return id, nil
}

// Get returns the entry with exactly the given (key, val) composite, in
// one root-to-leaf descent over raw page images: the steady-state point
// query performs zero heap allocations when the path is resident in the
// buffer pool. The key is compared after codec rounding.
func (t *Tree) Get(key float64, val uint64) (Entry, bool, error) {
	key = t.codec.roundKey(key)
	id, err := t.descendToLeaf(key, val)
	if err != nil {
		return Entry{}, false, err
	}
	d, err := pager.ViewBytes(t.store, id)
	if err != nil {
		return Entry{}, false, err
	}
	count, err := t.checkImage(d, id, true)
	if err != nil {
		return Entry{}, false, err
	}
	i := t.imageLowerBound(d, count, key, val)
	if i >= count {
		return Entry{}, false, nil
	}
	ek, ev := t.leafKV(d, i)
	if ek != key || ev != val {
		return Entry{}, false, nil
	}
	es := t.codec.leafEntrySize()
	return t.decodeEntry(d[headerSize+i*es : headerSize+(i+1)*es]), true, nil
}

// Ceil returns the smallest entry whose key is >= key, or ok=false when
// every key is below it. One root-to-leaf descent over raw page images
// (plus a next-leaf hop when the target leaf's tail was deleted): the
// successor probe kinetic certificate scheduling leans on, zero-alloc
// when the path is pool-resident.
func (t *Tree) Ceil(key float64) (Entry, bool, error) {
	key = t.codec.roundKey(key)
	id, err := t.descendToLeaf(key, 0)
	if err != nil {
		return Entry{}, false, err
	}
	for id != pager.NilPage {
		d, err := pager.ViewBytes(t.store, id)
		if err != nil {
			return Entry{}, false, err
		}
		count, err := t.checkImage(d, id, true)
		if err != nil {
			return Entry{}, false, err
		}
		if i := t.imageLowerBound(d, count, key, 0); i < count {
			es := t.codec.leafEntrySize()
			return t.decodeEntry(d[headerSize+i*es : headerSize+(i+1)*es]), true, nil
		}
		id = pager.PageID(binary.LittleEndian.Uint32(d[4:8]))
	}
	return Entry{}, false, nil
}

// imageUpperBoundKey is the first leaf index whose key exceeds k.
func (t *Tree) imageUpperBoundKey(d []byte, count int, k float64) int {
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if ek, _ := t.leafKV(d, mid); ek <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pred returns the entry with the largest (key, val) whose key is <= key,
// or ok=false when every key exceeds it — Floor over raw page images, the
// predecessor probe twin of Ceil. Leaves carry no back-pointers, so the
// descent remembers the deepest left sibling subtree and walks its right
// spine when the target leaf holds nothing at or below the key.
func (t *Tree) Pred(key float64) (Entry, bool, error) {
	key = t.codec.roundKey(key)
	id := t.root
	fallback := pager.NilPage
	fallbackH := 0
	for h := t.height; h > 1; h-- {
		d, err := pager.ViewBytes(t.store, id)
		if err != nil {
			return Entry{}, false, err
		}
		count, err := t.checkImage(d, id, false)
		if err != nil {
			return Entry{}, false, err
		}
		ci := t.imageChildIndex(d, count, key, math.MaxUint64)
		if ci > 0 {
			fallback = t.childAt(d, ci-1)
			fallbackH = h - 1
		}
		id = t.childAt(d, ci)
		if id == pager.NilPage {
			return Entry{}, false, fmt.Errorf("bptree: page %d: nil child pointer: %w", id, pager.ErrPageCorrupt)
		}
	}
	d, err := pager.ViewBytes(t.store, id)
	if err != nil {
		return Entry{}, false, err
	}
	count, err := t.checkImage(d, id, true)
	if err != nil {
		return Entry{}, false, err
	}
	if i := t.imageUpperBoundKey(d, count, key); i > 0 {
		es := t.codec.leafEntrySize()
		return t.decodeEntry(d[headerSize+(i-1)*es : headerSize+i*es]), true, nil
	}
	if fallback == pager.NilPage {
		return Entry{}, false, nil
	}
	id = fallback
	for h := fallbackH; h > 1; h-- {
		d, err := pager.ViewBytes(t.store, id)
		if err != nil {
			return Entry{}, false, err
		}
		count, err := t.checkImage(d, id, false)
		if err != nil {
			return Entry{}, false, err
		}
		id = t.childAt(d, count)
		if id == pager.NilPage {
			return Entry{}, false, fmt.Errorf("bptree: page %d: nil child pointer: %w", id, pager.ErrPageCorrupt)
		}
	}
	d, err = pager.ViewBytes(t.store, id)
	if err != nil {
		return Entry{}, false, err
	}
	count, err = t.checkImage(d, id, true)
	if err != nil {
		return Entry{}, false, err
	}
	if count == 0 {
		return Entry{}, false, nil
	}
	es := t.codec.leafEntrySize()
	return t.decodeEntry(d[headerSize+(count-1)*es : headerSize+count*es]), true, nil
}

// RangeAppend appends every entry with lo <= key <= hi to dst, in (key,
// val) order, and returns the extended slice. It is Range with a
// caller-owned result buffer: when dst has capacity for the answer and
// the scanned path is pool-resident, the call performs zero heap
// allocations. Keys are compared after codec rounding.
func (t *Tree) RangeAppend(dst []Entry, lo, hi float64) ([]Entry, error) {
	lo = t.codec.roundKey(lo)
	hi = t.codec.roundKey(hi)
	id, err := t.descendToLeaf(lo, 0)
	if err != nil {
		return dst, err
	}
	for id != pager.NilPage {
		d, err := pager.ViewBytes(t.store, id)
		if err != nil {
			return dst, err
		}
		count, err := t.checkImage(d, id, true)
		if err != nil {
			return dst, err
		}
		es := t.codec.leafEntrySize()
		for i := t.imageLowerBound(d, count, lo, 0); i < count; i++ {
			e := t.decodeEntry(d[headerSize+i*es : headerSize+(i+1)*es])
			if e.Key > hi {
				return dst, nil
			}
			dst = append(dst, e)
		}
		id = pager.PageID(binary.LittleEndian.Uint32(d[4:8]))
	}
	return dst, nil
}
