package bptree

import (
	"errors"
	"math/rand"
	"testing"

	"mobidx/internal/pager"
)

// fuzzPageSize is small so fuzz inputs stay short while still allowing
// multi-entry nodes.
const fuzzPageSize = 256

// validPages encodes genuine leaf and internal pages for both codecs to
// seed the fuzzer with structurally interesting inputs.
func validPages(t interface{ Fatal(...any) }) [][]byte {
	var out [][]byte
	for _, codec := range []Codec{Wide, Compact} {
		store := pager.NewMemStore(fuzzPageSize)
		tr, err := New(store, Config{Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if err := tr.Insert(Entry{Key: float64(i % 17), Val: uint64(i), Aux: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Walk every live page: the store is small, ids are dense.
		for id := pager.PageID(1); ; id++ {
			p, err := store.Read(id)
			if err != nil {
				break
			}
			out = append(out, p.Data)
		}
	}
	return out
}

// FuzzDecodeNode feeds arbitrary (and mutated-valid) page images to the
// node decoder. The only acceptable outcomes are a decoded node or an
// error; any panic is a bug. Run with:
//
//	go test -fuzz=FuzzDecodeNode ./internal/bptree
func FuzzDecodeNode(f *testing.F) {
	for _, page := range validPages(f) {
		f.Add(page)
		// Mutated variants: flipped type byte, inflated count, truncation.
		for _, mut := range []func([]byte){
			func(b []byte) { b[0] ^= 3 },
			func(b []byte) { b[2], b[3] = 0xFF, 0xFF },
			func(b []byte) { b[len(b)/2] ^= 0x80 },
		} {
			cp := append([]byte(nil), page...)
			mut(cp)
			f.Add(cp)
		}
		f.Add(page[:headerSize])
		f.Add(page[:headerSize/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, codec := range []Codec{Wide, Compact} {
			store := pager.NewMemStore(fuzzPageSize)
			tr, err := New(store, Config{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			n, err := tr.decode(&pager.Page{ID: 1, Data: data})
			if err != nil {
				if !errors.Is(err, pager.ErrPageCorrupt) {
					t.Fatalf("decode error outside the corruption taxonomy: %v", err)
				}
				continue
			}
			// A node that decodes must be structurally sane enough for the
			// read paths that follow it.
			if !n.leaf && len(n.kids) != len(n.keys)+1 {
				t.Fatalf("decoded internal node with %d kids, %d keys", len(n.kids), len(n.keys))
			}
		}
	})
}

// TestDecodeMutatedPagesNeverPanics is the deterministic slice of the fuzz
// property that runs on every plain `go test`: random single- and
// multi-byte mutations of valid pages must decode or error, never panic.
func TestDecodeMutatedPagesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pages := validPages(t)
	store := pager.NewMemStore(fuzzPageSize)
	trees := map[Codec]*Tree{}
	for _, codec := range []Codec{Wide, Compact} {
		tr, err := New(store, Config{Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		trees[codec] = tr
	}
	for round := 0; round < 5000; round++ {
		page := pages[rng.Intn(len(pages))]
		cp := append([]byte(nil), page...)
		for k := 1 + rng.Intn(4); k > 0; k-- {
			cp[rng.Intn(len(cp))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			cp = cp[:rng.Intn(len(cp)+1)]
		}
		for _, tr := range trees {
			if _, err := tr.decode(&pager.Page{ID: 1, Data: cp}); err != nil &&
				!errors.Is(err, pager.ErrPageCorrupt) {
				t.Fatalf("round %d: error outside taxonomy: %v", round, err)
			}
		}
	}
}

// TestTreeSurvivesCorruptRoot corrupts the root page in the store and
// checks that tree operations return errors instead of panicking.
func TestTreeSurvivesCorruptRoot(t *testing.T) {
	store := pager.NewMemStore(fuzzPageSize)
	tr, err := New(store, Config{Codec: Wide})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(Entry{Key: float64(i), Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	root, err := store.Read(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	root.Data[2], root.Data[3] = 0xFF, 0xFF // absurd entry count
	if err := store.Write(root); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Entry{Key: 1000, Val: 1000}); !errors.Is(err, pager.ErrPageCorrupt) {
		t.Fatalf("insert on corrupt root: %v", err)
	}
	if err := tr.Range(0, 100, func(Entry) bool { return true }); !errors.Is(err, pager.ErrPageCorrupt) {
		t.Fatalf("range on corrupt root: %v", err)
	}
	if err := tr.Delete(5, 5); !errors.Is(err, pager.ErrPageCorrupt) {
		t.Fatalf("delete on corrupt root: %v", err)
	}
}
