package bptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mobidx/internal/pager"
)

// Property: after inserting any batch of keys, a full-range scan returns
// exactly the sorted batch.
func TestQuickFullScanIsSortedBatch(t *testing.T) {
	f := func(keys []float64) bool {
		// Sanitize: drop NaN/Inf, bound magnitude.
		var ks []float64
		for _, k := range keys {
			if math.IsNaN(k) || math.IsInf(k, 0) {
				continue
			}
			ks = append(ks, math.Mod(k, 1e9))
		}
		tr, err := New(pager.NewMemStore(256), Config{Codec: Wide})
		if err != nil {
			return false
		}
		for i, k := range ks {
			if err := tr.Insert(Entry{Key: k, Val: uint64(i)}); err != nil {
				return false
			}
		}
		var got []float64
		_ = tr.Range(math.Inf(-1), math.Inf(1), func(e Entry) bool {
			got = append(got, e.Key)
			return true
		})
		want := append([]float64(nil), ks...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Floor(k) returns the maximum key <= k, or nothing when all
// keys exceed k.
func TestQuickFloor(t *testing.T) {
	f := func(keys []float64, probes []float64) bool {
		tr, err := New(pager.NewMemStore(256), Config{Codec: Wide})
		if err != nil {
			return false
		}
		var ks []float64
		for i, k := range keys {
			if math.IsNaN(k) || math.IsInf(k, 0) {
				continue
			}
			k = math.Mod(k, 1e6)
			ks = append(ks, k)
			if err := tr.Insert(Entry{Key: k, Val: uint64(i)}); err != nil {
				return false
			}
		}
		sort.Float64s(ks)
		for _, p := range probes {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			p = math.Mod(p, 1e6)
			e, ok, err := tr.Floor(p)
			if err != nil {
				return false
			}
			i := sort.SearchFloat64s(ks, p)
			// ks[i-1] <= p < ks[i] (SearchFloat64s finds first >= p; step
			// back over equal keys is unnecessary since equality counts).
			var want float64
			haveWant := false
			if i < len(ks) && ks[i] == p {
				want, haveWant = p, true
			} else if i > 0 {
				want, haveWant = ks[i-1], true
			}
			if ok != haveWant {
				return false
			}
			if ok && e.Key != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFloorBasics(t *testing.T) {
	tr, _ := New(pager.NewMemStore(256), Config{Codec: Wide})
	if _, ok, _ := tr.Floor(5); ok {
		t.Fatal("Floor on empty tree returned ok")
	}
	for _, k := range []float64{10, 20, 30} {
		_ = tr.Insert(Entry{Key: k, Val: uint64(k)})
	}
	cases := []struct {
		probe float64
		want  float64
		ok    bool
	}{
		{5, 0, false},
		{10, 10, true},
		{15, 10, true},
		{30, 30, true},
		{99, 30, true},
	}
	for _, c := range cases {
		e, ok, err := tr.Floor(c.probe)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.ok || (ok && e.Key != c.want) {
			t.Fatalf("Floor(%v) = (%v, %v), want (%v, %v)", c.probe, e.Key, ok, c.want, c.ok)
		}
	}
	// Max is Floor(+inf).
	e, ok, err := tr.Max()
	if err != nil || !ok || e.Key != 30 {
		t.Fatalf("Max = %v %v %v", e, ok, err)
	}
	// Floor across many leaves.
	big, _ := New(pager.NewMemStore(256), Config{Codec: Wide})
	for i := 0; i < 5000; i++ {
		_ = big.Insert(Entry{Key: float64(i * 2), Val: uint64(i)})
	}
	e, ok, _ = big.Floor(4001)
	if !ok || e.Key != 4000 {
		t.Fatalf("Floor(4001) = %v %v", e.Key, ok)
	}
	e, ok, _ = big.Floor(4000)
	if !ok || e.Key != 4000 {
		t.Fatalf("Floor(4000) = %v %v", e.Key, ok)
	}
}

// Property: delete of a previously inserted (key,val) always succeeds and
// removes exactly one entry.
func TestQuickInsertDelete(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(pager.NewMemStore(256), Config{Codec: Wide})
		if err != nil {
			return false
		}
		type kv struct {
			k float64
			v uint64
		}
		var live []kv
		for op := 0; op < int(nOps)+20; op++ {
			if len(live) == 0 || rng.Float64() < 0.55 {
				e := kv{k: math.Floor(rng.Float64() * 40), v: uint64(op)}
				if err := tr.Insert(Entry{Key: e.k, Val: e.v}); err != nil {
					return false
				}
				live = append(live, e)
			} else {
				i := rng.Intn(len(live))
				if err := tr.Delete(live[i].k, live[i].v); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if tr.Len() != len(live) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// BulkLoad must agree with incremental insertion on content and ordering,
// and support subsequent mutation.
func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 5, 340, 341, 10000} {
		tr, err := New(pager.NewMemStore(4096), Config{Codec: Wide})
		if err != nil {
			t.Fatal(err)
		}
		es := make([]Entry, n)
		for i := range es {
			es[i] = Entry{Key: rng.Float64() * 1000, Val: uint64(i), Aux: rng.Float64()}
		}
		if err := tr.BulkLoad(es, 0); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var got []Entry
		_ = tr.Range(math.Inf(-1), math.Inf(1), func(e Entry) bool { got = append(got, e); return true })
		if len(got) != n {
			t.Fatalf("n=%d: scan found %d", n, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].less(got[i-1].Key, got[i-1].Val) {
				t.Fatalf("n=%d: scan out of order at %d", n, i)
			}
		}
		// The tree remains fully mutable.
		if n > 0 {
			if err := tr.Delete(es[0].Key, es[0].Val); err != nil {
				t.Fatalf("n=%d: delete after bulk load: %v", n, err)
			}
			if err := tr.Insert(Entry{Key: -5, Val: 999999}); err != nil {
				t.Fatalf("n=%d: insert after bulk load: %v", n, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d after mutation: %v", n, err)
			}
		}
	}
}

// BulkLoad replaces previous contents and reclaims their pages.
func TestBulkLoadReplaces(t *testing.T) {
	st := pager.NewMemStore(512)
	tr, _ := New(st, Config{Codec: Wide})
	for i := 0; i < 2000; i++ {
		_ = tr.Insert(Entry{Key: float64(i), Val: uint64(i)})
	}
	if err := tr.BulkLoad([]Entry{{Key: 1, Val: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if st.PagesInUse() > 2 {
		t.Fatalf("old pages not reclaimed: %d in use", st.PagesInUse())
	}
}

func TestBulkLoadBadFill(t *testing.T) {
	tr, _ := New(pager.NewMemStore(512), Config{Codec: Wide})
	if err := tr.BulkLoad(nil, 1.5); err == nil {
		t.Fatal("fill > 1 accepted")
	}
	if err := tr.BulkLoad(nil, -0.1); err == nil {
		t.Fatal("negative fill accepted")
	}
}
