package bptree

import (
	"encoding/binary"
	"path/filepath"
	"reflect"
	"testing"

	"mobidx/internal/pager"
)

// encodeMeta packs a tree's Meta into a FileStore user-metadata record.
func encodeMeta(m Meta) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint32(b[0:4], uint32(m.Root))
	binary.LittleEndian.PutUint32(b[4:8], uint32(m.Height))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.Size))
	return b
}

func decodeMeta(b []byte) Meta {
	return Meta{
		Root:   pager.PageID(binary.LittleEndian.Uint32(b[0:4])),
		Height: int(binary.LittleEndian.Uint32(b[4:8])),
		Size:   int(binary.LittleEndian.Uint64(b[8:16])),
	}
}

func collectRange(t *testing.T, tr *Tree, lo, hi float64) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.Range(lo, hi, func(e Entry) bool { out = append(out, e); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTreeFileStoreRoundTrip builds a B+-tree on a FileStore, syncs,
// closes, reopens via OpenFileStore + Attach, and requires the identical
// query result set — the crash-recovery acceptance path, run both with and
// without a ChecksumStore in the stack.
func TestTreeFileStoreRoundTrip(t *testing.T) {
	for _, withChecksum := range []bool{false, true} {
		name := "plain"
		if withChecksum {
			name = "checksummed"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "tree.db")
			fs, err := pager.NewFileStore(path, 512)
			if err != nil {
				t.Fatal(err)
			}
			var store pager.Store = fs
			if withChecksum {
				if store, err = pager.NewChecksumStore(fs); err != nil {
					t.Fatal(err)
				}
			}
			tr, err := New(store, Config{Codec: Wide})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				e := Entry{Key: float64((i * 31) % 97), Val: uint64(i), Aux: float64(i) / 2}
				if err := tr.Insert(e); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i += 3 {
				if err := tr.Delete(float64((i*31)%97), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			want := collectRange(t, tr, 10, 60)
			wantLen := tr.Len()
			if err := fs.SetUserMeta(encodeMeta(tr.Meta())); err != nil {
				t.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := pager.OpenFileStore(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			var store2 pager.Store = re
			if withChecksum {
				if store2, err = pager.NewChecksumStore(re); err != nil {
					t.Fatal(err)
				}
			}
			tr2, err := Attach(store2, Config{Codec: Wide}, decodeMeta(re.UserMeta()))
			if err != nil {
				t.Fatal(err)
			}
			if tr2.Len() != wantLen {
				t.Fatalf("reopened Len = %d, want %d", tr2.Len(), wantLen)
			}
			got := collectRange(t, tr2, 10, 60)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("result set changed across reopen: %d vs %d entries", len(got), len(want))
			}
			if err := tr2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The reopened tree must stay fully mutable.
			if err := tr2.Insert(Entry{Key: 42.5, Val: 999999}); err != nil {
				t.Fatal(err)
			}
			if err := tr2.Delete(42.5, 999999); err != nil {
				t.Fatal(err)
			}
		})
	}
}
