// Persistence metadata for the assembled DualBPlus index: enough to
// reattach the in-memory structure to a store that already holds its
// pages, which is how the sharded serving layer's crash recovery works —
// the WAL replays committed pages into the base store, and Attach rebuilds
// the roots-and-sizes skeleton from a small metadata record the owner kept
// durable alongside the data (see internal/shard's superblock).
package core

import (
	"fmt"
	"sort"

	"mobidx/internal/bptree"
	"mobidx/internal/interval"
	"mobidx/internal/pager"
)

// DualGenMeta captures one rotation generation of a DualBPlus: its epoch
// (which fixes the reference time tref = epoch·period), its motion count,
// and the shape of each of its 3c underlying B+-trees.
type DualGenMeta struct {
	// Epoch is the rotation epoch (floor(T0/period) of every motion the
	// generation holds).
	Epoch int64
	// Size is the number of motions in the generation.
	Size int
	// Pos, Neg and Sub hold, per observation line / subterrain, the
	// persistence metadata of the positive-velocity observation tree, the
	// negative-velocity observation tree, and the interval index's tree.
	// Each slice has exactly C entries.
	Pos, Neg, Sub []bptree.Meta
}

// DualMeta is the full persistence metadata of a DualBPlus index. It is
// valid until the next mutating operation and must be persisted in the
// same atomic batch as the mutation that produced it, or crash recovery
// would pair old roots with new pages.
type DualMeta struct {
	Gens []DualGenMeta
}

// Meta returns the index's current persistence metadata, generations in
// ascending epoch order (deterministic, so serialized forms are
// byte-stable for identical states).
func (d *DualBPlus) Meta() DualMeta {
	epochs := make([]int64, 0, len(d.rot.gens))
	for e := range d.rot.gens {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	m := DualMeta{Gens: make([]DualGenMeta, 0, len(epochs))}
	for _, e := range epochs {
		g := d.rot.gens[e]
		gm := DualGenMeta{
			Epoch: e,
			Size:  g.size,
			Pos:   make([]bptree.Meta, g.cfg.C),
			Neg:   make([]bptree.Meta, g.cfg.C),
			Sub:   make([]bptree.Meta, g.cfg.C),
		}
		for i := 0; i < g.cfg.C; i++ {
			gm.Pos[i] = g.pos[i].Meta()
			gm.Neg[i] = g.neg[i].Meta()
			gm.Sub[i] = g.sub[i].Meta()
		}
		m.Gens = append(m.Gens, gm)
	}
	return m
}

// AttachDualBPlus reattaches a DualBPlus previously built in store (same
// page size, terrain, c and codec) from its Meta, typically after the
// store was recovered by pager.OpenWALStore. Every tree root is read and
// validated, so corrupted or stale metadata surfaces here instead of as a
// wrong answer later.
func AttachDualBPlus(store pager.Store, cfg DualBPlusConfig, m DualMeta) (*DualBPlus, error) {
	d, err := NewDualBPlus(store, cfg)
	if err != nil {
		return nil, err
	}
	cfg = d.cfg // defaults applied (C)
	maxDur := (cfg.Terrain.YMax / float64(cfg.C)) / cfg.Terrain.VMin
	for _, gm := range m.Gens {
		if len(gm.Pos) != cfg.C || len(gm.Neg) != cfg.C || len(gm.Sub) != cfg.C {
			return nil, fmt.Errorf("core: attach: generation %d has %d/%d/%d trees, want %d each",
				gm.Epoch, len(gm.Pos), len(gm.Neg), len(gm.Sub), cfg.C)
		}
		if gm.Size < 0 {
			return nil, fmt.Errorf("core: attach: generation %d size %d", gm.Epoch, gm.Size)
		}
		if _, dup := d.rot.gens[gm.Epoch]; dup {
			return nil, fmt.Errorf("core: attach: duplicate generation epoch %d", gm.Epoch)
		}
		g := &dualBPGen{
			cfg:  cfg,
			tref: float64(gm.Epoch) * d.rot.period,
			h:    cfg.Terrain.YMax / float64(cfg.C),
			size: gm.Size,
			cand: &d.candidates,
		}
		for i := 0; i < cfg.C; i++ {
			p, err := bptree.Attach(store, bptree.Config{Codec: cfg.Codec}, gm.Pos[i])
			if err != nil {
				return nil, fmt.Errorf("core: attach gen %d pos[%d]: %w", gm.Epoch, i, err)
			}
			n, err := bptree.Attach(store, bptree.Config{Codec: cfg.Codec}, gm.Neg[i])
			if err != nil {
				return nil, fmt.Errorf("core: attach gen %d neg[%d]: %w", gm.Epoch, i, err)
			}
			s, err := interval.Attach(store, cfg.Codec, maxDur, gm.Sub[i])
			if err != nil {
				return nil, fmt.Errorf("core: attach gen %d sub[%d]: %w", gm.Epoch, i, err)
			}
			g.pos = append(g.pos, p)
			g.neg = append(g.neg, n)
			g.sub = append(g.sub, s)
		}
		d.rot.gens[gm.Epoch] = g
		d.rot.size += gm.Size
	}
	return d, nil
}
