package core

import (
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// TestDualBPlusAttachRoundTrip builds an index over a WAL-backed store,
// closes and reopens the store (replaying the log), reattaches from Meta,
// and checks every query answers byte-identically — the exact sequence
// the sharded serving layer's crash recovery performs.
func TestDualBPlusAttachRoundTrip(t *testing.T) {
	tr := dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}
	cfg := DualBPlusConfig{Terrain: tr, C: 4, Codec: bptree.Wide}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	wal, err := pager.OpenWALStore(base, log, pager.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewDualBPlus(wal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms []dual.Motion
	for i := 0; i < 300; i++ {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		// Spread updates across two rotation epochs (period = YMax/VMin =
		// 6250) so Attach exercises multi-generation metadata.
		t0 := float64(i % 2 * 7000)
		m := dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), T0: t0, V: v}
		ms = append(ms, m)
	}
	err = pager.RunBatch(wal, func() error {
		for _, m := range ms {
			if err := ix.Insert(m); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := ix.Meta()
	if len(meta.Gens) < 2 {
		t.Fatalf("want >= 2 generations, got %d", len(meta.Gens))
	}

	queries := []dual.MORQuery{
		{Y1: 0, Y2: 1000, T1: 0, T2: 5},
		{Y1: 100, Y2: 300, T1: 10, T2: 40},
		{Y1: 450, Y2: 480, T1: 100, T2: 150},
		{Y1: 700, Y2: 900, T1: 6990, T2: 7060},
	}
	exec := NewExecutor(1)
	var want [][]dual.OID
	for _, q := range queries {
		res, err := ix.QueryParallel(exec, q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Simulated restart: close the WAL, reopen over the surviving base
	// and log, reattach from the metadata snapshot.
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	wal2, err := pager.OpenWALStore(base, pager.NewMemLogFrom(log.Bytes()), pager.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := AttachDualBPlus(wal2, cfg, meta)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != len(ms) {
		t.Fatalf("attached Len = %d, want %d", ix2.Len(), len(ms))
	}
	if ix2.Generations() != len(meta.Gens) {
		t.Fatalf("attached generations = %d, want %d", ix2.Generations(), len(meta.Gens))
	}
	for i, q := range queries {
		res, err := ix2.QueryParallel(exec, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want[i]) {
			t.Fatalf("query %d: %d results after attach, want %d", i, len(res), len(want[i]))
		}
		for j := range res {
			if res[j] != want[i][j] {
				t.Fatalf("query %d: result %d = %d, want %d", i, j, res[j], want[i][j])
			}
		}
	}

	// The attached index stays mutable: delete + reinsert keep working.
	if err := ix2.Delete(ms[0]); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Insert(ms[0]); err != nil {
		t.Fatal(err)
	}

	// Corrupt metadata is rejected at attach time, not query time.
	bad := ix2.Meta()
	bad.Gens[0].Pos[0].Root = 999999
	if _, err := AttachDualBPlus(wal2, cfg, bad); err == nil {
		t.Fatal("attach with bogus root succeeded")
	}
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}
}
