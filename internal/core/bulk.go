// Bulk (re)construction of the assembled indexes. A full reindex — the
// paper's workload after a terrain-wide batch of forced updates, or the
// serving layer refreshing a replica — pays the per-motion descent cost c
// times over in DualBPlus if done with Insert. The BulkLoad entry points
// instead group motions by rotation epoch, materialize every underlying
// tree's entries in memory, sort each slice once, and hand them to the
// structures' bottom-up builders, writing every index page exactly once.
package core

import (
	"slices"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/kdtree"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
	"mobidx/internal/rstar"
)

// reset destroys every live generation, leaving the rotator empty.
func (r *Rotator[M, G]) reset() error {
	for e, g := range r.gens {
		if err := g.Destroy(); err != nil {
			return err
		}
		delete(r.gens, e)
	}
	r.size = 0
	return nil
}

// groupByEpoch partitions motions by their rotation epoch, preserving
// input order within each group.
func (r *Rotator[M, G]) groupByEpoch(ms []M) map[int64][]M {
	groups := make(map[int64][]M)
	for _, m := range ms {
		e := r.epoch(r.updTime(m))
		groups[e] = append(groups[e], m)
	}
	return groups
}

// BulkLoad replaces the index's contents with the given motions using the
// B+-trees' bottom-up builders: per generation, each of the 2c observation
// trees and c interval indexes receives its full entry slice, sorted once,
// and is packed leaf-by-leaf. On a batching store the whole reindex
// commits atomically. The input slice is not modified.
func (d *DualBPlus) BulkLoad(ms []dual.Motion) error {
	for _, m := range ms {
		if err := validateMotion(m, d.cfg.Terrain); err != nil {
			return err
		}
	}
	return pager.RunBatch(d.store, func() error {
		if err := d.rot.reset(); err != nil {
			return err
		}
		for e, group := range d.rot.groupByEpoch(ms) {
			g, err := d.rot.make(float64(e) * d.rot.period)
			if err != nil {
				return err
			}
			if err := g.bulkLoad(group); err != nil {
				return err
			}
			d.rot.gens[e] = g
			d.rot.size += len(group)
		}
		return nil
	})
}

// bulkLoad fills a fresh generation's trees bottom-up from the motions of
// its epoch.
func (g *dualBPGen) bulkLoad(ms []dual.Motion) error {
	c := g.cfg.C
	codec := g.cfg.Codec
	pos := make([][]bptree.Entry, c)
	neg := make([][]bptree.Entry, c)
	sub := make([][]bptree.Entry, c)
	for _, m := range ms {
		for i := 0; i < c; i++ {
			_, b := dual.HoughY(m, g.yr(i))
			e := bptree.Entry{
				Key: codec.RoundKey(b - g.tref),
				Val: uint64(m.OID),
				Aux: codec.RoundKey(m.V),
			}
			if m.V > 0 {
				pos[i] = append(pos[i], e)
			} else {
				neg[i] = append(neg[i], e)
			}
		}
		err := g.eachResidence(m, func(i int, in, out float64) error {
			sub[i] = append(sub[i], bptree.Entry{
				Key: codec.RoundKey(in - g.tref),
				Val: uint64(m.OID),
				Aux: codec.RoundKey(out - g.tref),
			})
			return nil
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < c; i++ {
		bptree.SortEntries(pos[i])
		if err := g.pos[i].BulkLoadSorted(pos[i], 0); err != nil {
			return err
		}
		bptree.SortEntries(neg[i])
		if err := g.neg[i].BulkLoadSorted(neg[i], 0); err != nil {
			return err
		}
		bptree.SortEntries(sub[i])
		if err := g.sub[i].BulkLoadSorted(sub[i], 0); err != nil {
			return err
		}
	}
	g.size = len(ms)
	return nil
}

// QueryAppend answers q like Query but appends the matching OIDs to dst,
// returning the extended slice with the appended tail sorted ascending and
// deduplicated (the same order QueryParallel produces). A serving loop
// that reuses dst's capacity avoids the per-call result-set and seen-map
// allocations Query pays.
func (d *DualBPlus) QueryAppend(dst []dual.OID, q dual.MORQuery) ([]dual.OID, error) {
	d.candidates.Store(0)
	base := len(dst)
	for _, g := range d.rot.Live() {
		if err := g.Query(q, func(id dual.OID) { dst = append(dst, id) }); err != nil {
			return dst, err
		}
	}
	tail := dst[base:]
	slices.Sort(tail)
	return dst[:base+len(slices.Compact(tail))], nil
}

// BulkLoad replaces the index's contents with the given motions, packing
// each generation's two k-d trees with their bottom-up builder. On a
// batching store the reindex commits atomically.
func (k *KDDual) BulkLoad(ms []dual.Motion) error {
	for _, m := range ms {
		if err := validateMotion(m, k.cfg.Terrain); err != nil {
			return err
		}
	}
	return pager.RunBatch(k.store, func() error {
		if err := k.rot.reset(); err != nil {
			return err
		}
		for e, group := range k.rot.groupByEpoch(ms) {
			g, err := k.rot.make(float64(e) * k.rot.period)
			if err != nil {
				return err
			}
			pos := make([]kdtree.Point, 0, len(group))
			neg := make([]kdtree.Point, 0, len(group))
			for _, m := range group {
				p := dual.HoughX(m, g.tref)
				pt := kdtree.Point{X: p.X, Y: p.Y, Val: uint64(m.OID)}
				if m.V > 0 {
					pos = append(pos, pt)
				} else {
					neg = append(neg, pt)
				}
			}
			if err := g.pos.BulkLoad(pos, 0); err != nil {
				return err
			}
			if err := g.neg.BulkLoad(neg, 0); err != nil {
				return err
			}
			g.size = len(group)
			k.rot.gens[e] = g
			k.rot.size += len(group)
		}
		return nil
	})
}

// BulkLoad replaces the index's contents with the given motions, building
// each generation's two partition trees as single static blocks — the
// construction the logarithmic method converges to, without paying its
// amortized rebuilds.
func (p *PartTreeDual) BulkLoad(ms []dual.Motion) error {
	for _, m := range ms {
		if err := validateMotion(m, p.cfg.Terrain); err != nil {
			return err
		}
	}
	if err := p.rot.reset(); err != nil {
		return err
	}
	for e, group := range p.rot.groupByEpoch(ms) {
		g, err := p.rot.make(float64(e) * p.rot.period)
		if err != nil {
			return err
		}
		var pp, np []parttree.Point
		for _, m := range group {
			pt := dual.HoughX(m, g.tref)
			q := parttree.Point{X: pt.X, Y: pt.Y, Val: uint64(m.OID)}
			if m.V > 0 {
				pp = append(pp, q)
			} else {
				np = append(np, q)
			}
		}
		if err := g.pos.BulkLoad(pp); err != nil {
			return err
		}
		if err := g.neg.BulkLoad(np); err != nil {
			return err
		}
		g.size = len(group)
		p.rot.gens[e] = g
		p.rot.size += len(group)
	}
	return nil
}

// BulkLoad replaces the baseline's contents with the given motions via the
// R*-tree's STR packing.
func (r *RStarSeg) BulkLoad(ms []dual.Motion) error {
	items := make([]rstar.Item, len(ms))
	for i, m := range ms {
		if err := validateMotion(m, r.cfg.Terrain); err != nil {
			return err
		}
		seg, err := r.segment(m)
		if err != nil {
			return err
		}
		items[i] = rstar.Item{Rect: seg.Bound(), Val: r.val(m)}
	}
	return r.tree.BulkLoad(items, 0)
}
