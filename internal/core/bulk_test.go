package core

import (
	"math/rand"
	"slices"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// randMotions produces n valid motions whose update times span spread
// epochs of the rotation period, so bulk loading must reconstruct several
// generations.
func randMotions(seed int64, n int, spread float64) []dual.Motion {
	rng := rand.New(rand.NewSource(seed))
	tr := testTerrain
	ms := make([]dual.Motion, n)
	for i := range ms {
		v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
		if rng.Intn(2) == 0 {
			v = -v
		}
		ms[i] = dual.Motion{
			OID: dual.OID(i),
			Y0:  rng.Float64() * tr.YMax,
			T0:  rng.Float64() * spread * tr.TPeriod(),
			V:   v,
		}
	}
	return ms
}

// sortedQuery collects an index's answer as a sorted OID slice.
func sortedQuery(t *testing.T, ix Index1D, q dual.MORQuery) []dual.OID {
	t.Helper()
	var out []dual.OID
	if err := ix.Query(q, func(id dual.OID) { out = append(out, id) }); err != nil {
		t.Fatal(err)
	}
	slices.Sort(out)
	return out
}

func randMOR(rng *rand.Rand, spread float64) dual.MORQuery {
	tr := testTerrain
	y1 := rng.Float64() * tr.YMax
	y2 := y1 + rng.Float64()*(tr.YMax-y1)
	t1 := rng.Float64() * spread * tr.TPeriod()
	t2 := t1 + rng.Float64()*40
	return dual.MORQuery{Y1: y1, Y2: y2, T1: t1, T2: t2}
}

// The bulk-loaded DualBPlus must be answer-identical to the incrementally
// built one — sequentially, through QueryAppend, and through QueryParallel
// at every worker count.
func TestDualBPlusBulkDifferential(t *testing.T) {
	ms := randMotions(41, 2000, 1.5)
	mk := func() *DualBPlus {
		d, err := NewDualBPlus(pager.NewMemStore(1024), DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	inc := mk()
	for _, m := range ms {
		if err := inc.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	bulk := mk()
	if err := bulk.BulkLoad(ms); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != inc.Len() || bulk.Generations() != inc.Generations() {
		t.Fatalf("bulk Len=%d gens=%d, incremental Len=%d gens=%d",
			bulk.Len(), bulk.Generations(), inc.Len(), inc.Generations())
	}
	rng := rand.New(rand.NewSource(42))
	execs := []*Executor{NewExecutor(1), NewExecutor(4)}
	buf := make([]dual.OID, 0, 1024)
	for i := 0; i < 60; i++ {
		q := randMOR(rng, 1.5)
		want := sortedQuery(t, inc, q)
		got := sortedQuery(t, bulk, q)
		if !slices.Equal(want, got) {
			t.Fatalf("query %d: bulk answered %d OIDs, incremental %d", i, len(got), len(want))
		}
		var err error
		buf, err = bulk.QueryAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(want, buf) {
			t.Fatalf("query %d: QueryAppend diverges from Query", i)
		}
		for _, ex := range execs {
			par, err := bulk.QueryParallel(ex, q)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(want, par) {
				t.Fatalf("query %d: QueryParallel(%d workers) diverges", i, ex.Workers())
			}
		}
	}
}

// Bulk loading on top of a populated index must fully replace it.
func TestDualBPlusBulkReplaces(t *testing.T) {
	st := pager.NewMemStore(1024)
	d, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range randMotions(43, 1000, 1.0) {
		if err := d.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	ms2 := randMotions(44, 200, 1.0)
	if err := d.BulkLoad(ms2); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("Len=%d after bulk replace", d.Len())
	}
	fresh, err := NewDualBPlus(pager.NewMemStore(1024), DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.BulkLoad(ms2); err != nil {
		t.Fatal(err)
	}
	// The replaced index must answer like a fresh bulk-loaded twin.
	q := dual.MORQuery{Y1: 0, Y2: testTerrain.YMax, T1: 0, T2: testTerrain.TPeriod()}
	if !slices.Equal(sortedQuery(t, d, q), sortedQuery(t, fresh, q)) {
		t.Fatal("replaced index diverges from fresh bulk load")
	}
	// Updates must keep working after the swap.
	for _, m := range randMotions(45, 100, 1.0) {
		m.OID += 10000
		if err := d.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 300 {
		t.Fatalf("Len=%d after post-bulk inserts", d.Len())
	}
}

// The bulk-loaded KDDual must be answer-identical to the incremental one.
func TestKDDualBulkDifferential(t *testing.T) {
	ms := randMotions(46, 2000, 1.5)
	mk := func() *KDDual {
		k, err := NewKDDual(pager.NewMemStore(1024), KDDualConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	inc := mk()
	for _, m := range ms {
		if err := inc.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	bulk := mk()
	if err := bulk.BulkLoad(ms); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("bulk Len=%d, incremental %d", bulk.Len(), inc.Len())
	}
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 60; i++ {
		q := randMOR(rng, 1.5)
		if !slices.Equal(sortedQuery(t, inc, q), sortedQuery(t, bulk, q)) {
			t.Fatalf("query %d diverges", i)
		}
	}
}

// The bulk-loaded PartTreeDual must be answer-identical to the
// incremental one.
func TestPartTreeDualBulkDifferential(t *testing.T) {
	ms := randMotions(48, 1500, 1.5)
	mk := func() *PartTreeDual {
		p, err := NewPartTreeDual(pager.NewMemStore(1024), PartTreeDualConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	inc := mk()
	for _, m := range ms {
		if err := inc.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	bulk := mk()
	if err := bulk.BulkLoad(ms); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(49))
	for i := 0; i < 40; i++ {
		q := randMOR(rng, 1.5)
		if !slices.Equal(sortedQuery(t, inc, q), sortedQuery(t, bulk, q)) {
			t.Fatalf("query %d diverges", i)
		}
	}
}

// The bulk-loaded RStarSeg baseline must be answer-identical to the
// incremental one.
func TestRStarSegBulkDifferential(t *testing.T) {
	ms := randMotions(50, 2000, 1.0)
	mk := func() *RStarSeg {
		r, err := NewRStarSeg(pager.NewMemStore(1024), RStarSegConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	inc := mk()
	for _, m := range ms {
		if err := inc.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	bulk := mk()
	if err := bulk.BulkLoad(ms); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("bulk Len=%d, incremental %d", bulk.Len(), inc.Len())
	}
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 60; i++ {
		q := randMOR(rng, 1.0)
		if !slices.Equal(sortedQuery(t, inc, q), sortedQuery(t, bulk, q)) {
			t.Fatalf("query %d diverges", i)
		}
	}
}

// A bulk DualBPlus reindex must cost far fewer page I/Os than the same
// contents built with Insert — the serving-layer rebuild this exists for.
func TestDualBPlusBulkIOAdvantage(t *testing.T) {
	ms := randMotions(52, 5000, 0.9)
	incStore := pager.NewMemStore(4096)
	inc, err := NewDualBPlus(incStore, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if err := inc.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	bulkStore := pager.NewMemStore(4096)
	bulk, err := NewDualBPlus(bulkStore, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(ms); err != nil {
		t.Fatal(err)
	}
	incIOs := incStore.Stats().IOs()
	bulkIOs := bulkStore.Stats().IOs()
	if bulkIOs*5 > incIOs {
		t.Fatalf("bulk reindex cost %d I/Os, incremental %d — want >= 5x reduction", bulkIOs, incIOs)
	}
}
