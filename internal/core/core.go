// Package core assembles the paper's one-dimensional mobile-object indexes
// from the substrate packages:
//
//   - DualBPlus — the query-approximation method of §3.5.2: c observation
//     B+-tree indexes over Hough-Y b-coordinates plus c subterrain interval
//     indexes, with queries routed to minimize the enlargement E.
//   - KDDual — the point-access-method approach of §3.5.1: paged k-d trees
//     over Hough-X dual points answering the wedge query of Proposition 1.
//   - RStarSeg — the traditional baseline of §3.1/§5: an R*-tree over
//     trajectory line segments in the (t, y) plane.
//
// All three implement Index1D. Updates follow the paper's model (§2, §3):
// an object's change of motion is a Delete of the old motion followed by an
// Insert of the new one.
//
// DualBPlus and KDDual bound their dual coordinates with the two-index
// rotation scheme of §3.2 (see Rotator): motions are assigned to
// generations by update time, each generation computes dual coordinates
// against its own reference time, and a generation is retired once every
// object has moved on — which the T_period = YMax/VMin forced-update bound
// guarantees happens within one period.
package core

import (
	"fmt"
	"math"

	"mobidx/internal/dual"
)

// Index1D answers one-dimensional MOR queries over a dynamic set of
// linearly moving objects.
type Index1D interface {
	// Insert adds an object's current motion. The motion's speed must lie
	// within the terrain's [VMin, VMax] band (in absolute value).
	Insert(m dual.Motion) error
	// Delete removes a motion previously added with Insert. The exact
	// motion must be passed back (the caller tracks each object's current
	// motion; an update is Delete(old) + Insert(new)).
	Delete(m dual.Motion) error
	// Query reports the OID of every object whose motion places it inside
	// [q.Y1, q.Y2] at some instant in [q.T1, q.T2]. Each matching object
	// is reported exactly once.
	Query(q dual.MORQuery, emit func(dual.OID)) error
	// Len returns the number of indexed objects.
	Len() int
}

// validateMotion checks the "moving object" speed band of §3.
func validateMotion(m dual.Motion, tr dual.Terrain) error {
	return ValidateMotion(m, tr)
}

// ValidateMotion checks m against the terrain's speed band and position
// range — the exact admission test every index constructor in this
// package applies, exported so write tiers in front of an index (ingest)
// can reject a motion before staging it rather than at merge time.
func ValidateMotion(m dual.Motion, tr dual.Terrain) error {
	s := math.Abs(m.V)
	if s < tr.VMin-1e-12 || s > tr.VMax+1e-12 {
		return fmt.Errorf("core: speed %v outside [%v, %v]", m.V, tr.VMin, tr.VMax)
	}
	if m.Y0 < -1e-9 || m.Y0 > tr.YMax+1e-9 {
		return fmt.Errorf("core: position %v outside terrain [0, %v]", m.Y0, tr.YMax)
	}
	return nil
}

// Generation is one epoch's index inside a Rotator: it must support
// inserting and deleting motions of type M and releasing its storage.
type Generation[M any] interface {
	Insert(m M) error
	Delete(m M) error
	Len() int
	// Destroy releases all storage held by the generation.
	Destroy() error
}

// Rotator implements the staggered two-index scheme of §3.2. Motions are
// partitioned by epoch(T0) = floor(T0/period); each epoch has its own
// generation index whose dual coordinates are computed against the epoch
// start, so they stay bounded regardless of how long the system runs. A
// generation is destroyed when its last motion is deleted, which the
// forced-update bound guarantees within one period of its epoch's end.
//
// The rotator is generic so the same lifecycle serves 1-dimensional
// indexes (M = dual.Motion) and 2-dimensional ones (M = twod.Motion2D).
// Queries are the caller's business: iterate Live().
type Rotator[M any, G Generation[M]] struct {
	period  float64
	updTime func(M) float64
	make    func(tref float64) (G, error)
	gens    map[int64]G
	size    int
}

// NewRotator builds a rotator; mk constructs a fresh generation whose dual
// coordinates are relative to tref, and updTime extracts a motion's update
// time (which selects its epoch).
func NewRotator[M any, G Generation[M]](period float64, updTime func(M) float64, mk func(tref float64) (G, error)) (*Rotator[M, G], error) {
	if period <= 0 {
		return nil, fmt.Errorf("core: rotation period must be positive, got %v", period)
	}
	return &Rotator[M, G]{period: period, updTime: updTime, make: mk, gens: make(map[int64]G)}, nil
}

func (r *Rotator[M, G]) epoch(t float64) int64 { return int64(math.Floor(t / r.period)) }

// Generations returns the number of live generations (at most two when the
// forced-update assumption holds).
func (r *Rotator[M, G]) Generations() int { return len(r.gens) }

// Len returns the number of indexed motions across generations.
func (r *Rotator[M, G]) Len() int { return r.size }

// Live returns the live generations (query them all; each object lives in
// exactly one, so no cross-generation duplicates arise).
func (r *Rotator[M, G]) Live() []G {
	out := make([]G, 0, len(r.gens))
	for _, g := range r.gens {
		out = append(out, g)
	}
	return out
}

// Insert routes m to the generation of its update epoch.
func (r *Rotator[M, G]) Insert(m M) error {
	e := r.epoch(r.updTime(m))
	g, ok := r.gens[e]
	if !ok {
		var err error
		if g, err = r.make(float64(e) * r.period); err != nil {
			return err
		}
		r.gens[e] = g
	}
	if err := g.Insert(m); err != nil {
		return err
	}
	r.size++
	// Retire any older generation that drained while it was still the
	// newest (Delete could not retire it then — there was nowhere newer).
	for e2, g2 := range r.gens {
		if e2 < e && g2.Len() == 0 {
			if err := g2.Destroy(); err != nil {
				return err
			}
			delete(r.gens, e2)
		}
	}
	return nil
}

// Delete removes m from its generation, retiring the generation when it
// drains and a newer one exists.
func (r *Rotator[M, G]) Delete(m M) error {
	e := r.epoch(r.updTime(m))
	g, ok := r.gens[e]
	if !ok {
		return fmt.Errorf("core: no generation for epoch %d", e)
	}
	if err := g.Delete(m); err != nil {
		return err
	}
	r.size--
	if g.Len() == 0 {
		newer := false
		for e2 := range r.gens {
			if e2 > e {
				newer = true
				break
			}
		}
		if newer {
			if err := g.Destroy(); err != nil {
				return err
			}
			delete(r.gens, e)
		}
	}
	return nil
}

// motionTime extracts the update time of a 1-dimensional motion, the epoch
// selector for all 1-dimensional indexes.
func motionTime(m dual.Motion) float64 { return m.T0 }
