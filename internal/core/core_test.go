package core

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

var testTerrain = dual.Terrain{YMax: 100, VMin: 0.5, VMax: 2.0}

// sim is a tiny mobile-object simulator used by the differential tests:
// objects move in the terrain, reflect at borders (issuing updates), and
// randomly change speed.
type sim struct {
	rng  *rand.Rand
	tr   dual.Terrain
	now  float64
	cur  map[dual.OID]dual.Motion
	next dual.OID
}

func newSim(seed int64, tr dual.Terrain) *sim {
	return &sim{rng: rand.New(rand.NewSource(seed)), tr: tr, cur: make(map[dual.OID]dual.Motion)}
}

func (s *sim) randV() float64 {
	v := s.tr.VMin + s.rng.Float64()*(s.tr.VMax-s.tr.VMin)
	if s.rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

func (s *sim) spawn(ix Index1D, t *testing.T) dual.OID {
	t.Helper()
	m := dual.Motion{
		OID: s.next,
		Y0:  s.rng.Float64() * s.tr.YMax,
		T0:  s.now,
		V:   s.randV(),
	}
	s.next++
	if err := ix.Insert(m); err != nil {
		t.Fatalf("insert: %v", err)
	}
	s.cur[m.OID] = m
	return m.OID
}

// tick advances time by dt, reflecting every object that reached a border
// (the forced update of §2) through delete+insert.
func (s *sim) tick(ix Index1D, dt float64, t *testing.T) {
	t.Helper()
	s.now += dt
	for id, m := range s.cur {
		var tCross float64
		if m.V > 0 {
			tCross = m.T0 + (s.tr.YMax-m.Y0)/m.V
		} else {
			tCross = m.T0 + (0-m.Y0)/m.V
		}
		if tCross <= s.now {
			if err := ix.Delete(m); err != nil {
				t.Fatalf("reflect delete: %v", err)
			}
			ny := 0.0
			if m.V > 0 {
				ny = s.tr.YMax
			}
			nm := dual.Motion{OID: id, Y0: ny, T0: tCross, V: -m.V}
			if err := ix.Insert(nm); err != nil {
				t.Fatalf("reflect insert: %v", err)
			}
			s.cur[id] = nm
		}
	}
}

// churn randomly updates k objects' motion at the current time.
func (s *sim) churn(ix Index1D, k int, t *testing.T) {
	t.Helper()
	ids := make([]dual.OID, 0, len(s.cur))
	for id := range s.cur {
		ids = append(ids, id)
	}
	for i := 0; i < k && len(ids) > 0; i++ {
		id := ids[s.rng.Intn(len(ids))]
		old := s.cur[id]
		if err := ix.Delete(old); err != nil {
			t.Fatalf("churn delete: %v", err)
		}
		nm := dual.Motion{OID: id, Y0: old.At(s.now), T0: s.now, V: s.randV()}
		// Clamp reflection artifacts: At() may drift outside if tick was
		// skipped; keep it in terrain.
		if nm.Y0 < 0 {
			nm.Y0 = 0
		}
		if nm.Y0 > s.tr.YMax {
			nm.Y0 = s.tr.YMax
		}
		if err := ix.Insert(nm); err != nil {
			t.Fatalf("churn insert: %v", err)
		}
		s.cur[id] = nm
	}
}

func (s *sim) randQuery(maxW, maxT float64) dual.MORQuery {
	y1 := s.rng.Float64() * s.tr.YMax
	y2 := math.Min(y1+s.rng.Float64()*maxW, s.tr.YMax)
	t1 := s.now + s.rng.Float64()*20
	t2 := t1 + s.rng.Float64()*maxT
	return dual.MORQuery{Y1: y1, Y2: y2, T1: t1, T2: t2}
}

func (s *sim) bruteForce(q dual.MORQuery) map[dual.OID]bool {
	out := make(map[dual.OID]bool)
	for id, m := range s.cur {
		if m.Matches(q) {
			out[id] = true
		}
	}
	return out
}

// nearBoundary reports whether m sits within tol of the query boundary, in
// which case float32 page rounding may legitimately flip its membership.
func nearBoundary(m dual.Motion, q dual.MORQuery, tol float64) bool {
	big := dual.MORQuery{Y1: q.Y1 - tol, Y2: q.Y2 + tol, T1: q.T1 - tol, T2: q.T2 + tol}
	small := dual.MORQuery{Y1: q.Y1 + tol, Y2: q.Y2 - tol, T1: q.T1 + tol, T2: q.T2 - tol}
	if small.Y1 > small.Y2 || small.T1 > small.T2 {
		return m.Matches(big)
	}
	return m.Matches(big) && !m.Matches(small)
}

// checkQuery compares an index's answer against brute force; when tol > 0,
// mismatches are forgiven for objects within tol of the query boundary.
func checkQuery(t *testing.T, ix Index1D, s *sim, q dual.MORQuery, tol float64) {
	t.Helper()
	want := s.bruteForce(q)
	got := make(map[dual.OID]bool)
	dups := 0
	if err := ix.Query(q, func(id dual.OID) {
		if got[id] {
			dups++
		}
		got[id] = true
	}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if dups > 0 {
		t.Fatalf("query emitted %d duplicates", dups)
	}
	for id := range want {
		if !got[id] {
			if tol > 0 && nearBoundary(s.cur[id], q, tol) {
				continue
			}
			t.Fatalf("missing object %d (motion %+v) for query %+v", id, s.cur[id], q)
		}
	}
	for id := range got {
		if !want[id] {
			if tol > 0 && nearBoundary(s.cur[id], q, tol) {
				continue
			}
			t.Fatalf("spurious object %d (motion %+v) for query %+v", id, s.cur[id], q)
		}
	}
}

// runDifferential drives a full simulated scenario against an index.
func runDifferential(t *testing.T, mk func(st pager.Store) Index1D, tol float64, seed int64) {
	t.Helper()
	st := pager.NewMemStore(1024)
	ix := mk(st)
	s := newSim(seed, testTerrain)
	for i := 0; i < 400; i++ {
		s.spawn(ix, t)
	}
	for step := 0; step < 60; step++ {
		s.tick(ix, 5, t)
		s.churn(ix, 15, t)
		if step%5 == 0 {
			// Small queries (within a subterrain) and large ones.
			checkQuery(t, ix, s, s.randQuery(8, 10), tol)
			checkQuery(t, ix, s, s.randQuery(60, 30), tol)
			checkQuery(t, ix, s, s.randQuery(100, 50), tol)
			// Degenerate-width and degenerate-time queries.
			q := s.randQuery(0, 10)
			checkQuery(t, ix, s, q, tol)
			q = s.randQuery(40, 0)
			checkQuery(t, ix, s, q, tol)
		}
	}
	if ix.Len() != len(s.cur) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(s.cur))
	}
}

func TestDualBPlusDifferential(t *testing.T) {
	for _, c := range []int{1, 4, 8} {
		c := c
		mk := func(st pager.Store) Index1D {
			ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: c, Codec: bptree.Wide})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}
		runDifferential(t, mk, 0, int64(1000+c))
	}
}

func TestKDDualDifferential(t *testing.T) {
	mk := func(st pager.Store) Index1D {
		ix, err := NewKDDual(st, KDDualConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential(t, mk, 0.02, 2000)
}

func TestRStarSegDifferential(t *testing.T) {
	mk := func(st pager.Store) Index1D {
		ix, err := NewRStarSeg(st, RStarSegConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential(t, mk, 0.02, 3000)
}

// The rotation scheme must keep at most two live generations over many
// periods, and retired generations must release their pages.
func TestRotationBoundsGenerations(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(7, testTerrain)
	for i := 0; i < 200; i++ {
		s.spawn(ix, t)
	}
	// TPeriod = 100/0.5 = 200. Simulate 5 periods.
	peakPages := 0
	for step := 0; step < 500; step++ {
		s.tick(ix, 2, t)
		s.churn(ix, 5, t)
		if g := ix.Generations(); g > 2 {
			t.Fatalf("step %d: %d live generations", step, g)
		}
		if p := st.PagesInUse(); p > peakPages {
			peakPages = p
		}
	}
	// Space must stay bounded (no leak across generations): the last
	// snapshot should be within 3x of what one generation of 200 objects
	// needs — generously bounded by the observed peak.
	if st.PagesInUse() > peakPages {
		t.Fatal("space grew past peak after rotations")
	}
	checkQuery(t, ix, s, s.randQuery(50, 30), 0)
}

func TestKDRotation(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewKDDual(st, KDDualConfig{Terrain: testTerrain})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(11, testTerrain)
	for i := 0; i < 200; i++ {
		s.spawn(ix, t)
	}
	for step := 0; step < 500; step++ {
		s.tick(ix, 2, t)
		s.churn(ix, 5, t)
		if g := ix.Generations(); g > 2 {
			t.Fatalf("step %d: %d live generations", step, g)
		}
	}
	checkQuery(t, ix, s, s.randQuery(50, 30), 0.02)
}

func TestValidateMotion(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, _ := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4})
	bad := []dual.Motion{
		{OID: 1, Y0: 50, T0: 0, V: 0.1}, // too slow
		{OID: 1, Y0: 50, T0: 0, V: 5},   // too fast
		{OID: 1, Y0: 50, T0: 0, V: -5},  // too fast negative
		{OID: 1, Y0: 200, T0: 0, V: 1},  // outside terrain
		{OID: 1, Y0: -5, T0: 0, V: 1},   // outside terrain
	}
	for i, m := range bad {
		if err := ix.Insert(m); err == nil {
			t.Errorf("case %d: invalid motion accepted: %+v", i, m)
		}
	}
}

func TestDeleteUnknown(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, _ := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4})
	m := dual.Motion{OID: 5, Y0: 10, T0: 0, V: 1}
	if err := ix.Delete(m); err == nil {
		t.Fatal("delete of absent motion succeeded")
	}
	kd, _ := NewKDDual(st, KDDualConfig{Terrain: testTerrain})
	_ = kd.Insert(m)
	wrong := m
	wrong.V = 1.5
	if err := kd.Delete(wrong); err == nil {
		t.Fatal("kd delete of wrong motion succeeded")
	}
}

// DualBPlus must route small queries to the observation index with minimal
// E: verify via direct construction that a query near line i uses data
// consistent with that line (black-box: identical answers regardless,
// white-box: exercised for coverage of all c routes).
func TestDualBPlusAllRoutes(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 8, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(13, testTerrain)
	for i := 0; i < 300; i++ {
		s.spawn(ix, t)
	}
	h := testTerrain.YMax / 8
	for i := 0; i < 8; i++ {
		// A query centered in each subterrain.
		y1 := (float64(i) + 0.25) * h
		q := dual.MORQuery{Y1: y1, Y2: y1 + h/2, T1: 5, T2: 15}
		checkQuery(t, ix, s, q, 0)
	}
}

// Full-terrain queries exercise the pure case-ii path (all subterrains).
func TestDualBPlusFullTerrainQuery(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(17, testTerrain)
	for i := 0; i < 250; i++ {
		s.spawn(ix, t)
	}
	q := dual.MORQuery{Y1: 0, Y2: testTerrain.YMax, T1: 1, T2: 30}
	checkQuery(t, ix, s, q, 0)
	// Nearly every object matches a full-terrain query; the exceptions are
	// motions that extrapolate past a border before the window opens.
	got := 0
	_ = ix.Query(q, func(dual.OID) { got++ })
	if got < 240 {
		t.Fatalf("full-terrain query found only %d of 250", got)
	}
}

// Query at a single time instant (T1 == T2) — the MOR1 special case — must
// work through every method.
func TestInstantQueries(t *testing.T) {
	st := pager.NewMemStore(1024)
	bp, _ := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Wide})
	s := newSim(19, testTerrain)
	for i := 0; i < 200; i++ {
		s.spawn(bp, t)
	}
	for k := 0; k < 20; k++ {
		q := s.randQuery(30, 0)
		q.T2 = q.T1
		checkQuery(t, bp, s, q, 0)
	}
}

func TestPartTreeDualDifferential(t *testing.T) {
	mk := func(st pager.Store) Index1D {
		ix, err := NewPartTreeDual(st, PartTreeDualConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential(t, mk, 0.02, 4000)
}

func TestPartTreeDualRotation(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewPartTreeDual(st, PartTreeDualConfig{Terrain: testTerrain})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(29, testTerrain)
	for i := 0; i < 150; i++ {
		s.spawn(ix, t)
	}
	for step := 0; step < 400; step++ {
		s.tick(ix, 2, t)
		s.churn(ix, 4, t)
		if g := ix.rot.Generations(); g > 2 {
			t.Fatalf("step %d: %d generations", step, g)
		}
	}
	checkQuery(t, ix, s, s.randQuery(40, 20), 0.02)
}

// SpeedPartitioned handles the paper's slow-object population (§3/§3.6):
// a mixed workload of static, crawling and moving objects must answer
// exactly.
func TestSpeedPartitioned(t *testing.T) {
	st := pager.NewMemStore(1024)
	moving, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewSpeedPartitioned(st, SpeedPartitionedConfig{Terrain: testTerrain, Codec: bptree.Wide}, moving)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(97))
	cur := map[dual.OID]dual.Motion{}
	for i := 0; i < 600; i++ {
		var v float64
		switch i % 3 {
		case 0: // static
			v = 0
		case 1: // crawling below VMin
			v = (rng.Float64() - 0.5) * 2 * testTerrain.VMin * 0.9
		default: // moving
			v = testTerrain.VMin + rng.Float64()*(testTerrain.VMax-testTerrain.VMin)
			if rng.Intn(2) == 0 {
				v = -v
			}
		}
		m := dual.Motion{OID: dual.OID(i), Y0: rng.Float64() * testTerrain.YMax, T0: rng.Float64() * 10, V: v}
		if err := ix.Insert(m); err != nil {
			t.Fatalf("insert %d (v=%v): %v", i, v, err)
		}
		cur[m.OID] = m
	}
	if ix.SlowLen() != 400 {
		t.Fatalf("slow side holds %d, want 400", ix.SlowLen())
	}
	if ix.Len() != 600 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for trial := 0; trial < 60; trial++ {
		y1 := rng.Float64() * testTerrain.YMax
		y2 := math.Min(y1+rng.Float64()*80, testTerrain.YMax)
		t1 := 10 + rng.Float64()*30
		q := dual.MORQuery{Y1: y1, Y2: y2, T1: t1, T2: t1 + rng.Float64()*40}
		want := map[dual.OID]bool{}
		for id, m := range cur {
			if m.Matches(q) {
				want[id] = true
			}
		}
		got := map[dual.OID]bool{}
		if err := ix.Query(q, func(id dual.OID) { got[id] = true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("missing %d", id)
			}
		}
	}
	// Updates on both sides.
	for i := 0; i < 200; i++ {
		id := dual.OID(rng.Intn(600))
		old := cur[id]
		if err := ix.Delete(old); err != nil {
			t.Fatalf("delete: %v", err)
		}
		nm := dual.Motion{OID: id, Y0: rng.Float64() * testTerrain.YMax, T0: 50, V: 0}
		if rng.Intn(2) == 0 {
			nm.V = testTerrain.VMin + rng.Float64()
		}
		if err := ix.Insert(nm); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
		cur[id] = nm
	}
	q := dual.MORQuery{Y1: 100, Y2: 300, T1: 60, T2: 90}
	want := 0
	for _, m := range cur {
		if m.Matches(q) {
			want++
		}
	}
	got := 0
	_ = ix.Query(q, func(dual.OID) { got++ })
	if got != want {
		t.Fatalf("after churn: got %d want %d", got, want)
	}
}

func TestConstructorValidation(t *testing.T) {
	st := pager.NewMemStore(1024)
	bad := dual.Terrain{YMax: -1, VMin: 0.5, VMax: 2}
	if _, err := NewDualBPlus(st, DualBPlusConfig{Terrain: bad}); err == nil {
		t.Error("DualBPlus accepted bad terrain")
	}
	if _, err := NewKDDual(st, KDDualConfig{Terrain: bad}); err == nil {
		t.Error("KDDual accepted bad terrain")
	}
	if _, err := NewRStarSeg(st, RStarSegConfig{Terrain: bad}); err == nil {
		t.Error("RStarSeg accepted bad terrain")
	}
	if _, err := NewPartTreeDual(st, PartTreeDualConfig{Terrain: bad}); err == nil {
		t.Error("PartTreeDual accepted bad terrain")
	}
	if _, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: -3}); err == nil {
		t.Error("DualBPlus accepted negative c")
	}
	moving, _ := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain})
	if _, err := NewSpeedPartitioned(st, SpeedPartitionedConfig{Terrain: testTerrain, SlowCutoff: 99}, moving); err == nil {
		t.Error("SpeedPartitioned accepted cutoff above VMax")
	}
	if _, err := NewRotator[dual.Motion, *dualBPGen](0, motionTime, nil); err == nil {
		t.Error("Rotator accepted zero period")
	}
	if _, err := NewHistory(st, dual.Terrain{}); err == nil {
		t.Error("History accepted zero terrain")
	}
}

func TestPageSizeTooSmall(t *testing.T) {
	tiny := pager.NewMemStore(32)
	if _, err := bptree.New(tiny, bptree.Config{}); err == nil {
		t.Error("bptree accepted 32-byte pages")
	}
}

// Metamorphic property: enlarging a query never loses results, for every
// index type.
func TestQueryMonotonicity(t *testing.T) {
	builders := map[string]func(st pager.Store) Index1D{
		"dualbp": func(st pager.Store) Index1D {
			ix, _ := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Wide})
			return ix
		},
		"kd": func(st pager.Store) Index1D {
			ix, _ := NewKDDual(st, KDDualConfig{Terrain: testTerrain})
			return ix
		},
		"rstar": func(st pager.Store) Index1D {
			ix, _ := NewRStarSeg(st, RStarSegConfig{Terrain: testTerrain})
			return ix
		},
		"parttree": func(st pager.Store) Index1D {
			ix, _ := NewPartTreeDual(st, PartTreeDualConfig{Terrain: testTerrain})
			return ix
		},
	}
	for name, mk := range builders {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			st := pager.NewMemStore(1024)
			ix := mk(st)
			s := newSim(int64(5000+len(name)), testTerrain)
			for i := 0; i < 300; i++ {
				s.spawn(ix, t)
			}
			for trial := 0; trial < 30; trial++ {
				q := s.randQuery(40, 20)
				grow := s.rng.Float64() * 15
				big := dual.MORQuery{Y1: q.Y1 - grow, Y2: q.Y2 + grow, T1: q.T1, T2: q.T2 + grow}
				inner := map[dual.OID]bool{}
				_ = ix.Query(q, func(id dual.OID) { inner[id] = true })
				outer := map[dual.OID]bool{}
				_ = ix.Query(big, func(id dual.OID) { outer[id] = true })
				for id := range inner {
					if !outer[id] {
						t.Fatalf("%s: enlarging the query lost object %d", name, id)
					}
				}
			}
		})
	}
}

// The Compact codec (the paper's 4-byte records) must survive rotation
// across several periods with only boundary-rounding error.
func TestCompactRotationLongRun(t *testing.T) {
	st := pager.NewMemStore(4096)
	ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(6007, testTerrain)
	for i := 0; i < 300; i++ {
		s.spawn(ix, t)
	}
	for step := 0; step < 400; step++ {
		s.tick(ix, 2, t)
		s.churn(ix, 6, t)
		if step%40 == 0 {
			checkQuery(t, ix, s, s.randQuery(30, 15), 0.05)
		}
	}
	if g := ix.Generations(); g > 2 {
		t.Fatalf("%d generations live", g)
	}
}

// A generation that empties while newest must be retired once a newer
// generation appears (no page leak across epochs).
func TestRotatorRetiresStaleEmptyGeneration(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewDualBPlus(st, DualBPlusConfig{Terrain: testTerrain, C: 2, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	m := dual.Motion{OID: 1, Y0: 10, T0: 5, V: 1}
	if err := ix.Insert(m); err != nil {
		t.Fatal(err)
	}
	// Drain the only generation: it stays (nothing newer exists yet).
	if err := ix.Delete(m); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generations(); g != 1 {
		t.Fatalf("generations after drain = %d", g)
	}
	// Insert into a much later epoch: the stale empty generation retires.
	period := testTerrain.TPeriod()
	m2 := dual.Motion{OID: 2, Y0: 10, T0: 3*period + 1, V: 1}
	if err := ix.Insert(m2); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generations(); g != 1 {
		t.Fatalf("stale generation not retired: %d live", g)
	}
}
