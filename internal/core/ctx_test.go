package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

// TestRunCtxInlineCancellation pins the workers<=1 fast path: tasks run
// inline until the context is cancelled, then the remaining ones are
// skipped and the context error surfaces.
func TestRunCtxInlineCancellation(t *testing.T) {
	exec := NewExecutor(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	tasks := make([]func() error, 8)
	for i := range tasks {
		i := i
		tasks[i] = func() error {
			ran.Add(1)
			if i == 2 {
				cancel()
			}
			return nil
		}
	}
	err := exec.RunCtx(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d tasks after cancel at task 2, want 3", got)
	}
}

// TestRunCtxParallelCancellation checks the pooled path: once the context
// is cancelled no new task starts, in-flight tasks drain, and no
// goroutine leaks.
func TestRunCtxParallelCancellation(t *testing.T) {
	leakcheck.Check(t)
	exec := NewExecutor(2)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	var ran atomic.Int32
	tasks := make([]func() error, 32)
	for i := range tasks {
		tasks[i] = func() error {
			ran.Add(1)
			started <- struct{}{}
			<-release
			return nil
		}
	}
	done := make(chan error, 1)
	go func() { done <- exec.RunCtx(ctx, tasks) }()
	// Let the two workers start, then cancel and release them.
	<-started
	<-started
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	// At most one extra task can slip in between the workers' start and
	// the cancellation taking effect (the dispatcher may already be
	// blocked on the semaphore with the next task).
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d tasks ran after early cancellation, want <= 4", got)
	}
}

// TestRunCtxTaskErrorWins pins the precedence contract: a task error
// observed before cancellation beats the context error.
func TestRunCtxTaskErrorWins(t *testing.T) {
	exec := NewExecutor(1)
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := exec.RunCtx(ctx, []func() error{
		func() error { cancel(); return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunCtx = %v, want task error", err)
	}
}

// TestQueryParallelCtx checks the index-level cancellation path: a
// background context answers exactly like QueryParallel, an already
// cancelled one returns the context error and no results.
func TestQueryParallelCtx(t *testing.T) {
	store := pager.NewMemStore(pager.DefaultPageSize)
	tr := dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}
	ix, err := NewDualBPlus(store, DualBPlusConfig{Terrain: tr, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		m := dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), T0: 0, V: v}
		if err := ix.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	q := dual.MORQuery{Y1: 100, Y2: 600, T1: 10, T2: 60}
	exec := NewExecutor(4)
	want, err := ix.QueryParallel(exec, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.QueryParallelCtx(context.Background(), exec, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ctx variant returned %d OIDs, plain %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ctx variant diverges at %d", i)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ix.QueryParallelCtx(cancelled, exec, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled QueryParallelCtx = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled query returned %d results, want none", len(res))
	}

	deadline, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := ix.QueryParallelCtx(deadline, exec, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired QueryParallelCtx = %v, want context.DeadlineExceeded", err)
	}
}
