package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/interval"
	"mobidx/internal/pager"
)

// DualBPlusConfig configures the approximation method.
type DualBPlusConfig struct {
	Terrain dual.Terrain
	// C is the number of observation indexes (and subterrains); the paper
	// evaluates c = 4, 6, 8. Zero selects 4.
	C int
	// Codec selects on-page record precision; bptree.Compact reproduces
	// the paper's 12-byte records (B = 341).
	Codec bptree.Codec
}

// DualBPlus is the query-approximation method of §3.5.2. It keeps, per
// generation (§3.2 rotation):
//
//   - for each of c observation lines y_r(i) = (i+½)·YMax/c, two B+-trees
//     (positive and negative velocities) keyed on the Hough-Y b-coordinate
//     observed from that line — "the i-th index stores the data as observed
//     from position y_i";
//   - for each of the c subterrains [i·H, (i+1)·H), H = YMax/c, an interval
//     index of the residence intervals of every object that will traverse
//     it before its forced border update.
//
// Small queries (spatial extent ≤ H) run against the single observation
// index minimizing the enlargement E of Equation (1); larger queries are
// decomposed into whole-subterrain interval subqueries plus two endpoint
// subqueries (Lemma 1).
type DualBPlus struct {
	cfg        DualBPlusConfig
	store      pager.Store
	rot        *Rotator[dual.Motion, *dualBPGen]
	candidates atomic.Int64 // entries scanned since the last Query began (see LastQueryCandidates)
}

// NewDualBPlus creates the index on the given store.
func NewDualBPlus(store pager.Store, cfg DualBPlusConfig) (*DualBPlus, error) {
	if cfg.C == 0 {
		cfg.C = 4
	}
	if cfg.C < 1 {
		return nil, fmt.Errorf("core: DualBPlus needs c >= 1, got %d", cfg.C)
	}
	if cfg.Terrain.YMax <= 0 || cfg.Terrain.VMin <= 0 || cfg.Terrain.VMax < cfg.Terrain.VMin {
		return nil, fmt.Errorf("core: invalid terrain %+v", cfg.Terrain)
	}
	d := &DualBPlus{cfg: cfg, store: store}
	rot, err := NewRotator(cfg.Terrain.TPeriod(), motionTime, func(tref float64) (*dualBPGen, error) {
		g, err := newDualBPGen(store, cfg, tref)
		if err != nil {
			return nil, err
		}
		g.cand = &d.candidates
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	d.rot = rot
	return d, nil
}

// Insert implements Index1D.
func (d *DualBPlus) Insert(m dual.Motion) error {
	if err := validateMotion(m, d.cfg.Terrain); err != nil {
		return err
	}
	return d.rot.Insert(m)
}

// Delete implements Index1D.
func (d *DualBPlus) Delete(m dual.Motion) error { return d.rot.Delete(m) }

// Len implements Index1D.
func (d *DualBPlus) Len() int { return d.rot.Len() }

// Generations exposes the live generation count (normally ≤ 2).
func (d *DualBPlus) Generations() int { return d.rot.Generations() }

// LastQueryCandidates reports how many index entries the most recent Query
// scanned before exact filtering — the quantity whose excess over the true
// answer is the approximation error K' of Lemma 1. The counter is atomic;
// under concurrent queries it aggregates all of them (each Query resets
// it), so per-query readings are only meaningful for serialized queries.
func (d *DualBPlus) LastQueryCandidates() int { return int(d.candidates.Load()) }

// Query implements Index1D, deduplicating across decomposed subqueries.
// Concurrent Query calls are safe as long as no Insert/Delete runs at the
// same time (readers-writer locking is the caller's choice of policy; see
// the harness throughput mode).
func (d *DualBPlus) Query(q dual.MORQuery, emit func(dual.OID)) error {
	d.candidates.Store(0)
	seen := make(map[dual.OID]struct{})
	for _, g := range d.rot.Live() {
		err := g.Query(q, func(id dual.OID) {
			if _, ok := seen[id]; ok {
				return
			}
			seen[id] = struct{}{}
			emit(id)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Subqueries returns the independent pieces of one MOR query across all
// live generations: per generation, either the two per-velocity-sign
// observation scans (small queries) or the Lemma 1 decomposition — one
// task per whole subterrain plus the endpoint fragments' sign scans. The
// deduplicated union of the pieces' emissions equals Query's answer set.
// Each piece reads only index pages, so the pieces may run concurrently
// with each other (and with other queries), but not with Insert/Delete.
func (d *DualBPlus) Subqueries(q dual.MORQuery) []func(emit func(dual.OID)) error {
	var subs []func(emit func(dual.OID)) error
	for _, g := range d.rot.Live() {
		subs = append(subs, g.subqueries(q)...)
	}
	return subs
}

// QueryParallel answers q by running the decomposition's independent
// subqueries on exec and merging deterministically: the returned OIDs are
// sorted ascending and deduplicated, and the slice is identical for every
// worker count — a single-worker executor is the sequential reference.
func (d *DualBPlus) QueryParallel(exec *Executor, q dual.MORQuery) ([]dual.OID, error) {
	//mobidxlint:allow ctxflow -- compat facade: ctx-less entry point for callers with no deadline; cancellation users call QueryParallelCtx
	return d.QueryParallelCtx(context.Background(), exec, q)
}

// QueryParallelCtx is QueryParallel with a cancellation path: the context
// is checked between subqueries (see Executor.RunCtx), so a router-imposed
// deadline stops an in-flight query at piece granularity instead of
// letting it run to completion against a sick store.
func (d *DualBPlus) QueryParallelCtx(ctx context.Context, exec *Executor, q dual.MORQuery) ([]dual.OID, error) {
	d.candidates.Store(0)
	return RunSubqueriesCtx(ctx, exec, d.Subqueries(q))
}

// dualBPGen is one generation.
type dualBPGen struct {
	cfg  DualBPlusConfig
	tref float64
	h    float64        // subterrain height YMax/c
	pos  []*bptree.Tree // per observation line, v > 0
	neg  []*bptree.Tree // per observation line, v < 0
	sub  []*interval.Index
	size int
	cand *atomic.Int64 // owner's candidate counter (may be nil)
}

func (g *dualBPGen) countCandidate() {
	if g.cand != nil {
		g.cand.Add(1)
	}
}

func newDualBPGen(store pager.Store, cfg DualBPlusConfig, tref float64) (*dualBPGen, error) {
	g := &dualBPGen{cfg: cfg, tref: tref, h: cfg.Terrain.YMax / float64(cfg.C)}
	maxDur := g.h / cfg.Terrain.VMin
	for i := 0; i < cfg.C; i++ {
		p, err := bptree.New(store, bptree.Config{Codec: cfg.Codec})
		if err != nil {
			return nil, err
		}
		n, err := bptree.New(store, bptree.Config{Codec: cfg.Codec})
		if err != nil {
			return nil, err
		}
		s, err := interval.NewIndex(store, cfg.Codec, maxDur)
		if err != nil {
			return nil, err
		}
		g.pos = append(g.pos, p)
		g.neg = append(g.neg, n)
		g.sub = append(g.sub, s)
	}
	return g, nil
}

// yr returns the i-th observation line, the midpoint of subterrain i.
func (g *dualBPGen) yr(i int) float64 { return (float64(i) + 0.5) * g.h }

func (g *dualBPGen) obs(i int, positive bool) *bptree.Tree {
	if positive {
		return g.pos[i]
	}
	return g.neg[i]
}

func (g *dualBPGen) Len() int { return g.size }

// Insert stores m in all c observation indexes and in the interval index
// of every subterrain it will traverse before its forced border update.
func (g *dualBPGen) Insert(m dual.Motion) error {
	for i := 0; i < g.cfg.C; i++ {
		_, b := dual.HoughY(m, g.yr(i))
		e := bptree.Entry{Key: b - g.tref, Val: uint64(m.OID), Aux: m.V}
		if err := g.obs(i, m.V > 0).Insert(e); err != nil {
			return err
		}
	}
	if err := g.eachResidence(m, func(i int, in, out float64) error {
		return g.sub[i].Insert(in-g.tref, out-g.tref, uint64(m.OID))
	}); err != nil {
		return err
	}
	g.size++
	return nil
}

// Delete removes everything Insert stored for m.
func (g *dualBPGen) Delete(m dual.Motion) error {
	for i := 0; i < g.cfg.C; i++ {
		_, b := dual.HoughY(m, g.yr(i))
		if err := g.obs(i, m.V > 0).Delete(b-g.tref, uint64(m.OID)); err != nil {
			return fmt.Errorf("core: observation index %d: %w", i, err)
		}
	}
	if err := g.eachResidence(m, func(i int, in, out float64) error {
		return g.sub[i].Delete(in-g.tref, uint64(m.OID))
	}); err != nil {
		return err
	}
	g.size--
	return nil
}

// eachResidence visits every subterrain the object traverses from its
// update position until it reaches a terrain border (where it must issue a
// new update), with the absolute entry/exit times.
func (g *dualBPGen) eachResidence(m dual.Motion, fn func(i int, in, out float64) error) error {
	c := g.cfg.C
	cur := int(math.Floor(m.Y0 / g.h))
	if cur >= c {
		cur = c - 1 // Y0 == YMax sits in the top subterrain
	}
	if m.V > 0 {
		tBorder := m.T0 + (g.cfg.Terrain.YMax-m.Y0)/m.V
		in := m.T0
		for i := cur; i < c; i++ {
			out := m.T0 + (float64(i+1)*g.h-m.Y0)/m.V
			if out > tBorder {
				out = tBorder
			}
			if out > in {
				if err := fn(i, in, out); err != nil {
					return err
				}
			}
			in = out
		}
		return nil
	}
	tBorder := m.T0 + (0-m.Y0)/m.V
	in := m.T0
	for i := cur; i >= 0; i-- {
		out := m.T0 + (float64(i)*g.h-m.Y0)/m.V
		if out > tBorder {
			out = tBorder
		}
		if out > in {
			if err := fn(i, in, out); err != nil {
				return err
			}
		}
		in = out
	}
	return nil
}

// lemma1Split computes the whole-subterrain range [jLo, jHi) of the
// Lemma 1 decomposition for a query wider than one subterrain.
func (g *dualBPGen) lemma1Split(q dual.MORQuery) (jLo, jHi int) {
	jLo = int(math.Ceil(q.Y1 / g.h))
	jHi = int(math.Floor(q.Y2 / g.h))
	if jHi > g.cfg.C {
		jHi = g.cfg.C
	}
	if jLo < 0 {
		jLo = 0
	}
	return jLo, jHi
}

// subterrainScan answers the time-overlap subquery of one whole subterrain
// exactly from its interval index.
func (g *dualBPGen) subterrainScan(j int, q dual.MORQuery, emit func(dual.OID)) error {
	return g.sub[j].Overlapping(q.T1-g.tref, q.T2-g.tref, func(_, _ float64, v uint64) bool {
		g.countCandidate()
		emit(dual.OID(v))
		return true
	})
}

// Query answers the MOR query per §3.5.2.
func (g *dualBPGen) Query(q dual.MORQuery, emit func(dual.OID)) error {
	if q.Y2-q.Y1 <= g.h {
		return g.smallQuery(q, emit)
	}
	// Decompose: whole subterrains inside [Y1, Y2] answered exactly by the
	// interval indexes; the two endpoint fragments are small queries.
	jLo, jHi := g.lemma1Split(q)
	for j := jLo; j < jHi; j++ {
		if err := g.subterrainScan(j, q, emit); err != nil {
			return err
		}
	}
	// Endpoint fragments are run even when degenerate (query edge exactly
	// on a subterrain boundary) so objects sitting exactly on the boundary
	// are never missed; the caller deduplicates.
	if lo := float64(jLo) * g.h; q.Y1 <= lo {
		sq := q
		sq.Y2 = lo
		if err := g.smallQuery(sq, emit); err != nil {
			return err
		}
	}
	if hi := float64(jHi) * g.h; q.Y2 >= hi {
		sq := q
		sq.Y1 = hi
		if err := g.smallQuery(sq, emit); err != nil {
			return err
		}
	}
	return nil
}

// subqueries splits the query into its independent pieces: for a small
// query the two per-velocity-sign observation scans; for a larger one the
// Lemma 1 decomposition — one piece per whole subterrain plus the sign
// scans of the two endpoint fragments. Running every piece and
// deduplicating the union of emissions reproduces Query exactly.
func (g *dualBPGen) subqueries(q dual.MORQuery) []func(emit func(dual.OID)) error {
	if q.Y2-q.Y1 <= g.h {
		return g.smallQueryPieces(q)
	}
	jLo, jHi := g.lemma1Split(q)
	var subs []func(emit func(dual.OID)) error
	for j := jLo; j < jHi; j++ {
		j := j
		subs = append(subs, func(emit func(dual.OID)) error {
			return g.subterrainScan(j, q, emit)
		})
	}
	if lo := float64(jLo) * g.h; q.Y1 <= lo {
		sq := q
		sq.Y2 = lo
		subs = append(subs, g.smallQueryPieces(sq)...)
	}
	if hi := float64(jHi) * g.h; q.Y2 >= hi {
		sq := q
		sq.Y1 = hi
		subs = append(subs, g.smallQueryPieces(sq)...)
	}
	return subs
}

// bestObservation returns the observation index minimizing the
// enlargement E of Equation (1) for the query.
func (g *dualBPGen) bestObservation(q dual.MORQuery) int {
	best, bestE := 0, math.Inf(1)
	for i := 0; i < g.cfg.C; i++ {
		if e := dual.EnlargementE(q, g.yr(i), g.cfg.Terrain); e < bestE {
			best, bestE = i, e
		}
	}
	return best
}

// signScan scans one velocity sign of one observation index over the
// approximating b-range (Figure 4), filtering candidates exactly.
func (g *dualBPGen) signScan(q dual.MORQuery, obs int, positive bool, emit func(dual.OID)) error {
	yr := g.yr(obs)
	bLo, bHi := dual.HoughYRect(q, yr, g.cfg.Terrain, positive)
	return g.obs(obs, positive).Range(bLo-g.tref, bHi-g.tref, func(e bptree.Entry) bool {
		g.countCandidate()
		m := dual.MotionFromHoughY(dual.OID(e.Val), e.Aux, e.Key+g.tref, yr)
		if m.Matches(q) {
			emit(m.OID)
		}
		return true
	})
}

// smallQuery answers a query whose spatial extent is at most one
// subterrain via the observation index minimizing E (Equation 1), scanning
// the approximating b-range (Figure 4) and filtering candidates exactly.
func (g *dualBPGen) smallQuery(q dual.MORQuery, emit func(dual.OID)) error {
	best := g.bestObservation(q)
	for _, positive := range []bool{true, false} {
		if err := g.signScan(q, best, positive, emit); err != nil {
			return err
		}
	}
	return nil
}

// smallQueryPieces is smallQuery split into its two independent sign
// scans, for concurrent execution.
func (g *dualBPGen) smallQueryPieces(q dual.MORQuery) []func(emit func(dual.OID)) error {
	best := g.bestObservation(q)
	pieces := make([]func(emit func(dual.OID)) error, 0, 2)
	for _, positive := range []bool{true, false} {
		positive := positive
		pieces = append(pieces, func(emit func(dual.OID)) error {
			return g.signScan(q, best, positive, emit)
		})
	}
	return pieces
}

// Destroy releases all pages of the generation.
func (g *dualBPGen) Destroy() error {
	for i := 0; i < g.cfg.C; i++ {
		if err := g.pos[i].Destroy(); err != nil {
			return err
		}
		if err := g.neg[i].Destroy(); err != nil {
			return err
		}
		if err := g.sub[i].Destroy(); err != nil {
			return err
		}
	}
	return nil
}
