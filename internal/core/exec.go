package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"mobidx/internal/dual"
)

// Executor runs independent subqueries on a bounded pool of workers. It is
// the fan-out engine behind the parallel query paths (DualBPlus
// QueryParallel and the 2-dimensional methods in package twod): a query is
// decomposed into its independent pieces — the Lemma 1 subterrain and
// endpoint subqueries, the per-velocity-sign observation scans, the
// per-axis 1-dimensional queries of the 2D decomposition — and the pieces
// run concurrently, each collecting into its own result bucket, with a
// deterministic merge at the end.
//
// An Executor is stateless apart from its worker bound; one Executor may
// be shared by any number of concurrent queries. With Workers() == 1 the
// tasks run sequentially in submission order on the calling goroutine, so
// a single-worker executor is the sequential reference implementation
// against which the parallel paths are differential-tested.
type Executor struct {
	workers int
}

// NewExecutor returns an executor bounded to the given number of
// concurrent workers. Zero (or negative) selects GOMAXPROCS.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers}
}

// Workers returns the concurrency bound.
func (e *Executor) Workers() int { return e.workers }

// Run executes every task, at most Workers() concurrently, and waits for
// all of them. The first error encountered is returned (the remaining
// tasks still run to completion, so no goroutine outlives Run). With one
// worker the tasks run inline, in order, with no goroutines at all.
func (e *Executor) Run(tasks []func() error) error {
	//mobidxlint:allow ctxflow -- compat facade: ctx-less entry point for callers with no deadline; cancellation users call RunCtx
	return e.RunCtx(context.Background(), tasks)
}

// RunCtx is Run with a cancellation path: the context is checked before
// every task is started, so a deadline or cancellation stops the fan-out
// at task granularity — tasks not yet begun are skipped, tasks already
// running finish (no goroutine is ever abandoned mid-flight), and the
// context's error is returned once everything started has drained. A task
// that wants finer-grained cancellation must watch the context itself.
// Task errors take precedence over the context error in the return value,
// since they describe what actually went wrong first. The workers <= 1
// path stays inline — sequential, in order, zero goroutines — so a
// single-worker executor remains the sequential reference implementation.
func (e *Executor) RunCtx(ctx context.Context, tasks []func() error) error {
	if e.workers <= 1 || len(tasks) <= 1 {
		var first error
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := t(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	var ctxErr error
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		t := t
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() {
				<-sem
				wg.Done()
			}()
			if err := t(); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctxErr
}

// MergeOIDs concatenates per-task result buckets, sorts ascending, and
// removes duplicates in place. Because each subquery's emissions are
// deterministic and scheduling only permutes whole buckets, the merged
// slice is byte-identical for every worker count — the property the
// differential tests pin down. Package twod uses it to merge its per-axis
// and per-quadrant buckets.
func MergeOIDs(buckets [][]dual.OID) []dual.OID {
	n := 0
	for _, b := range buckets {
		n += len(b)
	}
	if n == 0 {
		return nil
	}
	out := make([]dual.OID, 0, n)
	for _, b := range buckets {
		out = append(out, b...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// RunSubqueries runs a set of emit-style subqueries on the executor, each
// collecting into a private bucket, and returns the deterministic sorted,
// deduplicated union of their emissions. It is the shared harness for
// every parallel query path (1-dimensional here, 2-dimensional in package
// twod).
func RunSubqueries(exec *Executor, subs []func(emit func(dual.OID)) error) ([]dual.OID, error) {
	//mobidxlint:allow ctxflow -- compat facade: ctx-less entry point for callers with no deadline; cancellation users call RunSubqueriesCtx
	return RunSubqueriesCtx(context.Background(), exec, subs)
}

// RunSubqueriesCtx is RunSubqueries with the executor's cancellation path:
// the context stops the fan-out between subqueries (see RunCtx). On
// cancellation the partial buckets are discarded and the context's error
// is returned — a cancelled query has no answer, not a truncated one.
func RunSubqueriesCtx(ctx context.Context, exec *Executor, subs []func(emit func(dual.OID)) error) ([]dual.OID, error) {
	buckets := make([][]dual.OID, len(subs))
	tasks := make([]func() error, len(subs))
	for i, sq := range subs {
		i, sq := i, sq
		tasks[i] = func() error {
			return sq(func(id dual.OID) { buckets[i] = append(buckets[i], id) })
		}
	}
	if err := exec.RunCtx(ctx, tasks); err != nil {
		return nil, err
	}
	return MergeOIDs(buckets), nil
}
