package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
)

func TestExecutorWorkerDefaults(t *testing.T) {
	if got := NewExecutor(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewExecutor(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewExecutor(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewExecutor(-3).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewExecutor(5).Workers(); got != 5 {
		t.Fatalf("NewExecutor(5).Workers() = %d, want 5", got)
	}
}

func TestExecutorRunsAllTasks(t *testing.T) {
	leakcheck.Check(t)
	for _, workers := range []int{1, 2, 7, 16} {
		var ran atomic.Int64
		tasks := make([]func() error, 50)
		for i := range tasks {
			tasks[i] = func() error { ran.Add(1); return nil }
		}
		if err := NewExecutor(workers).Run(tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d of 50 tasks", workers, ran.Load())
		}
	}
}

func TestExecutorEmptyAndNil(t *testing.T) {
	e := NewExecutor(4)
	if err := e.Run(nil); err != nil {
		t.Fatalf("Run(nil): %v", err)
	}
	if err := e.Run([]func() error{}); err != nil {
		t.Fatalf("Run(empty): %v", err)
	}
}

// TestExecutorBoundedConcurrency verifies the semaphore: the number of
// simultaneously running tasks never exceeds the worker count.
func TestExecutorBoundedConcurrency(t *testing.T) {
	leakcheck.Check(t)
	const workers = 3
	var inFlight, peak atomic.Int64
	tasks := make([]func() error, 40)
	for i := range tasks {
		tasks[i] = func() error {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
			inFlight.Add(-1)
			return nil
		}
	}
	if err := NewExecutor(workers).Run(tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight %d exceeds worker bound %d", p, workers)
	}
}

// TestExecutorErrorPropagation verifies the first error is reported, and
// that Run still waits for (and runs) every task rather than abandoning
// goroutines — the property the leak check enforces.
func TestExecutorErrorPropagation(t *testing.T) {
	leakcheck.Check(t)
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		tasks := make([]func() error, 20)
		for i := range tasks {
			i := i
			tasks[i] = func() error {
				ran.Add(1)
				if i == 3 {
					return boom
				}
				return nil
			}
		}
		err := NewExecutor(workers).Run(tasks)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// Both modes drain every task so partial buckets never escape.
		if ran.Load() != 20 {
			t.Fatalf("workers=%d: ran %d tasks, want all 20", workers, ran.Load())
		}
	}
}

func TestMergeOIDs(t *testing.T) {
	got := MergeOIDs([][]dual.OID{{5, 1, 9}, nil, {1, 3, 5}, {2}})
	want := []dual.OID{1, 2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("MergeOIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeOIDs = %v, want %v", got, want)
		}
	}
	if out := MergeOIDs(nil); out != nil {
		t.Fatalf("MergeOIDs(nil) = %v, want nil", out)
	}
	if out := MergeOIDs([][]dual.OID{nil, {}}); out != nil {
		t.Fatalf("MergeOIDs(empty buckets) = %v, want nil", out)
	}
}

func TestRunSubqueriesMergesAndDedups(t *testing.T) {
	subs := []func(emit func(dual.OID)) error{
		func(emit func(dual.OID)) error { emit(7); emit(2); return nil },
		func(emit func(dual.OID)) error { emit(2); emit(4); return nil },
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := RunSubqueries(NewExecutor(workers), subs)
		if err != nil {
			t.Fatal(err)
		}
		want := []dual.OID{2, 4, 7}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
			}
		}
	}
}
