package core

import (
	"fmt"
	"math"

	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/pager"
	"mobidx/internal/rstar"
)

// History implements the paper's §7 extension: "some applications may
// require keeping the history of mobile objects (for traffic analysis
// etc.); then the indices presented need to support historical queries".
//
// The archive is append-only: whenever an object's motion is superseded
// (or the object leaves), the closed piece of its trajectory — a line
// segment in the (t, y) plane from the update that created it to the
// update that ended it — is recorded in an R*-tree. Unlike the live
// R*-tree baseline of §3.1, whose segments run to the terrain border and
// overlap terribly, archived segments are short (they span one update
// interval), which is exactly the regime where an R*-tree behaves well.
//
// A historical MOR query ("who was inside [Y1, Y2] at some instant of the
// past window [T1, T2]?") is a rectangle search plus exact segment
// filtering. Current motions are not part of the archive; pair History
// with any live Index1D and route queries by whether the window lies in
// the past.
type History struct {
	terrain dual.Terrain
	tree    *rstar.Tree
	open    map[dual.OID]dual.Motion
	closed  int
}

// NewHistory creates an empty trajectory archive.
func NewHistory(store pager.Store, terrain dual.Terrain) (*History, error) {
	if terrain.YMax <= 0 {
		return nil, fmt.Errorf("core: invalid terrain %+v", terrain)
	}
	t, err := rstar.New(store, rstar.Config{})
	if err != nil {
		return nil, err
	}
	return &History{terrain: terrain, tree: t, open: make(map[dual.OID]dual.Motion)}, nil
}

// Begin records that m is the object's motion from m.T0 on. Any previous
// open motion of the same object is closed at m.T0 and archived.
func (h *History) Begin(m dual.Motion) error {
	if old, ok := h.open[m.OID]; ok {
		if err := h.archive(old, m.T0); err != nil {
			return err
		}
	}
	h.open[m.OID] = m
	return nil
}

// End closes the object's open motion at time t and archives it; the
// object disappears from the (historical) present.
func (h *History) End(id dual.OID, t float64) error {
	old, ok := h.open[id]
	if !ok {
		return fmt.Errorf("core: object %d has no open motion", id)
	}
	if err := h.archive(old, t); err != nil {
		return err
	}
	delete(h.open, id)
	return nil
}

// archive stores the trajectory piece of m over [m.T0, tEnd].
func (h *History) archive(m dual.Motion, tEnd float64) error {
	if tEnd < m.T0 {
		return fmt.Errorf("core: motion of %d ends at %v before it began at %v", m.OID, tEnd, m.T0)
	}
	seg := geom.Segment{
		A: geom.Point{X: m.T0, Y: m.Y0},
		B: geom.Point{X: tEnd, Y: m.At(tEnd)},
	}
	val := uint64(m.OID) << 1
	if m.V < 0 {
		val |= 1
	}
	h.closed++
	return h.tree.Insert(rstar.Item{Rect: seg.Bound(), Val: val})
}

// Closed returns the number of archived trajectory pieces.
func (h *History) Closed() int { return h.closed }

// Open returns the number of objects with an open (current) motion.
func (h *History) Open() int { return len(h.open) }

// QueryPast reports every object that was inside [q.Y1, q.Y2] at some
// instant of [q.T1, q.T2], considering archived trajectory pieces and,
// for windows reaching past the last update, the still-open motions.
// Each object is reported at most once.
func (h *History) QueryPast(q dual.MORQuery, emit func(dual.OID)) error {
	seen := make(map[dual.OID]struct{})
	hit := func(id dual.OID) {
		if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		emit(id)
	}
	rect := geom.Rect{MinX: q.T1, MinY: q.Y1, MaxX: q.T2, MaxY: q.Y2}
	err := h.tree.SearchRect(rect, func(it rstar.Item) bool {
		neg := it.Val&1 == 1
		var seg geom.Segment
		if neg {
			seg = geom.Segment{
				A: geom.Point{X: it.Rect.MinX, Y: it.Rect.MaxY},
				B: geom.Point{X: it.Rect.MaxX, Y: it.Rect.MinY},
			}
		} else {
			seg = geom.Segment{
				A: geom.Point{X: it.Rect.MinX, Y: it.Rect.MinY},
				B: geom.Point{X: it.Rect.MaxX, Y: it.Rect.MaxY},
			}
		}
		if seg.IntersectsRect(rect) {
			hit(dual.OID(it.Val >> 1))
		}
		return true
	})
	if err != nil {
		return err
	}
	// Open motions cover [T0, ∞); clip the query to each one's validity.
	for id, m := range h.open {
		if q.T2 < m.T0 {
			continue
		}
		cq := q
		if cq.T1 < m.T0 {
			cq.T1 = m.T0
		}
		if m.Matches(cq) {
			hit(id)
		}
	}
	return nil
}

// TrajectoryLength returns the total archived time span of one object —
// a simple analytic the paper's traffic-analysis motivation asks for.
// Cost is a full scan filtered by id; analytic workloads would keep a
// per-object secondary index, which is outside the paper's scope.
func (h *History) TrajectoryLength(id dual.OID) (float64, error) {
	total := 0.0
	err := h.tree.SearchRect(geom.Rect{
		MinX: math.Inf(-1), MinY: math.Inf(-1),
		MaxX: math.Inf(1), MaxY: math.Inf(1),
	}, func(it rstar.Item) bool {
		if dual.OID(it.Val>>1) == id {
			total += it.Rect.MaxX - it.Rect.MinX
		}
		return true
	})
	return total, err
}
