package core

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func TestHistoryBasics(t *testing.T) {
	st := pager.NewMemStore(1024)
	h, err := NewHistory(st, testTerrain)
	if err != nil {
		t.Fatal(err)
	}
	// Object 1: moves right during [0,10], then left during [10,30], gone.
	if err := h.Begin(dual.Motion{OID: 1, Y0: 10, T0: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Begin(dual.Motion{OID: 1, Y0: 20, T0: 10, V: -0.5}); err != nil {
		t.Fatal(err)
	}
	if err := h.End(1, 30); err != nil {
		t.Fatal(err)
	}
	if h.Closed() != 2 || h.Open() != 0 {
		t.Fatalf("closed=%d open=%d", h.Closed(), h.Open())
	}
	count := func(q dual.MORQuery) int {
		n := 0
		if err := h.QueryPast(q, func(dual.OID) { n++ }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Was at y=15 at t=5 (first leg).
	if got := count(dual.MORQuery{Y1: 14, Y2: 16, T1: 4, T2: 6}); got != 1 {
		t.Fatalf("first leg: %d", got)
	}
	// Was at y=15 again around t=20 (second leg).
	if got := count(dual.MORQuery{Y1: 14, Y2: 16, T1: 19, T2: 21}); got != 1 {
		t.Fatalf("second leg: %d", got)
	}
	// Never at y=50.
	if got := count(dual.MORQuery{Y1: 49, Y2: 51, T1: 0, T2: 30}); got != 0 {
		t.Fatalf("phantom: %d", got)
	}
	// After t=30 the object no longer exists.
	if got := count(dual.MORQuery{Y1: 0, Y2: 100, T1: 31, T2: 40}); got != 0 {
		t.Fatalf("after end: %d", got)
	}
	// A window straddling both legs reports the object once.
	if got := count(dual.MORQuery{Y1: 0, Y2: 100, T1: 0, T2: 30}); got != 1 {
		t.Fatalf("dedup: %d", got)
	}
	// Trajectory length = 10 + 20.
	if l, err := h.TrajectoryLength(1); err != nil || math.Abs(l-30) > 1e-6 {
		t.Fatalf("length %v err %v", l, err)
	}
}

func TestHistoryEndErrors(t *testing.T) {
	st := pager.NewMemStore(1024)
	h, _ := NewHistory(st, testTerrain)
	if err := h.End(9, 5); err == nil {
		t.Fatal("End of unknown object accepted")
	}
	_ = h.Begin(dual.Motion{OID: 1, Y0: 10, T0: 10, V: 1})
	if err := h.End(1, 5); err == nil {
		t.Fatal("End before Begin accepted")
	}
}

// Differential test: a full simulated history vs brute force replay.
func TestHistoryDifferential(t *testing.T) {
	st := pager.NewMemStore(1024)
	h, err := NewHistory(st, testTerrain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))
	type piece struct {
		m    dual.Motion
		tEnd float64 // inf while open
	}
	pieces := map[dual.OID][]piece{}
	now := 0.0
	cur := map[dual.OID]dual.Motion{}
	randV := func() float64 {
		v := testTerrain.VMin + rng.Float64()*(testTerrain.VMax-testTerrain.VMin)
		if rng.Intn(2) == 0 {
			v = -v
		}
		return v
	}
	for i := 0; i < 150; i++ {
		m := dual.Motion{OID: dual.OID(i), Y0: rng.Float64() * testTerrain.YMax, T0: 0, V: randV()}
		if err := h.Begin(m); err != nil {
			t.Fatal(err)
		}
		cur[m.OID] = m
		pieces[m.OID] = []piece{{m: m, tEnd: math.Inf(1)}}
	}
	// Random churn: updates and departures.
	for step := 0; step < 200; step++ {
		now += 0.5
		id := dual.OID(rng.Intn(150))
		m, alive := cur[id]
		if !alive {
			continue
		}
		ps := pieces[id]
		ps[len(ps)-1].tEnd = now
		if rng.Float64() < 0.1 {
			if err := h.End(id, now); err != nil {
				t.Fatal(err)
			}
			delete(cur, id)
		} else {
			nm := dual.Motion{OID: id, Y0: m.At(now), T0: now, V: randV()}
			if err := h.Begin(nm); err != nil {
				t.Fatal(err)
			}
			cur[id] = nm
			pieces[id] = append(ps, piece{m: nm, tEnd: math.Inf(1)})
			continue
		}
		pieces[id] = ps
	}
	// Queries over the whole recorded timeline.
	for trial := 0; trial < 80; trial++ {
		y1 := rng.Float64()*200 - 50
		t1 := rng.Float64() * now
		q := dual.MORQuery{Y1: y1, Y2: y1 + rng.Float64()*30, T1: t1, T2: t1 + rng.Float64()*20}
		want := map[dual.OID]bool{}
		for id, ps := range pieces {
			for _, p := range ps {
				cq := q
				if cq.T1 < p.m.T0 {
					cq.T1 = p.m.T0
				}
				if cq.T2 > p.tEnd {
					cq.T2 = p.tEnd
				}
				if cq.T1 <= cq.T2 && p.m.Matches(cq) {
					want[id] = true
					break
				}
			}
		}
		got := map[dual.OID]bool{}
		if err := h.QueryPast(q, func(id dual.OID) { got[id] = true }); err != nil {
			t.Fatal(err)
		}
		// float32 rounding slack at boundaries.
		missing, spurious := 0, 0
		for id := range want {
			if !got[id] {
				missing++
			}
		}
		for id := range got {
			if !want[id] {
				spurious++
			}
		}
		if missing+spurious > (len(want)+20)/20 {
			t.Fatalf("trial %d: %d missing, %d spurious of %d", trial, missing, spurious, len(want))
		}
	}
}
