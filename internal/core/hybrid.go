package core

import (
	"fmt"
	"math"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// SpeedPartitionedConfig configures the hybrid index.
type SpeedPartitionedConfig struct {
	Terrain dual.Terrain
	// SlowCutoff is the speed below which an object counts as "slow";
	// zero selects the terrain's VMin. Objects with |v| < cutoff go to
	// the slow-side B+-tree; the rest to the moving-side index.
	SlowCutoff float64
	// Codec is the record precision of the slow-side B+-tree.
	Codec bptree.Codec
}

// SpeedPartitioned implements the paper's §3 partitioning of objects into
// the slow (v ≈ 0) and moving (VMin ≤ |v| ≤ VMax) populations. The paper
// observes that for slowly moving objects the problem degenerates to
// standard one-dimensional range searching; a B+-tree over positions
// handles them, with the query range enlarged by SlowCutoff times the
// query horizon (zero for truly static objects) and candidates filtered
// exactly. Moving objects go to whatever Index1D the caller supplies.
// The slow-side tree keys each object by the intercept of its extended
// trajectory line (its position extrapolated to t = 0) and carries the
// velocity in Aux, so a candidate's exact motion is reconstructed from
// the record alone — no side table.
type SpeedPartitioned struct {
	cfg       SpeedPartitionedConfig
	moving    Index1D
	slow      *bptree.Tree
	slowCount int
}

// NewSpeedPartitioned wraps a moving-object index with a slow-object side
// structure.
func NewSpeedPartitioned(store pager.Store, cfg SpeedPartitionedConfig, moving Index1D) (*SpeedPartitioned, error) {
	if cfg.SlowCutoff == 0 {
		cfg.SlowCutoff = cfg.Terrain.VMin
	}
	if cfg.SlowCutoff < 0 || cfg.SlowCutoff > cfg.Terrain.VMax {
		return nil, fmt.Errorf("core: slow cutoff %v outside [0, %v]", cfg.SlowCutoff, cfg.Terrain.VMax)
	}
	slow, err := bptree.New(store, bptree.Config{Codec: cfg.Codec})
	if err != nil {
		return nil, err
	}
	return &SpeedPartitioned{cfg: cfg, moving: moving, slow: slow}, nil
}

// isSlow classifies a motion.
func (s *SpeedPartitioned) isSlow(m dual.Motion) bool {
	return math.Abs(m.V) < s.cfg.SlowCutoff
}

// slowKey is the key stored for a slow object: its position extrapolated
// to t = 0 (the line's intercept), which with the velocity in Aux
// reconstructs the exact trajectory. Slow speeds keep intercepts bounded:
// |y0 − v·t0| ≤ YMax + cutoff·t0.
func slowKey(m dual.Motion) float64 { return m.Y0 - m.V*m.T0 }

// Insert implements Index1D.
func (s *SpeedPartitioned) Insert(m dual.Motion) error {
	if !s.isSlow(m) {
		return s.moving.Insert(m)
	}
	if m.Y0 < -1e-9 || m.Y0 > s.cfg.Terrain.YMax+1e-9 {
		return fmt.Errorf("core: position %v outside terrain [0, %v]", m.Y0, s.cfg.Terrain.YMax)
	}
	if err := s.slow.Insert(bptree.Entry{Key: slowKey(m), Val: uint64(m.OID), Aux: m.V}); err != nil {
		return err
	}
	s.slowCount++
	return nil
}

// Delete implements Index1D.
func (s *SpeedPartitioned) Delete(m dual.Motion) error {
	if !s.isSlow(m) {
		return s.moving.Delete(m)
	}
	if err := s.slow.Delete(slowKey(m), uint64(m.OID)); err != nil {
		return err
	}
	s.slowCount--
	return nil
}

// Len implements Index1D.
func (s *SpeedPartitioned) Len() int { return s.slowCount + s.moving.Len() }

// SlowLen returns the number of slow-side objects.
func (s *SpeedPartitioned) SlowLen() int { return s.slowCount }

// Query implements Index1D: the moving side answers as usual; the slow
// side is a B+-tree range scan over intercepts, enlarged by the drift a
// slow object can accumulate by the end of the window, with exact
// filtering.
func (s *SpeedPartitioned) Query(q dual.MORQuery, emit func(dual.OID)) error {
	if err := s.moving.Query(q, emit); err != nil {
		return err
	}
	// A slow object with intercept k is at k + v·t; over t ∈ [0, T2] it
	// stays within cutoff·T2 of its intercept, so candidates lie in the
	// enlarged key range.
	drift := s.cfg.SlowCutoff * q.T2
	return s.slow.Range(q.Y1-drift, q.Y2+drift, func(e bptree.Entry) bool {
		m := dual.Motion{OID: dual.OID(e.Val), Y0: e.Key, T0: 0, V: e.Aux}
		if m.Matches(q) {
			emit(m.OID)
		}
		return true
	})
}

// Interface compliance.
var _ Index1D = (*SpeedPartitioned)(nil)
