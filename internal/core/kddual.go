package core

import (
	"fmt"

	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kdtree"
	"mobidx/internal/pager"
)

// KDDualConfig configures the k-d point-access-method index.
type KDDualConfig struct {
	Terrain dual.Terrain
}

// KDDual is the §3.5.1 approach: store each object's Hough-X dual point
// (v, a) in a disk-based k-d tree point access method (the paper's stand-in
// for the hBΠ/LSD family) and answer the MOR query as the linear-constraint
// wedge of Proposition 1 — the query region of Figure 2.
//
// Positive and negative velocities live in separate trees, as the query
// region differs per sign. Intercepts are kept bounded by the §3.2
// generation rotation: each generation computes a against its epoch start,
// so a ∈ [−VMax·T_period, YMax + VMax·T_period] always.
type KDDual struct {
	cfg   KDDualConfig
	store pager.Store
	rot   *Rotator[dual.Motion, *kdDualGen]
}

// NewKDDual creates the index on the given store.
func NewKDDual(store pager.Store, cfg KDDualConfig) (*KDDual, error) {
	if cfg.Terrain.YMax <= 0 || cfg.Terrain.VMin <= 0 || cfg.Terrain.VMax < cfg.Terrain.VMin {
		return nil, fmt.Errorf("core: invalid terrain %+v", cfg.Terrain)
	}
	k := &KDDual{cfg: cfg, store: store}
	rot, err := NewRotator(cfg.Terrain.TPeriod(), motionTime, func(tref float64) (*kdDualGen, error) {
		return newKDDualGen(store, cfg, tref)
	})
	if err != nil {
		return nil, err
	}
	k.rot = rot
	return k, nil
}

// Insert implements Index1D.
func (k *KDDual) Insert(m dual.Motion) error {
	if err := validateMotion(m, k.cfg.Terrain); err != nil {
		return err
	}
	return k.rot.Insert(m)
}

// Delete implements Index1D.
func (k *KDDual) Delete(m dual.Motion) error { return k.rot.Delete(m) }

// Len implements Index1D.
func (k *KDDual) Len() int { return k.rot.Len() }

// Generations exposes the live generation count (normally ≤ 2).
func (k *KDDual) Generations() int { return k.rot.Generations() }

// Query implements Index1D.
func (k *KDDual) Query(q dual.MORQuery, emit func(dual.OID)) error {
	// Objects live in exactly one generation and one sign tree: no
	// cross-generation duplicates are possible.
	for _, g := range k.rot.Live() {
		if err := g.Query(q, emit); err != nil {
			return err
		}
	}
	return nil
}

type kdDualGen struct {
	cfg  KDDualConfig
	tref float64
	pos  *kdtree.Tree
	neg  *kdtree.Tree
	size int
}

func newKDDualGen(store pager.Store, cfg KDDualConfig, tref float64) (*kdDualGen, error) {
	tr := cfg.Terrain
	p := tr.TPeriod()
	// Intercept range for motions updated within [tref, tref+p):
	// a = Y0 − V·(T0−tref), so a ∈ [−VMax·p, YMax] for V > 0 and
	// a ∈ [0, YMax + VMax·p] for V < 0. Small eps margin absorbs float32
	// rounding at the edges.
	const eps = 1e-3
	posWorld := geom.Rect{
		MinX: tr.VMin - eps, MaxX: tr.VMax + eps,
		MinY: -tr.VMax*p - eps, MaxY: tr.YMax + eps,
	}
	negWorld := geom.Rect{
		MinX: -tr.VMax - eps, MaxX: -tr.VMin + eps,
		MinY: -eps, MaxY: tr.YMax + tr.VMax*p + eps,
	}
	pt, err := kdtree.New(store, kdtree.Config{World: posWorld})
	if err != nil {
		return nil, err
	}
	nt, err := kdtree.New(store, kdtree.Config{World: negWorld})
	if err != nil {
		return nil, err
	}
	return &kdDualGen{cfg: cfg, tref: tref, pos: pt, neg: nt}, nil
}

func (g *kdDualGen) tree(positive bool) *kdtree.Tree {
	if positive {
		return g.pos
	}
	return g.neg
}

func (g *kdDualGen) Len() int { return g.size }

func (g *kdDualGen) Insert(m dual.Motion) error {
	p := dual.HoughX(m, g.tref)
	if err := g.tree(m.V > 0).Insert(kdtree.Point{X: p.X, Y: p.Y, Val: uint64(m.OID)}); err != nil {
		return err
	}
	g.size++
	return nil
}

func (g *kdDualGen) Delete(m dual.Motion) error {
	p := dual.HoughX(m, g.tref)
	found, err := g.tree(m.V > 0).Delete(kdtree.Point{X: p.X, Y: p.Y, Val: uint64(m.OID)})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: motion of object %d not found in kd index", m.OID)
	}
	g.size--
	return nil
}

func (g *kdDualGen) Query(q dual.MORQuery, emit func(dual.OID)) error {
	for _, positive := range []bool{true, false} {
		reg := dual.HoughXRegion(q, g.tref, g.cfg.Terrain, positive)
		err := g.tree(positive).SearchRegion(reg, func(p kdtree.Point) bool {
			// Points inside the Proposition 1 region are exact answers
			// (modulo the float32 page rounding both sides share).
			emit(dual.OID(p.Val))
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *kdDualGen) Destroy() error {
	if err := g.pos.Destroy(); err != nil {
		return err
	}
	return g.neg.Destroy()
}
