package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

func newParallelDual(t *testing.T, c int) *DualBPlus {
	t.Helper()
	ix, err := NewDualBPlus(pager.NewMemStore(1024),
		DualBPlusConfig{Terrain: testTerrain, C: c, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func sameOIDs(a, b []dual.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedSet(m map[dual.OID]bool) []dual.OID {
	out := make([]dual.OID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestQueryParallelDifferential is the parallel-vs-sequential property
// test: for a churned index and a sweep of query shapes, QueryParallel at
// worker counts 1, 2, 8, and GOMAXPROCS must return byte-identical slices,
// agree set-wise with the sequential Query path, and (Wide codec, so no
// rounding tolerance) match the brute-force oracle exactly.
func TestQueryParallelDifferential(t *testing.T) {
	leakcheck.Check(t)
	workerCounts := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	execs := make([]*Executor, len(workerCounts))
	for i, wkr := range workerCounts {
		execs[i] = NewExecutor(wkr)
	}

	for _, seed := range []int64{42, 1999, 77} {
		for _, c := range []int{1, 4} {
			ix := newParallelDual(t, c)
			s := newSim(seed, testTerrain)
			for i := 0; i < 300; i++ {
				s.spawn(ix, t)
			}
			for step := 0; step < 30; step++ {
				s.tick(ix, 5, t)
				s.churn(ix, 10, t)
				if step%3 != 0 {
					continue
				}
				queries := []dual.MORQuery{
					s.randQuery(8, 10),   // small: inside one subterrain
					s.randQuery(60, 30),  // large: Lemma 1 decomposition
					s.randQuery(100, 50), // very large
					s.randQuery(0, 10),   // degenerate width
					s.randQuery(40, 0),   // degenerate time
				}
				for _, q := range queries {
					ref, err := ix.QueryParallel(execs[0], q)
					if err != nil {
						t.Fatalf("seed %d c %d: sequential reference: %v", seed, c, err)
					}
					for i := 1; i < len(execs); i++ {
						got, err := ix.QueryParallel(execs[i], q)
						if err != nil {
							t.Fatalf("seed %d c %d workers %d: %v", seed, c, workerCounts[i], err)
						}
						if !sameOIDs(ref, got) {
							t.Fatalf("seed %d c %d workers %d: parallel result diverged\nq=%+v\nref=%v\ngot=%v",
								seed, c, workerCounts[i], q, ref, got)
						}
					}
					// Set-equality with the sequential Query path (which may
					// emit duplicates across subterrain fragments).
					seen := make(map[dual.OID]bool)
					if err := ix.Query(q, func(id dual.OID) { seen[id] = true }); err != nil {
						t.Fatalf("sequential Query: %v", err)
					}
					seq := sortedSet(seen)
					if !sameOIDs(ref, seq) {
						t.Fatalf("seed %d c %d: parallel vs sequential diverged\nq=%+v\npar=%v\nseq=%v",
							seed, c, q, ref, seq)
					}
					// Exact oracle match: Wide codec stores float64, tol=0.
					if want := sortedSet(s.bruteForce(q)); !sameOIDs(ref, want) {
						t.Fatalf("seed %d c %d: parallel vs oracle diverged\nq=%+v\ngot=%v\nwant=%v",
							seed, c, q, ref, want)
					}
				}
			}
		}
	}
}

// TestDualBPlusConcurrentReaders serves queries from many goroutines
// against a fixed index — no writer, no locks — and checks every reader
// gets the oracle answer. The index read path must be mutation-free for
// this to pass under -race.
func TestDualBPlusConcurrentReaders(t *testing.T) {
	leakcheck.Check(t)
	ix := newParallelDual(t, 4)
	s := newSim(7, testTerrain)
	for i := 0; i < 300; i++ {
		s.spawn(ix, t)
	}
	type qa struct {
		q    dual.MORQuery
		want []dual.OID
	}
	cases := make([]qa, 24)
	for i := range cases {
		q := s.randQuery(50, 25)
		cases[i] = qa{q: q, want: sortedSet(s.bruteForce(q))}
	}

	exec := NewExecutor(4)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				c := cases[(r+rep)%len(cases)]
				got, err := ix.QueryParallel(exec, c.q)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !sameOIDs(got, c.want) {
					t.Errorf("reader %d: got %v, want %v", r, got, c.want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestDualBPlusReadersWithWriter is the serving-model stress test:
// queries from several goroutines under RLock, one writer churning the
// index under Lock. Readers verify their answers against an oracle
// snapshot taken inside the same RLock, so the check is exact even as the
// index moves underneath them between queries.
func TestDualBPlusReadersWithWriter(t *testing.T) {
	leakcheck.Check(t)
	ix := newParallelDual(t, 4)
	s := newSim(11, testTerrain)
	for i := 0; i < 250; i++ {
		s.spawn(ix, t)
	}

	var mu sync.RWMutex // serving latch: queries RLock, updates Lock
	var stop atomic.Bool
	var wg sync.WaitGroup
	exec := NewExecutor(2)

	oracle := func(q dual.MORQuery) []dual.OID {
		out := make([]dual.OID, 0, 16)
		for id, m := range s.cur {
			if m.Matches(q) {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	// The query pool is refreshed by the writer each round (under Lock):
	// queries must stay at-or-after the newest observations — a stale
	// query about the past is outside the MOR model.
	queries := make([]dual.MORQuery, 16)
	refresh := func() {
		for i := range queries {
			queries[i] = s.randQuery(60, 30)
		}
	}
	refresh()

	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				mu.RLock()
				q := queries[(r+i)%len(queries)]
				want := oracle(q)
				got, err := ix.QueryParallel(exec, q)
				mu.RUnlock()
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !sameOIDs(got, want) {
					t.Errorf("reader %d: answer diverged from oracle under writer churn", r)
					return
				}
			}
		}(r)
	}

	for round := 0; round < 40 && !t.Failed(); round++ {
		mu.Lock()
		s.tick(ix, 2, t)
		s.churn(ix, 8, t)
		refresh()
		mu.Unlock()
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	// The index is still coherent after the churn.
	if ix.Len() != len(s.cur) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(s.cur))
	}
	q := s.randQuery(80, 40)
	got, err := ix.QueryParallel(NewExecutor(0), q)
	if err != nil {
		t.Fatal(err)
	}
	if want := sortedSet(s.bruteForce(q)); !sameOIDs(got, want) {
		t.Fatalf("post-stress query diverged: got %v, want %v", got, want)
	}
}
