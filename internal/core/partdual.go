package core

import (
	"fmt"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
)

// PartTreeDualConfig configures the partition-tree index.
type PartTreeDualConfig struct {
	Terrain dual.Terrain
}

// PartTreeDual is the (almost) optimal method of §3.4: Hough-X dual points
// in a dynamized external partition tree, answering the Proposition 1
// wedge as a simplex range query in O(n^(1/2+ε) + k) I/Os with linear
// space. The paper notes — and the experiments confirm — that the hidden
// constant makes it slower in practice than the B+-tree approximation; it
// is included as the worst-case-optimal anchor.
type PartTreeDual struct {
	cfg PartTreeDualConfig
	rot *Rotator[dual.Motion, *partDualGen]
}

// NewPartTreeDual creates the index on the given store.
func NewPartTreeDual(store pager.Store, cfg PartTreeDualConfig) (*PartTreeDual, error) {
	if cfg.Terrain.YMax <= 0 || cfg.Terrain.VMin <= 0 || cfg.Terrain.VMax < cfg.Terrain.VMin {
		return nil, fmt.Errorf("core: invalid terrain %+v", cfg.Terrain)
	}
	p := &PartTreeDual{cfg: cfg}
	rot, err := NewRotator(cfg.Terrain.TPeriod(), motionTime, func(tref float64) (*partDualGen, error) {
		pos, err := parttree.New(store, parttree.Config{})
		if err != nil {
			return nil, err
		}
		neg, err := parttree.New(store, parttree.Config{})
		if err != nil {
			return nil, err
		}
		return &partDualGen{cfg: cfg, tref: tref, pos: pos, neg: neg}, nil
	})
	if err != nil {
		return nil, err
	}
	p.rot = rot
	return p, nil
}

// Insert implements Index1D.
func (p *PartTreeDual) Insert(m dual.Motion) error {
	if err := validateMotion(m, p.cfg.Terrain); err != nil {
		return err
	}
	return p.rot.Insert(m)
}

// Delete implements Index1D.
func (p *PartTreeDual) Delete(m dual.Motion) error { return p.rot.Delete(m) }

// Len implements Index1D.
func (p *PartTreeDual) Len() int { return p.rot.Len() }

// Query implements Index1D.
func (p *PartTreeDual) Query(q dual.MORQuery, emit func(dual.OID)) error {
	for _, g := range p.rot.Live() {
		if err := g.Query(q, emit); err != nil {
			return err
		}
	}
	return nil
}

type partDualGen struct {
	cfg  PartTreeDualConfig
	tref float64
	pos  *parttree.Tree
	neg  *parttree.Tree
	size int
}

func (g *partDualGen) tree(positive bool) *parttree.Tree {
	if positive {
		return g.pos
	}
	return g.neg
}

func (g *partDualGen) Len() int { return g.size }

func (g *partDualGen) Insert(m dual.Motion) error {
	pt := dual.HoughX(m, g.tref)
	if err := g.tree(m.V > 0).Insert(parttree.Point{X: pt.X, Y: pt.Y, Val: uint64(m.OID)}); err != nil {
		return err
	}
	g.size++
	return nil
}

func (g *partDualGen) Delete(m dual.Motion) error {
	pt := dual.HoughX(m, g.tref)
	found, err := g.tree(m.V > 0).Delete(parttree.Point{X: pt.X, Y: pt.Y, Val: uint64(m.OID)})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: motion of object %d not found in partition tree", m.OID)
	}
	g.size--
	return nil
}

func (g *partDualGen) Query(q dual.MORQuery, emit func(dual.OID)) error {
	for _, positive := range []bool{true, false} {
		reg := dual.HoughXRegion(q, g.tref, g.cfg.Terrain, positive)
		err := g.tree(positive).SearchRegion(reg, func(p parttree.Point) bool {
			emit(dual.OID(p.Val))
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *partDualGen) Destroy() error {
	if err := g.pos.Destroy(); err != nil {
		return err
	}
	return g.neg.Destroy()
}
