package core

import (
	"fmt"

	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/pager"
	"mobidx/internal/rstar"
)

// RStarSegConfig configures the baseline.
type RStarSegConfig struct {
	Terrain dual.Terrain
}

// RStarSeg is the traditional-SAM baseline of §3.1/§5: each motion is a
// trajectory line segment in the (t, y) plane, running from the update
// point (T0, Y0) to the terrain border the object is heading for (where it
// must issue its next update), approximated by its minimum bounding
// rectangle in an R*-tree. The MOR query is the rectangle
// [T1,T2] × [Y1,Y2]; candidates are filtered by exact segment/rectangle
// intersection, with the segment's orientation recovered from the
// velocity-sign bit packed into the stored reference.
//
// This is the method the paper shows performs worst on both queries
// (Figures 6-7) and updates (">90 I/Os per update", §5): the MBR of a long
// diagonal segment covers far more area than the trajectory does.
type RStarSeg struct {
	cfg  RStarSegConfig
	tree *rstar.Tree
}

// NewRStarSeg creates the baseline index on the given store.
func NewRStarSeg(store pager.Store, cfg RStarSegConfig) (*RStarSeg, error) {
	if cfg.Terrain.YMax <= 0 || cfg.Terrain.VMin <= 0 || cfg.Terrain.VMax < cfg.Terrain.VMin {
		return nil, fmt.Errorf("core: invalid terrain %+v", cfg.Terrain)
	}
	t, err := rstar.New(store, rstar.Config{})
	if err != nil {
		return nil, err
	}
	return &RStarSeg{cfg: cfg, tree: t}, nil
}

// segment returns the trajectory segment of m in the (t, y) plane, from
// the update point to the border the object will hit.
func (r *RStarSeg) segment(m dual.Motion) (geom.Segment, error) {
	if m.V == 0 {
		return geom.Segment{}, fmt.Errorf("core: RStarSeg indexes moving objects only (v != 0)")
	}
	var yEnd float64
	if m.V > 0 {
		yEnd = r.cfg.Terrain.YMax
	}
	tEnd := m.T0 + (yEnd-m.Y0)/m.V
	return geom.Segment{
		A: geom.Point{X: m.T0, Y: m.Y0},
		B: geom.Point{X: tEnd, Y: yEnd},
	}, nil
}

// val packs the object id with the velocity-sign bit so the exact segment
// can be reconstructed from the stored MBR alone.
func (r *RStarSeg) val(m dual.Motion) uint64 {
	v := uint64(m.OID) << 1
	if m.V < 0 {
		v |= 1
	}
	return v
}

// Insert implements Index1D.
func (r *RStarSeg) Insert(m dual.Motion) error {
	if err := validateMotion(m, r.cfg.Terrain); err != nil {
		return err
	}
	seg, err := r.segment(m)
	if err != nil {
		return err
	}
	return r.tree.Insert(rstar.Item{Rect: seg.Bound(), Val: r.val(m)})
}

// Delete implements Index1D.
func (r *RStarSeg) Delete(m dual.Motion) error {
	seg, err := r.segment(m)
	if err != nil {
		return err
	}
	found, err := r.tree.Delete(rstar.Item{Rect: seg.Bound(), Val: r.val(m)})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: motion of object %d not found in R*-tree", m.OID)
	}
	return nil
}

// Len implements Index1D.
func (r *RStarSeg) Len() int { return r.tree.Len() }

// Query implements Index1D.
func (r *RStarSeg) Query(q dual.MORQuery, emit func(dual.OID)) error {
	rect := geom.Rect{MinX: q.T1, MinY: q.Y1, MaxX: q.T2, MaxY: q.Y2}
	return r.tree.SearchRect(rect, func(it rstar.Item) bool {
		// Reconstruct the segment from the MBR and the sign bit: positive
		// velocity runs corner-to-corner rising, negative falling.
		neg := it.Val&1 == 1
		var seg geom.Segment
		if neg {
			seg = geom.Segment{
				A: geom.Point{X: it.Rect.MinX, Y: it.Rect.MaxY},
				B: geom.Point{X: it.Rect.MaxX, Y: it.Rect.MinY},
			}
		} else {
			seg = geom.Segment{
				A: geom.Point{X: it.Rect.MinX, Y: it.Rect.MinY},
				B: geom.Point{X: it.Rect.MaxX, Y: it.Rect.MaxY},
			}
		}
		if seg.IntersectsRect(rect) {
			emit(dual.OID(it.Val >> 1))
		}
		return true
	})
}

// Interface compliance checks.
var (
	_ Index1D = (*DualBPlus)(nil)
	_ Index1D = (*KDDual)(nil)
	_ Index1D = (*RStarSeg)(nil)
)
