// Package dual implements the dual space-time representations of §3.2 of
// "On Indexing Mobile Objects" (Kollios, Gunopulos, Tsotras, PODS 1999):
//
//   - Hough-X maps the trajectory y(t) = v·t + a to the point (v, a);
//     the one-dimensional MOR query becomes the wedge of Proposition 1.
//   - Hough-Y maps the same trajectory, rewritten t = n·y + b with
//     n = 1/v, to the point (n, b); b is the time at which the object
//     crosses a chosen horizontal observation line y = y_r. The MOR query
//     becomes the intersection of two half-planes (Figure 4), which the
//     approximation method of §3.5.2 relaxes to a rectangle whose extra
//     area E is given by Equation (1).
//
// The package also defines Motion, the linear motion model of §2, and the
// exact MOR membership predicate used for final filtering.
package dual

import (
	"math"

	"mobidx/internal/geom"
)

// OID identifies a mobile object.
type OID uint64

// Motion is the motion information of one object moving on a line: it was
// at position Y0 at time T0 and moves with constant velocity V, so its
// position at time t ≥ T0 is Y0 + V·(t − T0). Objects issue an update
// (delete + insert) whenever V changes or a terrain border is reached (§2).
type Motion struct {
	OID OID
	Y0  float64 // position at time T0
	T0  float64 // time of the last update
	V   float64 // velocity; |V| ∈ [VMin, VMax] for "moving" objects
}

// At returns the object's position at time t.
func (m Motion) At(t float64) float64 { return m.Y0 + m.V*(t-m.T0) }

// MORQuery is the one-dimensional MOR query of §2: report all objects that
// reside inside [Y1, Y2] at some instant in [T1, T2], with T1 ≤ T2.
type MORQuery struct {
	Y1, Y2 float64 // spatial range, Y1 ≤ Y2
	T1, T2 float64 // time range, now ≤ T1 ≤ T2
}

// Matches is the exact membership predicate: it reports whether the motion
// places the object inside the query's spatial range at some time within
// the query's time range. Access methods over-approximate and then filter
// candidates through Matches.
func (m Motion) Matches(q MORQuery) bool {
	// The times at which y(t) ∈ [Y1, Y2] form a closed interval (possibly
	// empty, possibly unbounded for v = 0); intersect it with [T1, T2].
	if geom.ApproxEq(m.V, 0) {
		return m.Y0 >= q.Y1-geom.Eps && m.Y0 <= q.Y2+geom.Eps
	}
	tA := m.T0 + (q.Y1-m.Y0)/m.V
	tB := m.T0 + (q.Y2-m.Y0)/m.V
	if tA > tB {
		tA, tB = tB, tA
	}
	return tA <= q.T2+geom.Eps && tB >= q.T1-geom.Eps
}

// Terrain bounds the 1-dimensional world (§2, §3.2): objects live on
// [0, YMax] and moving objects have speeds in [VMin, VMax].
type Terrain struct {
	YMax float64
	VMin float64
	VMax float64
}

// TPeriod returns YMax/VMin, the maximum time between forced updates: every
// object must have updated within the last TPeriod instants, the fact that
// makes the two-index rotation scheme of §3.2 correct.
func (tr Terrain) TPeriod() float64 { return tr.YMax / tr.VMin }

// ---------------------------------------------------------------------------
// Hough-X: (v, a) plane
// ---------------------------------------------------------------------------

// HoughX maps the motion to its Hough-X dual point (v, a), with the
// intercept a computed against the vertical line t = tref (the epoch start
// of the index holding the point, per the rotation scheme of §3.2, which
// keeps intercepts bounded).
func HoughX(m Motion, tref float64) geom.Point {
	return geom.Point{X: m.V, Y: m.At(tref)}
}

// MotionFromHoughX inverts HoughX.
func MotionFromHoughX(id OID, p geom.Point, tref float64) Motion {
	return Motion{OID: id, Y0: p.Y, T0: tref, V: p.X}
}

// HoughXRegion returns the query region of Proposition 1 in the (v, a)
// plane for the given velocity sign. Times in q are absolute; tref is the
// reference line against which the stored intercepts were computed.
//
// For v > 0 the region is
//
//	v ≥ vmin ∧ v ≤ vmax ∧ a + t2·v ≥ Y1 ∧ a + t1·v ≤ Y2
//
// and for v < 0
//
//	v ≤ −vmin ∧ v ≥ −vmax ∧ a + t1·v ≥ Y1 ∧ a + t2·v ≤ Y2
//
// with t1 = T1 − tref, t2 = T2 − tref.
func HoughXRegion(q MORQuery, tref float64, tr Terrain, positive bool) geom.ConvexRegion {
	t1 := q.T1 - tref
	t2 := q.T2 - tref
	if positive {
		return geom.NewRegion(
			geom.Constraint{A: -1, B: 0, C: -tr.VMin}, // v ≥ vmin
			geom.Constraint{A: 1, B: 0, C: tr.VMax},   // v ≤ vmax
			geom.Constraint{A: -t2, B: -1, C: -q.Y1},  // a + t2·v ≥ Y1
			geom.Constraint{A: t1, B: 1, C: q.Y2},     // a + t1·v ≤ Y2
		)
	}
	return geom.NewRegion(
		geom.Constraint{A: 1, B: 0, C: -tr.VMin}, // v ≤ −vmin
		geom.Constraint{A: -1, B: 0, C: tr.VMax}, // v ≥ −vmax
		geom.Constraint{A: -t1, B: -1, C: -q.Y1}, // a + t1·v ≥ Y1
		geom.Constraint{A: t2, B: 1, C: q.Y2},    // a + t2·v ≤ Y2
	)
}

// HoughXBound returns a bounding rectangle of the Hough-X query region for
// the given sign, used to seed range searches before exact pruning.
func HoughXBound(q MORQuery, tref float64, tr Terrain, positive bool) geom.Rect {
	t1 := q.T1 - tref
	t2 := q.T2 - tref
	if positive {
		// a ≥ Y1 − v·t2 ≥ Y1 − vmax·t2 ; a ≤ Y2 − v·t1 ≤ Y2 − vmin·t1.
		return geom.Rect{
			MinX: tr.VMin, MaxX: tr.VMax,
			MinY: q.Y1 - tr.VMax*t2, MaxY: q.Y2 - tr.VMin*t1,
		}
	}
	return geom.Rect{
		MinX: -tr.VMax, MaxX: -tr.VMin,
		MinY: q.Y1 + tr.VMin*t1, MaxY: q.Y2 + tr.VMax*t2,
	}
}

// ---------------------------------------------------------------------------
// Hough-Y: (n, b) plane
// ---------------------------------------------------------------------------

// HoughY maps the motion to its Hough-Y dual (n, b) observed from the
// horizontal line y = yr: n = 1/v and b is the time at which the object's
// trajectory crosses y = yr.
func HoughY(m Motion, yr float64) (n, b float64) {
	n = 1 / m.V
	b = m.T0 + (yr-m.Y0)/m.V
	return n, b
}

// MotionFromHoughY inverts HoughY: an object with crossing time b at y = yr
// and velocity v follows y(t) = yr + v·(t − b).
func MotionFromHoughY(id OID, v, b, yr float64) Motion {
	return Motion{OID: id, Y0: yr, T0: b, V: v}
}

// intervalProd returns the min and max of n·w over n ∈ [nLo, nHi].
func intervalProd(nLo, nHi, w float64) (lo, hi float64) {
	a := nLo * w
	b := nHi * w
	return math.Min(a, b), math.Max(a, b)
}

// HoughYRect returns the rectangle approximation of the MOR query in the
// Hough-Y plane observed from y = yr (Figure 4): the n-side is fixed to the
// full slope range for the velocity sign, and the b-range is the smallest
// interval containing the exact wedge. Every object in the exact answer
// with the given sign has b within the returned range; the converse over-
// approximation error is the area E of Equation (1).
func HoughYRect(q MORQuery, yr float64, tr Terrain, positive bool) (bLo, bHi float64) {
	var nLo, nHi float64
	if positive {
		nLo, nHi = 1/tr.VMax, 1/tr.VMin
	} else {
		nLo, nHi = -1/tr.VMin, -1/tr.VMax
	}
	// The trajectory crosses y at time t(y) = b + n·(y − yr). For n > 0 the
	// object is inside [Y1,Y2] during [t(Y1), t(Y2)]; for n < 0 during
	// [t(Y2), t(Y1)]. Overlap with [T1,T2] gives, uniformly in sign,
	//   b ≥ T1 − max(n·(Yfar − yr))   and   b ≤ T2 − min(n·(Ynear − yr))
	// where Yfar/Ynear are the endpoints producing the widest window.
	yFar, yNear := q.Y2, q.Y1
	if !positive {
		yFar, yNear = q.Y1, q.Y2
	}
	_, hi := intervalProd(nLo, nHi, yFar-yr)
	lo, _ := intervalProd(nLo, nHi, yNear-yr)
	return q.T1 - hi, q.T2 - lo
}

// EnlargementE is the extra area E = E1 + E2 of Equation (1) incurred by
// approximating the Hough-Y wedge with a rectangle when the b-coordinates
// are observed from y = yr:
//
//	E = ½ · ((vmax − vmin)/(vmin·vmax))² · (|Y2 − yr| + |Y1 − yr|)
//
// The approximation method routes each query to the observation index
// minimizing this quantity (§3.5.2).
func EnlargementE(q MORQuery, yr float64, tr Terrain) float64 {
	f := (tr.VMax - tr.VMin) / (tr.VMin * tr.VMax)
	return 0.5 * f * f * (math.Abs(q.Y2-yr) + math.Abs(q.Y1-yr))
}

// EnlargementBound is the bound of Equation (2) on E when the query's
// spatial extent does not exceed one subterrain (YMax/c) and the query is
// routed to the nearest observation index.
func EnlargementBound(tr Terrain, c int) float64 {
	f := (tr.VMax - tr.VMin) / (tr.VMin * tr.VMax)
	return 0.5 * f * f * (tr.YMax / float64(c))
}
