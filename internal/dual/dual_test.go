package dual

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/geom"
)

var terr = Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

func randomMotion(rng *rand.Rand, tnow float64) Motion {
	v := terr.VMin + rng.Float64()*(terr.VMax-terr.VMin)
	if rng.Intn(2) == 0 {
		v = -v
	}
	return Motion{
		OID: OID(rng.Uint64()),
		Y0:  rng.Float64() * terr.YMax,
		T0:  tnow - rng.Float64()*50,
		V:   v,
	}
}

func randomQuery(rng *rand.Rand, tnow float64) MORQuery {
	y1 := rng.Float64() * terr.YMax
	y2 := y1 + rng.Float64()*150
	t1 := tnow + rng.Float64()*30
	t2 := t1 + rng.Float64()*60
	return MORQuery{Y1: y1, Y2: y2, T1: t1, T2: t2}
}

func TestMotionAt(t *testing.T) {
	m := Motion{Y0: 100, T0: 10, V: 2}
	if got := m.At(10); got != 100 {
		t.Fatalf("At(T0) = %v", got)
	}
	if got := m.At(15); got != 110 {
		t.Fatalf("At(15) = %v, want 110", got)
	}
}

func TestMatchesExact(t *testing.T) {
	m := Motion{Y0: 0, T0: 0, V: 1} // y(t) = t
	cases := []struct {
		q    MORQuery
		want bool
	}{
		{MORQuery{Y1: 5, Y2: 10, T1: 5, T2: 10}, true},   // inside whole window
		{MORQuery{Y1: 5, Y2: 10, T1: 0, T2: 4}, false},   // arrives too late
		{MORQuery{Y1: 5, Y2: 10, T1: 11, T2: 20}, false}, // already past
		{MORQuery{Y1: 5, Y2: 10, T1: 10, T2: 20}, true},  // touches at t=10
		{MORQuery{Y1: 5, Y2: 10, T1: 0, T2: 5}, true},    // touches at t=5
	}
	for i, c := range cases {
		if got := m.Matches(c.q); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
	// Stationary object.
	s := Motion{Y0: 7, T0: 0, V: 0}
	if !s.Matches(MORQuery{Y1: 5, Y2: 10, T1: 100, T2: 200}) {
		t.Error("stationary object inside range should always match")
	}
	if s.Matches(MORQuery{Y1: 8, Y2: 10, T1: 0, T2: 100}) {
		t.Error("stationary object outside range should never match")
	}
	// Negative velocity.
	n := Motion{Y0: 100, T0: 0, V: -2} // y(t)=100-2t, in [50,60] during [20,25]
	if !n.Matches(MORQuery{Y1: 50, Y2: 60, T1: 22, T2: 23}) {
		t.Error("negative-velocity match failed")
	}
	if n.Matches(MORQuery{Y1: 50, Y2: 60, T1: 26, T2: 30}) {
		t.Error("negative-velocity non-match accepted")
	}
}

// Matches must agree with brute-force time sampling.
func TestMatchesAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tnow := 500.0
	for i := 0; i < 3000; i++ {
		m := randomMotion(rng, tnow)
		q := randomQuery(rng, tnow)
		sampled := false
		for k := 0; k <= 400; k++ {
			tt := q.T1 + float64(k)/400*(q.T2-q.T1)
			y := m.At(tt)
			if y >= q.Y1 && y <= q.Y2 {
				sampled = true
				break
			}
		}
		got := m.Matches(q)
		if sampled && !got {
			t.Fatalf("sampling hit but Matches=false: m=%+v q=%+v", m, q)
		}
		// The converse can differ only at the interval boundary; verify
		// analytically that when Matches is true, the crossing interval
		// truly overlaps.
		if got && !sampled && m.V != 0 {
			tA := m.T0 + (q.Y1-m.Y0)/m.V
			tB := m.T0 + (q.Y2-m.Y0)/m.V
			if tA > tB {
				tA, tB = tB, tA
			}
			if tA > q.T2+1e-6 || tB < q.T1-1e-6 {
				t.Fatalf("Matches=true but interval disjoint: m=%+v q=%+v", m, q)
			}
		}
	}
}

// Proposition 1: a motion matches the query iff its Hough-X dual point lies
// in the region for its velocity sign.
func TestHoughXRegionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tnow := 300.0
	tref := 0.0
	for i := 0; i < 5000; i++ {
		m := randomMotion(rng, tnow)
		q := randomQuery(rng, tnow)
		p := HoughX(m, tref)
		reg := HoughXRegion(q, tref, terr, m.V > 0)
		inRegion := reg.ContainsPoint(p)
		want := m.Matches(q)
		if inRegion != want {
			t.Fatalf("Hough-X region mismatch: in=%v want=%v m=%+v q=%+v p=%+v",
				inRegion, want, m, q, p)
		}
	}
}

// The Hough-X dual point with a nonzero reference line must land in the
// region built with the same reference.
func TestHoughXReferenceShift(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tnow := 5000.0
	tref := 4000.0
	for i := 0; i < 2000; i++ {
		m := randomMotion(rng, tnow)
		q := randomQuery(rng, tnow)
		p := HoughX(m, tref)
		reg := HoughXRegion(q, tref, terr, m.V > 0)
		if reg.ContainsPoint(p) != m.Matches(q) {
			t.Fatalf("shifted-reference mismatch: m=%+v q=%+v", m, q)
		}
	}
}

func TestHoughXRoundTrip(t *testing.T) {
	m := Motion{OID: 42, Y0: 123, T0: 10, V: -0.5}
	p := HoughX(m, 0)
	back := MotionFromHoughX(42, p, 0)
	if math.Abs(back.At(100)-m.At(100)) > 1e-9 {
		t.Fatalf("round trip differs: %v vs %v", back.At(100), m.At(100))
	}
}

func TestHoughXBoundContainsRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tnow := 300.0
	for i := 0; i < 2000; i++ {
		m := randomMotion(rng, tnow)
		q := randomQuery(rng, tnow)
		if !m.Matches(q) {
			continue
		}
		p := HoughX(m, 0)
		b := HoughXBound(q, 0, terr, m.V > 0)
		if !b.Contains(p) {
			t.Fatalf("bound misses matching dual point: m=%+v q=%+v b=%+v p=%+v", m, q, b, p)
		}
	}
}

func TestHoughYRoundTrip(t *testing.T) {
	m := Motion{OID: 1, Y0: 200, T0: 50, V: 1.2}
	yr := 375.0
	n, b := HoughY(m, yr)
	if math.Abs(n-1/1.2) > 1e-12 {
		t.Fatalf("n = %v", n)
	}
	// At time b the object must be at yr.
	if math.Abs(m.At(b)-yr) > 1e-9 {
		t.Fatalf("At(b) = %v, want %v", m.At(b), yr)
	}
	back := MotionFromHoughY(1, m.V, b, yr)
	if math.Abs(back.At(77)-m.At(77)) > 1e-9 {
		t.Fatal("Hough-Y round trip differs")
	}
}

// The Hough-Y rectangle is a superset of the exact answer: every matching
// motion has b within [bLo, bHi] for its sign.
func TestHoughYRectIsSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tnow := 300.0
	for _, yr := range []float64{0, 250, 500, 750, 1000} {
		for i := 0; i < 3000; i++ {
			m := randomMotion(rng, tnow)
			q := randomQuery(rng, tnow)
			if !m.Matches(q) {
				continue
			}
			_, b := HoughY(m, yr)
			bLo, bHi := HoughYRect(q, yr, terr, m.V > 0)
			if b < bLo-1e-9 || b > bHi+1e-9 {
				t.Fatalf("yr=%v: matching object outside Hough-Y rect: b=%v not in [%v,%v] m=%+v q=%+v",
					yr, b, bLo, bHi, m, q)
			}
		}
	}
}

// The rectangle should be reasonably tight: when the observation line is at
// the query, a candidate far outside the time window must be excluded.
func TestHoughYRectExcludesFar(t *testing.T) {
	q := MORQuery{Y1: 495, Y2: 505, T1: 100, T2: 110}
	yr := 500.0
	bLo, bHi := HoughYRect(q, yr, terr, true)
	// An object crossing y=500 at time 500 is far outside.
	if 500 >= bLo && 500 <= bHi {
		t.Fatalf("rect [%v,%v] fails to exclude crossing time 500", bLo, bHi)
	}
	// Sanity: the rect brackets the window.
	if bLo > 100 || bHi < 110 {
		t.Fatalf("rect [%v,%v] does not bracket the query window", bLo, bHi)
	}
}

func TestEnlargementE(t *testing.T) {
	q := MORQuery{Y1: 400, Y2: 500, T1: 0, T2: 10}
	// E is minimized at the observation line closest to the query center
	// and grows linearly with distance.
	e0 := EnlargementE(q, 450, terr)
	e1 := EnlargementE(q, 700, terr)
	e2 := EnlargementE(q, 0, terr)
	if e0 >= e1 || e1 >= e2 {
		t.Fatalf("E ordering wrong: %v %v %v", e0, e1, e2)
	}
	// Closed form check at yr = 0: |Y2| + |Y1| = 900.
	f := (terr.VMax - terr.VMin) / (terr.VMin * terr.VMax)
	want := 0.5 * f * f * 900
	if math.Abs(e2-want) > 1e-9 {
		t.Fatalf("E(0) = %v, want %v", e2, want)
	}
}

func TestEnlargementBound(t *testing.T) {
	// Equation (2): for a query no wider than a subterrain, routing to the
	// nearest observation line keeps E ≤ bound.
	rng := rand.New(rand.NewSource(53))
	for _, c := range []int{2, 4, 8} {
		bound := EnlargementBound(terr, c)
		for i := 0; i < 2000; i++ {
			y1 := rng.Float64() * terr.YMax
			w := rng.Float64() * terr.YMax / float64(c)
			y2 := math.Min(y1+w, terr.YMax)
			q := MORQuery{Y1: y1, Y2: y2, T1: 0, T2: 10}
			// Route to the best of the c observation lines placed at the
			// subterrain midpoints yr_i = (i+½)·YMax/c, the placement that
			// realizes the bound of Equation (2).
			best := math.Inf(1)
			for idx := 0; idx < c; idx++ {
				yr := (float64(idx) + 0.5) * terr.YMax / float64(c)
				if e := EnlargementE(q, yr, terr); e < best {
					best = e
				}
			}
			if best > bound+1e-9 {
				t.Fatalf("c=%d: E=%v exceeds bound %v for q=%+v", c, best, bound, q)
			}
		}
	}
}

func TestTPeriod(t *testing.T) {
	if got := terr.TPeriod(); math.Abs(got-1000/0.16) > 1e-9 {
		t.Fatalf("TPeriod = %v", got)
	}
}

// All corners of the Hough-X region polygon (clipped against its own
// bounding box) must satisfy Proposition 1's constraints — a consistency
// check between the constraint form and the rect bound.
func TestHoughXRegionWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tnow := 300.0
	for i := 0; i < 500; i++ {
		q := randomQuery(rng, tnow)
		for _, pos := range []bool{true, false} {
			reg := HoughXRegion(q, 0, terr, pos)
			bound := HoughXBound(q, 0, terr, pos)
			// Sample points inside the region: they must be within bound.
			for k := 0; k < 50; k++ {
				p := geom.Point{
					X: bound.MinX + rng.Float64()*(bound.MaxX-bound.MinX),
					Y: bound.MinY + rng.Float64()*(bound.MaxY-bound.MinY),
				}
				if reg.ContainsPoint(p) && !bound.Contains(p) {
					t.Fatalf("region point outside bound")
				}
			}
		}
	}
}
