package dual

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sanitizeMotion maps arbitrary quick-generated floats into a valid
// moving-object motion for the test terrain.
func sanitizeMotion(y0, t0, v float64) (Motion, bool) {
	if math.IsNaN(y0) || math.IsNaN(t0) || math.IsNaN(v) ||
		math.IsInf(y0, 0) || math.IsInf(t0, 0) || math.IsInf(v, 0) {
		return Motion{}, false
	}
	m := Motion{
		Y0: math.Abs(math.Mod(y0, terr.YMax)),
		T0: math.Abs(math.Mod(t0, 500)),
	}
	speed := terr.VMin + math.Abs(math.Mod(v, terr.VMax-terr.VMin))
	if math.Signbit(v) {
		speed = -speed
	}
	m.V = speed
	return m, true
}

// Property: Hough-X round trip preserves the trajectory exactly (float64).
func TestQuickHoughXRoundTrip(t *testing.T) {
	f := func(y0, t0, v, tref, probe float64) bool {
		m, ok := sanitizeMotion(y0, t0, v)
		if !ok {
			return true
		}
		if math.IsNaN(tref) || math.IsInf(tref, 0) || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		tref = math.Mod(tref, 1000)
		probe = math.Mod(probe, 1000)
		p := HoughX(m, tref)
		back := MotionFromHoughX(m.OID, p, tref)
		return math.Abs(back.At(probe)-m.At(probe)) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Hough-Y round trip preserves the trajectory exactly.
func TestQuickHoughYRoundTrip(t *testing.T) {
	f := func(y0, t0, v, yr, probe float64) bool {
		m, ok := sanitizeMotion(y0, t0, v)
		if !ok {
			return true
		}
		if math.IsNaN(yr) || math.IsInf(yr, 0) || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		yr = math.Abs(math.Mod(yr, terr.YMax))
		probe = math.Mod(probe, 1000)
		_, b := HoughY(m, yr)
		back := MotionFromHoughY(m.OID, m.V, b, yr)
		return math.Abs(back.At(probe)-m.At(probe)) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Matches is monotone in the query — enlarging the query never
// loses an answer.
func TestQuickMatchesMonotone(t *testing.T) {
	f := func(y0, t0, v, qy, qw, qt, qtw, grow float64) bool {
		m, ok := sanitizeMotion(y0, t0, v)
		if !ok {
			return true
		}
		for _, x := range []float64{qy, qw, qt, qtw, grow} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q := MORQuery{
			Y1: math.Abs(math.Mod(qy, 900)),
			T1: math.Abs(math.Mod(qt, 400)),
		}
		q.Y2 = q.Y1 + math.Abs(math.Mod(qw, 100))
		q.T2 = q.T1 + math.Abs(math.Mod(qtw, 60))
		g := math.Abs(math.Mod(grow, 50))
		big := MORQuery{Y1: q.Y1 - g, Y2: q.Y2 + g, T1: q.T1 - g, T2: q.T2 + g}
		if m.Matches(q) && !m.Matches(big) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Proposition 1 equivalence — Matches(q) iff the Hough-X dual
// point lies inside the sign-matched region (quick-generated inputs,
// complementing the table-driven test).
func TestQuickProposition1(t *testing.T) {
	f := func(y0, t0, v, qy, qw, qt, qtw float64) bool {
		m, ok := sanitizeMotion(y0, t0, v)
		if !ok {
			return true
		}
		for _, x := range []float64{qy, qw, qt, qtw} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q := MORQuery{
			Y1: math.Abs(math.Mod(qy, 900)),
			T1: math.Abs(math.Mod(qt, 400)),
		}
		q.Y2 = q.Y1 + math.Abs(math.Mod(qw, 100))
		q.T2 = q.T1 + math.Abs(math.Mod(qtw, 60))
		p := HoughX(m, 0)
		reg := HoughXRegion(q, 0, terr, m.V > 0)
		// Skip razor-edge cases where float tolerance decides membership.
		margin := 1e-7
		nearEdge := false
		for _, c := range reg.Cs {
			if math.Abs(c.Eval(p)) < margin {
				nearEdge = true
			}
		}
		if nearEdge {
			return true
		}
		return reg.ContainsPoint(p) == m.Matches(q)
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
