package geom

import (
	"math"
	"testing"
)

// FuzzClipConvex drives the Sutherland–Hodgman clipper (ClipRect /
// clipPolygon) with arbitrary rectangles and half-plane pairs and checks
// the properties the access methods rely on:
//
//   - ClipRect returns a non-nil polygon iff IntersectsRect reports an
//     intersection (the two walk the same clip, so disagreement means a
//     divergence bug);
//   - every returned vertex lies inside the rectangle and satisfies
//     every constraint, to within a rounding tolerance scaled to the
//     magnitudes involved;
//   - the clip of a 4-gon by k half-planes has at most 4+k vertices
//     (each half-plane adds at most one);
//   - ContainsRect implies IntersectsRect for non-empty rectangles.
func FuzzClipConvex(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 1.0, 0.0, 5.0, 0.0, 1.0, 5.0)
	f.Add(-3.0, -3.0, 3.0, 3.0, 1.0, 1.0, 0.0, -1.0, 1.0, 2.0)
	f.Add(0.0, 0.0, 1.0, 1.0, -1.0, 0.0, -2.0, 0.0, 0.0, 0.0)
	f.Add(5.0, 5.0, 5.0, 5.0, 0.0, 1.0, 5.0, 1.0, 0.0, 5.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, a1, b1, c1, a2, b2, c2 float64) {
		for _, v := range []float64{x1, y1, x2, y2, a1, b1, c1, a2, b2, c2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e4 {
				t.Skip("outside the coordinate regime the tolerances are scaled for")
			}
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		rect := Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
		region := NewRegion(Constraint{A: a1, B: b1, C: c1}, Constraint{A: a2, B: b2, C: c2})

		poly := region.ClipRect(rect)
		if inter := region.IntersectsRect(rect); (poly != nil) != inter {
			t.Fatalf("ClipRect=%v but IntersectsRect=%v for rect=%+v region=%+v", poly, inter, rect, region)
		}
		if region.ContainsRect(rect) && poly == nil {
			t.Fatalf("ContainsRect but no intersection for rect=%+v region=%+v", rect, region)
		}
		if len(poly) > 4+len(region.Cs) {
			t.Fatalf("clip of a 4-gon by %d half-planes has %d vertices", len(region.Cs), len(poly))
		}

		coordTol := 1e-9 * (1 + math.Max(math.Abs(x1)+math.Abs(x2), math.Abs(y1)+math.Abs(y2)))
		for _, p := range poly {
			if p.X < rect.MinX-coordTol || p.X > rect.MaxX+coordTol ||
				p.Y < rect.MinY-coordTol || p.Y > rect.MaxY+coordTol {
				t.Fatalf("vertex %+v escapes rect %+v (tol %g)", p, rect, coordTol)
			}
			for _, c := range region.Cs {
				scale := (math.Abs(c.A) + math.Abs(c.B)) * (1 + math.Max(math.Abs(p.X), math.Abs(p.Y)))
				if c.Eval(p) > Eps+1e-9*scale {
					t.Fatalf("vertex %+v violates constraint %+v by %g (tol %g)",
						p, c, c.Eval(p), Eps+1e-9*scale)
				}
			}
		}
	})
}
