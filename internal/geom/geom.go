// Package geom provides the small computational-geometry kernel used by the
// mobile-object indexes: points, rectangles, segments, half-plane
// (linear-constraint) conjunctions, and exact overlap tests between
// rectangles and convex constraint regions.
//
// Linear-constraint queries follow Goldstein, Ramakrishnan, Shaft and Yu
// ("Processing Queries By Linear Constraints", PODS 1997): a query region is
// a conjunction of half-planes, and an access method prunes a subtree iff
// its bounding rectangle does not intersect the region, reporting a whole
// subtree when its rectangle is contained in the region.
package geom

import "math"

// Eps is the tolerance used by the predicates in this package. Coordinates
// in the workloads of the paper are O(10^3) and velocities O(1), so a fixed
// absolute tolerance is adequate.
const Eps = 1e-9

// ApproxEq reports whether a and b are equal to within Eps. It is the
// only sanctioned way to test two floats for equality in this module;
// exact ==/!= on floats is rejected by the floateq static-analysis pass.
func ApproxEq(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Rect is an axis-parallel rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns a rectangle that behaves as the identity under Union:
// it contains nothing and extends nothing.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is an empty rectangle (as built by EmptyRect, or
// inverted by construction).
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX-Eps && p.X <= r.MaxX+Eps && p.Y >= r.MinY-Eps && p.Y <= r.MaxY+Eps
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX-Eps && s.MaxX <= r.MaxX+Eps && s.MinY >= r.MinY-Eps && s.MaxY <= r.MaxY+Eps
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX+Eps && s.MinX <= r.MaxX+Eps && r.MinY <= s.MaxY+Eps && s.MinY <= r.MaxY+Eps
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Extend returns the smallest rectangle containing r and p.
func (r Rect) Extend(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Area returns the area of r (zero for empty or degenerate rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r, the quantity minimized by the
// R*-tree split axis selection.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Intersection returns the overlap of r and s; the result is empty when they
// are disjoint.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersection(s).Area() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2} }

// Corners returns the four corners of r in counter-clockwise order.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// Segment is a straight line segment between two points.
type Segment struct {
	A, B Point
}

// Bound returns the minimum bounding rectangle of s.
func (s Segment) Bound() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X), MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X), MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// IntersectsRect reports whether the segment has at least one point inside
// r. It clips the segment's parameter interval against each slab of r
// (Liang–Barsky), which is exact for axis-parallel rectangles.
func (s Segment) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	t0, t1 := 0.0, 1.0
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	clip := func(p, q float64) bool {
		// Clip t-range against p*t <= q.
		if math.Abs(p) < Eps {
			return q >= -Eps // parallel: inside iff q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, s.A.X-r.MinX) || !clip(dx, r.MaxX-s.A.X) ||
		!clip(-dy, s.A.Y-r.MinY) || !clip(dy, r.MaxY-s.A.Y) {
		return false
	}
	return t0 <= t1+Eps
}

// Constraint is the half-plane A*x + B*y <= C.
type Constraint struct {
	A, B, C float64
}

// Holds reports whether p satisfies the constraint.
func (c Constraint) Holds(p Point) bool { return c.A*p.X+c.B*p.Y <= c.C+Eps }

// Eval returns A*x + B*y - C; negative or zero means p satisfies c.
func (c Constraint) Eval(p Point) float64 { return c.A*p.X + c.B*p.Y - c.C }

// ConvexRegion is a conjunction of half-planes (a possibly unbounded convex
// polygon). The zero value is the whole plane.
type ConvexRegion struct {
	Cs []Constraint
}

// NewRegion builds a region from constraints.
func NewRegion(cs ...Constraint) ConvexRegion { return ConvexRegion{Cs: cs} }

// And returns the conjunction of r with additional constraints.
func (r ConvexRegion) And(cs ...Constraint) ConvexRegion {
	out := make([]Constraint, 0, len(r.Cs)+len(cs))
	out = append(out, r.Cs...)
	out = append(out, cs...)
	return ConvexRegion{Cs: out}
}

// ContainsPoint reports whether p satisfies every constraint.
func (r ConvexRegion) ContainsPoint(p Point) bool {
	for _, c := range r.Cs {
		if !c.Holds(p) {
			return false
		}
	}
	return true
}

// ContainsRect reports whether every point of rect satisfies every
// constraint; for half-planes it suffices to test the four corners.
func (r ConvexRegion) ContainsRect(rect Rect) bool {
	if rect.IsEmpty() {
		return true
	}
	corners := rect.Corners()
	for _, c := range r.Cs {
		for _, p := range corners {
			if !c.Holds(p) {
				return false
			}
		}
	}
	return true
}

// IntersectsRect reports whether rect and the region share at least one
// point. It clips the rectangle by every half-plane (Sutherland–Hodgman)
// and checks whether anything remains; this is exact for convex regions.
func (r ConvexRegion) IntersectsRect(rect Rect) bool {
	if rect.IsEmpty() {
		return false
	}
	poly := make([]Point, 0, 8)
	c4 := rect.Corners()
	poly = append(poly, c4[:]...)
	for _, c := range r.Cs {
		poly = clipPolygon(poly, c)
		if len(poly) == 0 {
			return false
		}
	}
	return true
}

// ClipRect returns the vertices of rect clipped by the region, or nil when
// the intersection is empty.
func (r ConvexRegion) ClipRect(rect Rect) []Point {
	if rect.IsEmpty() {
		return nil
	}
	poly := make([]Point, 0, 8)
	c4 := rect.Corners()
	poly = append(poly, c4[:]...)
	for _, c := range r.Cs {
		poly = clipPolygon(poly, c)
		if len(poly) == 0 {
			return nil
		}
	}
	return poly
}

// clipPolygon clips a convex polygon by a half-plane.
func clipPolygon(poly []Point, c Constraint) []Point {
	if len(poly) == 0 {
		return nil
	}
	out := make([]Point, 0, len(poly)+1)
	for i := range poly {
		cur := poly[i]
		nxt := poly[(i+1)%len(poly)]
		curIn := c.Eval(cur) <= Eps
		nxtIn := c.Eval(nxt) <= Eps
		if curIn {
			out = append(out, cur)
		}
		if curIn != nxtIn {
			// Edge crosses the boundary A*x+B*y=C.
			d1 := c.Eval(cur)
			d2 := c.Eval(nxt)
			t := d1 / (d1 - d2)
			out = append(out, Point{
				X: cur.X + t*(nxt.X-cur.X),
				Y: cur.Y + t*(nxt.Y-cur.Y),
			})
		}
	}
	return out
}

// Triangle is a triangle given by three vertices. Partition trees use
// triangles as the cells of simplicial partitions.
type Triangle struct {
	P0, P1, P2 Point
}

// sign returns the signed area of (a,b,c) times two.
func sign(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y)
}

// ContainsPoint reports whether p lies inside or on t.
func (t Triangle) ContainsPoint(p Point) bool {
	d0 := sign(t.P0, t.P1, p)
	d1 := sign(t.P1, t.P2, p)
	d2 := sign(t.P2, t.P0, p)
	hasNeg := d0 < -Eps || d1 < -Eps || d2 < -Eps
	hasPos := d0 > Eps || d1 > Eps || d2 > Eps
	return !(hasNeg && hasPos)
}

// Bound returns the minimum bounding rectangle of t.
func (t Triangle) Bound() Rect {
	r := EmptyRect()
	r = r.Extend(t.P0)
	r = r.Extend(t.P1)
	return r.Extend(t.P2)
}

// Vertices returns the three corners.
func (t Triangle) Vertices() [3]Point { return [3]Point{t.P0, t.P1, t.P2} }

// IntersectsLine reports whether the (infinite) line A*x + B*y = C crosses
// the triangle, i.e. has vertices strictly on both sides or touches it.
func (t Triangle) IntersectsLine(c Constraint) bool {
	d0 := c.Eval(t.P0)
	d1 := c.Eval(t.P1)
	d2 := c.Eval(t.P2)
	neg := d0 < -Eps || d1 < -Eps || d2 < -Eps
	pos := d0 > Eps || d1 > Eps || d2 > Eps
	onLine := math.Abs(d0) <= Eps || math.Abs(d1) <= Eps || math.Abs(d2) <= Eps
	return (neg && pos) || onLine
}

// RelativeToRegion classifies the triangle against a convex region.
type RegionRelation int

// Classification outcomes for bounding shapes tested against a query region.
const (
	Outside RegionRelation = iota // no common point
	Inside                        // fully contained: report the whole subtree
	Partial                       // boundary crosses: recurse
)

// Classify returns the relation between triangle t and region r.
func (r ConvexRegion) Classify(t Triangle) RegionRelation {
	all := true
	for _, p := range t.Vertices() {
		if !r.ContainsPoint(p) {
			all = false
			break
		}
	}
	if all {
		return Inside
	}
	// Clip the triangle against the half-planes.
	poly := []Point{t.P0, t.P1, t.P2}
	for _, c := range r.Cs {
		poly = clipPolygon(poly, c)
		if len(poly) == 0 {
			return Outside
		}
	}
	return Partial
}

// ClassifyRect classifies rect against the region.
func (r ConvexRegion) ClassifyRect(rect Rect) RegionRelation {
	if r.ContainsRect(rect) {
		return Inside
	}
	if r.IntersectsRect(rect) {
		return Partial
	}
	return Outside
}
