package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	if r.IsEmpty() {
		t.Fatal("non-empty rect reported empty")
	}
	if got := r.Area(); got != 50 {
		t.Fatalf("Area = %v, want 50", got)
	}
	if got := r.Margin(); got != 15 {
		t.Fatalf("Margin = %v, want 15", got)
	}
	if !r.Contains(Point{5, 2}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) {
		t.Fatal("Contains failed for interior/boundary points")
	}
	if r.Contains(Point{10.1, 2}) {
		t.Fatal("Contains accepted an outside point")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 {
		t.Fatal("empty rect area nonzero")
	}
	r := Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	if got := e.Union(r); got != r {
		t.Fatalf("empty union: got %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("union empty: got %v, want %v", got, r)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty rect intersects something")
	}
	if !r.ContainsRect(e) {
		t.Fatal("every rect should contain the empty rect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got := a.Intersection(b)
	want := Rect{2, 2, 4, 4}
	if got != want {
		t.Fatalf("Intersection = %v, want %v", got, want)
	}
	if a.OverlapArea(b) != 4 {
		t.Fatalf("OverlapArea = %v, want 4", a.OverlapArea(b))
	}
	c := Rect{5, 5, 7, 7}
	if !a.Intersection(c).IsEmpty() {
		t.Fatal("disjoint rects yielded non-empty intersection")
	}
}

func TestRectUnionExtend(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, -1, 3, 0.5}
	u := a.Union(b)
	want := Rect{0, -1, 3, 1}
	if u != want {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	e := a.Extend(Point{-2, 5})
	want = Rect{-2, 0, 1, 5}
	if e != want {
		t.Fatalf("Extend = %v, want %v", e, want)
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		s    Segment
		want bool
		name string
	}{
		{Segment{Point{-5, 5}, Point{15, 5}}, true, "crosses horizontally"},
		{Segment{Point{2, 2}, Point{8, 8}}, true, "fully inside"},
		{Segment{Point{-5, -5}, Point{-1, -1}}, false, "outside, pointing away"},
		{Segment{Point{-1, -1}, Point{11, 11}}, true, "diagonal through"},
		{Segment{Point{-5, 11}, Point{15, 11}}, false, "parallel above"},
		{Segment{Point{0, -5}, Point{0, 15}}, true, "along left edge"},
		{Segment{Point{5, 5}, Point{5, 5}}, true, "degenerate point inside"},
		{Segment{Point{11, 5}, Point{11, 5}}, false, "degenerate point outside"},
		{Segment{Point{-5, 0}, Point{5, -10}}, false, "clips corner region but misses"},
		{Segment{Point{-5, 5}, Point{5, -5}}, true, "cuts the corner"},
	}
	for _, c := range cases {
		if got := c.s.IntersectsRect(r); got != c.want {
			t.Errorf("%s: IntersectsRect = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: segment/rect intersection agrees with dense sampling along the
// segment (sampling can only prove intersection, so check one direction,
// and the other direction via midpoint containment of clipped cases).
func TestSegmentIntersectsRectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := Rect{-1, -1, 1, 1}
	for i := 0; i < 2000; i++ {
		s := Segment{
			A: Point{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			B: Point{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
		}
		sampled := false
		for k := 0; k <= 200; k++ {
			f := float64(k) / 200
			p := Point{s.A.X + f*(s.B.X-s.A.X), s.A.Y + f*(s.B.Y-s.A.Y)}
			if r.Contains(p) {
				sampled = true
				break
			}
		}
		got := s.IntersectsRect(r)
		if sampled && !got {
			t.Fatalf("sampling found a hit but IntersectsRect=false: %+v", s)
		}
	}
}

func TestConstraintHolds(t *testing.T) {
	// x + y <= 1
	c := Constraint{A: 1, B: 1, C: 1}
	if !c.Holds(Point{0, 0}) || !c.Holds(Point{0.5, 0.5}) {
		t.Fatal("Holds rejected satisfying points")
	}
	if c.Holds(Point{1, 1}) {
		t.Fatal("Holds accepted violating point")
	}
}

func TestConvexRegionClassifyRect(t *testing.T) {
	// Unit square region: x>=0, x<=1, y>=0, y<=1.
	reg := NewRegion(
		Constraint{-1, 0, 0}, Constraint{1, 0, 1},
		Constraint{0, -1, 0}, Constraint{0, 1, 1},
	)
	if got := reg.ClassifyRect(Rect{0.2, 0.2, 0.8, 0.8}); got != Inside {
		t.Fatalf("inner rect: got %v, want Inside", got)
	}
	if got := reg.ClassifyRect(Rect{2, 2, 3, 3}); got != Outside {
		t.Fatalf("far rect: got %v, want Outside", got)
	}
	if got := reg.ClassifyRect(Rect{0.5, 0.5, 2, 2}); got != Partial {
		t.Fatalf("straddling rect: got %v, want Partial", got)
	}
}

func TestConvexRegionDiagonal(t *testing.T) {
	// Half-plane y <= x. A rect strictly above the diagonal must be
	// Outside even though its bounding box straddles in both axes.
	reg := NewRegion(Constraint{A: -1, B: 1, C: 0})
	if got := reg.ClassifyRect(Rect{0, 5, 1, 6}); got != Outside {
		t.Fatalf("above-diagonal rect: got %v, want Outside", got)
	}
	if got := reg.ClassifyRect(Rect{5, 0, 6, 1}); got != Inside {
		t.Fatalf("below-diagonal rect: got %v, want Inside", got)
	}
	if got := reg.ClassifyRect(Rect{-1, -1, 1, 1}); got != Partial {
		t.Fatalf("crossing rect: got %v, want Partial", got)
	}
}

// Property: ClassifyRect agrees with dense grid sampling of the rect.
func TestClassifyRectAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		// Random region of 3 half-planes and a random rect.
		cs := make([]Constraint, 3)
		for i := range cs {
			cs[i] = Constraint{
				A: rng.Float64()*4 - 2,
				B: rng.Float64()*4 - 2,
				C: rng.Float64()*4 - 2,
			}
		}
		reg := NewRegion(cs...)
		x := rng.Float64()*4 - 2
		y := rng.Float64()*4 - 2
		rect := Rect{x, y, x + rng.Float64()*2, y + rng.Float64()*2}

		anyIn, allIn := false, true
		const G = 12
		for i := 0; i <= G; i++ {
			for j := 0; j <= G; j++ {
				p := Point{
					rect.MinX + float64(i)/G*(rect.MaxX-rect.MinX),
					rect.MinY + float64(j)/G*(rect.MaxY-rect.MinY),
				}
				if reg.ContainsPoint(p) {
					anyIn = true
				} else {
					allIn = false
				}
			}
		}
		got := reg.ClassifyRect(rect)
		// Sampling is approximate; only flag definite contradictions.
		if allIn && got == Outside {
			t.Fatalf("all samples inside but classified Outside: %+v %+v", cs, rect)
		}
		if !anyIn && got == Inside {
			t.Fatalf("no samples inside but classified Inside: %+v %+v", cs, rect)
		}
		if anyIn && got == Outside {
			t.Fatalf("samples inside but classified Outside: %+v %+v", cs, rect)
		}
	}
}

func TestClipRect(t *testing.T) {
	reg := NewRegion(Constraint{A: 1, B: 1, C: 0.5}) // x + y <= 0.5
	poly := reg.ClipRect(Rect{0, 0, 1, 1})
	if len(poly) != 3 {
		t.Fatalf("clipping unit square by x+y<=0.5: got %d vertices, want 3", len(poly))
	}
	if reg.ClipRect(Rect{2, 2, 3, 3}) != nil {
		t.Fatal("clip of fully-outside rect should be nil")
	}
}

func TestTriangleContainsPoint(t *testing.T) {
	tri := Triangle{Point{0, 0}, Point{4, 0}, Point{0, 4}}
	if !tri.ContainsPoint(Point{1, 1}) {
		t.Fatal("interior point rejected")
	}
	if !tri.ContainsPoint(Point{0, 0}) || !tri.ContainsPoint(Point{2, 2}) {
		t.Fatal("boundary points rejected")
	}
	if tri.ContainsPoint(Point{3, 3}) {
		t.Fatal("exterior point accepted")
	}
	// Clockwise winding must work too.
	cw := Triangle{Point{0, 0}, Point{0, 4}, Point{4, 0}}
	if !cw.ContainsPoint(Point{1, 1}) {
		t.Fatal("clockwise triangle rejected interior point")
	}
}

func TestTriangleIntersectsLine(t *testing.T) {
	tri := Triangle{Point{0, 0}, Point{4, 0}, Point{0, 4}}
	if !tri.IntersectsLine(Constraint{A: 1, B: 1, C: 2}) { // x+y=2 crosses
		t.Fatal("crossing line not detected")
	}
	if tri.IntersectsLine(Constraint{A: 1, B: 1, C: 10}) { // far away
		t.Fatal("distant line detected as crossing")
	}
}

func TestRegionClassifyTriangle(t *testing.T) {
	reg := NewRegion(
		Constraint{-1, 0, 0}, Constraint{1, 0, 10},
		Constraint{0, -1, 0}, Constraint{0, 1, 10},
	)
	if got := reg.Classify(Triangle{Point{1, 1}, Point{2, 1}, Point{1, 2}}); got != Inside {
		t.Fatalf("inner triangle: got %v", got)
	}
	if got := reg.Classify(Triangle{Point{20, 20}, Point{21, 20}, Point{20, 21}}); got != Outside {
		t.Fatalf("outer triangle: got %v", got)
	}
	if got := reg.Classify(Triangle{Point{-5, 5}, Point{5, 5}, Point{0, 6}}); got != Partial {
		t.Fatalf("straddling triangle: got %v", got)
	}
}

// Property: Union is commutative, associative (approximately) and
// monotone: the union contains both inputs.
func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{ax, ay, ax + math.Abs(aw), ay + math.Abs(ah)}
		b := Rect{bx, by, bx + math.Abs(bw), by + math.Abs(bh)}
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsRect(a) && u.ContainsRect(b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersects is symmetric and consistent with Intersection.
func TestIntersectsProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{ax, ay, ax + math.Abs(aw), ay + math.Abs(ah)}
		b := Rect{bx, by, bx + math.Abs(bw), by + math.Abs(bh)}
		i1 := a.Intersects(b)
		i2 := b.Intersects(a)
		nonEmpty := !a.Intersection(b).IsEmpty()
		if i1 != i2 {
			return false
		}
		// Intersection nonempty implies Intersects (eps tolerance may make
		// touching rects Intersect while Intersection is degenerate).
		return !nonEmpty || i1
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
