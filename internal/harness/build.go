// Build benchmark: incremental vs bulk construction. The paper charges
// every page touch; an index rebuilt with the dynamic Insert path pays a
// root-to-leaf descent (and split cascades) per record, where the bulk
// loaders sort once and write every page exactly once. RunBuildBench
// measures both paths for each access method on the same dataset —
// wall-clock time, logical I/Os (issued by the structure), physical I/Os
// (reaching the base store beneath the buffer pool), bytes allocated, and
// final page footprint.
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kdtree"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
	"mobidx/internal/rstar"
	"mobidx/internal/workload"
)

// BuildResult is one structure × method measurement.
type BuildResult struct {
	Structure   string  `json:"structure"`
	Method      string  `json:"method"` // "incremental" or "bulk"
	N           int     `json:"n"`
	WallMs      float64 `json:"wall_ms"`
	LogicalIOs  int64   `json:"logical_ios"`
	PhysicalIOs int64   `json:"physical_ios"`
	AllocMB     float64 `json:"alloc_mb"`
	PagesInUse  int     `json:"pages_in_use"`
}

// BuildReport is the full -build run.
type BuildReport struct {
	N           int           `json:"n"`
	PageSize    int           `json:"page_size"`
	BufferPages int           `json:"buffer_pages"`
	Seed        int64         `json:"seed"`
	BPTreeLeafB int           `json:"bptree_leaf_cap"`
	Results     []BuildResult `json:"results"`
	// BPTreeIOReduction is incremental/bulk physical I/Os for the B+-tree —
	// the headline number the bulk loader exists for.
	BPTreeIOReduction float64 `json:"bptree_physical_io_reduction"`
}

// BuildBenchConfig tunes a -build run.
type BuildBenchConfig struct {
	N           int   // records per structure (0 → 100000)
	Seed        int64 // 0 → 1999
	BufferPages int   // buffer pool size (0 → 256)
}

// countStore tallies the logical I/Os a structure issues above the buffer
// pool. Builds are single-goroutine, so plain counters suffice.
type countStore struct {
	pager.Store
	reads, writes int64
}

func (c *countStore) Read(id pager.PageID) (*pager.Page, error) {
	c.reads++
	return c.Store.Read(id)
}

func (c *countStore) Write(p *pager.Page) error {
	c.writes++
	return c.Store.Write(p)
}

// measureBuild runs one build against a fresh store stack and snapshots
// the counters around it.
func measureBuild(structure, method string, n, bufPages int, fn func(pager.Store) error) (BuildResult, error) {
	base := pager.NewMemStore(pager.DefaultPageSize)
	cs := &countStore{Store: pager.NewBuffered(base, bufPages)}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if err := fn(cs); err != nil {
		return BuildResult{}, fmt.Errorf("%s/%s: %w", structure, method, err)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return BuildResult{
		Structure:   structure,
		Method:      method,
		N:           n,
		WallMs:      float64(wall.Microseconds()) / 1e3,
		LogicalIOs:  cs.reads + cs.writes,
		PhysicalIOs: base.Stats().IOs(),
		AllocMB:     float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20),
		PagesInUse:  base.PagesInUse(),
	}, nil
}

// RunBuildBench measures incremental vs bulk construction for every access
// method at cfg.N records. logf, when non-nil, receives one line per
// completed measurement.
func RunBuildBench(cfg BuildBenchConfig, logf func(format string, args ...any)) (*BuildReport, error) {
	if cfg.N == 0 {
		cfg.N = 100000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1999
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 256
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &BuildReport{
		N:           cfg.N,
		PageSize:    pager.DefaultPageSize,
		BufferPages: cfg.BufferPages,
		Seed:        cfg.Seed,
	}
	add := func(r BuildResult) {
		rep.Results = append(rep.Results, r)
		logf("%-10s %-11s  %8.1f ms  %9d logical  %9d physical  %7.1f MB alloc  %6d pages",
			r.Structure, r.Method, r.WallMs, r.LogicalIOs, r.PhysicalIOs, r.AllocMB, r.PagesInUse)
	}

	// --- B+-tree (Compact codec: the paper's 12-byte records) ------------
	// Entries are generated once; the bulk copy is rounded and sorted at
	// generation time, so the builder's no-sort fast path (BulkLoadSorted)
	// applies — the dataset is produced in the order its consumer needs.
	rng := rand.New(rand.NewSource(cfg.Seed))
	entries := make([]bptree.Entry, cfg.N)
	for i := range entries {
		entries[i] = bptree.Entry{
			Key: bptree.Compact.RoundKey(rng.Float64() * 1000),
			Val: uint64(i),
			Aux: bptree.Compact.RoundKey(rng.Float64()*3 - 1.5),
		}
	}
	sortedEntries := append([]bptree.Entry(nil), entries...)
	bptree.SortEntries(sortedEntries)

	r, err := measureBuild("bptree", "incremental", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := bptree.New(st, bptree.Config{Codec: bptree.Compact})
		if err != nil {
			return err
		}
		rep.BPTreeLeafB = tr.LeafCap()
		for _, e := range entries {
			if err := tr.Insert(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	add(r)
	incBPIOs := r.PhysicalIOs

	r, err = measureBuild("bptree", "bulk", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := bptree.New(st, bptree.Config{Codec: bptree.Compact})
		if err != nil {
			return err
		}
		return tr.BulkLoadSorted(sortedEntries, 0)
	})
	if err != nil {
		return nil, err
	}
	add(r)
	if r.PhysicalIOs > 0 {
		rep.BPTreeIOReduction = float64(incBPIOs) / float64(r.PhysicalIOs)
	}

	// --- Dual B+ (the §3.5.2 assembled index) ----------------------------
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return nil, err
	}
	if err := sim.Bootstrap(func(workload.Op) error { return nil }); err != nil {
		return nil, err
	}
	motions := append([]dual.Motion(nil), sim.Motions()...)
	dualCfg := core.DualBPlusConfig{Terrain: p.Terrain, C: 4, Codec: bptree.Compact}

	r, err = measureBuild("dualbplus", "incremental", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		ix, err := core.NewDualBPlus(st, dualCfg)
		if err != nil {
			return err
		}
		for _, m := range motions {
			if err := ix.Insert(m); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	add(r)

	r, err = measureBuild("dualbplus", "bulk", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		ix, err := core.NewDualBPlus(st, dualCfg)
		if err != nil {
			return err
		}
		return ix.BulkLoad(motions)
	})
	if err != nil {
		return nil, err
	}
	add(r)

	// --- k-d tree (§3.5.1 PAM) -------------------------------------------
	world := geom.Rect{MinX: -10, MinY: -10, MaxX: 1010, MaxY: 1010}
	points := make([]kdtree.Point, cfg.N)
	for i := range points {
		points[i] = kdtree.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}

	r, err = measureBuild("kdtree", "incremental", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := kdtree.New(st, kdtree.Config{World: world})
		if err != nil {
			return err
		}
		for _, pt := range points {
			if err := tr.Insert(pt); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	add(r)

	r, err = measureBuild("kdtree", "bulk", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := kdtree.New(st, kdtree.Config{World: world})
		if err != nil {
			return err
		}
		return tr.BulkLoad(points, 0)
	})
	if err != nil {
		return nil, err
	}
	add(r)

	// --- R*-tree (§3.1 baseline geometry) --------------------------------
	items := make([]rstar.Item, cfg.N)
	for i := range items {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		items[i] = rstar.Item{
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*3, MaxY: y + rng.Float64()*3},
			Val:  uint64(i),
		}
	}

	r, err = measureBuild("rstar", "incremental", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := rstar.New(st, rstar.Config{})
		if err != nil {
			return err
		}
		for _, it := range items {
			if err := tr.Insert(it); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	add(r)

	r, err = measureBuild("rstar", "bulk", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := rstar.New(st, rstar.Config{})
		if err != nil {
			return err
		}
		return tr.BulkLoad(items, 0)
	})
	if err != nil {
		return nil, err
	}
	add(r)

	// --- Partition tree (§3.4) -------------------------------------------
	ppts := make([]parttree.Point, cfg.N)
	for i := range ppts {
		ppts[i] = parttree.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}

	r, err = measureBuild("parttree", "incremental", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := parttree.New(st, parttree.Config{})
		if err != nil {
			return err
		}
		for _, pt := range ppts {
			if err := tr.Insert(pt); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	add(r)

	r, err = measureBuild("parttree", "bulk", cfg.N, cfg.BufferPages, func(st pager.Store) error {
		tr, err := parttree.New(st, parttree.Config{})
		if err != nil {
			return err
		}
		return tr.BulkLoad(ppts)
	})
	if err != nil {
		return nil, err
	}
	add(r)

	return rep, nil
}
