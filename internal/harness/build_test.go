package harness

import "testing"

// The build bench must produce both methods for every structure, and the
// B+-tree bulk path must beat incremental construction by the margin the
// bottom-up builder promises, even at a test-sized n.
func TestRunBuildBench(t *testing.T) {
	if testing.Short() {
		t.Skip("build bench is slow")
	}
	rep, err := RunBuildBench(BuildBenchConfig{N: 20000, BufferPages: 64}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("got %d results, want 10 (5 structures x 2 methods)", len(rep.Results))
	}
	seen := map[string]BuildResult{}
	for _, r := range rep.Results {
		if r.N != 20000 {
			t.Fatalf("%s/%s: N=%d", r.Structure, r.Method, r.N)
		}
		if r.PagesInUse <= 0 || r.LogicalIOs <= 0 || r.PhysicalIOs <= 0 {
			t.Fatalf("%s/%s: empty counters %+v", r.Structure, r.Method, r)
		}
		seen[r.Structure+"/"+r.Method] = r
	}
	if rep.BPTreeIOReduction < 5 {
		t.Fatalf("bptree physical I/O reduction %.1fx, want >= 5x", rep.BPTreeIOReduction)
	}
	// Every structure's bulk build must issue fewer logical I/Os than its
	// incremental counterpart — the point of the fast paths.
	for _, s := range []string{"bptree", "dualbplus", "kdtree", "rstar", "parttree"} {
		inc, bulk := seen[s+"/incremental"], seen[s+"/bulk"]
		if bulk.LogicalIOs >= inc.LogicalIOs {
			t.Errorf("%s: bulk logical I/Os %d not below incremental %d", s, bulk.LogicalIOs, inc.LogicalIOs)
		}
	}
}
