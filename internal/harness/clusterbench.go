// Cluster lifecycle mode: RunClusterBench measures the operational costs
// the durable cluster (shard.Cluster) adds on top of the serving layer —
// what recovery and rebalancing actually cost, not just that they are
// correct:
//
//   - cold recovery: wall-clock to OpenCluster from the surviving media
//     of a crashed (abandoned, never Closed) cluster, WAL replay and all,
//     as a function of shard count;
//   - checkpointed recovery: the same reopen after Checkpoint folded the
//     WALs into the base stores — the idle-maintenance payoff;
//   - migration dip: serving QPS while a live Split carves the middle
//     band in two, versus the undisturbed baseline at the same worker
//     count. The flip's quiesce barrier is the only moment queries wait.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/shard"
	"mobidx/internal/workload"
)

// ClusterBenchConfig tunes one durable-cluster lifecycle run.
type ClusterBenchConfig struct {
	N        int   // mobile objects (0 → 20000)
	Shards   int   // initial bands (0 → 4)
	Workers  int   // query-serving goroutines (0 → GOMAXPROCS)
	Queries  int   // baseline queries to serve (0 → 2000)
	Seed     int64 // scenario seed (0 → 1999)
	PageSize int   // shard/manifest page size (0 → pager default)
	Mix      workload.QueryMix
}

func (c *ClusterBenchConfig) fill() {
	if c.N == 0 {
		c.N = 20000
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.Mix.PerSlot == 0 {
		c.Mix = workload.SmallQueries()
	}
}

// ClusterBenchResult reports one cluster lifecycle run.
type ClusterBenchResult struct {
	Shards       int     `json:"shards"`
	N            int     `json:"n"`
	LoadMs       float64 `json:"load_ms"`
	BaselineQPS  float64 `json:"baseline_qps"`
	SplitMs      float64 `json:"split_ms"`
	MigrationQPS float64 `json:"migration_qps"` // served while the split ran
	QPSDipPct    float64 `json:"qps_dip_pct"`   // 100·(1 − migration/baseline)
	// ColdRecoveryMs is OpenCluster wall time from the surviving media of
	// an abandoned (crashed) cluster: manifest decode + per-shard WAL
	// replay + index reattach.
	ColdRecoveryMs float64 `json:"cold_recovery_ms"`
	// CheckpointedRecoveryMs is the same reopen after Checkpoint folded
	// every WAL into its base store.
	CheckpointedRecoveryMs float64 `json:"checkpointed_recovery_ms"`
	BandsAfterSplit        int     `json:"bands_after_split"`
	EpochAfterSplit        uint64  `json:"epoch_after_split"`
}

// RunClusterBench drives one durable cluster through load → serve →
// live split (measuring the serving dip) → crash → cold recovery →
// checkpoint → warm recovery, verifying recovered answers against the
// simulator's brute force before reporting.
func RunClusterBench(cfg ClusterBenchConfig) (*ClusterBenchResult, error) {
	cfg.fill()
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return nil, err
	}
	if err := sim.Bootstrap(func(workload.Op) error { return nil }); err != nil {
		return nil, err
	}
	env := shard.NewMemEnv(cfg.PageSize)
	ccfg := shard.ClusterConfig{
		Terrain:  p.Terrain,
		PageSize: cfg.PageSize,
		Exec:     core.NewExecutor(cfg.Workers),
	}
	ctx := context.Background()
	c, err := shard.OpenCluster(env, ccfg, cfg.Shards)
	if err != nil {
		return nil, err
	}
	res := &ClusterBenchResult{Shards: cfg.Shards, N: cfg.N}

	t0 := time.Now()
	if err := c.BulkLoad(ctx, sim.Motions()); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	res.LoadMs = msSince(t0)

	queries := sim.Queries(cfg.Mix)
	for len(queries) < 1024 {
		queries = append(queries, sim.Queries(cfg.Mix)...)
	}

	// Baseline: undisturbed serving at the benched worker count.
	baseDur, served, err := serveFor(ctx, c, queries, cfg.Workers, cfg.Queries)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	res.BaselineQPS = float64(served) / baseDur.Seconds()

	// Live split under load: workers serve continuously while the middle
	// band is carved in two; throughput inside the split window is the
	// migration QPS.
	var (
		count  atomic.Int64
		stop   atomic.Bool
		srvErr atomic.Value
		wg     sync.WaitGroup
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i += cfg.Workers {
				if _, err := c.Query(ctx, queries[i%len(queries)]); err != nil {
					srvErr.CompareAndSwap(nil, err)
					return
				}
				count.Add(1)
			}
		}(w)
	}
	band := cfg.Shards / 2
	lo := p.Terrain.YMax * float64(band) / float64(cfg.Shards)
	hi := p.Terrain.YMax * float64(band+1) / float64(cfg.Shards)
	time.Sleep(2 * time.Millisecond) // let serving reach steady state
	before := count.Load()
	t0 = time.Now()
	splitErr := c.Split(ctx, band, (lo+hi)/2)
	splitDur := time.Since(t0)
	during := count.Load() - before
	stop.Store(true)
	wg.Wait()
	if splitErr != nil {
		return nil, fmt.Errorf("split: %w", splitErr)
	}
	if err, _ := srvErr.Load().(error); err != nil {
		return nil, fmt.Errorf("serving during split: %w", err)
	}
	res.SplitMs = float64(splitDur.Nanoseconds()) / 1e6
	res.MigrationQPS = float64(during) / splitDur.Seconds()
	if res.BaselineQPS > 0 {
		res.QPSDipPct = 100 * (1 - res.MigrationQPS/res.BaselineQPS)
	}
	res.BandsAfterSplit = c.Bands()
	res.EpochAfterSplit = c.Epoch()

	// Crash: abandon the cluster without Close; the env keeps the durable
	// bytes. Cold recovery is the reopen.
	t0 = time.Now()
	c2, err := shard.OpenCluster(env, ccfg, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("cold recovery: %w", err)
	}
	res.ColdRecoveryMs = msSince(t0)
	if err := checkClusterExact(ctx, c2, sim, queries[:20]); err != nil {
		return nil, fmt.Errorf("recovered answers: %w", err)
	}

	// Checkpoint, clean close, and measure the warm reopen.
	if err := c2.Checkpoint(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := c2.Close(); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	t0 = time.Now()
	c3, err := shard.OpenCluster(env, ccfg, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("checkpointed recovery: %w", err)
	}
	res.CheckpointedRecoveryMs = msSince(t0)
	if err := c3.Close(); err != nil {
		return nil, fmt.Errorf("final close: %w", err)
	}
	return res, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// serveFor serves total queries from workers goroutines and returns the
// wall time and count.
func serveFor(ctx context.Context, c *shard.Cluster, queries []dual.MORQuery, workers, total int) (time.Duration, int, error) {
	var (
		next    atomic.Int64
		srvErr  atomic.Value
		wg      sync.WaitGroup
		started = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ticket := next.Add(1) - 1
				if ticket >= int64(total) {
					return
				}
				if _, err := c.Query(ctx, queries[ticket%int64(len(queries))]); err != nil {
					srvErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := srvErr.Load().(error); err != nil {
		return 0, 0, err
	}
	return time.Since(started), total, nil
}

// checkClusterExact compares routed answers against the simulator's
// brute force for a query sample — the recovered-state differential.
func checkClusterExact(ctx context.Context, c *shard.Cluster, sim *workload.Simulator, qs []dual.MORQuery) error {
	for i, q := range qs {
		got, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		want := sim.BruteForce(q)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return fmt.Errorf("query %d: %d oids, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				return fmt.Errorf("query %d: oid %d = %d, want %d", i, k, got[k], want[k])
			}
		}
	}
	return nil
}
