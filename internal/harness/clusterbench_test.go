package harness

import "testing"

func TestRunClusterBench(t *testing.T) {
	res, err := RunClusterBench(ClusterBenchConfig{
		N:       2000,
		Shards:  2,
		Workers: 4,
		Queries: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BandsAfterSplit != 3 {
		t.Errorf("bands after split = %d, want 3", res.BandsAfterSplit)
	}
	if res.EpochAfterSplit != 2 {
		t.Errorf("epoch after split = %d, want 2", res.EpochAfterSplit)
	}
	if res.BaselineQPS <= 0 || res.MigrationQPS < 0 {
		t.Errorf("implausible QPS: baseline %.1f migration %.1f", res.BaselineQPS, res.MigrationQPS)
	}
	if res.ColdRecoveryMs <= 0 || res.CheckpointedRecoveryMs <= 0 {
		t.Errorf("implausible recovery times: cold %.3fms checkpointed %.3fms",
			res.ColdRecoveryMs, res.CheckpointedRecoveryMs)
	}
	if res.LoadMs <= 0 || res.SplitMs <= 0 {
		t.Errorf("implausible phase times: load %.3fms split %.3fms", res.LoadMs, res.SplitMs)
	}
}
