// Package harness runs the paper's performance study (§5) and the
// additional analytic experiments against any of the implemented access
// methods, reporting the same metrics the paper's figures plot: average
// I/Os per query (Figures 6-7), space consumption in pages (Figure 8), and
// average I/Os per update (Figure 9).
//
// Methodology mirrors §5: page size 4096; a tiny buffer pool holding only
// a root-to-leaf path's worth of pages, cleared before every query; an
// update is a delete of the old motion plus an insert of the new one.
package harness

import (
	"fmt"
	"strings"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

// BufferPages is the buffer pool size of §5 ("3 or 4 pages").
const BufferPages = 4

// Method is one access method under test.
type Method struct {
	Name string
	New  func(store pager.Store) (core.Index1D, error)
}

// PaperMethods returns the five methods of Figures 6-9: the R*-tree over
// trajectory segments, the k-d point access method (the hBΠ stand-in), and
// the Dual-B+ approximation with c = 4, 6 and 8.
func PaperMethods(tr dual.Terrain) []Method {
	ms := []Method{
		{Name: "R*-tree", New: func(st pager.Store) (core.Index1D, error) {
			return core.NewRStarSeg(st, core.RStarSegConfig{Terrain: tr})
		}},
		{Name: "kd-tree (hB)", New: func(st pager.Store) (core.Index1D, error) {
			return core.NewKDDual(st, core.KDDualConfig{Terrain: tr})
		}},
	}
	for _, c := range []int{4, 6, 8} {
		c := c
		ms = append(ms, Method{
			Name: fmt.Sprintf("Dual B+ c=%d", c),
			New: func(st pager.Store) (core.Index1D, error) {
				return core.NewDualBPlus(st, core.DualBPlusConfig{Terrain: tr, C: c, Codec: bptree.Compact})
			},
		})
	}
	return ms
}

// PartTreeMethod returns the §3.4 partition tree as an extra method.
func PartTreeMethod(tr dual.Terrain) Method {
	return Method{Name: "Partition tree", New: func(st pager.Store) (core.Index1D, error) {
		return core.NewPartTreeDual(st, core.PartTreeDualConfig{Terrain: tr})
	}}
}

// MixResult aggregates one query mix's measurements.
type MixResult struct {
	Queries   int
	AvgIOs    float64
	AvgAnswer float64 // average result cardinality
}

// ScenarioResult is the outcome of one full §5 scenario run.
type ScenarioResult struct {
	Method      string
	N           int
	Mix         map[string]*MixResult
	Pages       int     // space consumption after the scenario
	AvgUpdateIO float64 // I/Os per update (delete+insert pair)
	Updates     int
	Verified    int // queries cross-checked against brute force (0 = off)
}

// ScenarioConfig tunes a run.
type ScenarioConfig struct {
	Params        workload.Params
	Mixes         []workload.QueryMix
	QueryInstants int  // number of evenly spaced query instants (paper: 10)
	Verify        bool // cross-check every query against brute force
}

// DefaultScenario returns the paper's configuration for the given N,
// scaled by the given tick count (2000 reproduces the paper exactly).
func DefaultScenario(n, ticks int) ScenarioConfig {
	p := workload.DefaultParams(n)
	p.Ticks = ticks
	return ScenarioConfig{
		Params:        p,
		Mixes:         []workload.QueryMix{workload.LargeQueries(), workload.SmallQueries()},
		QueryInstants: 10,
	}
}

// RunScenario executes the scenario against one method.
func RunScenario(m Method, cfg ScenarioConfig) (*ScenarioResult, error) {
	base := pager.NewMemStore(pager.DefaultPageSize)
	buf := pager.NewBuffered(base, BufferPages)
	ix, err := m.New(buf)
	if err != nil {
		return nil, fmt.Errorf("harness: create %s: %w", m.Name, err)
	}
	sim, err := workload.NewSimulator(cfg.Params)
	if err != nil {
		return nil, err
	}
	apply := func(op workload.Op) error {
		if op.Insert {
			return ix.Insert(op.Motion)
		}
		return ix.Delete(op.Motion)
	}
	if err := sim.Bootstrap(apply); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", m.Name, err)
	}

	res := &ScenarioResult{Method: m.Name, N: cfg.Params.N, Mix: map[string]*MixResult{}}
	for _, mix := range cfg.Mixes {
		res.Mix[mix.Name] = &MixResult{}
	}

	// Updates are measured over the whole scenario; queries at the
	// evenly spaced instants.
	instants := map[int]bool{}
	if cfg.QueryInstants > 0 {
		step := cfg.Params.Ticks / cfg.QueryInstants
		if step < 1 {
			step = 1
		}
		for i := 1; i <= cfg.QueryInstants; i++ {
			instants[i*step] = true
		}
	}

	var updIOs int64
	for tick := 1; tick <= cfg.Params.Ticks; tick++ {
		before := buf.Stats()
		preOps := 0
		countingApply := func(op workload.Op) error {
			if !op.Insert {
				preOps++ // one delete per update pair
			}
			return apply(op)
		}
		if err := sim.Tick(countingApply); err != nil {
			return nil, fmt.Errorf("harness: %s tick %d: %w", m.Name, tick, err)
		}
		updIOs += buf.Stats().Sub(before).IOs()
		res.Updates += preOps

		if !instants[tick] {
			continue
		}
		for _, mix := range cfg.Mixes {
			mr := res.Mix[mix.Name]
			for _, q := range sim.Queries(mix) {
				buf.Clear()
				before := buf.Stats()
				count := 0
				var got map[dual.OID]bool
				if cfg.Verify {
					got = map[dual.OID]bool{}
				}
				if err := ix.Query(q, func(id dual.OID) {
					count++
					if got != nil {
						got[id] = true
					}
				}); err != nil {
					return nil, fmt.Errorf("harness: %s query: %w", m.Name, err)
				}
				d := buf.Stats().Sub(before)
				mr.Queries++
				mr.AvgIOs += float64(d.IOs())
				mr.AvgAnswer += float64(count)
				if cfg.Verify {
					if err := verifyAnswer(sim, q, got); err != nil {
						return nil, fmt.Errorf("harness: %s: %w", m.Name, err)
					}
					res.Verified++
				}
			}
		}
	}
	for _, mr := range res.Mix {
		if mr.Queries > 0 {
			mr.AvgIOs /= float64(mr.Queries)
			mr.AvgAnswer /= float64(mr.Queries)
		}
	}
	if res.Updates > 0 {
		res.AvgUpdateIO = float64(updIOs) / float64(res.Updates)
	}
	res.Pages = buf.PagesInUse()
	return res, nil
}

// verifyAnswer compares an index answer with the simulator's ground truth,
// tolerating only boundary-rounding disagreements (the compact on-page
// codecs store 4-byte floats, as the paper's own record layouts do).
func verifyAnswer(sim *workload.Simulator, q dual.MORQuery, got map[dual.OID]bool) error {
	const tol = 0.05
	want := map[dual.OID]bool{}
	for _, id := range sim.BruteForce(q) {
		want[id] = true
	}
	motions := sim.Motions()
	for id := range want {
		if !got[id] && !nearBoundary(motions[id], q, tol) {
			return fmt.Errorf("verify: missing object %d for %+v", id, q)
		}
	}
	for id := range got {
		if !want[id] && !nearBoundary(motions[id], q, tol) {
			return fmt.Errorf("verify: spurious object %d for %+v", id, q)
		}
	}
	return nil
}

func nearBoundary(m dual.Motion, q dual.MORQuery, tol float64) bool {
	big := dual.MORQuery{Y1: q.Y1 - tol, Y2: q.Y2 + tol, T1: q.T1 - tol, T2: q.T2 + tol}
	small := dual.MORQuery{Y1: q.Y1 + tol, Y2: q.Y2 - tol, T1: q.T1 + tol, T2: q.T2 - tol}
	if small.Y1 > small.Y2 || small.T1 > small.T2 {
		return m.Matches(big)
	}
	return m.Matches(big) && !m.Matches(small)
}

// ---------------------------------------------------------------------------
// Figure formatting
// ---------------------------------------------------------------------------

// Series is one line of a figure: a method's value at each N.
type Series struct {
	Name   string
	Values []float64
}

// FormatFigure renders a paper-style figure as an aligned text table with
// one row per method and one column per x value.
func FormatFigure(title, xLabel string, xs []int, series []Series, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s]\n", title, unit)
	fmt.Fprintf(&b, "%-16s", xLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%12s", formatN(x))
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-16s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%12.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatN(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// FigureSet holds the four §5 figures assembled from scenario results.
type FigureSet struct {
	Ns      []int
	Fig6    []Series // avg I/Os per 10% query
	Fig7    []Series // avg I/Os per 1% query
	Fig8    []Series // space (pages)
	Fig9    []Series // avg I/Os per update
	Results []*ScenarioResult
}

// RunFigures runs every method at every N and assembles Figures 6-9.
// progress, if non-nil, receives one line per completed run.
func RunFigures(methods []Method, ns []int, ticks int, verify bool, progress func(string)) (*FigureSet, error) {
	fs := &FigureSet{Ns: ns}
	type key struct{ method string }
	bySeries := map[string]*[4][]float64{}
	order := []string{}
	for _, m := range methods {
		bySeries[m.Name] = &[4][]float64{}
		order = append(order, m.Name)
	}
	for _, n := range ns {
		for _, m := range methods {
			cfg := DefaultScenario(n, ticks)
			cfg.Verify = verify
			r, err := RunScenario(m, cfg)
			if err != nil {
				return nil, err
			}
			fs.Results = append(fs.Results, r)
			s := bySeries[m.Name]
			s[0] = append(s[0], r.Mix[workload.LargeQueries().Name].AvgIOs)
			s[1] = append(s[1], r.Mix[workload.SmallQueries().Name].AvgIOs)
			s[2] = append(s[2], float64(r.Pages))
			s[3] = append(s[3], r.AvgUpdateIO)
			if progress != nil {
				progress(fmt.Sprintf("%-16s N=%-8d q10%%=%8.1f q1%%=%8.1f pages=%8d upd=%6.1f",
					m.Name, n,
					r.Mix[workload.LargeQueries().Name].AvgIOs,
					r.Mix[workload.SmallQueries().Name].AvgIOs,
					r.Pages, r.AvgUpdateIO))
			}
		}
	}
	for _, name := range order {
		s := bySeries[name]
		fs.Fig6 = append(fs.Fig6, Series{Name: name, Values: s[0]})
		fs.Fig7 = append(fs.Fig7, Series{Name: name, Values: s[1]})
		fs.Fig8 = append(fs.Fig8, Series{Name: name, Values: s[2]})
		fs.Fig9 = append(fs.Fig9, Series{Name: name, Values: s[3]})
	}
	return fs, nil
}

// String renders all four figures.
func (fs *FigureSet) String() string {
	var b strings.Builder
	b.WriteString(FormatFigure("Figure 6: Query Performance for 10% Queries", "method \\ N", fs.Ns, fs.Fig6, "avg I/Os per query"))
	b.WriteString("\n")
	b.WriteString(FormatFigure("Figure 7: Query Performance for 1% Queries", "method \\ N", fs.Ns, fs.Fig7, "avg I/Os per query"))
	b.WriteString("\n")
	b.WriteString(FormatFigure("Figure 8: Space Consumption", "method \\ N", fs.Ns, fs.Fig8, "pages"))
	b.WriteString("\n")
	b.WriteString(FormatFigure("Figure 9: Update Performance", "method \\ N", fs.Ns, fs.Fig9, "avg I/Os per update"))
	return b.String()
}
