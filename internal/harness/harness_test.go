package harness

import (
	"math"
	"strings"
	"testing"

	"mobidx/internal/workload"
)

// smallScenario shrinks the paper's scenario to test scale.
func smallScenario(n int) ScenarioConfig {
	cfg := DefaultScenario(n, 20)
	cfg.Params.UpdatesPerTick = 20
	cfg.QueryInstants = 2
	for i := range cfg.Mixes {
		cfg.Mixes[i].PerSlot = 10
	}
	return cfg
}

// Every paper method must produce verified-correct answers on a small
// scenario end to end.
func TestAllMethodsVerifiedSmall(t *testing.T) {
	tr := workload.DefaultParams(1).Terrain
	methods := append(PaperMethods(tr), PartTreeMethod(tr))
	for _, m := range methods {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			cfg := smallScenario(800)
			cfg.Verify = true
			r, err := RunScenario(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Verified == 0 {
				t.Fatal("no queries verified")
			}
			if r.Updates == 0 || r.AvgUpdateIO <= 0 {
				t.Fatalf("no update cost measured: %+v", r)
			}
			if r.Pages <= 0 {
				t.Fatal("no space measured")
			}
			for name, mr := range r.Mix {
				if mr.Queries == 0 {
					t.Fatalf("mix %s ran no queries", name)
				}
				if mr.AvgIOs <= 0 {
					t.Fatalf("mix %s measured no I/O", name)
				}
			}
		})
	}
}

// The headline shape of Figures 6-9 must hold even at reduced scale:
// R* worst on queries and updates; Dual-B+ space grows with c.
func TestFigureShapes(t *testing.T) {
	tr := workload.DefaultParams(1).Terrain
	methods := PaperMethods(tr)
	fs, err := RunFigures(methods, []int{2000}, 40, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series []Series, name string) float64 {
		for _, s := range series {
			if s.Name == name {
				return s.Values[0]
			}
		}
		t.Fatalf("series %s missing", name)
		return 0
	}
	rstarQ := get(fs.Fig6, "R*-tree")
	kdQ := get(fs.Fig6, "kd-tree (hB)")
	bp4Q := get(fs.Fig6, "Dual B+ c=4")
	if rstarQ <= kdQ || rstarQ <= bp4Q {
		t.Fatalf("R* should be worst on 10%% queries: R*=%v kd=%v bp4=%v", rstarQ, kdQ, bp4Q)
	}
	rstarU := get(fs.Fig9, "R*-tree")
	kdU := get(fs.Fig9, "kd-tree (hB)")
	if rstarU <= kdU {
		t.Fatalf("R* should be worst on updates: R*=%v kd=%v", rstarU, kdU)
	}
	s4 := get(fs.Fig8, "Dual B+ c=4")
	s8 := get(fs.Fig8, "Dual B+ c=8")
	if s8 <= s4 {
		t.Fatalf("Dual-B+ space should grow with c: c4=%v c8=%v", s4, s8)
	}
	out := fs.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Figure 9", "R*-tree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q", want)
		}
	}
}

func TestApproxErrorSweep(t *testing.T) {
	rows, err := ApproxErrorSweep(2000, 10, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More observation indexes: less error, more space.
	if rows[1].AvgError >= rows[0].AvgError {
		t.Fatalf("error should fall with c: c2=%v c8=%v", rows[0].AvgError, rows[1].AvgError)
	}
	if rows[1].Pages <= rows[0].Pages {
		t.Fatalf("space should grow with c: c2=%v c8=%v", rows[0].Pages, rows[1].Pages)
	}
	if !strings.Contains(FormatApproxSweep(rows), "K'") {
		t.Fatal("format output missing header")
	}
}

func TestKineticSweep(t *testing.T) {
	rows, err := KineticSweep([]int{2000, 8000}, []float64{100}, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Query cost must stay tiny (logarithmic) even as n quadruples.
	if rows[1].AvgQueryIO > rows[0].AvgQueryIO*3+10 {
		t.Fatalf("kinetic query cost not logarithmic: %v -> %v", rows[0].AvgQueryIO, rows[1].AvgQueryIO)
	}
	if rows[1].Pages <= rows[0].Pages {
		t.Fatal("space should grow with n")
	}
	_ = FormatKineticSweep(rows)
}

func TestPartTreeSweep(t *testing.T) {
	rows, err := PartTreeSweep([]int{5000, 80000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 16x points: ~4x I/O, certainly below 10x.
	if rows[1].AvgQueryIO > rows[0].AvgQueryIO*10 {
		t.Fatalf("partition-tree scaling broken: %v -> %v", rows[0].AvgQueryIO, rows[1].AvgQueryIO)
	}
	_ = FormatPartTreeSweep(rows)
}

func TestTwoDScenario(t *testing.T) {
	rows, err := TwoDScenario(1500, 10, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgAnswer <= 0 {
			t.Fatalf("%s found nothing", r.Method)
		}
	}
	// All three methods must agree on average answer cardinality (they
	// answer the same queries exactly).
	for _, r := range rows[1:] {
		if math.Abs(r.AvgAnswer-rows[0].AvgAnswer) > rows[0].AvgAnswer/50+1 {
			t.Fatalf("answer cardinality diverges: %v vs %v", r.AvgAnswer, rows[0].AvgAnswer)
		}
	}
	_ = FormatTwoD(rows)
}

func TestRoutedScenario(t *testing.T) {
	row, err := RoutedScenario(5, 60, 20, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if row.Objects != 600 {
		t.Fatalf("objects = %d", row.Objects)
	}
	if row.AvgAnswer <= 0 {
		t.Fatal("routed queries found nothing")
	}
	_ = FormatRouted(row)
}

func TestFormatFigure(t *testing.T) {
	out := FormatFigure("Figure X", "method \\ N", []int{1500, 100000},
		[]Series{{Name: "m1", Values: []float64{1.5, 2.5}}}, "unit")
	for _, want := range []string{"Figure X", "m1", "1.50", "2.50", "100k", "1500", "[unit]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q in:\n%s", want, out)
		}
	}
}
