// Ingest-tier write benchmark: RunIngestBench measures sustained
// update-pair throughput (delete-exact + insert, the paper's motion
// update) under an update-dominated load, comparing the two write
// architectures this repository provides over the same simulated log
// device (a real per-sync latency, the fsync cost):
//
//   - direct: the flat path — every update mutates the Dual-B+ trees
//     inside one WAL batch under the exclusive index latch. Durable per
//     update, but writers serialize on the latch and every commit pays
//     its own log sync.
//   - ingest: the log-structured path — every update appends its two ops
//     to the writer's own durable journal in an explicit pager.Txn
//     (group commit coalesces the concurrent syncs onto shared log
//     flushes) and lands in the shared tier's memtable; the trees are
//     rebuilt by occasional bulk folds instead of per-update mutation.
//
// Both legs are durable per update when the commit returns: the direct
// leg recovers its trees from the WAL, the ingest leg replays its
// journals into the tier. The ingest leg's fold here is the in-memory
// reindex — its durable counterpart (the catalog rewrite inside the same
// batch) is exercised by the shard integration and its crash sweep; this
// bench isolates the steady-state write-path cost the two architectures
// actually differ on.
//
// Each leg runs a write phase and then a query phase, so each metric is
// measured clean: the write phase times sustained update throughput with
// every writer hot; the query phase then times MOR queries against the
// state the writes left behind — for the ingest leg that is the honest
// post-load shape, memtable and frozen runs overlaid on the folded base,
// so QPSRatio reports exactly what the delta overlay costs readers.
package harness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/ingest"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

// IngestBenchConfig tunes one writer-count comparison.
type IngestBenchConfig struct {
	N            int   // mobile objects (0 → 20000)
	Writers      int   // concurrent update writers (0 → 4)
	Updates      int   // total update pairs per leg (0 → 4000)
	Queries      int   // queries served in the query phase (0 → 2000)
	QueryWorkers int   // query-phase goroutines (0 → 2)
	Seed         int64 // scenario seed (0 → 1999)
	// SyncLatency simulates the log fsync cost (0 → 2ms, a commodity
	// SSD paying a full cache flush per barrier — the cost the two
	// architectures actually differ on).
	SyncLatency time.Duration
	// MemtableFlush/MaxRuns tune the ingest leg's tier (0 → 192 / 2:
	// small enough that the measured window includes real folds and the
	// steady-state delta stays a small fraction of a query's base cost).
	MemtableFlush int
	MaxRuns       int
}

func (c *IngestBenchConfig) fill() {
	if c.N == 0 {
		c.N = 20000
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.Updates == 0 {
		c.Updates = 4000
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.QueryWorkers == 0 {
		c.QueryWorkers = 2
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.SyncLatency == 0 {
		c.SyncLatency = 2 * time.Millisecond
	}
	if c.MemtableFlush == 0 {
		c.MemtableFlush = 192
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 2
	}
}

// IngestBenchLeg reports one write architecture under the configured load.
type IngestBenchLeg struct {
	Updates  int     `json:"update_pairs"`
	UPS      float64 `json:"updates_per_sec"`
	UpdP50us float64 `json:"upd_p50_us"`
	UpdP99us float64 `json:"upd_p99_us"`
	Queries  int     `json:"queries"`
	QPS      float64 `json:"qps"`
	// Commits and Syncs expose group-commit coalescing on the ingest leg
	// (Syncs < Commits is the win); zero on the direct leg, which runs
	// without a group committer.
	Commits int64 `json:"commits"`
	Syncs   int64 `json:"log_syncs"`
	// Freezes/Merges count the ingest tier's flush activity (0 on direct).
	Freezes int64 `json:"freezes"`
	Merges  int64 `json:"merges"`
}

// IngestBenchResult is one writer-count comparison of the two legs.
type IngestBenchResult struct {
	N       int            `json:"n"`
	Writers int            `json:"writers"`
	Direct  IngestBenchLeg `json:"direct"`
	Ingest  IngestBenchLeg `json:"ingest"`
	// Speedup is Ingest.UPS / Direct.UPS; QPSRatio is Ingest.QPS /
	// Direct.QPS (how much of the flat path's read throughput the tier
	// retains while sustaining the higher write rate).
	Speedup  float64 `json:"updates_speedup"`
	QPSRatio float64 `json:"qps_ratio"`
}

// slowLog models a log device with a real sync cost; appends are absorbed
// at memory speed (sequential writes), only Sync pays.
type slowLog struct {
	*pager.MemLog
	d time.Duration
}

func (l *slowLog) Sync() error {
	time.Sleep(l.d)
	return l.MemLog.Sync()
}

// ingestBenchWorkload pre-generates the population and per-writer update
// streams. Writers own disjoint OID sets (writer w owns index i with
// i%writers == w), the tier's concurrent-writer discipline, and both legs
// consume identical streams.
func ingestBenchWorkload(cfg IngestBenchConfig) (tr dual.Terrain, pop []dual.Motion, streams [][][2]dual.Motion, err error) {
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return tr, nil, nil, err
	}
	if err := sim.Bootstrap(func(workload.Op) error { return nil }); err != nil {
		return tr, nil, nil, err
	}
	tr = p.Terrain
	pop = sim.Motions()
	streams = make([][][2]dual.Motion, cfg.Writers)
	perWriter := cfg.Updates / cfg.Writers
	if perWriter == 0 {
		perWriter = 1
	}
	for w := 0; w < cfg.Writers; w++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		var owned []int
		for i := w; i < len(pop); i += cfg.Writers {
			owned = append(owned, i)
		}
		cur := make(map[int]dual.Motion, len(owned))
		for _, i := range owned {
			cur[i] = pop[i]
		}
		stream := make([][2]dual.Motion, perWriter)
		for k := range stream {
			i := owned[rng.Intn(len(owned))]
			old := cur[i]
			upd := old
			upd.Y0 = math.Mod(old.Y0+rng.Float64()*50, tr.YMax)
			v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
			if rng.Intn(2) == 1 {
				v = -v
			}
			upd.V = v
			stream[k] = [2]dual.Motion{old, upd}
			cur[i] = upd
		}
		streams[w] = stream
	}
	return tr, pop, streams, nil
}

// runWritePhase drives one leg's writers over their streams concurrently
// and reports the sustained pair rate and per-pair latencies.
func runWritePhase(writers int, streams [][][2]dual.Motion,
	applyPair func(w int, old, upd dual.Motion) error) (pairs int, ups float64, updLat []time.Duration, err error) {
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	lats := make([][]time.Duration, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, len(streams[w]))
			for _, pair := range streams[w] {
				t0 := time.Now()
				if err := applyPair(w, pair[0], pair[1]); err != nil {
					errOnce.Do(func() { runErr = fmt.Errorf("writer %d: %w", w, err) })
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return 0, 0, nil, runErr
	}
	for _, l := range lats {
		pairs += len(l)
		updLat = append(updLat, l...)
	}
	sort.Slice(updLat, func(i, j int) bool { return updLat[i] < updLat[j] })
	return pairs, float64(pairs) / elapsed.Seconds(), updLat, nil
}

// runQueryPhase serves total queries from workers goroutines and reports
// the rate.
func runQueryPhase(workers, total int, queries []dual.MORQuery,
	query func(q dual.MORQuery) error) (served int64, qps float64, err error) {
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		done    atomic.Int64
		errOnce sync.Once
		runErr  error
	)
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				ticket := next.Add(1) - 1
				if ticket >= int64(total) {
					return
				}
				if err := query(queries[ticket%int64(len(queries))]); err != nil {
					errOnce.Do(func() { runErr = fmt.Errorf("query worker %d: %w", g, err) })
					return
				}
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return 0, 0, runErr
	}
	return done.Load(), float64(done.Load()) / elapsed.Seconds(), nil
}

// lingerFor bounds the group-commit linger: a fraction of the sync cost
// so a lone committer barely pays, capped so the linger never becomes a
// per-round tax comparable to the sync it is trying to amortize.
func lingerFor(sync time.Duration) time.Duration {
	l := sync / 2
	if max := 200 * time.Microsecond; l > max {
		l = max
	}
	return l
}

func latPctUs(l []time.Duration, p float64) float64 {
	if len(l) == 0 {
		return 0
	}
	return float64(l[int(p*float64(len(l)-1))].Nanoseconds()) / 1e3
}

// RunIngestBench compares the two write paths at one writer count.
func RunIngestBench(cfg IngestBenchConfig) (*IngestBenchResult, error) {
	cfg.fill()
	tr, pop, streams, err := ingestBenchWorkload(cfg)
	if err != nil {
		return nil, err
	}
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return nil, err
	}
	if err := sim.Bootstrap(func(workload.Op) error { return nil }); err != nil {
		return nil, err
	}
	queries := sim.Queries(workload.SmallQueries())
	for len(queries) < 1024 {
		queries = append(queries, sim.Queries(workload.SmallQueries())...)
	}
	res := &IngestBenchResult{N: cfg.N, Writers: cfg.Writers}

	// Direct leg: flat Dual-B+ on a WALStore; each pair is one implicit
	// batch (delete + insert) under the exclusive latch, one sync each.
	{
		wal, err := pager.OpenWALStore(pager.NewMemStore(pager.DefaultPageSize),
			&slowLog{MemLog: pager.NewMemLog(), d: cfg.SyncLatency}, pager.WALConfig{})
		if err != nil {
			return nil, err
		}
		ix, err := core.NewDualBPlus(wal, core.DualBPlusConfig{Terrain: tr, C: 4, Codec: bptree.Compact})
		if err != nil {
			return nil, err
		}
		if err := pager.RunBatch(wal, func() error { return ix.BulkLoad(pop) }); err != nil {
			return nil, fmt.Errorf("direct load: %w", err)
		}
		var mu sync.Mutex // the index is single-writer
		pairs, ups, lat, err := runWritePhase(cfg.Writers, streams,
			func(_ int, old, upd dual.Motion) error {
				mu.Lock()
				defer mu.Unlock()
				return pager.RunBatch(wal, func() error {
					if err := ix.Delete(old); err != nil {
						return err
					}
					return ix.Insert(upd)
				})
			})
		if err != nil {
			return nil, fmt.Errorf("direct write phase: %w", err)
		}
		served, qps, err := runQueryPhase(cfg.QueryWorkers, cfg.Queries, queries,
			func(q dual.MORQuery) error {
				return ix.Query(q, func(dual.OID) {})
			})
		if err != nil {
			return nil, fmt.Errorf("direct query phase: %w", err)
		}
		commits, syncs := wal.GroupCommitStats()
		res.Direct = IngestBenchLeg{
			Updates: pairs, UPS: ups,
			UpdP50us: latPctUs(lat, 0.50), UpdP99us: latPctUs(lat, 0.99),
			Queries: int(served), QPS: qps,
			Commits: int64(commits), Syncs: int64(syncs),
		}
		if err := wal.Close(); err != nil {
			return nil, err
		}
	}

	// Ingest leg: per-writer durable journals on a group-commit WALStore
	// carry the ops; the shared tier (base index on its own memory store)
	// carries the answers. The journal device uses small pages: a journal
	// record is tens of bytes and the page is the WAL's encode unit, so
	// record-sized pages keep each commit's log image proportional to the
	// ops it carries (the direct leg ships tree page images and wants
	// tree-sized pages — that asymmetry is the architectural contrast).
	{
		const journalPageSize = 512
		wal, err := pager.OpenWALStore(pager.NewMemStore(journalPageSize),
			&slowLog{MemLog: pager.NewMemLog(), d: cfg.SyncLatency}, pager.WALConfig{
				GroupCommit:    true,
				CommitLinger:   lingerFor(cfg.SyncLatency),
				MaxCommitQueue: 4 * cfg.Writers,
			})
		if err != nil {
			return nil, err
		}
		ix, err := core.NewDualBPlus(pager.NewBuffered(pager.NewMemStore(pager.DefaultPageSize), 256),
			core.DualBPlusConfig{Terrain: tr, C: 4, Codec: bptree.Compact})
		if err != nil {
			return nil, err
		}
		tier, err := ingest.New(ix, ingest.Config{
			Terrain: tr, MemtableFlush: cfg.MemtableFlush, MaxRuns: cfg.MaxRuns,
		})
		if err != nil {
			return nil, err
		}
		if err := tier.Load(pop); err != nil {
			return nil, fmt.Errorf("ingest load: %w", err)
		}
		journals := make([]*ingest.Journal, cfg.Writers)
		for w := range journals {
			txn, err := wal.BeginTxn()
			if err != nil {
				return nil, err
			}
			if journals[w], err = ingest.NewJournal(txn); err != nil {
				return nil, err
			}
			if err := txn.Commit(); err != nil {
				return nil, err
			}
		}
		pairs, ups, lat, err := runWritePhase(cfg.Writers, streams,
			func(w int, old, upd dual.Motion) error {
				ops := []ingest.Op{{Insert: false, M: old}, {Insert: true, M: upd}}
				txn, err := wal.BeginTxn()
				if err != nil {
					return err
				}
				if err := journals[w].Append(txn, ops); err != nil {
					//mobidxlint:allow errdrop -- the append failure is the verdict; rollback is best-effort cleanup
					_ = txn.Rollback()
					return err
				}
				if err := txn.Commit(); err != nil {
					return err
				}
				_, err = tier.Add(ops)
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("ingest write phase: %w", err)
		}
		served, qps, err := runQueryPhase(cfg.QueryWorkers, cfg.Queries, queries,
			func(q dual.MORQuery) error {
				_, err := tier.Query(q)
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("ingest query phase: %w", err)
		}
		commits, syncs := wal.GroupCommitStats()
		st := tier.Stats()
		res.Ingest = IngestBenchLeg{
			Updates: pairs, UPS: ups,
			UpdP50us: latPctUs(lat, 0.50), UpdP99us: latPctUs(lat, 0.99),
			Queries: int(served), QPS: qps,
			Commits: int64(commits), Syncs: int64(syncs),
			Freezes: int64(st.Freezes), Merges: int64(st.Merges),
		}
		if err := tier.Close(); err != nil {
			return nil, err
		}
		if err := wal.Close(); err != nil {
			return nil, err
		}
	}

	if res.Direct.UPS > 0 {
		res.Speedup = res.Ingest.UPS / res.Direct.UPS
	}
	if res.Direct.QPS > 0 {
		res.QPSRatio = res.Ingest.QPS / res.Direct.QPS
	}
	return res, nil
}
