package harness

import (
	"testing"
	"time"

	"mobidx/internal/leakcheck"
)

// TestRunIngestBench smoke-tests both legs at a small scale: every update
// pair applied on each, queries served concurrently, group commit active
// on the ingest leg, and the tier actually freezing. The ≥3x speedup gate
// runs at full scale in scripts/bench.sh, not here — timing claims on CI
// machines are flaky.
func TestRunIngestBench(t *testing.T) {
	leakcheck.Check(t)
	res, err := RunIngestBench(IngestBenchConfig{
		N:             3000,
		Writers:       2,
		Updates:       240,
		QueryWorkers:  1,
		SyncLatency:   50 * time.Microsecond, // keeps the run short
		MemtableFlush: 64,
		MaxRuns:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, leg := range map[string]IngestBenchLeg{"direct": res.Direct, "ingest": res.Ingest} {
		if leg.Updates != 240 {
			t.Fatalf("%s: applied %d pairs, want 240", name, leg.Updates)
		}
		if leg.UPS <= 0 {
			t.Fatalf("%s: UPS = %v", name, leg.UPS)
		}
		if leg.UpdP50us <= 0 || leg.UpdP50us > leg.UpdP99us {
			t.Fatalf("%s: update percentiles unordered: p50=%v p99=%v", name, leg.UpdP50us, leg.UpdP99us)
		}
		if leg.Queries == 0 || leg.QPS <= 0 {
			t.Fatalf("%s: no queries served: %+v", name, leg)
		}
	}
	if res.Direct.Commits != 0 || res.Direct.Syncs != 0 {
		t.Fatalf("direct leg ran a group committer: %+v", res.Direct)
	}
	if res.Ingest.Commits == 0 {
		t.Fatalf("ingest leg saw no group commits: %+v", res.Ingest)
	}
	if res.Ingest.Syncs > res.Ingest.Commits {
		t.Fatalf("ingest leg synced more than it committed: %+v", res.Ingest)
	}
	if res.Ingest.Freezes == 0 {
		t.Fatalf("ingest tier never froze: %+v", res.Ingest)
	}
	if res.Speedup <= 0 || res.QPSRatio <= 0 {
		t.Fatalf("ratios not filled: %+v", res)
	}
}
