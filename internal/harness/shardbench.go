// Sharded serving mode: RunShardBench measures wall-clock MOR query
// throughput against a shard.Router cluster — the fault-isolated serving
// layer — across topologies (shard count × serving goroutines), and
// optionally under a rolling fault storm (QPS-under-chaos): transient
// read-fault bursts sweep across the shards while serving continues, the
// retry budget absorbing most of them and graceful degradation accounting
// for the rest. The same simulated-disk model as RunThroughput applies:
// every page read under a shard stalls IOLatency, so sharding wins by
// overlapping independent partitions' stalls.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/pager"
	"mobidx/internal/shard"
	"mobidx/internal/workload"
)

// Batcher forwarding for slowStore: a shard's FaultStore and index sit
// above it, and their atomic write batches must reach the WAL below.
func (s *slowStore) Begin() error {
	if b, ok := s.Store.(pager.Batcher); ok {
		return b.Begin()
	}
	return nil
}

// Commit forwards Batcher.
func (s *slowStore) Commit() error {
	if b, ok := s.Store.(pager.Batcher); ok {
		return b.Commit()
	}
	return nil
}

// Rollback forwards Batcher.
func (s *slowStore) Rollback() error {
	if b, ok := s.Store.(pager.Batcher); ok {
		return b.Rollback()
	}
	return nil
}

// ShardBenchConfig tunes one sharded serving run.
type ShardBenchConfig struct {
	N       int   // mobile objects (0 → 20000)
	Shards  int   // cluster partitions (0 → 4)
	Workers int   // query-serving goroutines (0 → GOMAXPROCS)
	Queries int   // total queries to serve (0 → 4000)
	Seed    int64 // scenario seed (0 → 1999)
	// IOLatency stalls every page read under a shard (simulated disk),
	// switched on after the load. Zero = in-memory.
	IOLatency time.Duration
	Mix       workload.QueryMix // zero value → the small-query mix
	// Chaos turns on the rolling storm: a transient read-fault burst
	// visits one shard at a time for BurstEvery, cycling through the
	// cluster for the whole run, under a retry+degrade policy. Off, the
	// cluster serves clean under the zero (strict) policy.
	Chaos      bool
	BurstEvery time.Duration // storm dwell per shard (0 → 3ms)
}

func (c *ShardBenchConfig) fill() {
	if c.N == 0 {
		c.N = 20000
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queries == 0 {
		c.Queries = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.Mix.PerSlot == 0 {
		c.Mix = workload.SmallQueries()
	}
	if c.BurstEvery == 0 {
		c.BurstEvery = 3 * time.Millisecond
	}
}

// ShardBenchResult reports one sharded serving run.
type ShardBenchResult struct {
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	Queries int     `json:"queries"`
	Chaos   bool    `json:"chaos"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	// Failure-policy traffic (all zero on clean runs).
	Retries      int64 `json:"retries"`
	Partial      int64 `json:"partial_answers"`
	BreakerSkips int64 `json:"breaker_skips"`
	FailedCalls  int64 `json:"failed_shard_calls"`
}

// CheckShardDifferential verifies the sharding contract at bench scale:
// for every shard count, a routed query over the bootstrap population is
// byte-identical to the unsharded sequential oracle and to the workload
// simulator's brute-force ground truth, on both query mixes.
func CheckShardDifferential(n int, seed int64, shardCounts []int) error {
	p := workload.DefaultParams(n)
	p.Seed = seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return err
	}
	ix, err := core.NewDualBPlus(pager.NewMemStore(pager.DefaultPageSize),
		core.DualBPlusConfig{Terrain: p.Terrain, C: 4, Codec: bptree.Wide})
	if err != nil {
		return err
	}
	if err := sim.Bootstrap(func(op workload.Op) error {
		if op.Insert {
			return ix.Insert(op.Motion)
		}
		return ix.Delete(op.Motion)
	}); err != nil {
		return err
	}
	ctx := context.Background()
	routers := make([]*shard.Router, 0, len(shardCounts))
	defer func() {
		for _, r := range routers {
			//mobidxlint:allow errdrop -- differential cleanup; the check's verdict is already decided
			_ = r.Close()
		}
	}()
	for _, s := range shardCounts {
		r, err := shard.NewCluster(shard.Config{Terrain: p.Terrain, C: 4, Codec: bptree.Wide},
			s, core.NewExecutor(s), shard.Policy{}, nil)
		if err != nil {
			return err
		}
		routers = append(routers, r)
		if err := r.BulkLoad(ctx, sim.Motions()); err != nil {
			return fmt.Errorf("shards=%d: load: %w", s, err)
		}
	}
	seq := core.NewExecutor(1)
	for _, mix := range []workload.QueryMix{workload.SmallQueries(), workload.LargeQueries()} {
		for _, q := range sim.Queries(mix)[:50] {
			ref, err := ix.QueryParallel(seq, q)
			if err != nil {
				return err
			}
			want := sim.BruteForce(q)
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(ref) != len(want) {
				return fmt.Errorf("mix %s: oracle answer has %d OIDs, brute force %d",
					mix.Name, len(ref), len(want))
			}
			for i, r := range routers {
				got, err := r.Query(ctx, q)
				if err != nil {
					return fmt.Errorf("shards=%d: %w", shardCounts[i], err)
				}
				if len(got) != len(ref) {
					return fmt.Errorf("mix %s shards=%d: routed answer has %d OIDs, oracle %d",
						mix.Name, shardCounts[i], len(got), len(ref))
				}
				for k := range ref {
					if got[k] != ref[k] {
						return fmt.Errorf("mix %s shards=%d: routed answer diverges from oracle at %d",
							mix.Name, shardCounts[i], k)
					}
				}
			}
		}
	}
	return nil
}

// RunShardBench builds a shard.Router cluster (compact codec, default
// page size), bulk-loads the §5 bootstrap population, then serves
// cfg.Queries MOR queries from cfg.Workers goroutines through the router.
// With Chaos, a storm goroutine sweeps transient read-fault bursts across
// the shards for the duration; partial answers count as served (that is
// the degradation contract), any other error aborts the run.
func RunShardBench(cfg ShardBenchConfig) (*ShardBenchResult, error) {
	cfg.fill()

	pol := shard.Policy{}
	if cfg.Chaos {
		pol = shard.Policy{
			ShardTimeout: 250 * time.Millisecond,
			MaxAttempts:  4,
			Backoff:      pager.ExponentialBackoff(200*time.Microsecond, 2*time.Millisecond),
			Jitter:       0.5,
			Seed:         cfg.Seed,
			BreakAfter:   8,
			OpenFor:      10 * time.Millisecond,
			AllowPartial: true,
		}
	}
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	slows := make([]*slowStore, cfg.Shards)
	faults := make([]*pager.FaultStore, cfg.Shards)
	r, err := shard.NewCluster(
		shard.Config{Terrain: p.Terrain, C: 4, Codec: bptree.Compact},
		cfg.Shards, core.NewExecutor(cfg.Shards), pol,
		func(id int) func(pager.Store) pager.Store {
			return func(st pager.Store) pager.Store {
				slows[id] = &slowStore{Store: st, delay: cfg.IOLatency}
				faults[id] = pager.NewFaultStore(slows[id], pager.FaultConfig{Seed: cfg.Seed + int64(id)})
				return faults[id]
			}
		})
	if err != nil {
		return nil, err
	}
	defer r.Close()

	sim, err := workload.NewSimulator(p)
	if err != nil {
		return nil, err
	}
	if err := sim.Bootstrap(func(workload.Op) error { return nil }); err != nil {
		return nil, err
	}
	ctx := context.Background()
	if err := r.BulkLoad(ctx, sim.Motions()); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	queries := sim.Queries(cfg.Mix)
	for len(queries) < 2048 {
		queries = append(queries, sim.Queries(cfg.Mix)...)
	}
	for _, s := range slows {
		s.enabled.Store(true)
	}

	var (
		next      atomic.Int64
		errOnce   sync.Once
		runErr    error
		latencies = make([][]time.Duration, cfg.Workers)
	)
	var wg sync.WaitGroup
	stopStorm := make(chan struct{})
	if cfg.Chaos {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				victim := i % cfg.Shards
				faults[victim].SetConfig(pager.FaultConfig{
					Seed:      cfg.Seed + int64(victim),
					Read:      pager.OpFaults{FailEvery: 6},
					Transient: true,
				})
				select {
				case <-stopStorm:
					faults[victim].SetConfig(pager.FaultConfig{Seed: cfg.Seed + int64(victim)})
					return
				case <-time.After(cfg.BurstEvery):
				}
				faults[victim].SetConfig(pager.FaultConfig{Seed: cfg.Seed + int64(victim)})
			}
		}()
	}
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, cfg.Queries/cfg.Workers+1)
			for {
				ticket := next.Add(1) - 1
				if ticket >= int64(cfg.Queries) {
					break
				}
				q := queries[ticket%int64(len(queries))]
				t0 := time.Now()
				_, err := r.Query(ctx, q)
				lat = append(lat, time.Since(t0))
				var pe *shard.PartialError
				if err != nil && !errors.As(err, &pe) {
					errOnce.Do(func() { runErr = fmt.Errorf("query %d: %w", ticket, err) })
					break
				}
			}
			latencies[w] = lat
		}(w)
	}
	// Wait for the serving workers, then stop the storm.
	done := make(chan struct{})
	//mobidxlint:allow gorolifecycle -- joined at the <-done receive below; the poll loop exits once workers drain cfg.Queries or record an error
	go func() {
		for next.Load() < int64(cfg.Queries) && runErr == nil {
			time.Sleep(time.Millisecond)
		}
		close(stopStorm)
		close(done)
	}()
	wg.Wait()
	<-done
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e3
	}
	st := r.Stats()
	return &ShardBenchResult{
		Shards:       cfg.Shards,
		Workers:      cfg.Workers,
		Queries:      len(all),
		Chaos:        cfg.Chaos,
		QPS:          float64(len(all)) / elapsed.Seconds(),
		P50us:        pct(0.50),
		P99us:        pct(0.99),
		Retries:      st.Retries,
		Partial:      st.Partial,
		BreakerSkips: st.BreakerSkips,
		FailedCalls:  st.FailedShards,
	}, nil
}
