package harness

import (
	"testing"

	"mobidx/internal/leakcheck"
	"mobidx/internal/workload"
)

// TestRunShardBench exercises the sharded serving loop end to end at a
// small scale: all queries served at each shard count, sane percentile
// ordering, clean runs with zero failure-policy traffic. Scaling claims
// live in the benchmark gate, not here.
func TestRunShardBench(t *testing.T) {
	leakcheck.Check(t)
	for _, shards := range []int{1, 4} {
		res, err := RunShardBench(ShardBenchConfig{
			N:       3000,
			Shards:  shards,
			Workers: 4,
			Queries: 400,
			Mix:     workload.SmallQueries(),
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Queries != 400 {
			t.Fatalf("shards=%d: served %d queries, want 400", shards, res.Queries)
		}
		if res.QPS <= 0 || res.P50us <= 0 || res.P50us > res.P99us {
			t.Fatalf("shards=%d: implausible timings %+v", shards, res)
		}
		if res.Retries != 0 || res.Partial != 0 || res.FailedCalls != 0 {
			t.Fatalf("shards=%d: clean run reported failure traffic: %+v", shards, res)
		}
	}
}

// TestRunShardBenchChaos: the rolling storm run must finish all queries
// with the retry budget visibly engaged and every degraded answer
// accounted as a typed partial, not an error.
func TestRunShardBenchChaos(t *testing.T) {
	leakcheck.Check(t)
	res, err := RunShardBench(ShardBenchConfig{
		N:       3000,
		Shards:  4,
		Workers: 4,
		Queries: 600,
		Chaos:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 600 {
		t.Fatalf("served %d queries, want 600", res.Queries)
	}
	if !res.Chaos {
		t.Fatal("chaos flag not echoed")
	}
	if res.Retries == 0 && res.Partial == 0 && res.FailedCalls == 0 {
		t.Fatalf("storm left no trace in the stats: %+v", res)
	}
}

// TestCheckShardDifferential runs the bench-scale contract check itself.
func TestCheckShardDifferential(t *testing.T) {
	if err := CheckShardDifferential(2000, 1999, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
}
