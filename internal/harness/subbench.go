// Subscription serving benchmark: the cost of keeping S standing queries
// current while motion updates stream in. The incremental leg feeds the
// updates through the subscription engine (dual-space query index +
// kinetic certificates, internal/subscribe), which needs no object index
// at all; the naive leg maintains the Dual-B+ index its strategy
// requires, re-runs every standing query after every tick, and diffs
// against its previous answers — the re-execution strawman the engine's
// output-sensitivity is measured against. Both legs replay the identical
// recorded geofence trace; each is timed over the steady-state tick loop
// only, with its own setup (installing the standing queries, priming the
// previous-answer sets) excluded, so the ratio compares the two serving
// strategies' update throughput.

package harness

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/subscribe"
	"mobidx/internal/workload"
)

// SubscribeBenchConfig sizes one subscription benchmark run.
type SubscribeBenchConfig struct {
	// Subs is the number of standing queries (0 selects 1000).
	Subs int
	// Commuters is the mobile-object population (0 selects 2000).
	Commuters int
	// Ticks is the trace length in time instants (0 selects 20).
	Ticks int
}

// SubscribeBenchResult is one run's report.
type SubscribeBenchResult struct {
	Subs      int `json:"subs"`
	Commuters int `json:"commuters"`
	Ticks     int `json:"ticks"`
	Ops       int `json:"motion_ops"`

	IncrementalMs  float64 `json:"incremental_ms"`
	NaiveMs        float64 `json:"naive_ms"`
	IncrementalUPS float64 `json:"incremental_updates_per_sec"`
	NaiveUPS       float64 `json:"naive_updates_per_sec"`
	Speedup        float64 `json:"speedup"`

	IncrementalDeltas int    `json:"incremental_deltas"`
	NaiveDeltas       int    `json:"naive_deltas"`
	CertFires         uint64 `json:"cert_fires"`
	Differential      string `json:"differential"`
}

// subTrace is one recorded geofence scenario: the bootstrap batch plus
// per-tick op batches, replayed identically into both legs.
type subTrace struct {
	fences    []workload.Geofence
	terrain   dual.Terrain
	bootstrap []subscribe.Op
	ticks     [][]subscribe.Op
	times     []float64
	final     []dual.Motion // ground-truth motions after the last tick
}

func recordSubTrace(cfg SubscribeBenchConfig) (*subTrace, error) {
	p := workload.DefaultGeofenceParams(cfg.Commuters, cfg.Subs)
	// Alerting-style anticipation windows: short enough that a fence's
	// swept region stays local (the workload default's 60-unit window
	// sweeps a tenth of the terrain per query, which models long-horizon
	// analytics rather than serving).
	p.Windows = []float64{1, 3, 8}
	sim, err := workload.NewGeofenceSim(p)
	if err != nil {
		return nil, err
	}
	tr := &subTrace{fences: sim.Fences(), terrain: p.Terrain}
	var batch []subscribe.Op
	feed := func(op workload.Op) error {
		batch = append(batch, subscribe.Op{Insert: op.Insert, M: op.Motion})
		return nil
	}
	if err := sim.Bootstrap(feed); err != nil {
		return nil, err
	}
	tr.bootstrap = batch
	for t := 0; t < cfg.Ticks; t++ {
		batch = nil
		if err := sim.Tick(feed); err != nil {
			return nil, err
		}
		tr.ticks = append(tr.ticks, batch)
		tr.times = append(tr.times, sim.Now())
	}
	tr.final = append([]dual.Motion(nil), sim.Motions()...)
	return tr, nil
}

// RunSubscribeBench replays the trace through both legs and reports their
// update throughput. Before returning, the two legs' final answer sets
// are checked against each other and against brute force over the
// simulator's final state; a mismatch is reported in Differential (and
// the caller should treat the numbers as void).
func RunSubscribeBench(cfg SubscribeBenchConfig) (*SubscribeBenchResult, error) {
	if cfg.Subs <= 0 {
		cfg.Subs = 1000
	}
	if cfg.Commuters <= 0 {
		cfg.Commuters = 2000
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 20
	}
	trace, err := recordSubTrace(cfg)
	if err != nil {
		return nil, err
	}
	res := &SubscribeBenchResult{Subs: cfg.Subs, Commuters: cfg.Commuters, Ticks: cfg.Ticks}
	for _, b := range trace.ticks {
		res.Ops += len(b)
	}

	incSets, err := runIncrementalLeg(trace, res)
	if err != nil {
		return nil, fmt.Errorf("incremental leg: %w", err)
	}
	naiveSets, err := runNaiveLeg(trace, res)
	if err != nil {
		return nil, fmt.Errorf("naive leg: %w", err)
	}

	res.IncrementalUPS = float64(res.Ops) / (res.IncrementalMs / 1e3)
	res.NaiveUPS = float64(res.Ops) / (res.NaiveMs / 1e3)
	if res.IncrementalMs > 0 {
		res.Speedup = res.NaiveMs / res.IncrementalMs
	}

	// Differential closeout: both legs and brute force must agree on every
	// standing query's final answer set.
	res.Differential = "ok"
	now := trace.times[len(trace.times)-1]
	for i, f := range trace.fences {
		q := dual.MORQuery{Y1: f.Y1, Y2: f.Y2, T1: now, T2: now + f.Window}
		var truth []dual.OID
		for _, m := range trace.final {
			if m.Matches(q) {
				truth = append(truth, m.OID)
			}
		}
		if !reflect.DeepEqual(incSets[i], truth) || !reflect.DeepEqual(naiveSets[i], truth) {
			res.Differential = fmt.Sprintf(
				"fence %d %+v: incremental %d members, naive %d, brute force %d",
				i, f, len(incSets[i]), len(naiveSets[i]), len(truth))
			break
		}
	}
	return res, nil
}

// runIncrementalLeg serves the standing queries from the subscription
// engine alone — no object index exists on this leg — and drains every
// one each tick. Setup (bootstrap population, subscription install) runs
// before the clock starts.
func runIncrementalLeg(trace *subTrace, res *SubscribeBenchResult) ([][]dual.OID, error) {
	eng, err := subscribe.New(subscribe.Config{})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	if err := eng.Apply(trace.bootstrap); err != nil {
		return nil, err
	}
	ids := make([]subscribe.SubID, len(trace.fences))
	for i, f := range trace.fences {
		if ids[i], err = eng.Subscribe(f.Y1, f.Y2, f.Window); err != nil {
			return nil, err
		}
	}
	for _, id := range ids {
		if _, err := eng.Drain(id); err != nil { // discard the initial answer sets
			return nil, err
		}
	}

	deltas := 0
	start := time.Now()
	for t, batch := range trace.ticks {
		if err := eng.Advance(trace.times[t]); err != nil {
			return nil, err
		}
		if err := eng.Apply(batch); err != nil {
			return nil, err
		}
		for _, id := range ids {
			ds, err := eng.Drain(id)
			if err != nil {
				return nil, err
			}
			deltas += len(ds)
		}
	}
	res.IncrementalMs = float64(time.Since(start).Microseconds()) / 1e3
	res.IncrementalDeltas = deltas
	res.CertFires = eng.Stats().CertFires

	out := make([][]dual.OID, len(ids))
	for i, id := range ids {
		ms, err := eng.Members(id)
		if err != nil {
			return nil, err
		}
		if len(ms) == 0 {
			ms = nil
		}
		out[i] = ms
	}
	return out, nil
}

// runNaiveLeg maintains the Dual-B+ index re-execution depends on and,
// after every tick, re-runs every standing query one-shot and diffs
// against its previous answer — the strategy the engine replaces. Setup
// (bootstrap load, priming the previous answers at t=0) runs before the
// clock starts; the timed loop covers index maintenance plus the re-runs,
// both intrinsic to this strategy's serving cost.
func runNaiveLeg(trace *subTrace, res *SubscribeBenchResult) ([][]dual.OID, error) {
	ix, err := core.NewDualBPlus(pager.NewMemStore(pager.DefaultPageSize),
		core.DualBPlusConfig{Terrain: trace.terrain})
	if err != nil {
		return nil, err
	}
	exec := core.NewExecutor(0)
	ctx := context.Background()

	apply := func(ops []subscribe.Op) error {
		for _, op := range ops {
			if op.Insert {
				err = ix.Insert(op.M)
			} else {
				err = ix.Delete(op.M)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := apply(trace.bootstrap); err != nil {
		return nil, err
	}
	prev := make([]map[dual.OID]bool, len(trace.fences))
	deltas := 0
	rerun := func(now float64) error {
		for i, f := range trace.fences {
			q := dual.MORQuery{Y1: f.Y1, Y2: f.Y2, T1: now, T2: now + f.Window}
			ans, err := ix.QueryParallelCtx(ctx, exec, q)
			if err != nil {
				return err
			}
			cur := make(map[dual.OID]bool, len(ans))
			for _, oid := range ans {
				cur[oid] = true
				if !prev[i][oid] {
					deltas++ // enter
				}
			}
			for oid := range prev[i] {
				if !cur[oid] {
					deltas++ // leave
				}
			}
			prev[i] = cur
		}
		return nil
	}
	if err := rerun(0); err != nil {
		return nil, err
	}
	deltas = 0 // priming transitions are setup, not serving work
	start := time.Now()
	for t, batch := range trace.ticks {
		if err := apply(batch); err != nil {
			return nil, err
		}
		if err := rerun(trace.times[t]); err != nil {
			return nil, err
		}
	}
	res.NaiveMs = float64(time.Since(start).Microseconds()) / 1e3
	res.NaiveDeltas = deltas

	out := make([][]dual.OID, len(trace.fences))
	for i, f := range trace.fences {
		now := trace.times[len(trace.times)-1]
		q := dual.MORQuery{Y1: f.Y1, Y2: f.Y2, T1: now, T2: now + f.Window}
		ans, err := ix.QueryParallelCtx(ctx, exec, q)
		if err != nil {
			return nil, err
		}
		if len(ans) == 0 {
			ans = nil
		}
		out[i] = ans
	}
	return out, nil
}
