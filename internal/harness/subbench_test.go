package harness

import "testing"

// TestSubscribeBenchSmoke runs a miniature subscription benchmark and
// checks the report is internally consistent and the legs agree.
func TestSubscribeBenchSmoke(t *testing.T) {
	res, err := RunSubscribeBench(SubscribeBenchConfig{Subs: 50, Commuters: 300, Ticks: 8})
	if err != nil {
		t.Fatalf("RunSubscribeBench: %v", err)
	}
	if res.Differential != "ok" {
		t.Fatalf("differential: %s", res.Differential)
	}
	if res.Ops == 0 {
		t.Fatalf("trace carried no tick updates")
	}
	if res.IncrementalUPS <= 0 || res.NaiveUPS <= 0 {
		t.Fatalf("non-positive throughput: inc %v naive %v", res.IncrementalUPS, res.NaiveUPS)
	}
	if res.IncrementalDeltas == 0 || res.NaiveDeltas == 0 {
		t.Fatalf("inert trace: inc %d naive %d deltas", res.IncrementalDeltas, res.NaiveDeltas)
	}
}
