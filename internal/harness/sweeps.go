package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
	"mobidx/internal/route"
	"mobidx/internal/twod"
	"mobidx/internal/workload"
)

// ---------------------------------------------------------------------------
// E5: approximation error K' and enlargement E versus c (Lemma 1 / Eq. 2)
// ---------------------------------------------------------------------------

// ApproxRow is one row of the approximation-error sweep.
type ApproxRow struct {
	C           int
	AvgIOs      float64
	AvgAnswer   float64
	AvgError    float64 // average K' = candidates − answer per query
	ErrorRatio  float64 // K' / answer
	Pages       int
	AvgUpdateIO float64
}

// ApproxErrorSweep measures the Dual-B+ method's approximation error as a
// function of the observation-index count c. Lemma 1 predicts error
// roughly proportional to 1/c, traded against O(c·n) space and O(c·log n)
// updates.
func ApproxErrorSweep(n int, ticks int, cs []int) ([]ApproxRow, error) {
	var out []ApproxRow
	for _, c := range cs {
		c := c
		base := pager.NewMemStore(pager.DefaultPageSize)
		buf := pager.NewBuffered(base, BufferPages)
		tr := workload.DefaultParams(n).Terrain
		ix, err := core.NewDualBPlus(buf, core.DualBPlusConfig{Terrain: tr, C: c, Codec: bptree.Compact})
		if err != nil {
			return nil, err
		}
		p := workload.DefaultParams(n)
		p.Ticks = ticks
		sim, err := workload.NewSimulator(p)
		if err != nil {
			return nil, err
		}
		apply := func(op workload.Op) error {
			if op.Insert {
				return ix.Insert(op.Motion)
			}
			return ix.Delete(op.Motion)
		}
		if err := sim.Bootstrap(apply); err != nil {
			return nil, err
		}
		var updIOs int64
		updates := 0
		for t := 1; t <= ticks; t++ {
			before := buf.Stats()
			if err := sim.Tick(func(op workload.Op) error {
				if !op.Insert {
					updates++
				}
				return apply(op)
			}); err != nil {
				return nil, err
			}
			updIOs += buf.Stats().Sub(before).IOs()
		}
		row := ApproxRow{C: c, Pages: buf.PagesInUse()}
		queries := 0
		for _, mix := range []workload.QueryMix{workload.SmallQueries(), workload.LargeQueries()} {
			for _, q := range sim.Queries(mix) {
				buf.Clear()
				before := buf.Stats()
				count := 0
				if err := ix.Query(q, func(dual.OID) { count++ }); err != nil {
					return nil, err
				}
				row.AvgIOs += float64(buf.Stats().Sub(before).IOs())
				row.AvgAnswer += float64(count)
				row.AvgError += float64(ix.LastQueryCandidates() - count)
				queries++
			}
		}
		row.AvgIOs /= float64(queries)
		row.AvgAnswer /= float64(queries)
		row.AvgError /= float64(queries)
		if row.AvgAnswer > 0 {
			row.ErrorRatio = row.AvgError / row.AvgAnswer
		}
		if updates > 0 {
			row.AvgUpdateIO = float64(updIOs) / float64(updates)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatApproxSweep renders the E5 table.
func FormatApproxSweep(rows []ApproxRow) string {
	var b strings.Builder
	b.WriteString("Ablation E5: Dual-B+ approximation error vs c (Lemma 1)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s %10s %12s\n",
		"c", "avg I/Os", "avg answer", "avg K'", "K'/answer", "pages", "upd I/Os")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12.2f %12.1f %12.1f %12.3f %10d %12.2f\n",
			r.C, r.AvgIOs, r.AvgAnswer, r.AvgError, r.ErrorRatio, r.Pages, r.AvgUpdateIO)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6: kinetic MOR1 structure (Theorem 2)
// ---------------------------------------------------------------------------

// KineticRow is one row of the kinetic sweep.
type KineticRow struct {
	N          int
	Horizon    float64
	M          int // crossings within the horizon
	Pages      int
	AvgQueryIO float64
	AvgAnswer  float64
}

// KineticSweep builds the §3.6 structure for each (N, horizon) and
// measures space (O(n+m) pages) and query cost (O(log_B(n+m)) I/Os).
func KineticSweep(ns []int, horizons []float64, queries int, seed int64) ([]KineticRow, error) {
	var out []KineticRow
	rng := rand.New(rand.NewSource(seed))
	tr := workload.DefaultParams(1).Terrain
	for _, n := range ns {
		objs := make([]kinetic.Object, n)
		for i := range objs {
			v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
			if rng.Intn(2) == 0 {
				v = -v
			}
			objs[i] = kinetic.Object{OID: dual.OID(i), Y0: rng.Float64() * tr.YMax, V: v}
		}
		for _, h := range horizons {
			base := pager.NewMemStore(pager.DefaultPageSize)
			buf := pager.NewBuffered(base, BufferPages)
			st, err := kinetic.Build(buf, objs, 0, h)
			if err != nil {
				return nil, err
			}
			row := KineticRow{N: n, Horizon: h, M: st.M(), Pages: buf.PagesInUse()}
			for k := 0; k < queries; k++ {
				yl := rng.Float64() * tr.YMax
				yh := math.Min(yl+rng.Float64()*50, tr.YMax)
				tq := rng.Float64() * h
				buf.Clear()
				before := buf.Stats()
				count := 0
				if err := st.Query(yl, yh, tq, func(dual.OID) { count++ }); err != nil {
					return nil, err
				}
				row.AvgQueryIO += float64(buf.Stats().Sub(before).IOs())
				row.AvgAnswer += float64(count)
			}
			row.AvgQueryIO /= float64(queries)
			row.AvgAnswer /= float64(queries)
			out = append(out, row)
		}
	}
	return out, nil
}

// FormatKineticSweep renders the E6 table.
func FormatKineticSweep(rows []KineticRow) string {
	var b strings.Builder
	b.WriteString("Ablation E6: kinetic MOR1 structure (Theorem 2): space O(n+m), query O(log_B(n+m))\n")
	fmt.Fprintf(&b, "%10s %10s %12s %10s %12s %12s\n", "N", "horizon", "crossings M", "pages", "avg q I/Os", "avg answer")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10.0f %12d %10d %12.2f %12.1f\n",
			r.N, r.Horizon, r.M, r.Pages, r.AvgQueryIO, r.AvgAnswer)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E7: partition tree scaling (§3.4) and crossing number
// ---------------------------------------------------------------------------

// PartRow is one row of the partition-tree sweep.
type PartRow struct {
	N             int
	Pages         int
	AvgQueryIO    float64 // thin-wedge simplex query
	SqrtN         float64
	WorstCrossing int
	RootCells     int
}

// PartTreeSweep bulk-loads Hough-X-like point sets of growing size and
// measures thin-wedge simplex query I/O against the √n curve, plus the
// empirical crossing number of the root partition.
func PartTreeSweep(ns []int, seed int64) ([]PartRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []PartRow
	for _, n := range ns {
		base := pager.NewMemStore(pager.DefaultPageSize)
		buf := pager.NewBuffered(base, BufferPages)
		t, err := parttree.New(buf, parttree.Config{})
		if err != nil {
			return nil, err
		}
		pts := make([]parttree.Point, n)
		for i := range pts {
			pts[i] = parttree.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		}
		if err := t.BulkLoad(pts); err != nil {
			return nil, err
		}
		row := PartRow{N: n, Pages: buf.PagesInUse(), SqrtN: math.Sqrt(float64(n))}
		const reps = 20
		for k := 0; k < reps; k++ {
			c := rng.Float64() * 2000
			reg := geom.NewRegion(
				geom.Constraint{A: 1, B: 1, C: c + 0.5},
				geom.Constraint{A: -1, B: -1, C: -(c - 0.5)},
			)
			buf.Clear()
			before := buf.Stats()
			if err := t.SearchRegion(reg, func(parttree.Point) bool { return true }); err != nil {
				return nil, err
			}
			row.AvgQueryIO += float64(buf.Stats().Sub(before).IOs())
		}
		row.AvgQueryIO /= reps
		for k := 0; k < 40; k++ {
			theta := rng.Float64() * math.Pi
			a, bb := math.Cos(theta), math.Sin(theta)
			cc := a*rng.Float64()*1000 + bb*rng.Float64()*1000
			crossed, cells, err := t.MaxLineCrossings(geom.Constraint{A: a, B: bb, C: cc})
			if err != nil {
				return nil, err
			}
			row.RootCells = cells
			if crossed > row.WorstCrossing {
				row.WorstCrossing = crossed
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatPartTreeSweep renders the E7 table.
func FormatPartTreeSweep(rows []PartRow) string {
	var b strings.Builder
	b.WriteString("Ablation E7: partition tree (§3.4): thin-wedge query I/O ~ sqrt(n); crossing number ~ sqrt(r)\n")
	fmt.Fprintf(&b, "%10s %10s %12s %10s %14s %10s\n", "N", "pages", "avg q I/Os", "sqrt(N)", "worst crossing", "root cells")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10d %12.2f %10.1f %14d %10d\n",
			r.N, r.Pages, r.AvgQueryIO, r.SqrtN, r.WorstCrossing, r.RootCells)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E8: the 2-dimensional methods and the 1.5-dimensional network
// ---------------------------------------------------------------------------

// TwoDRow is one method's measurements on the 2-dimensional scenario.
type TwoDRow struct {
	Method      string
	N           int
	AvgQueryIO  float64
	AvgAnswer   float64
	Pages       int
	AvgUpdateIO float64
}

// TwoDScenario compares the §4.2 methods (4-dimensional k-d dual and the
// per-axis decomposition) on a uniform planar workload.
func TwoDScenario(n, ticks, queries int, seed int64) ([]TwoDRow, error) {
	terrain := twod.Terrain2D{XMax: 1000, YMax: 1000, VMin: 0.16, VMax: 1.66}
	methods := []struct {
		name string
		mk   func(st pager.Store) (twod.Index2D, error)
	}{
		{"kd-tree 4D", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewKD4(st, twod.KD4Config{Terrain: terrain})
		}},
		{"decomposed 2x1D", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewDecomposed(st, twod.DecomposedConfig{Terrain: terrain, C: 4, Codec: bptree.Compact})
		}},
		{"parttree 4D", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewPartTree4(st, twod.PartTree4Config{Terrain: terrain})
		}},
	}
	var out []TwoDRow
	for _, m := range methods {
		rng := rand.New(rand.NewSource(seed))
		base := pager.NewMemStore(pager.DefaultPageSize)
		buf := pager.NewBuffered(base, BufferPages)
		ix, err := m.mk(buf)
		if err != nil {
			return nil, err
		}
		randComp := func() float64 {
			v := terrain.VMin + rng.Float64()*(terrain.VMax-terrain.VMin)
			if rng.Intn(2) == 0 {
				v = -v
			}
			return v
		}
		cur := make([]twod.Motion2D, n)
		for i := range cur {
			cur[i] = twod.Motion2D{
				OID: dual.OID(i),
				X0:  rng.Float64() * terrain.XMax,
				Y0:  rng.Float64() * terrain.YMax,
				T0:  0,
				VX:  randComp(),
				VY:  randComp(),
			}
			if err := ix.Insert(cur[i]); err != nil {
				return nil, err
			}
		}
		row := TwoDRow{Method: m.name, N: n}
		var updIOs int64
		updates := 0
		now := 0.0
		clamp := func(v, max float64) float64 { return math.Max(0, math.Min(v, max)) }
		for t := 1; t <= ticks; t++ {
			now++
			before := buf.Stats()
			// Reflect any object that left the terrain during this tick.
			for i := range cur {
				mo := cur[i]
				crossAt := func(p0, v, max float64) float64 {
					if v > 0 {
						return mo.T0 + (max-p0)/v
					}
					return mo.T0 + (0-p0)/v
				}
				tx := crossAt(mo.X0, mo.VX, terrain.XMax)
				ty := crossAt(mo.Y0, mo.VY, terrain.YMax)
				tc := math.Min(tx, ty)
				if tc > now {
					continue
				}
				if err := ix.Delete(mo); err != nil {
					return nil, err
				}
				x, y := mo.At(tc)
				nm := twod.Motion2D{OID: mo.OID, X0: clamp(x, terrain.XMax), Y0: clamp(y, terrain.YMax), T0: tc, VX: mo.VX, VY: mo.VY}
				if tx <= ty {
					nm.VX = -mo.VX
				}
				if ty <= tx {
					nm.VY = -mo.VY
				}
				if err := ix.Insert(nm); err != nil {
					return nil, err
				}
				cur[i] = nm
				updates++
			}
			// Random motion changes, scaled like the 1-dimensional scenario.
			for k := 0; k < 200 && n > 0; k++ {
				i := rng.Intn(n)
				mo := cur[i]
				if err := ix.Delete(mo); err != nil {
					return nil, err
				}
				x, y := mo.At(now)
				nm := twod.Motion2D{OID: mo.OID, X0: clamp(x, terrain.XMax), Y0: clamp(y, terrain.YMax), T0: now, VX: randComp(), VY: randComp()}
				if err := ix.Insert(nm); err != nil {
					return nil, err
				}
				cur[i] = nm
				updates++
			}
			updIOs += buf.Stats().Sub(before).IOs()
		}
		for k := 0; k < queries; k++ {
			w := rng.Float64() * 150
			x1 := rng.Float64() * (terrain.XMax - w)
			y1 := rng.Float64() * (terrain.YMax - w)
			t1 := now + rng.Float64()*20
			q := twod.MOR2Query{X1: x1, X2: x1 + w, Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + rng.Float64()*40}
			buf.Clear()
			before := buf.Stats()
			count := 0
			if err := ix.Query(q, func(dual.OID) { count++ }); err != nil {
				return nil, err
			}
			row.AvgQueryIO += float64(buf.Stats().Sub(before).IOs())
			row.AvgAnswer += float64(count)
		}
		row.AvgQueryIO /= float64(queries)
		row.AvgAnswer /= float64(queries)
		row.Pages = buf.PagesInUse()
		if updates > 0 {
			row.AvgUpdateIO = float64(updIOs) / float64(updates)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTwoD renders the E8 2-dimensional table.
func FormatTwoD(rows []TwoDRow) string {
	var b strings.Builder
	b.WriteString("Experiment E8a: 2-dimensional MOR methods (§4.2)\n")
	fmt.Fprintf(&b, "%-18s %10s %12s %12s %10s %12s\n", "method", "N", "avg q I/Os", "avg answer", "pages", "upd I/Os")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10d %12.2f %12.1f %10d %12.2f\n",
			r.Method, r.N, r.AvgQueryIO, r.AvgAnswer, r.Pages, r.AvgUpdateIO)
	}
	return b.String()
}

// RoutedRow summarizes the 1.5-dimensional experiment.
type RoutedRow struct {
	Routes      int
	Objects     int
	AvgQueryIO  float64
	AvgAnswer   float64
	Pages       int
	AvgUpdateIO float64
}

// RoutedScenario builds a highway-grid network (§4.1), populates it, and
// measures rectangle MOR queries decomposed through the SAM into per-route
// 1-dimensional queries.
func RoutedScenario(gridLines, objsPerRoute, ticks, queries int, seed int64) (*RoutedRow, error) {
	rng := rand.New(rand.NewSource(seed))
	base := pager.NewMemStore(pager.DefaultPageSize)
	buf := pager.NewBuffered(base, BufferPages)
	net, err := route.NewNetwork(buf, route.Config{VMin: 0.16, VMax: 1.66, C: 4, Codec: bptree.Compact})
	if err != nil {
		return nil, err
	}
	const world = 1000.0
	var rids []route.RouteID
	rid := route.RouteID(0)
	for i := 0; i < gridLines; i++ {
		y := (float64(i) + 0.5) * world / float64(gridLines)
		if _, err := net.AddRoute(rid, []geom.Point{{X: 0, Y: y}, {X: world, Y: y}}); err != nil {
			return nil, err
		}
		rids = append(rids, rid)
		rid++
		x := (float64(i) + 0.5) * world / float64(gridLines)
		if _, err := net.AddRoute(rid, []geom.Point{{X: x, Y: 0}, {X: x, Y: world}}); err != nil {
			return nil, err
		}
		rids = append(rids, rid)
		rid++
	}
	randV := func() float64 {
		v := 0.16 + rng.Float64()*1.5
		if rng.Intn(2) == 0 {
			v = -v
		}
		return v
	}
	type tracked struct {
		rid route.RouteID
		m   dual.Motion
	}
	var objs []tracked
	oid := dual.OID(0)
	for _, r := range rids {
		rt, _ := net.Route(r)
		for k := 0; k < objsPerRoute; k++ {
			m := dual.Motion{OID: oid, Y0: rng.Float64() * rt.Length(), T0: 0, V: randV()}
			oid++
			if err := net.Insert(r, m); err != nil {
				return nil, err
			}
			objs = append(objs, tracked{r, m})
		}
	}
	row := &RoutedRow{Routes: len(rids), Objects: len(objs)}
	var updIOs int64
	updates := 0
	now := 0.0
	for t := 1; t <= ticks; t++ {
		now++
		before := buf.Stats()
		for i := range objs {
			o := &objs[i]
			rt, _ := net.Route(o.rid)
			var tc float64
			if o.m.V > 0 {
				tc = o.m.T0 + (rt.Length()-o.m.Y0)/o.m.V
			} else {
				tc = o.m.T0 + (0-o.m.Y0)/o.m.V
			}
			if tc > now {
				continue
			}
			if err := net.Delete(o.rid, o.m); err != nil {
				return nil, err
			}
			end := 0.0
			if o.m.V > 0 {
				end = rt.Length()
			}
			o.m = dual.Motion{OID: o.m.OID, Y0: end, T0: tc, V: -o.m.V}
			if err := net.Insert(o.rid, o.m); err != nil {
				return nil, err
			}
			updates++
		}
		updIOs += buf.Stats().Sub(before).IOs()
	}
	for k := 0; k < queries; k++ {
		w := 50 + rng.Float64()*150
		x1 := rng.Float64() * (world - w)
		y1 := rng.Float64() * (world - w)
		t1 := now + rng.Float64()*20
		buf.Clear()
		before := buf.Stats()
		count := 0
		err := net.Query(geom.Rect{MinX: x1, MinY: y1, MaxX: x1 + w, MaxY: y1 + w},
			t1, t1+rng.Float64()*40, func(route.Hit) { count++ })
		if err != nil {
			return nil, err
		}
		row.AvgQueryIO += float64(buf.Stats().Sub(before).IOs())
		row.AvgAnswer += float64(count)
	}
	row.AvgQueryIO /= float64(queries)
	row.AvgAnswer /= float64(queries)
	row.Pages = buf.PagesInUse()
	if updates > 0 {
		row.AvgUpdateIO = float64(updIOs) / float64(updates)
	}
	return row, nil
}

// FormatRouted renders the E8 1.5-dimensional table.
func FormatRouted(r *RoutedRow) string {
	var b strings.Builder
	b.WriteString("Experiment E8b: 1.5-dimensional routed movement (§4.1)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s %10s %12s\n", "routes", "objects", "avg q I/Os", "avg answer", "pages", "upd I/Os")
	fmt.Fprintf(&b, "%8d %10d %12.2f %12.1f %10d %12.2f\n",
		r.Routes, r.Objects, r.AvgQueryIO, r.AvgAnswer, r.Pages, r.AvgUpdateIO)
	return b.String()
}
