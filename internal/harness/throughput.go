// Throughput serving mode: where RunScenario measures the paper's I/O
// metric one operation at a time, RunThroughput measures wall-clock query
// serving — G goroutines answering MOR queries against a Dual-B+ index
// while a writer applies motion updates, under the repository's serving
// concurrency model (index-level readers-writer latch: queries share an
// RLock, updates take the exclusive Lock). Reported are queries/second and
// p50/p99 latency, the operational complement to the per-query I/O counts.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

// ThroughputConfig tunes a serving run.
type ThroughputConfig struct {
	N       int   // mobile objects (0 → 20000)
	Workers int   // query-serving goroutines (0 → GOMAXPROCS)
	Queries int   // total queries to serve (0 → 4000)
	Seed    int64 // scenario seed (0 → 1999, the paper seed)
	// UpdatesPerSec paces the writer in real time: motion updates arrive
	// at a fixed rate — as in the paper's model, where objects report
	// their motion changes independently of query load — each a
	// delete+insert pair under the exclusive latch. Zero selects 10
	// pairs/sec; negative disables the writer.
	UpdatesPerSec float64
	Mix           workload.QueryMix // zero value → the small-query mix
	// IOLatency simulates disk latency: every buffer-pool miss (a page
	// read or write reaching the base store) stalls this long. Zero means
	// no stall — pure in-memory serving. The stall models the paper's
	// cost metric: queries are I/O-bound, and concurrent serving wins by
	// overlapping independent queries' stalls, not by burning more CPU.
	IOLatency time.Duration
	// BufferPages sizes the serving cache (0 → 128). Small enough that
	// leaf reads miss, large enough to hold the hot root path.
	BufferPages int
	// Rebuild, when set, performs one full bulk reindex mid-run: once half
	// the queries have been served, a maintenance goroutine takes the
	// exclusive latch and replaces the index with BulkLoad over the current
	// motion set — the paper's periodic reconstruction, executed with the
	// bottom-up builders instead of n Inserts. The stall it causes is the
	// rebuild's serving cost, visible in p99 and RebuildMs.
	Rebuild bool
}

// slowStore injects the simulated disk latency under the buffer pool.
// Only reads stall: a buffer miss is a random page fetch (a seek), while
// writes are absorbed at sequential speed by a write-ahead log — the
// storage layer this repository actually provides (internal/pager's
// WALStore). The delay is switched on only after the bootstrap build so
// index construction runs at memory speed.
type slowStore struct {
	pager.Store
	delay   time.Duration
	enabled atomic.Bool
}

func (s *slowStore) Read(id pager.PageID) (*pager.Page, error) {
	if s.delay > 0 && s.enabled.Load() {
		time.Sleep(s.delay)
	}
	return s.Store.Read(id)
}

// ThroughputResult reports one serving run. Query and update throughput
// are both first-class: UPS is the sustained update-pair rate actually
// achieved over the run (the writer is paced, so it saturates at
// cfg.UpdatesPerSec unless the exclusive latch starves it), and the
// update percentiles time each pair's exclusive section including the
// latch wait — the serving stall an update inflicts.
type ThroughputResult struct {
	Workers  int           `json:"workers"`
	Queries  int           `json:"queries"`
	Updates  int           `json:"updates"`
	Elapsed  time.Duration `json:"-"`
	QPS      float64       `json:"qps"`
	UPS      float64       `json:"updates_per_sec"`
	P50      time.Duration `json:"-"`
	P99      time.Duration `json:"-"`
	P50us    float64       `json:"p50_us"`
	P99us    float64       `json:"p99_us"`
	UpdP50   time.Duration `json:"-"`
	UpdP99   time.Duration `json:"-"`
	UpdP50us float64       `json:"upd_p50_us"`
	UpdP99us float64       `json:"upd_p99_us"`
	// Rebuilds counts mid-run bulk reindexes; RebuildMs is the exclusive
	// latch hold time of the last one (0 when Rebuild is off).
	Rebuilds  int     `json:"rebuilds"`
	RebuildMs float64 `json:"rebuild_ms"`
}

func (c *ThroughputConfig) fill() {
	if c.N == 0 {
		c.N = 20000
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queries == 0 {
		c.Queries = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.UpdatesPerSec == 0 {
		c.UpdatesPerSec = 10
	}
	if c.Mix.PerSlot == 0 {
		c.Mix = workload.SmallQueries()
	}
	if c.BufferPages == 0 {
		c.BufferPages = 128
	}
}

// RunThroughput builds a Dual-B+ index (c=4, compact codec, 256 buffered
// pages — a serving cache, not the paper's 4-page root path), bootstraps
// the §5 scenario at N objects, then serves cfg.Queries queries from
// cfg.Workers goroutines. Interleaved with the queries, a single writer
// applies pre-generated update pairs (delete+insert) under the exclusive
// latch — one pair per UpdateEvery queries served.
func RunThroughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	cfg.fill()

	disk := &slowStore{Store: pager.NewMemStore(pager.DefaultPageSize), delay: cfg.IOLatency}
	store := pager.NewBuffered(disk, cfg.BufferPages)
	tr := workload.DefaultParams(cfg.N).Terrain
	ix, err := core.NewDualBPlus(store, core.DualBPlusConfig{Terrain: tr, C: 4, Codec: bptree.Compact})
	if err != nil {
		return nil, err
	}
	p := workload.DefaultParams(cfg.N)
	p.Seed = cfg.Seed
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return nil, err
	}
	apply := func(op workload.Op) error {
		if op.Insert {
			return ix.Insert(op.Motion)
		}
		return ix.Delete(op.Motion)
	}
	if err := sim.Bootstrap(apply); err != nil {
		return nil, err
	}

	// Snapshot the live motion set before pre-generation ticks mutate the
	// simulator's state: the rebuild path needs the motions the index
	// actually holds, kept current by the writer as updates apply.
	live := make(map[dual.OID]dual.Motion, cfg.N)
	for _, m := range sim.Motions() {
		live[m.OID] = m
	}

	// Pre-generate the serving workload so measurement excludes generation
	// cost: a pool of queries at the bootstrap instant, and a stream of
	// update ops from simulator ticks (collected, not yet applied — the
	// writer goroutine applies them in order during serving, so the index
	// always reflects a prefix of the simulated timeline).
	queries := sim.Queries(cfg.Mix)
	for len(queries) < 2048 {
		queries = append(queries, sim.Queries(cfg.Mix)...)
	}
	var updates []workload.Op
	if cfg.UpdatesPerSec > 0 {
		// Enough pairs to outlast any plausible run length.
		for len(updates) < 2*cfg.Queries {
			if err := sim.Tick(func(op workload.Op) error {
				updates = append(updates, op)
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}

	disk.enabled.Store(true) // the build is done; misses now pay disk latency

	var (
		mu        sync.RWMutex // serving latch: queries RLock, updates Lock
		next      atomic.Int64 // next query ticket
		served    atomic.Int64
		applied   atomic.Int64
		errOnce   sync.Once
		runErr    error
		latencies = make([][]time.Duration, cfg.Workers)
		updLat    []time.Duration // single writer: no lock needed
	)
	fail := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, cfg.Queries/cfg.Workers+1)
			for {
				ticket := next.Add(1) - 1
				if ticket >= int64(cfg.Queries) {
					break
				}
				q := queries[ticket%int64(len(queries))]
				t0 := time.Now()
				mu.RLock()
				err := ix.Query(q, func(dual.OID) {})
				mu.RUnlock()
				lat = append(lat, time.Since(t0))
				if err != nil {
					fail(fmt.Errorf("query %d: %w", ticket, err))
					break
				}
				served.Add(1)
			}
			latencies[w] = lat
		}(w)
	}
	if len(updates) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// warm pre-reads an update's search path under the shared
			// latch: a point query at the motion's own coordinates walks
			// the same root-to-leaf pages the delete/insert will, pulling
			// them into the pool so the exclusive section that follows
			// stalls as little as possible. This is the classic
			// prefetch-then-latch move — without it, every page miss
			// inside the exclusive section stops the whole server.
			warm := func(m dual.Motion) {
				q := dual.MORQuery{Y1: m.Y0, Y2: m.Y0, T1: m.T0, T2: m.T0}
				//mobidxlint:allow errdrop -- best-effort cache warming; a failed prefetch only costs latency
				_ = ix.Query(q, func(dual.OID) {})
			}
			interval := time.Duration(float64(time.Second) / cfg.UpdatesPerSec)
			for i := 0; i+1 < len(updates); i += 2 {
				// Sleep until this pair's arrival time, bailing out as
				// soon as the query workers finish.
				due := start.Add(time.Duration(i/2) * interval)
				for {
					if next.Load() >= int64(cfg.Queries) {
						return
					}
					d := time.Until(due)
					if d <= 0 {
						break
					}
					if d > 5*time.Millisecond {
						d = 5 * time.Millisecond
					}
					time.Sleep(d)
				}
				mu.RLock()
				warm(updates[i].Motion)
				warm(updates[i+1].Motion)
				mu.RUnlock()
				t0 := time.Now()
				mu.Lock()
				err := apply(updates[i])
				if err == nil {
					err = apply(updates[i+1])
				}
				for _, op := range updates[i : i+2] {
					if op.Insert {
						live[op.Motion.OID] = op.Motion
					}
				}
				mu.Unlock()
				updLat = append(updLat, time.Since(t0))
				if err != nil {
					fail(fmt.Errorf("update %d: %w", i/2, err))
					return
				}
				applied.Add(1)
			}
		}()
	}
	var (
		rebuilds  int
		rebuildMs float64
	)
	if cfg.Rebuild {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Wait for the halfway mark, then reindex under the exclusive
			// latch: snapshot the live motions (guarded by mu, like the
			// index itself) and swap in a bulk-built replacement.
			for next.Load() < int64(cfg.Queries)/2 {
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			ms := make([]dual.Motion, 0, len(live))
			for _, m := range live {
				ms = append(ms, m)
			}
			t0 := time.Now()
			err := ix.BulkLoad(ms)
			rebuildMs = float64(time.Since(t0).Microseconds()) / 1e3
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("rebuild: %w", err))
				return
			}
			rebuilds++
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(updLat, func(i, j int) bool { return updLat[i] < updLat[j] })
	pctOf := func(l []time.Duration, p float64) time.Duration {
		if len(l) == 0 {
			return 0
		}
		return l[int(p*float64(len(l)-1))]
	}
	res := &ThroughputResult{
		Workers:   cfg.Workers,
		Queries:   int(served.Load()),
		Updates:   int(applied.Load()),
		Elapsed:   elapsed,
		QPS:       float64(served.Load()) / elapsed.Seconds(),
		UPS:       float64(applied.Load()) / elapsed.Seconds(),
		P50:       pctOf(all, 0.50),
		P99:       pctOf(all, 0.99),
		UpdP50:    pctOf(updLat, 0.50),
		UpdP99:    pctOf(updLat, 0.99),
		Rebuilds:  rebuilds,
		RebuildMs: rebuildMs,
	}
	res.P50us = float64(res.P50.Nanoseconds()) / 1e3
	res.P99us = float64(res.P99.Nanoseconds()) / 1e3
	res.UpdP50us = float64(res.UpdP50.Nanoseconds()) / 1e3
	res.UpdP99us = float64(res.UpdP99.Nanoseconds()) / 1e3
	return res, nil
}

// CheckParallelDifferential builds a static Dual-B+ index (Wide codec, so
// the comparison is exact) and asserts QueryParallel returns identical
// slices at every given worker count, and that those slices match the
// brute-force oracle. It is the executable form of the determinism claim
// in the -throughput report.
func CheckParallelDifferential(n int, seed int64, workerCounts []int) error {
	p := workload.DefaultParams(n)
	p.Seed = seed
	store := pager.NewBuffered(pager.NewMemStore(pager.DefaultPageSize), 256)
	ix, err := core.NewDualBPlus(store, core.DualBPlusConfig{Terrain: p.Terrain, C: 4, Codec: bptree.Wide})
	if err != nil {
		return err
	}
	sim, err := workload.NewSimulator(p)
	if err != nil {
		return err
	}
	apply := func(op workload.Op) error {
		if op.Insert {
			return ix.Insert(op.Motion)
		}
		return ix.Delete(op.Motion)
	}
	if err := sim.Bootstrap(apply); err != nil {
		return err
	}
	for _, mix := range []workload.QueryMix{workload.SmallQueries(), workload.LargeQueries()} {
		for _, q := range sim.Queries(mix)[:50] {
			var ref []dual.OID
			for i, wkr := range workerCounts {
				got, err := ix.QueryParallel(core.NewExecutor(wkr), q)
				if err != nil {
					return fmt.Errorf("workers=%d: %w", wkr, err)
				}
				if i == 0 {
					ref = got
					want := sim.BruteForce(q)
					sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
					if len(got) != len(want) {
						return fmt.Errorf("mix %s: parallel answer has %d OIDs, oracle %d",
							mix.Name, len(got), len(want))
					}
					for k := range want {
						if got[k] != want[k] {
							return fmt.Errorf("mix %s: parallel answer diverges from oracle at %d", mix.Name, k)
						}
					}
					continue
				}
				if len(got) != len(ref) {
					return fmt.Errorf("workers=%d: %d OIDs, reference %d", wkr, len(got), len(ref))
				}
				for k := range ref {
					if got[k] != ref[k] {
						return fmt.Errorf("workers=%d: result diverges from single-worker reference", wkr)
					}
				}
			}
		}
	}
	return nil
}
