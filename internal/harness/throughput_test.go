package harness

import (
	"runtime"
	"testing"

	"mobidx/internal/leakcheck"
	"mobidx/internal/workload"
)

// TestRunThroughput exercises the serving loop end to end at a small
// scale: all queries served, updates applied in proportion, sane latency
// ordering. Scaling itself is asserted by the benchmark gate in
// scripts/bench.sh, not here — CI machines make timing claims flaky.
func TestRunThroughput(t *testing.T) {
	leakcheck.Check(t)
	for _, workers := range []int{1, 2, 4} {
		res, err := RunThroughput(ThroughputConfig{
			N:             4000,
			Workers:       workers,
			Queries:       600,
			UpdatesPerSec: 50,
			Mix:           workload.SmallQueries(),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Queries != 600 {
			t.Fatalf("workers=%d: served %d queries, want 600", workers, res.Queries)
		}
		if res.Workers != workers {
			t.Fatalf("Workers = %d, want %d", res.Workers, workers)
		}
		if res.QPS <= 0 {
			t.Fatalf("workers=%d: QPS = %v", workers, res.QPS)
		}
		if res.Updates == 0 {
			t.Fatalf("workers=%d: writer applied no updates", workers)
		}
		if res.UPS <= 0 {
			t.Fatalf("workers=%d: sustained updates/sec not reported: %+v", workers, res)
		}
		if res.UpdP50 > res.UpdP99 || res.UpdP50us <= 0 {
			t.Fatalf("workers=%d: update percentiles not filled: p50=%v p99=%v", workers, res.UpdP50, res.UpdP99)
		}
		if res.P50 > res.P99 {
			t.Fatalf("workers=%d: p50 %v > p99 %v", workers, res.P50, res.P99)
		}
		if res.P50us <= 0 || res.P99us <= 0 {
			t.Fatalf("workers=%d: microsecond percentiles not filled: %+v", workers, res)
		}
	}
}

// With Rebuild set, the run must complete a mid-run bulk reindex and keep
// serving correctly afterwards — every query still answered, updates still
// applied on top of the rebuilt index.
func TestRunThroughputRebuild(t *testing.T) {
	leakcheck.Check(t)
	res, err := RunThroughput(ThroughputConfig{
		N:             4000,
		Workers:       4,
		Queries:       800,
		UpdatesPerSec: 200,
		Rebuild:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", res.Rebuilds)
	}
	if res.RebuildMs <= 0 {
		t.Fatalf("RebuildMs = %v, want > 0", res.RebuildMs)
	}
	if res.Queries != 800 {
		t.Fatalf("served %d queries, want 800", res.Queries)
	}
}

func TestRunThroughputNoUpdates(t *testing.T) {
	leakcheck.Check(t)
	res, err := RunThroughput(ThroughputConfig{
		N: 2000, Workers: 2, Queries: 200, UpdatesPerSec: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 0 {
		t.Fatalf("updates applied with UpdateEvery<0: %d", res.Updates)
	}
	if res.Queries != 200 {
		t.Fatalf("served %d queries, want 200", res.Queries)
	}
}

func TestCheckParallelDifferential(t *testing.T) {
	leakcheck.Check(t)
	if err := CheckParallelDifferential(3000, 1999, []int{1, 2, 8, runtime.GOMAXPROCS(0)}); err != nil {
		t.Fatal(err)
	}
}
