// Package ingest implements a log-structured write tier in front of an
// assembled dual-transform index: motion updates land in an in-memory
// memtable of upserts and tombstones over OID, the memtable freezes into
// immutable sorted runs with per-run bloom filters, and when enough runs
// accumulate the whole delta folds into the immutable bulk-loaded base
// via one atomic reindex (core.DualBPlus.BulkLoad runs as a single WAL
// batch on a batching store). Point lookups consult memtable → runs
// (newest first, bloom-gated) → base; MOR queries merge the base answer
// with the delta overlay and are byte-identical to a flat index holding
// the same motions, at any executor worker count.
package ingest

import "math"

// Bloom is a split-block-free classic bloom filter over uint64 keys,
// using double hashing (two mixed halves of the key drive k probe
// positions). It can return false positives, never false negatives: a
// key that was Added always reports MayContain true.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
}

// NewBloom sizes a filter for n keys at bitsPerKey bits each. At 10
// bits/key with the implied k≈7 hash functions the false-positive rate
// is ~1%; the FPR test pins an upper bound.
func NewBloom(n, bitsPerKey int) *Bloom {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	m := uint64(n) * uint64(bitsPerKey)
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(bitsPerKey) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer, so sequential OIDs spread over the whole filter.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probes derives the double-hashing pair. h2 is forced odd so the probe
// stride never collapses to zero modulo a power-of-two bit count.
func (b *Bloom) probes(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(key^0x9e3779b97f4a7c15) | 1
	return h1, h2
}

// Add records key in the filter.
func (b *Bloom) Add(key uint64) {
	h1, h2 := b.probes(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether key might be in the filter. False means
// definitely absent.
func (b *Bloom) MayContain(key uint64) bool {
	h1, h2 := b.probes(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
