package ingest

import (
	"math/rand"
	"testing"
)

// TestBloomNoFalseNegatives: every added key must report MayContain.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBloom(10000, 10)
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		b.Add(keys[i])
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

// TestBloomFPR pins the false-positive rate at the default 10 bits/key:
// theory says ~0.8–1%; assert a 3% ceiling so the test is stable while
// still catching a broken hash (which would push FPR toward 100%), and a
// floor so a filter that degenerated to always-false cannot pass.
func TestBloomFPR(t *testing.T) {
	const n = 20000
	b := NewBloom(n, 10)
	// Members: even keys mixed into a wide range; probes: odd keys.
	for i := 0; i < n; i++ {
		b.Add(uint64(i) * 2)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if b.MayContain(uint64(i)*2 + 1) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("FPR %.4f exceeds 3%% at 10 bits/key", rate)
	}
	if rate == 0 {
		t.Fatal("FPR exactly 0 over 100k probes; filter is suspiciously selective")
	}
}

// TestBloomTinyAndClamp: degenerate sizes still work and never false-negative.
func TestBloomTinyAndClamp(t *testing.T) {
	for _, tc := range []struct{ n, bpk int }{{0, 0}, {1, 1}, {3, 100}, {1000000, 1}} {
		b := NewBloom(tc.n, tc.bpk)
		for k := uint64(0); k < 50; k++ {
			b.Add(k)
		}
		for k := uint64(0); k < 50; k++ {
			if !b.MayContain(k) {
				t.Fatalf("n=%d bpk=%d: false negative for %d", tc.n, tc.bpk, k)
			}
		}
	}
}

// FuzzBloom is the satellite fuzz target: for arbitrary key sets and
// filter shapes, an added key must never be reported absent.
func FuzzBloom(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), 10, 16)
	f.Add(uint64(0), uint64(0), ^uint64(0), 1, 1)
	f.Add(uint64(42), uint64(1<<40), uint64(7), 30, 3)
	f.Fuzz(func(t *testing.T, k1, k2, k3 uint64, bpk, n int) {
		if bpk < 0 {
			bpk = -bpk
		}
		if n < 0 {
			n = -n
		}
		b := NewBloom(n%4096, bpk%64)
		keys := []uint64{k1, k2, k3, k1 ^ k2, k2 ^ k3}
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.MayContain(k) {
				t.Fatalf("false negative: key %d (n=%d bpk=%d)", k, n%4096, bpk%64)
			}
		}
	})
}
