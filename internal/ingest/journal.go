package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// Journal is a durable append-only log of tier ops on a page chain: the
// standalone counterpart of the shard's motion catalog, for callers that
// run a Tier directly over a WALStore. Each writer appends its delta ops
// in the same transaction (implicit batch or explicit pager.Txn) as its
// other work; after a merge folds the delta into the base, Reset
// truncates the chain — the base now covers every logged op. On
// recovery, AttachJournal walks the chain and Ops feeds Tier.Replay.
//
// Mutating methods take the store to write through explicitly, because
// the durable pages outlive any one pager.Txn handle: each commit cycle
// passes its own transaction. The in-memory cursor mirrors staged state,
// so a journal whose transaction failed to commit must be re-attached
// before further use.
//
// PageWriter is the slice of pager.Store the journal needs; *pager.Txn
// satisfies it too (a transaction handle cannot answer store-wide
// questions like PagesInUse, so it is not a full Store).
type PageWriter interface {
	PageSize() int
	Allocate() (*pager.Page, error)
	Read(id pager.PageID) (*pager.Page, error)
	Write(p *pager.Page) error
	Free(id pager.PageID) error
}

type Journal struct {
	head     pager.PageID
	pages    []pager.PageID // full chain including head
	tailUsed int            // bytes of records in the tail page
	records  int
}

const (
	// jrnRecLen is op(1) + oid(8) + y0/t0/v(3×8), the catalog record shape.
	jrnRecLen = 33
	// jrnHeaderLen is next(4) + used(4); a trailing CRC closes the page.
	jrnHeaderLen = 8

	jrnOpInsert = 1
	jrnOpDelete = 2
)

var jrnCRCTable = crc32.MakeTable(crc32.Castagnoli)

func jrnCap(pageSize int) int {
	n := (pageSize - jrnHeaderLen - 4) / jrnRecLen
	return n * jrnRecLen
}

// NewJournal allocates an empty journal inside the caller's open
// transaction. Persist Head somewhere durable to find it again.
func NewJournal(st PageWriter) (*Journal, error) {
	p, err := st.Allocate()
	if err != nil {
		return nil, err
	}
	j := &Journal{head: p.ID, pages: []pager.PageID{p.ID}}
	if err := j.writePage(st, p.ID, pager.NilPage, nil); err != nil {
		return nil, err
	}
	return j, nil
}

// AttachJournal walks the chain from head, rebuilding the cursor.
func AttachJournal(st PageWriter, head pager.PageID) (*Journal, error) {
	j := &Journal{head: head}
	id := head
	for hops := 0; ; hops++ {
		if hops > 1<<22 {
			return nil, fmt.Errorf("ingest: journal from %d: cycle: %w", head, pager.ErrPageCorrupt)
		}
		recs, next, err := j.readPage(st, id)
		if err != nil {
			return nil, err
		}
		j.pages = append(j.pages, id)
		j.tailUsed = len(recs)
		j.records += len(recs) / jrnRecLen
		if next == pager.NilPage {
			return j, nil
		}
		id = next
	}
}

// Head returns the chain's stable head page.
func (j *Journal) Head() pager.PageID { return j.head }

// Records returns the number of logged ops.
func (j *Journal) Records() int { return j.records }

func (j *Journal) readPage(st PageWriter, id pager.PageID) (recs []byte, next pager.PageID, err error) {
	p, err := st.Read(id)
	if err != nil {
		return nil, 0, err
	}
	data := p.Data
	if crc32.Checksum(data[:len(data)-4], jrnCRCTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, 0, fmt.Errorf("ingest: journal page %d: bad checksum: %w", id, pager.ErrPageCorrupt)
	}
	next = pager.PageID(binary.LittleEndian.Uint32(data[0:4]))
	used := int(binary.LittleEndian.Uint32(data[4:8]))
	if used < 0 || used > jrnCap(len(data)) || used%jrnRecLen != 0 {
		return nil, 0, fmt.Errorf("ingest: journal page %d: used %d: %w", id, used, pager.ErrPageCorrupt)
	}
	return data[jrnHeaderLen : jrnHeaderLen+used], next, nil
}

func (j *Journal) writePage(st PageWriter, id, next pager.PageID, recs []byte) error {
	pageSize := st.PageSize()
	data := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(data[0:4], uint32(next))
	binary.LittleEndian.PutUint32(data[4:8], uint32(len(recs)))
	copy(data[jrnHeaderLen:], recs)
	binary.LittleEndian.PutUint32(data[pageSize-4:], crc32.Checksum(data[:pageSize-4], jrnCRCTable))
	return st.Write(&pager.Page{ID: id, Data: data})
}

// Append logs ops, growing the chain as tail pages fill. Must run inside
// an open transaction on st.
func (j *Journal) Append(st PageWriter, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	cap_ := jrnCap(st.PageSize())
	tail := j.pages[len(j.pages)-1]
	recs, _, err := j.readPage(st, tail)
	if err != nil {
		return err
	}
	// Work on a copy: recs aliases the store's page buffer.
	cur := append(make([]byte, 0, cap_), recs...)
	for _, op := range ops {
		if len(cur) == cap_ {
			p, err := st.Allocate()
			if err != nil {
				return err
			}
			if err := j.writePage(st, tail, p.ID, cur); err != nil {
				return err
			}
			tail = p.ID
			j.pages = append(j.pages, tail)
			cur = cur[:0]
		}
		opByte := byte(jrnOpDelete)
		if op.Insert {
			opByte = jrnOpInsert
		}
		cur = append(cur, opByte)
		cur = binary.LittleEndian.AppendUint64(cur, uint64(op.M.OID))
		cur = binary.LittleEndian.AppendUint64(cur, math.Float64bits(op.M.Y0))
		cur = binary.LittleEndian.AppendUint64(cur, math.Float64bits(op.M.T0))
		cur = binary.LittleEndian.AppendUint64(cur, math.Float64bits(op.M.V))
		j.records++
	}
	if err := j.writePage(st, tail, pager.NilPage, cur); err != nil {
		return err
	}
	j.tailUsed = len(cur)
	return nil
}

// Ops decodes the full log in append order, for Tier.Replay.
func (j *Journal) Ops(st PageWriter) ([]Op, error) {
	out := make([]Op, 0, j.records)
	for _, id := range j.pages {
		recs, _, err := j.readPage(st, id)
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(recs); off += jrnRecLen {
			rec := recs[off : off+jrnRecLen]
			var op Op
			switch rec[0] {
			case jrnOpInsert:
				op.Insert = true
			case jrnOpDelete:
			default:
				return nil, fmt.Errorf("ingest: journal page %d: bad op %d: %w", id, rec[0], pager.ErrPageCorrupt)
			}
			op.M.OID = dual.OID(binary.LittleEndian.Uint64(rec[1:9]))
			op.M.Y0 = math.Float64frombits(binary.LittleEndian.Uint64(rec[9:17]))
			op.M.T0 = math.Float64frombits(binary.LittleEndian.Uint64(rec[17:25]))
			op.M.V = math.Float64frombits(binary.LittleEndian.Uint64(rec[25:33]))
			out = append(out, op)
		}
	}
	return out, nil
}

// Reset truncates the log: overflow pages are freed, the head page is
// emptied and stays stable. Call after a merge made the delta redundant;
// must run inside an open transaction on st.
func (j *Journal) Reset(st PageWriter) error {
	for _, id := range j.pages[1:] {
		if err := st.Free(id); err != nil {
			return err
		}
	}
	j.pages = j.pages[:1]
	if err := j.writePage(st, j.head, pager.NilPage, nil); err != nil {
		return err
	}
	j.tailUsed = 0
	j.records = 0
	return nil
}
