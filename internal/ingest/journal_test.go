package ingest

import (
	"math/rand"
	"slices"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func openJournalWAL(t *testing.T) (*pager.WALStore, *pager.MemLog) {
	t.Helper()
	log := pager.NewMemLog()
	w, err := pager.OpenWALStore(pager.NewMemStore(256), log, pager.WALConfig{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	return w, log
}

// TestJournalRoundTrip: ops appended across several transactions decode
// back in order, survive a crash-reopen, and Reset truncates.
func TestJournalRoundTrip(t *testing.T) {
	w, log := openJournalWAL(t)
	rng := rand.New(rand.NewSource(3))

	var j *Journal
	txn, err := w.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if j, err = NewJournal(txn); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Many appends across transactions, enough to grow several pages
	// (256-byte pages hold 6 records each).
	var want []Op
	for round := 0; round < 10; round++ {
		var ops []Op
		for i := 0; i < 5; i++ {
			ops = append(ops, Op{
				Insert: rng.Intn(2) == 0,
				M: dual.Motion{
					OID: dual.OID(rng.Intn(100)),
					Y0:  rng.Float64() * 100,
					T0:  rng.Float64() * 50,
					V:   1 + rng.Float64(),
				},
			})
		}
		txn, err := w.BeginTxn()
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(txn, ops); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		want = append(want, ops...)
	}
	got, err := j.Ops(w)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want, got) {
		t.Fatalf("round trip: got %d ops, want %d", len(got), len(want))
	}

	// Crash-reopen (no Close): the journal must reattach from its head
	// and decode identically.
	head := j.Head()
	w2, err := pager.OpenWALStore(pager.NewMemStore(256), pager.NewMemLogFrom(log.Bytes()), pager.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := AttachJournal(w2, head)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Records() != len(want) {
		t.Fatalf("reattached Records=%d, want %d", j2.Records(), len(want))
	}
	got2, err := j2.Ops(w2)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want, got2) {
		t.Fatal("reattached journal decodes differently")
	}

	// Reset truncates; the head page survives and a fresh append works.
	txn2, err := w.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(txn2); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(txn2, want[:3]); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	got3, err := j.Ops(w)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want[:3], got3) {
		t.Fatalf("after Reset+Append: got %d ops, want 3", len(got3))
	}
}
