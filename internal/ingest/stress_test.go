package ingest

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
)

// TestTierConcurrentAddQuery races writers (each owning a disjoint OID
// band, so the strict delete-exact discipline holds without cross-writer
// coordination) against query and point-lookup readers, across many
// freeze and merge boundaries. Run under -race this is the tier's
// data-race gate.
func TestTierConcurrentAddQuery(t *testing.T) {
	leakcheck.Check(t)
	tier, err := New(newBase(t), Config{Terrain: testTerrain, MemtableFlush: 64, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			cur := make(map[dual.OID]dual.Motion)
			now := 0.0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now += 0.25
				id := dual.OID(g*1000 + rng.Intn(200))
				m := motionAt(rng, id, now)
				var ops []Op
				if old, live := cur[id]; live {
					ops = append(ops, Op{Insert: false, M: old})
				}
				ops = append(ops, Op{Insert: true, M: m})
				if _, err := tier.Add(ops); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
				cur[id] = m
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			exec := core.NewExecutor(2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := morAt(rng, 200)
				if _, err := tier.QueryParallelCtx(t.Context(), exec, q); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if _, _, err := tier.Get(dual.OID(rng.Intn(4000))); err != nil {
					t.Errorf("reader %d get: %v", g, err)
					return
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := tier.Stats()
	if st.Freezes == 0 || st.Merges == 0 {
		t.Fatalf("stress never crossed a flush boundary: %+v", st)
	}
}

// TestTierCloseUnderLoad is the leakcheck gate for the close path: Close
// fires while writers and readers hammer the tier; every goroutine must
// observe ErrClosed (or a pre-close success) and drain.
func TestTierCloseUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	tier, err := New(newBase(t), Config{Terrain: testTerrain, MemtableFlush: 32, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			now := 0.0
			for i := 0; ; i++ {
				now += 0.25
				m := motionAt(rng, dual.OID(g*100000+i), now)
				if _, err := tier.Add([]Op{{Insert: true, M: m}}); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(50 + g)))
			for {
				if _, err := tier.Query(morAt(rng, 100)); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
