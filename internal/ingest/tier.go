package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mobidx/internal/core"
	"mobidx/internal/dual"
)

// Op is one motion mutation, mirroring shard.Op: an insert of a new
// motion or a delete of a previously inserted one (an object's update is
// a delete+insert pair, as everywhere else in this repository).
type Op struct {
	Insert bool
	M      dual.Motion
}

// Base is the immutable bulk-loaded index the tier fronts. core.DualBPlus
// satisfies it; any Index1D with Subqueries would.
type Base interface {
	// BulkLoad atomically replaces the index contents (one WAL batch on a
	// batching store).
	BulkLoad(ms []dual.Motion) error
	// Subqueries decomposes a MOR query into independent exact pieces.
	Subqueries(q dual.MORQuery) []func(emit func(dual.OID)) error
	// Len reports the number of indexed motions.
	Len() int
}

// Config tunes the tier. The zero value selects the defaults.
type Config struct {
	// Terrain validates inserted motions exactly as the base index would,
	// so a motion the eventual merge must reject is refused at Add time.
	Terrain dual.Terrain
	// MemtableFlush freezes the memtable into an immutable run once it
	// holds this many distinct OIDs (0 selects 2048).
	MemtableFlush int
	// MaxRuns folds runs + memtable into the base via one atomic BulkLoad
	// reindex once this many frozen runs exist (0 selects 4).
	MaxRuns int
	// BloomBitsPerKey sizes each run's bloom filter (0 selects 10, ~1%
	// false positives).
	BloomBitsPerKey int
}

func (c Config) withDefaults() Config {
	if c.MemtableFlush <= 0 {
		c.MemtableFlush = 2048
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 4
	}
	if c.BloomBitsPerKey <= 0 {
		c.BloomBitsPerKey = 10
	}
	return c
}

// delta is the newest known state of one OID in the write tier: an
// upserted motion, or a tombstone masking the base.
type delta struct {
	m    dual.Motion
	tomb bool
}

// run is a frozen memtable: deltas sorted by OID with a bloom filter
// over the member OIDs so point lookups skip runs that cannot hold the
// key.
type run struct {
	oids   []dual.OID // ascending
	deltas []delta    // parallel to oids
	filter *Bloom
}

func (r *run) get(id dual.OID) (delta, bool) {
	i := sort.Search(len(r.oids), func(i int) bool { return r.oids[i] >= id })
	if i < len(r.oids) && r.oids[i] == id {
		return r.deltas[i], true
	}
	return delta{}, false
}

// ErrClosed is returned by operations on a closed tier.
var ErrClosed = errors.New("ingest: tier closed")

// Stats is a point-in-time snapshot of the tier's shape and bloom
// effectiveness.
type Stats struct {
	// BaseLen, MemLen, Runs describe the current shape.
	BaseLen, MemLen, Runs int
	// Freezes and Merges count memtable→run and runs→base transitions.
	Freezes, Merges int
	// RunProbes counts point lookups that consulted at least one run;
	// BloomSkips counts runs skipped by their filter; BloomFalsePos
	// counts runs whose filter said maybe but held no entry.
	RunProbes, BloomSkips, BloomFalsePos int
}

// Tier is the log-structured write tier. All methods are safe for
// concurrent use: Add/Flush/Load serialize on a write latch, queries and
// lookups share a read latch (and may run in parallel through a
// core.Executor). Durability is the caller's concern — the tier is the
// volatile serving structure; internal/shard journals ops in its motion
// catalog within the same WAL batch, and standalone callers can pair the
// tier with a Journal.
type Tier struct {
	cfg  Config
	base Base

	mu     sync.RWMutex
	mem    map[dual.OID]delta
	runs   []*run        // oldest first
	baseMs []dual.Motion // base contents, ascending OID, unique
	live   int           // total live motions (base ⊕ delta)
	fail   error         // sticky: a failed merge left base in-memory state unknown
	closed bool
	stats  Stats

	// Bloom-probe counters are atomic so point lookups and query-time
	// masking can run under the read latch.
	runProbes, bloomSkips, bloomFalsePos atomic.Int64
}

// New builds a tier over an empty base index.
func New(base Base, cfg Config) (*Tier, error) {
	return Attach(base, nil, cfg)
}

// Attach builds a tier over a base index already holding exactly ms
// (the recovery path: the shard reattaches its bulk-loaded index and
// hands the tier the flushed prefix of its catalog). ms must carry
// unique OIDs; the tier upserts per object.
func Attach(base Base, ms []dual.Motion, cfg Config) (*Tier, error) {
	t := &Tier{cfg: cfg.withDefaults(), base: base, mem: make(map[dual.OID]delta)}
	sorted, err := sortByOID(ms)
	if err != nil {
		return nil, err
	}
	if base.Len() != len(sorted) {
		return nil, fmt.Errorf("ingest: base holds %d motions, attach given %d", base.Len(), len(sorted))
	}
	t.baseMs = sorted
	t.live = len(sorted)
	t.stats.BaseLen = len(sorted)
	return t, nil
}

func sortByOID(ms []dual.Motion) ([]dual.Motion, error) {
	out := append([]dual.Motion(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	for i := 1; i < len(out); i++ {
		if out[i].OID == out[i-1].OID {
			return nil, fmt.Errorf("ingest: duplicate OID %d (the tier upserts per object)", out[i].OID)
		}
	}
	return out, nil
}

func (t *Tier) ok() error {
	if t.closed {
		return ErrClosed
	}
	return t.fail
}

// deltaLocked returns the newest delta for id across memtable and runs
// (newest first), maintaining the bloom counters. Safe under the read
// latch: the counters are atomic.
func (t *Tier) deltaLocked(id dual.OID) (delta, bool) {
	if d, ok := t.mem[id]; ok {
		return d, true
	}
	if len(t.runs) > 0 {
		t.runProbes.Add(1)
	}
	for i := len(t.runs) - 1; i >= 0; i-- {
		r := t.runs[i]
		if !r.filter.MayContain(uint64(id)) {
			t.bloomSkips.Add(1)
			continue
		}
		if d, ok := r.get(id); ok {
			return d, true
		}
		t.bloomFalsePos.Add(1)
	}
	return delta{}, false
}

// shadowedLocked reports whether a level newer than run i (the memtable,
// or a later run) holds a delta for id — i.e. whether run i's entry for
// id is stale. Blooms skip runs that cannot hold the key.
func (t *Tier) shadowedLocked(id dual.OID, i int) bool {
	if _, ok := t.mem[id]; ok {
		return true
	}
	for j := len(t.runs) - 1; j > i; j-- {
		r := t.runs[j]
		if !r.filter.MayContain(uint64(id)) {
			t.bloomSkips.Add(1)
			continue
		}
		if _, ok := r.get(id); ok {
			return true
		}
		t.bloomFalsePos.Add(1)
	}
	return false
}

// baseMotionLocked binary-searches the base contents for id.
func (t *Tier) baseMotionLocked(id dual.OID) (dual.Motion, bool) {
	i := sort.Search(len(t.baseMs), func(i int) bool { return t.baseMs[i].OID >= id })
	if i < len(t.baseMs) && t.baseMs[i].OID == id {
		return t.baseMs[i], true
	}
	return dual.Motion{}, false
}

// currentLocked resolves id to its live motion, if any, across the whole
// tier.
func (t *Tier) currentLocked(id dual.OID) (dual.Motion, bool) {
	if d, ok := t.deltaLocked(id); ok {
		if d.tomb {
			return dual.Motion{}, false
		}
		return d.m, true
	}
	return t.baseMotionLocked(id)
}

// Get is the point lookup: the live motion for id, if any. Lookups
// share the read latch, so they run concurrently with queries.
func (t *Tier) Get(id dual.OID) (dual.Motion, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.ok(); err != nil {
		return dual.Motion{}, false, err
	}
	m, ok := t.currentLocked(id)
	return m, ok, nil
}

// Add applies ops to the write tier in order: inserts are validated
// against the terrain and must target an absent OID, deletes must name
// the exact live motion — the same discipline the flat Insert/Delete
// path enforces. Crossing the memtable threshold freezes it into a run.
// If, after every op is staged, MaxRuns frozen runs exist, the whole
// delta folds into the base via one atomic BulkLoad reindex; the merge
// deliberately waits for the end of the batch so that merged=true means
// the base covers every op from this and all earlier Adds — a caller
// that journals the delta can truncate its journal on that signal
// without losing the batch's own tail. On a batching store the fold is
// atomic; if it fails the base's in-memory state is unknown and the tier
// poisons itself — the shard quarantines on the same failure.
func (t *Tier) Add(ops []Op) (merged bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ok(); err != nil {
		return false, err
	}
	for _, op := range ops {
		if op.Insert {
			if err := core.ValidateMotion(op.M, t.cfg.Terrain); err != nil {
				return false, fmt.Errorf("ingest: %w", err)
			}
			if _, live := t.currentLocked(op.M.OID); live {
				return false, fmt.Errorf("ingest: insert of live OID %d without delete", op.M.OID)
			}
			t.mem[op.M.OID] = delta{m: op.M}
			t.live++
		} else {
			cur, live := t.currentLocked(op.M.OID)
			if !live || cur != op.M {
				return false, fmt.Errorf("ingest: delete of absent motion (OID %d)", op.M.OID)
			}
			t.mem[op.M.OID] = delta{tomb: true}
			t.live--
		}
		if len(t.mem) >= t.cfg.MemtableFlush {
			t.freezeLocked()
		}
	}
	if len(t.runs) >= t.cfg.MaxRuns {
		if err := t.mergeLocked(); err != nil {
			return false, err
		}
		merged = true
	}
	return merged, nil
}

// Replay re-applies recovered delta ops (the catalog suffix past the
// flushed watermark) without ever merging: recovery must not write pages
// outside a batch, and the replayed delta is already durable. Freezes
// still happen so the recovered shape honors the memtable bound.
func (t *Tier) Replay(ops []Op) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ok(); err != nil {
		return err
	}
	for _, op := range ops {
		if op.Insert {
			if _, live := t.currentLocked(op.M.OID); live {
				return fmt.Errorf("ingest: replay insert of live OID %d", op.M.OID)
			}
			t.mem[op.M.OID] = delta{m: op.M}
			t.live++
		} else {
			cur, live := t.currentLocked(op.M.OID)
			if !live || cur != op.M {
				return fmt.Errorf("ingest: replay delete of absent motion (OID %d)", op.M.OID)
			}
			t.mem[op.M.OID] = delta{tomb: true}
			t.live--
		}
		if len(t.mem) >= t.cfg.MemtableFlush {
			t.freezeLocked()
		}
	}
	return nil
}

// freezeLocked turns the memtable into an immutable sorted run with a
// bloom filter over its OIDs.
func (t *Tier) freezeLocked() {
	if len(t.mem) == 0 {
		return
	}
	oids := make([]dual.OID, 0, len(t.mem))
	for id := range t.mem {
		oids = append(oids, id)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	r := &run{
		oids:   oids,
		deltas: make([]delta, len(oids)),
		filter: NewBloom(len(oids), t.cfg.BloomBitsPerKey),
	}
	for i, id := range oids {
		r.deltas[i] = t.mem[id]
		r.filter.Add(uint64(id))
	}
	t.runs = append(t.runs, r)
	t.mem = make(map[dual.OID]delta)
	t.stats.Freezes++
}

// overlayLocked collapses memtable + runs into newest-wins per-OID
// deltas.
func (t *Tier) overlayLocked() map[dual.OID]delta {
	ov := make(map[dual.OID]delta)
	for _, r := range t.runs { // oldest first: later entries overwrite
		for i, id := range r.oids {
			ov[id] = r.deltas[i]
		}
	}
	for id, d := range t.mem {
		ov[id] = d
	}
	return ov
}

// mergedMotionsLocked applies the overlay to the base contents: the
// exact live motion set, ascending OID.
func (t *Tier) mergedMotionsLocked() []dual.Motion {
	ov := t.overlayLocked()
	out := make([]dual.Motion, 0, len(t.baseMs)+len(ov))
	for _, m := range t.baseMs {
		if _, masked := ov[m.OID]; masked {
			continue
		}
		out = append(out, m)
	}
	for id, d := range ov {
		if !d.tomb {
			_ = id
			out = append(out, d.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

// mergeLocked folds the whole delta (runs + memtable) into the base with
// one atomic BulkLoad reindex.
func (t *Tier) mergeLocked() error {
	ms := t.mergedMotionsLocked()
	if err := t.base.BulkLoad(ms); err != nil {
		// On a batching store the reindex batch rolled back, but the base's
		// in-memory generations may hold a partial build: nothing above can
		// trust this tier again.
		t.fail = fmt.Errorf("ingest: merge reindex: %w", err)
		return t.fail
	}
	t.baseMs = ms
	t.runs = nil
	t.mem = make(map[dual.OID]delta)
	t.stats.Merges++
	t.stats.BaseLen = len(ms)
	return nil
}

// Flush folds the entire delta into the base now, regardless of
// thresholds. No-op when the delta is empty.
func (t *Tier) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ok(); err != nil {
		return err
	}
	if len(t.mem) == 0 && len(t.runs) == 0 {
		return nil
	}
	return t.mergeLocked()
}

// Load atomically replaces the whole tier's contents with ms: the base
// is bulk-loaded and the delta cleared (the shard BulkLoad path).
func (t *Tier) Load(ms []dual.Motion) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ok(); err != nil {
		return err
	}
	sorted, err := sortByOID(ms)
	if err != nil {
		return err
	}
	if err := t.base.BulkLoad(sorted); err != nil {
		t.fail = fmt.Errorf("ingest: load reindex: %w", err)
		return t.fail
	}
	t.baseMs = sorted
	t.runs = nil
	t.mem = make(map[dual.OID]delta)
	t.live = len(sorted)
	t.stats.BaseLen = len(sorted)
	return nil
}

// BaseMotions returns the base index's exact contents, ascending OID.
// After a merge (Add returning merged=true, or Flush) this is the full
// live state. Callers must not mutate the returned slice; it is the
// tier's own backing array, exposed so the shard can rewrite its catalog
// inside the same WAL batch without a copy.
func (t *Tier) BaseMotions() []dual.Motion {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.baseMs
}

// Len returns the number of live motions (base ⊕ delta).
func (t *Tier) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// DeltaLen returns the number of delta entries not yet folded into the
// base (counting an OID once per run it appears in — a shape metric, not
// a distinct count).
func (t *Tier) DeltaLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.mem)
	for _, r := range t.runs {
		n += len(r.oids)
	}
	return n
}

// Stats returns a snapshot of the tier's shape and bloom counters.
func (t *Tier) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.stats
	s.MemLen = len(t.mem)
	s.Runs = len(t.runs)
	s.BaseLen = len(t.baseMs)
	s.RunProbes = int(t.runProbes.Load())
	s.BloomSkips = int(t.bloomSkips.Load())
	s.BloomFalsePos = int(t.bloomFalsePos.Load())
	return s
}

// Query answers the MOR query sequentially: sorted ascending,
// deduplicated — identical to a flat index over the same motions.
func (t *Tier) Query(q dual.MORQuery) ([]dual.OID, error) {
	return t.QueryParallelCtx(context.Background(), core.NewExecutor(1), q)
}

// QueryParallelCtx answers the MOR query with the base subqueries fanned
// out on exec, then merges the delta overlay exactly: base answers
// masked by any delta entry for the same OID drop out (the delta is
// newer), and delta upserts matching the query join. The result is
// byte-identical to the flat index at every worker count: the base
// answer is deterministic (core.RunSubqueriesCtx), the overlay is
// resolved newest-wins per OID, and the final sort+dedup normalizes
// order. Identity holds for model-conformant queries (dual.MORQuery's
// now ≤ T1 contract, so T1 is at or after every live motion's update
// time) — the regime in which the flat index itself is exact.
func (t *Tier) QueryParallelCtx(ctx context.Context, exec *core.Executor, q dual.MORQuery) ([]dual.OID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.ok(); err != nil {
		return nil, err
	}
	// Mask base answers with a bloom-filtered point probe per OID: any
	// delta entry for the OID is newer, so the base's version drops out
	// (the delta's version decides below). Probing beats materializing a
	// flattened overlay map per query — the probe cost scales with the
	// answer, not the delta. Sequential executors run the subqueries
	// inline with the mask fused into the emit path (no bucket slices, no
	// k-way merge); duplicate emissions across subqueries are normalized
	// by the final sort+dedup either way, so both paths return the same
	// bytes.
	var out []dual.OID
	if exec == nil || exec.Workers() <= 1 {
		for _, sq := range t.base.Subqueries(q) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			err := sq(func(id dual.OID) {
				if _, m := t.deltaLocked(id); m {
					return
				}
				out = append(out, id)
			})
			if err != nil {
				return nil, err
			}
		}
	} else {
		baseOIDs, err := core.RunSubqueriesCtx(ctx, exec, t.base.Subqueries(q))
		if err != nil {
			return nil, err
		}
		out = make([]dual.OID, 0, len(baseOIDs))
		for _, id := range baseOIDs {
			if _, m := t.deltaLocked(id); m {
				continue
			}
			out = append(out, id)
		}
	}
	// Delta upserts matching the query join, newest-wins: the memtable is
	// the newest level; a run entry counts only when no newer level holds
	// its OID. The cheap geometric reject runs first so shadow probes are
	// paid only for entries that would actually join.
	for id, d := range t.mem {
		if !d.tomb && d.m.Matches(q) {
			out = append(out, id)
		}
	}
	for i := len(t.runs) - 1; i >= 0; i-- {
		r := t.runs[i]
		for j, id := range r.oids {
			d := r.deltas[j]
			if d.tomb || !d.m.Matches(q) {
				continue
			}
			if t.shadowedLocked(id, i) {
				continue
			}
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Base survivors and delta members are disjoint by construction; the
	// dedup guards the contract, not an expected case.
	out = dedupOIDs(out)
	return out, nil
}

func dedupOIDs(ids []dual.OID) []dual.OID {
	j := 0
	for i, id := range ids {
		if i > 0 && id == ids[j-1] {
			continue
		}
		ids[j] = id
		j++
	}
	return ids[:j]
}

// Close marks the tier closed; further operations fail with ErrClosed.
// In-flight queries drain under the read latch first.
func (t *Tier) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}
