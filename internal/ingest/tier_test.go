package ingest

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

var testTerrain = dual.Terrain{YMax: 100, VMin: 0.5, VMax: 2.0}

func newBase(t testing.TB) *core.DualBPlus {
	t.Helper()
	d, err := core.NewDualBPlus(pager.NewMemStore(1024),
		core.DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: bptree.Compact})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// motionAt issues a motion updated at time now, like the sim in core:
// queries are generated at T1 ≥ now, honoring MORQuery's now ≤ T1
// contract (the regime where the flat index is exact).
func motionAt(rng *rand.Rand, oid dual.OID, now float64) dual.Motion {
	tr := testTerrain
	v := tr.VMin + rng.Float64()*(tr.VMax-tr.VMin)
	if rng.Intn(2) == 0 {
		v = -v
	}
	return dual.Motion{
		OID: oid,
		Y0:  rng.Float64() * tr.YMax,
		T0:  now,
		V:   v,
	}
}

// morAt issues a model-conformant query at time now.
func morAt(rng *rand.Rand, now float64) dual.MORQuery {
	tr := testTerrain
	y1 := rng.Float64() * tr.YMax
	y2 := y1 + rng.Float64()*(tr.YMax-y1)
	t1 := now + rng.Float64()*20
	t2 := t1 + rng.Float64()*40
	return dual.MORQuery{Y1: y1, Y2: y2, T1: t1, T2: t2}
}

// TestTierDifferential is the tentpole gate: a Tier with small thresholds
// (so freezes and merges fire constantly mid-stream) must answer every
// MOR query byte-identically to a flat DualBPlus maintained with direct
// Insert/Delete — sequentially and through QueryParallelCtx at worker
// counts 1, 2 and 8 — and Get must agree with a tracked oracle map.
func TestTierDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	flat := newBase(t)
	tier, err := New(newBase(t), Config{
		Terrain:       testTerrain,
		MemtableFlush: 32, // tiny: force freezes mid-stream
		MaxRuns:       3,  // and merges
	})
	if err != nil {
		t.Fatal(err)
	}
	execs := []*core.Executor{core.NewExecutor(1), core.NewExecutor(2), core.NewExecutor(8)}
	cur := make(map[dual.OID]dual.Motion)
	ctx := context.Background()
	now := 0.0

	check := func(round int) {
		t.Helper()
		if tier.Len() != flat.Len() || tier.Len() != len(cur) {
			t.Fatalf("round %d: tier Len=%d flat Len=%d oracle=%d", round, tier.Len(), flat.Len(), len(cur))
		}
		for i := 0; i < 5; i++ {
			q := morAt(rng, now)
			want, err := flat.QueryParallel(execs[0], q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tier.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(want, got) {
				t.Fatalf("round %d query %d: tier %v, flat %v (stats %+v)", round, i, got, want, tier.Stats())
			}
			for _, ex := range execs {
				par, err := tier.QueryParallelCtx(ctx, ex, q)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(want, par) {
					t.Fatalf("round %d query %d: tier parallel (%d workers) diverges", round, i, ex.Workers())
				}
			}
		}
		// Point lookups: present and absent OIDs.
		for i := 0; i < 20; i++ {
			id := dual.OID(rng.Intn(600))
			m, ok, err := tier.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := cur[id]
			if ok != wantOK || (ok && m != want) {
				t.Fatalf("round %d: Get(%d) = %+v,%v, oracle %+v,%v", round, id, m, ok, want, wantOK)
			}
		}
	}

	// 40 rounds × 8 time units crosses the 200-unit rotation period, so
	// the flat index (and the tier's merged base) spans two generations.
	for round := 0; round < 40; round++ {
		now += 8
		var ops []Op
		for i := 0; i < 25; i++ {
			id := dual.OID(rng.Intn(500))
			m := motionAt(rng, id, now)
			if old, live := cur[id]; live {
				// An update is delete(old)+insert(new), the paper's model.
				if err := flat.Delete(old); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, Op{Insert: false, M: old})
			}
			if err := flat.Insert(m); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, Op{Insert: true, M: m})
			cur[id] = m
		}
		// Occasionally plain deletes, so tombstones outlive their OID.
		if round%5 == 4 {
			for id, old := range cur {
				if err := flat.Delete(old); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, Op{Insert: false, M: old})
				delete(cur, id)
				if len(ops) > 60 {
					break
				}
			}
		}
		if _, err := tier.Add(ops); err != nil {
			t.Fatal(err)
		}
		check(round)
	}
	st := tier.Stats()
	if st.Freezes == 0 || st.Merges == 0 {
		t.Fatalf("thresholds never fired: stats %+v — the differential never saw a mid-flush state", st)
	}
	// A final explicit Flush must leave answers unchanged.
	if err := tier.Flush(); err != nil {
		t.Fatal(err)
	}
	check(999)
	if got := tier.Stats(); got.MemLen != 0 || got.Runs != 0 {
		t.Fatalf("Flush left delta behind: %+v", got)
	}
}

// TestTierStrictDiscipline pins the admission rules: inserts validate
// against the terrain, an insert of a live OID fails, a delete must name
// the exact live motion, and a failed Add leaves prior state intact.
func TestTierStrictDiscipline(t *testing.T) {
	tier, err := New(newBase(t), Config{Terrain: testTerrain})
	if err != nil {
		t.Fatal(err)
	}
	m := dual.Motion{OID: 1, Y0: 10, T0: 0, V: 1}
	if _, err := tier.Add([]Op{{Insert: true, M: m}}); err != nil {
		t.Fatal(err)
	}
	cases := []Op{
		{Insert: true, M: dual.Motion{OID: 2, Y0: 10, T0: 0, V: 99}},  // speed out of band
		{Insert: true, M: dual.Motion{OID: 3, Y0: -500, T0: 0, V: 1}}, // position out of terrain
		{Insert: true, M: dual.Motion{OID: 1, Y0: 20, T0: 1, V: 1}},   // live OID
		{Insert: false, M: dual.Motion{OID: 1, Y0: 99, T0: 0, V: 1}},  // wrong motion
		{Insert: false, M: dual.Motion{OID: 7, Y0: 10, T0: 0, V: 1}},  // absent OID
	}
	for i, op := range cases {
		if _, err := tier.Add([]Op{op}); err == nil {
			t.Fatalf("case %d: Add(%+v) succeeded, want error", i, op)
		}
	}
	if tier.Len() != 1 {
		t.Fatalf("failed Adds changed Len: %d", tier.Len())
	}
	got, ok, err := tier.Get(1)
	if err != nil || !ok || got != m {
		t.Fatalf("Get(1) = %+v,%v,%v; want original motion", got, ok, err)
	}
}

// TestTierAttachReplay covers the recovery path: Attach over a base
// holding a flushed prefix, then Replay of the delta suffix, must
// reproduce the full state — and Replay must never merge.
func TestTierAttachReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Build the "pre-crash" tier and capture its durable pieces.
	orig, err := New(newBase(t), Config{Terrain: testTerrain, MemtableFlush: 16, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	cur := make(map[dual.OID]dual.Motion)
	var suffix []Op // ops since the last merge (what a journal would hold)
	now := 0.0
	for i := 0; i < 400; i++ {
		now += 0.5
		id := dual.OID(rng.Intn(120))
		m := motionAt(rng, id, now)
		var ops []Op
		if old, live := cur[id]; live {
			ops = append(ops, Op{Insert: false, M: old})
		}
		ops = append(ops, Op{Insert: true, M: m})
		cur[id] = m
		merged, err := orig.Add(ops)
		if err != nil {
			t.Fatal(err)
		}
		if merged {
			suffix = suffix[:0]
		} else {
			suffix = append(suffix, ops...)
		}
	}
	baseMs := append([]dual.Motion(nil), orig.BaseMotions()...)
	if len(suffix) == 0 {
		t.Fatal("test never accumulated a delta suffix; tune thresholds")
	}

	// "Recover": fresh base bulk-loaded with the flushed prefix, Attach,
	// Replay the suffix.
	base := newBase(t)
	if err := base.BulkLoad(baseMs); err != nil {
		t.Fatal(err)
	}
	rec, err := Attach(base, baseMs, Config{Terrain: testTerrain, MemtableFlush: 16, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(suffix); err != nil {
		t.Fatal(err)
	}
	if rec.Stats().Merges != 0 {
		t.Fatal("Replay merged; recovery must not write through the base")
	}
	if rec.Len() != len(cur) {
		t.Fatalf("recovered Len=%d, want %d", rec.Len(), len(cur))
	}
	for id, want := range cur {
		m, ok, err := rec.Get(id)
		if err != nil || !ok || m != want {
			t.Fatalf("recovered Get(%d) = %+v,%v,%v; want %+v", id, m, ok, err, want)
		}
	}
	// And the recovered tier answers queries identically to the original.
	for i := 0; i < 20; i++ {
		q := morAt(rng, now)
		want, err := orig.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(want, got) {
			t.Fatalf("query %d: recovered %v, original %v", i, got, want)
		}
	}
}

// TestTierAttachRejectsMismatch: Attach must refuse a base whose length
// disagrees with the motions it is told the base holds.
func TestTierAttachRejectsMismatch(t *testing.T) {
	base := newBase(t)
	ms := []dual.Motion{{OID: 1, Y0: 10, T0: 0, V: 1}}
	if _, err := Attach(base, ms, Config{Terrain: testTerrain}); err == nil {
		t.Fatal("Attach accepted a base missing its motions")
	}
	if _, err := Attach(base, []dual.Motion{
		{OID: 5, Y0: 1, T0: 0, V: 1}, {OID: 5, Y0: 2, T0: 0, V: 1},
	}, Config{Terrain: testTerrain}); err == nil {
		t.Fatal("Attach accepted duplicate OIDs")
	}
}

// TestTierClosed: operations after Close fail with ErrClosed.
func TestTierClosed(t *testing.T) {
	tier, err := New(newBase(t), Config{Terrain: testTerrain})
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Add([]Op{{Insert: true, M: dual.Motion{OID: 1, Y0: 1, T0: 0, V: 1}}}); err != ErrClosed {
		t.Fatalf("Add after Close: %v, want ErrClosed", err)
	}
	if _, err := tier.Query(dual.MORQuery{Y1: 0, Y2: 10, T1: 0, T2: 10}); err != ErrClosed {
		t.Fatalf("Query after Close: %v, want ErrClosed", err)
	}
	if _, _, err := tier.Get(1); err != ErrClosed {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
}
