// Package interval provides the subterrain interval indexes of §3.5.2
// (case ii): for each subterrain, the time interval during which each
// moving object resides inside it, searchable by overlap with the query's
// time window.
//
// The paper suggests the external-memory Interval tree of Arge and Vitter
// for an optimal solution. This package substitutes a simpler structure
// with the same bounded-overhead guarantee: because an object crosses a
// subterrain of height H at speed at least VMin, every stored interval has
// length at most D = H/VMin, so a B+-tree on interval start answers the
// stabbing-overlap query [t1, t2] by scanning starts in [t1−D, t2] and
// filtering on the end time. The scan reads at most the answer plus the
// intervals starting in a window of width D — the same kind of bounded
// enlargement E the method already accepts at the query endpoints.
//
// A classic in-memory augmented interval tree (Tree) is included and used
// by tests as an exactness oracle.
package interval

import (
	"fmt"
	"math"

	"mobidx/internal/bptree"
	"mobidx/internal/pager"
)

// Index is a duration-bounded external-memory interval index.
type Index struct {
	tree *bptree.Tree
	maxD float64
}

// NewIndex creates an index for intervals of length at most maxDuration.
func NewIndex(store pager.Store, codec bptree.Codec, maxDuration float64) (*Index, error) {
	if maxDuration <= 0 {
		return nil, fmt.Errorf("interval: maxDuration must be positive, got %v", maxDuration)
	}
	t, err := bptree.New(store, bptree.Config{Codec: codec})
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, maxD: maxDuration}, nil
}

// Len returns the number of stored intervals.
func (ix *Index) Len() int { return ix.tree.Len() }

// Insert stores the interval [start, end) for val.
func (ix *Index) Insert(start, end float64, val uint64) error {
	if end < start {
		return fmt.Errorf("interval: end %v before start %v", end, start)
	}
	if end-start > ix.maxD*(1+1e-9) {
		return fmt.Errorf("interval: duration %v exceeds bound %v", end-start, ix.maxD)
	}
	return ix.tree.Insert(bptree.Entry{Key: start, Val: val, Aux: end})
}

// Delete removes the interval previously inserted with the same start and
// val. It returns bptree.ErrNotFound when absent.
func (ix *Index) Delete(start float64, val uint64) error {
	return ix.tree.Delete(start, val)
}

// Overlapping calls fn for every stored interval [s, e) that overlaps the
// closed query window [t1, t2] (that is, s <= t2 and e >= t1), until fn
// returns false.
func (ix *Index) Overlapping(t1, t2 float64, fn func(start, end float64, val uint64) bool) error {
	return ix.tree.Range(t1-ix.maxD, t2, func(e bptree.Entry) bool {
		if e.Aux < t1 {
			return true // ended before the window
		}
		return fn(e.Key, e.Aux, e.Val)
	})
}

// BulkLoadSorted replaces the index contents with the given entries
// (Key = start, Aux = end, Val = reference), which must already be sorted
// with bptree.SortEntries and rounded to the codec's precision — the form
// core's bulk reindex produces. The duration bound is enforced with a
// tolerance absorbing the float32 rounding of the endpoints.
func (ix *Index) BulkLoadSorted(es []bptree.Entry, fill float64) error {
	for _, e := range es {
		tol := ix.maxD*1e-9 + (math.Abs(e.Key)+math.Abs(e.Aux))*1e-6
		if e.Aux < e.Key-tol {
			return fmt.Errorf("interval: end %v before start %v", e.Aux, e.Key)
		}
		if e.Aux-e.Key > ix.maxD+tol {
			return fmt.Errorf("interval: duration %v exceeds bound %v", e.Aux-e.Key, ix.maxD)
		}
	}
	return ix.tree.BulkLoadSorted(es, fill)
}

// Destroy releases all pages.
func (ix *Index) Destroy() error { return ix.tree.Destroy() }

// Meta returns the persistence metadata of the underlying B+-tree, valid
// until the next mutating operation — enough, together with the codec and
// duration bound the owner derives from its configuration, to reattach
// the index after its store is reopened (see Attach).
func (ix *Index) Meta() bptree.Meta { return ix.tree.Meta() }

// Attach reattaches an index previously built in store from its Meta,
// typically after crash recovery reopened the store. The codec and
// maxDuration must match the values the index was created with (both are
// derived from static configuration, not data, everywhere this package is
// used).
func Attach(store pager.Store, codec bptree.Codec, maxDuration float64, m bptree.Meta) (*Index, error) {
	if maxDuration <= 0 {
		return nil, fmt.Errorf("interval: maxDuration must be positive, got %v", maxDuration)
	}
	t, err := bptree.Attach(store, bptree.Config{Codec: codec}, m)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, maxD: maxDuration}, nil
}

// ---------------------------------------------------------------------------
// In-memory augmented interval tree (exactness oracle)
// ---------------------------------------------------------------------------

// Tree is a classic augmented randomized binary search tree over intervals:
// each node stores the maximum end time in its subtree, giving O(log n + k)
// overlap queries. It lives entirely in memory and is used by tests and
// small-scale tooling.
type Tree struct {
	root *tnode
	size int
	seed uint64
}

type tnode struct {
	start, end  float64
	val         uint64
	maxEnd      float64
	prio        uint64
	left, right *tnode
}

// NewTree returns an empty in-memory interval tree.
func NewTree() *Tree { return &Tree{seed: 0x9e3779b97f4a7c15} }

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.size }

func (t *Tree) nextPrio() uint64 {
	// xorshift64*: deterministic treap priorities.
	t.seed ^= t.seed >> 12
	t.seed ^= t.seed << 25
	t.seed ^= t.seed >> 27
	return t.seed * 0x2545f4914f6cdd1d
}

func upd(n *tnode) {
	n.maxEnd = n.end
	if n.left != nil && n.left.maxEnd > n.maxEnd {
		n.maxEnd = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > n.maxEnd {
		n.maxEnd = n.right.maxEnd
	}
}

func less(a, b *tnode) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	if a.end != b.end {
		return a.end < b.end
	}
	return a.val < b.val
}

// Insert stores [start, end) for val.
func (t *Tree) Insert(start, end float64, val uint64) {
	n := &tnode{start: start, end: end, val: val, maxEnd: end, prio: t.nextPrio()}
	t.root = insertNode(t.root, n)
	t.size++
}

func insertNode(root, n *tnode) *tnode {
	if root == nil {
		return n
	}
	if n.prio > root.prio {
		// n becomes the new subtree root: split root's tree by n.
		l, r := split(root, n)
		n.left, n.right = l, r
		upd(n)
		return n
	}
	if less(n, root) {
		root.left = insertNode(root.left, n)
	} else {
		root.right = insertNode(root.right, n)
	}
	upd(root)
	return root
}

// split partitions by ordering relative to pivot.
func split(root, pivot *tnode) (l, r *tnode) {
	if root == nil {
		return nil, nil
	}
	if less(root, pivot) {
		a, b := split(root.right, pivot)
		root.right = a
		upd(root)
		return root, b
	}
	a, b := split(root.left, pivot)
	root.left = b
	upd(root)
	return a, root
}

// Delete removes one interval matching (start, end, val); it reports
// whether a match was found.
func (t *Tree) Delete(start, end float64, val uint64) bool {
	target := &tnode{start: start, end: end, val: val}
	var found bool
	t.root, found = deleteNode(t.root, target)
	if found {
		t.size--
	}
	return found
}

func deleteNode(root, target *tnode) (*tnode, bool) {
	if root == nil {
		return nil, false
	}
	if root.start == target.start && root.end == target.end && root.val == target.val {
		return merge(root.left, root.right), true
	}
	var found bool
	if less(target, root) {
		root.left, found = deleteNode(root.left, target)
	} else {
		root.right, found = deleteNode(root.right, target)
	}
	upd(root)
	return root, found
}

func merge(l, r *tnode) *tnode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio > r.prio {
		l.right = merge(l.right, r)
		upd(l)
		return l
	}
	r.left = merge(l, r.left)
	upd(r)
	return r
}

// Overlapping calls fn for every interval [s, e) with s <= t2 and e >= t1.
func (t *Tree) Overlapping(t1, t2 float64, fn func(start, end float64, val uint64) bool) {
	walk(t.root, t1, t2, fn)
}

func walk(n *tnode, t1, t2 float64, fn func(float64, float64, uint64) bool) bool {
	if n == nil || n.maxEnd < t1 {
		return true
	}
	if !walk(n.left, t1, t2, fn) {
		return false
	}
	if n.start <= t2 && n.end >= t1 {
		if !fn(n.start, n.end, n.val) {
			return false
		}
	}
	if n.start > t2 {
		return true // right subtree starts even later
	}
	return walk(n.right, t1, t2, fn)
}
