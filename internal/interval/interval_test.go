package interval

import (
	"errors"
	"math/rand"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/pager"
)

func TestIndexBasics(t *testing.T) {
	st := pager.NewMemStore(512)
	ix, err := NewIndex(st, bptree.Wide, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(3, 9, 2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(20, 25, 3); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	_ = ix.Overlapping(4, 6, func(_, _ float64, v uint64) bool { got[v] = true; return true })
	if !got[1] || !got[2] || got[3] || len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if err := ix.Delete(3, 2); err != nil {
		t.Fatal(err)
	}
	got = map[uint64]bool{}
	_ = ix.Overlapping(4, 6, func(_, _ float64, v uint64) bool { got[v] = true; return true })
	if len(got) != 1 || !got[1] {
		t.Fatalf("after delete: %v", got)
	}
	if err := ix.Delete(3, 2); !errors.Is(err, bptree.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestIndexRejects(t *testing.T) {
	st := pager.NewMemStore(512)
	if _, err := NewIndex(st, bptree.Wide, 0); err == nil {
		t.Fatal("zero maxDuration accepted")
	}
	ix, _ := NewIndex(st, bptree.Wide, 5)
	if err := ix.Insert(0, 10, 1); err == nil {
		t.Fatal("over-long interval accepted")
	}
	if err := ix.Insert(10, 5, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestIndexBoundaryOverlap(t *testing.T) {
	st := pager.NewMemStore(512)
	ix, _ := NewIndex(st, bptree.Wide, 10)
	_ = ix.Insert(0, 5, 1)
	// Touching at a single point counts as overlap (closed semantics).
	n := 0
	_ = ix.Overlapping(5, 8, func(_, _ float64, _ uint64) bool { n++; return true })
	if n != 1 {
		t.Fatalf("touch-at-end: %d", n)
	}
	n = 0
	_ = ix.Overlapping(-3, 0, func(_, _ float64, _ uint64) bool { n++; return true })
	if n != 1 {
		t.Fatalf("touch-at-start: %d", n)
	}
	n = 0
	_ = ix.Overlapping(5.001, 8, func(_, _ float64, _ uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("past end: %d", n)
	}
}

// Differential: Index vs the in-memory Tree oracle vs brute force.
func TestIndexAgainstOracle(t *testing.T) {
	st := pager.NewMemStore(512)
	const D = 50.0
	ix, err := NewIndex(st, bptree.Wide, D)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewTree()
	rng := rand.New(rand.NewSource(101))
	type iv struct {
		s, e float64
		v    uint64
	}
	var ref []iv
	for op := 0; op < 5000; op++ {
		if len(ref) == 0 || rng.Float64() < 0.6 {
			s := rng.Float64() * 1000
			e := s + rng.Float64()*D
			v := uint64(op)
			if err := ix.Insert(s, e, v); err != nil {
				t.Fatal(err)
			}
			oracle.Insert(s, e, v)
			ref = append(ref, iv{s, e, v})
		} else {
			i := rng.Intn(len(ref))
			if err := ix.Delete(ref[i].s, ref[i].v); err != nil {
				t.Fatal(err)
			}
			if !oracle.Delete(ref[i].s, ref[i].e, ref[i].v) {
				t.Fatal("oracle delete missed")
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	if ix.Len() != len(ref) || oracle.Len() != len(ref) {
		t.Fatalf("sizes: index %d oracle %d ref %d", ix.Len(), oracle.Len(), len(ref))
	}
	for trial := 0; trial < 100; trial++ {
		t1 := rng.Float64() * 1000
		t2 := t1 + rng.Float64()*100
		want := map[uint64]bool{}
		for _, r := range ref {
			if r.s <= t2 && r.e >= t1 {
				want[r.v] = true
			}
		}
		gotIx := map[uint64]bool{}
		_ = ix.Overlapping(t1, t2, func(_, _ float64, v uint64) bool { gotIx[v] = true; return true })
		gotOr := map[uint64]bool{}
		oracle.Overlapping(t1, t2, func(_, _ float64, v uint64) bool { gotOr[v] = true; return true })
		if len(gotIx) != len(want) || len(gotOr) != len(want) {
			t.Fatalf("trial %d: index %d oracle %d want %d", trial, len(gotIx), len(gotOr), len(want))
		}
		for v := range want {
			if !gotIx[v] || !gotOr[v] {
				t.Fatalf("trial %d: missing %d", trial, v)
			}
		}
	}
}

// The scan window bounds extra reads: with intervals of duration <= D and
// uniform starts, a query reads O(answer + D-density) leaf entries.
func TestIndexScanBound(t *testing.T) {
	st := pager.NewMemStore(4096)
	const D = 10.0
	ix, _ := NewIndex(st, bptree.Compact, D)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		s := rng.Float64() * 10000
		_ = ix.Insert(s, s+rng.Float64()*D, uint64(i))
	}
	before := st.Stats()
	n := 0
	_ = ix.Overlapping(5000, 5020, func(_, _ float64, _ uint64) bool { n++; return true })
	reads := st.Stats().Sub(before).Reads
	// Window scanned = [4990, 5020] = 30 time units ~ 300 entries ~ 1-2
	// leaves + height. Anything above ~10 reads means the bound failed.
	if reads > 10 {
		t.Fatalf("overlap query used %d reads for %d results", reads, n)
	}
}

func TestTreeEarlyStop(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), float64(i)+5, uint64(i))
	}
	n := 0
	tr.Overlapping(0, 100, func(_, _ float64, _ uint64) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestTreeDeleteAbsent(t *testing.T) {
	tr := NewTree()
	tr.Insert(1, 2, 7)
	if tr.Delete(1, 2, 8) {
		t.Fatal("deleted wrong val")
	}
	if tr.Delete(1, 3, 7) {
		t.Fatal("deleted wrong end")
	}
	if !tr.Delete(1, 2, 7) {
		t.Fatal("failed to delete present interval")
	}
	if tr.Len() != 0 {
		t.Fatal("Len wrong")
	}
}
