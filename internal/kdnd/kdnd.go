// Package kdnd is the d-dimensional generalization of the paged k-d tree
// point access method (see package kdtree for the 2-dimensional variant
// and its on-page layout rationale). The paper's §4.2 maps 2-dimensional
// motion to points (vx, ax, vy, ay) in four dimensions and answers the MOR
// query as a conjunction of linear constraints there; this package
// provides the paged k-d tree over ℝ^d with linear-constraint search that
// that approach needs.
//
// Directory pages hold binary split nodes (one subtree per page); bucket
// pages hold points of d 4-byte coordinates plus a 4-byte reference.
// Constraint classification against a k-d cell (a d-box) is exact: the
// minimum and maximum of a linear functional over a box are attained at
// corners chosen per-coordinate by the sign of the coefficient.
package kdnd

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/pager"
)

// Point is one indexed point with an opaque 32-bit reference.
type Point struct {
	Coords []float64
	Val    uint64
}

// Constraint is the half-space Coef·x <= C.
type Constraint struct {
	Coef []float64
	C    float64
}

// Box is an axis-parallel box given by per-dimension bounds.
type Box struct {
	Lo, Hi []float64
}

// Contains reports whether p lies in the box (boundary inclusive).
func (b Box) Contains(coords []float64) bool {
	for i := range coords {
		if coords[i] < b.Lo[i]-1e-9 || coords[i] > b.Hi[i]+1e-9 {
			return false
		}
	}
	return true
}

func (b Box) clone() Box {
	lo := append([]float64(nil), b.Lo...)
	hi := append([]float64(nil), b.Hi...)
	return Box{Lo: lo, Hi: hi}
}

// extremes returns the min and max of c.Coef·x over the box.
func (b Box) extremes(c Constraint) (lo, hi float64) {
	for i, a := range c.Coef {
		if a >= 0 {
			lo += a * b.Lo[i]
			hi += a * b.Hi[i]
		} else {
			lo += a * b.Hi[i]
			hi += a * b.Lo[i]
		}
	}
	return lo, hi
}

// relation classifies the box against a constraint conjunction.
type relation int

const (
	outside relation = iota
	inside
	partial
)

func classify(b Box, cs []Constraint) relation {
	rel := inside
	for _, c := range cs {
		lo, hi := b.extremes(c)
		if lo > c.C+1e-9 {
			return outside
		}
		if hi > c.C+1e-9 {
			rel = partial
		}
	}
	return rel
}

func satisfies(coords []float64, cs []Constraint) bool {
	for _, c := range cs {
		s := 0.0
		for i, a := range c.Coef {
			s += a * coords[i]
		}
		if s > c.C+1e-9 {
			return false
		}
	}
	return true
}

// Config configures a tree.
type Config struct {
	// Dims is the dimensionality d (≥ 1).
	Dims int
	// World bounds every indexed point and seeds search pruning; its
	// per-dimension extents also normalize split-dimension selection.
	World Box
}

// Tree is a paged d-dimensional k-d tree.
type Tree struct {
	store     pager.Store
	dims      int
	world     Box
	rootRef   ref
	size      int
	bucketCap int
	nodeCap   int
}

type ref uint32

const (
	tagNode   = 0
	tagBucket = 1
	tagDir    = 2
)

func mkRef(tag int, v uint32) ref { return ref(uint32(tag)<<30 | v) }
func (r ref) tag() int            { return int(r >> 30) }
func (r ref) value() uint32       { return uint32(r) & 0x3fffffff }

const (
	dirHeader    = 12
	slotSize     = 16
	bucketHeader = 8

	typeDir    = 11
	typeBucket = 12

	noSlot = 0xffff
)

type slot struct {
	dim         int
	split       float64
	left, right ref
}

type dirPage struct {
	id    pager.PageID
	count int
	root  int
	free  int
	high  int
	slots []slot
}

type bucket struct {
	id     pager.PageID
	next   pager.PageID
	points []Point
}

// New creates an empty tree.
func New(store pager.Store, cfg Config) (*Tree, error) {
	if cfg.Dims < 1 {
		return nil, fmt.Errorf("kdnd: dims must be >= 1, got %d", cfg.Dims)
	}
	if len(cfg.World.Lo) != cfg.Dims || len(cfg.World.Hi) != cfg.Dims {
		return nil, fmt.Errorf("kdnd: world bounds must have %d dimensions", cfg.Dims)
	}
	for i := range cfg.World.Lo {
		if !(cfg.World.Lo[i] < cfg.World.Hi[i]) {
			return nil, fmt.Errorf("kdnd: empty world extent in dimension %d", i)
		}
	}
	t := &Tree{store: store, dims: cfg.Dims, world: cfg.World.clone()}
	pointSize := 4*cfg.Dims + 4
	t.bucketCap = (store.PageSize() - bucketHeader) / pointSize
	t.nodeCap = (store.PageSize() - dirHeader) / slotSize
	if t.bucketCap < 4 || t.nodeCap < 4 {
		return nil, fmt.Errorf("kdnd: page size %d too small for %d dims", store.PageSize(), cfg.Dims)
	}
	b, err := t.allocBucket()
	if err != nil {
		return nil, err
	}
	if err := t.writeBucket(b); err != nil {
		return nil, err
	}
	t.rootRef = mkRef(tagBucket, uint32(b.id))
	return t, nil
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// BucketCap returns the page capacity for data points.
func (t *Tree) BucketCap() int { return t.bucketCap }

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

func put16(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) int    { return int(b[0]) | int(b[1])<<8 }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putf32(b []byte, f float64) { put32(b, math.Float32bits(float32(f))) }
func getf32(b []byte) float64    { return float64(math.Float32frombits(get32(b))) }

func (t *Tree) pointSize() int { return 4*t.dims + 4 }

func (t *Tree) allocBucket() (*bucket, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &bucket{id: p.ID}, nil
}

func (t *Tree) writeBucket(b *bucket) error {
	data := make([]byte, t.store.PageSize())
	data[0] = typeBucket
	put16(data[2:], len(b.points))
	put32(data[4:], uint32(b.next))
	off := bucketHeader
	for _, pt := range b.points {
		for _, c := range pt.Coords {
			putf32(data[off:], c)
			off += 4
		}
		put32(data[off:], uint32(pt.Val))
		off += 4
	}
	return t.store.Write(&pager.Page{ID: b.id, Data: data})
}

func (t *Tree) readBucket(id pager.PageID) (*bucket, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	if d[0] != typeBucket {
		return nil, fmt.Errorf("kdnd: page %d is not a bucket", id)
	}
	b := &bucket{id: id, next: pager.PageID(get32(d[4:]))}
	count := get16(d[2:])
	b.points = make([]Point, count)
	off := bucketHeader
	for i := 0; i < count; i++ {
		coords := make([]float64, t.dims)
		for j := range coords {
			coords[j] = getf32(d[off:])
			off += 4
		}
		b.points[i] = Point{Coords: coords, Val: uint64(get32(d[off:]))}
		off += 4
	}
	return b, nil
}

func (t *Tree) allocDir() (*dirPage, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &dirPage{id: p.ID, free: noSlot, slots: make([]slot, t.nodeCap)}, nil
}

func (t *Tree) writeDir(dp *dirPage) error {
	data := make([]byte, t.store.PageSize())
	data[0] = typeDir
	put16(data[2:], dp.count)
	put16(data[4:], dp.root)
	put16(data[6:], dp.free)
	put16(data[8:], dp.high)
	off := dirHeader
	for i := 0; i < dp.high; i++ {
		s := dp.slots[i]
		data[off] = byte(s.dim)
		putf32(data[off+4:], s.split)
		put32(data[off+8:], uint32(s.left))
		put32(data[off+12:], uint32(s.right))
		off += slotSize
	}
	return t.store.Write(&pager.Page{ID: dp.id, Data: data})
}

func (t *Tree) readDir(id pager.PageID) (*dirPage, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	if d[0] != typeDir {
		return nil, fmt.Errorf("kdnd: page %d is not a directory page", id)
	}
	dp := &dirPage{
		id:    id,
		count: get16(d[2:]),
		root:  get16(d[4:]),
		free:  get16(d[6:]),
		high:  get16(d[8:]),
		slots: make([]slot, t.nodeCap),
	}
	off := dirHeader
	for i := 0; i < dp.high; i++ {
		dp.slots[i] = slot{
			dim:   int(d[off]),
			split: getf32(d[off+4:]),
			left:  ref(get32(d[off+8:])),
			right: ref(get32(d[off+12:])),
		}
		off += slotSize
	}
	return dp, nil
}

func (dp *dirPage) allocSlot(cap int) (int, bool) {
	if dp.free != noSlot {
		i := dp.free
		dp.free = int(dp.slots[i].left)
		dp.count++
		return i, true
	}
	if dp.high < cap {
		i := dp.high
		dp.high++
		dp.count++
		return i, true
	}
	return 0, false
}

func (dp *dirPage) freeSlot(i int) {
	dp.slots[i] = slot{left: ref(uint32(dp.free))}
	dp.free = i
	dp.count--
}

func roundPoint(p Point) Point {
	out := Point{Coords: make([]float64, len(p.Coords)), Val: p.Val}
	for i, c := range p.Coords {
		out.Coords[i] = float64(float32(c))
	}
	return out
}

func samePoint(a, b Point) bool {
	if a.Val != b.Val {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Insert / Delete (structure identical to package kdtree, generalized)
// ---------------------------------------------------------------------------

type pathStep struct {
	page  *dirPage
	slot  int
	right bool
}

// Insert adds a point.
func (t *Tree) Insert(p Point) error {
	if len(p.Coords) != t.dims {
		return fmt.Errorf("kdnd: point has %d coords, tree has %d dims", len(p.Coords), t.dims)
	}
	if p.Val > math.MaxUint32 {
		return fmt.Errorf("kdnd: value %d does not fit in the 32-bit page slot", p.Val)
	}
	p = roundPoint(p)
	if !t.world.Contains(p.Coords) {
		return fmt.Errorf("kdnd: point %v outside world", p.Coords)
	}
	path, bid, err := t.descend(p.Coords)
	if err != nil {
		return err
	}
	b, err := t.readBucket(bid)
	if err != nil {
		return err
	}
	if len(b.points) < t.bucketCap {
		b.points = append(b.points, p)
		if err := t.writeBucket(b); err != nil {
			return err
		}
		t.size++
		return nil
	}
	if err := t.splitBucket(path, b, p); err != nil {
		return err
	}
	t.size++
	return nil
}

func (t *Tree) descend(coords []float64) ([]pathStep, pager.PageID, error) {
	var path []pathStep
	r := t.rootRef
	var dp *dirPage
	var err error
	for {
		switch r.tag() {
		case tagBucket:
			return path, pager.PageID(r.value()), nil
		case tagDir:
			dp, err = t.readDir(pager.PageID(r.value()))
			if err != nil {
				return nil, 0, err
			}
			r = mkRef(tagNode, uint32(dp.root))
		case tagNode:
			s := dp.slots[r.value()]
			step := pathStep{page: dp, slot: int(r.value())}
			if coords[s.dim] <= s.split {
				r = s.left
			} else {
				step.right = true
				r = s.right
			}
			path = append(path, step)
		}
	}
}

func (t *Tree) splitBucket(path []pathStep, b *bucket, p Point) error {
	pts := append(append([]Point(nil), b.points...), p)
	// Widest normalized spread picks the split dimension.
	bestDim, bestSpread := -1, -1.0
	var split float64
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, q := range pts {
			lo = math.Min(lo, q.Coords[d])
			hi = math.Max(hi, q.Coords[d])
		}
		spread := (hi - lo) / (t.world.Hi[d] - t.world.Lo[d])
		if spread > bestSpread {
			bestDim, bestSpread = d, spread
		}
	}
	ok := false
	for try := 0; try < t.dims && !ok; try++ {
		d := (bestDim + try) % t.dims
		if s, o := medianSplit(pts, d); o {
			bestDim, split, ok = d, s, true
		}
	}
	if !ok {
		return t.chainOverflow(b, p)
	}
	var left, right []Point
	for _, q := range pts {
		if q.Coords[bestDim] <= split {
			left = append(left, q)
		} else {
			right = append(right, q)
		}
	}
	rb, err := t.allocBucket()
	if err != nil {
		return err
	}
	b.points = left
	rb.points = right
	if err := t.writeBucket(b); err != nil {
		return err
	}
	if err := t.writeBucket(rb); err != nil {
		return err
	}
	ns := slot{
		dim:   bestDim,
		split: split,
		left:  mkRef(tagBucket, uint32(b.id)),
		right: mkRef(tagBucket, uint32(rb.id)),
	}
	return t.installNode(path, ns)
}

func medianSplit(pts []Point, dim int) (float64, bool) {
	cs := make([]float64, len(pts))
	for i, q := range pts {
		cs[i] = q.Coords[dim]
	}
	sort.Float64s(cs)
	if cs[0] == cs[len(cs)-1] {
		return 0, false
	}
	m := cs[len(cs)/2]
	if m == cs[len(cs)-1] {
		i := sort.SearchFloat64s(cs, m)
		m = cs[i-1]
	}
	return m, true
}

func (t *Tree) chainOverflow(b *bucket, p Point) error {
	for b.next != 0 {
		nb, err := t.readBucket(b.next)
		if err != nil {
			return err
		}
		if len(nb.points) < t.bucketCap {
			nb.points = append(nb.points, p)
			return t.writeBucket(nb)
		}
		b = nb
	}
	nb, err := t.allocBucket()
	if err != nil {
		return err
	}
	nb.points = []Point{p}
	if err := t.writeBucket(nb); err != nil {
		return err
	}
	b.next = nb.id
	return t.writeBucket(b)
}

func (t *Tree) installNode(path []pathStep, ns slot) error {
	if len(path) == 0 {
		dp, err := t.allocDir()
		if err != nil {
			return err
		}
		i, _ := dp.allocSlot(t.nodeCap)
		dp.slots[i] = ns
		dp.root = i
		if err := t.writeDir(dp); err != nil {
			return err
		}
		t.rootRef = mkRef(tagDir, uint32(dp.id))
		return nil
	}
	last := path[len(path)-1]
	dp := last.page
	if i, ok := dp.allocSlot(t.nodeCap); ok {
		dp.slots[i] = ns
		if last.right {
			dp.slots[last.slot].right = mkRef(tagNode, uint32(i))
		} else {
			dp.slots[last.slot].left = mkRef(tagNode, uint32(i))
		}
		return t.writeDir(dp)
	}
	if err := t.splitDirPage(dp); err != nil {
		return err
	}
	path2, err := t.findBucketPath(ns.left.value())
	if err != nil {
		return err
	}
	return t.installNode(path2, ns)
}

func (t *Tree) findBucketPath(bucketID uint32) ([]pathStep, error) {
	var out []pathStep
	found, err := t.findBucketWalk(t.rootRef, nil, bucketID, &out)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("kdnd: bucket %d unreachable", bucketID)
	}
	return out, nil
}

func (t *Tree) findBucketWalk(r ref, dp *dirPage, bucketID uint32, out *[]pathStep) (bool, error) {
	switch r.tag() {
	case tagBucket:
		return r.value() == bucketID, nil
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.findBucketWalk(mkRef(tagNode, uint32(ndp.root)), ndp, bucketID, out)
	default:
		s := dp.slots[r.value()]
		*out = append(*out, pathStep{page: dp, slot: int(r.value())})
		ok, err := t.findBucketWalk(s.left, dp, bucketID, out)
		if err != nil || ok {
			return ok, err
		}
		(*out)[len(*out)-1].right = true
		ok, err = t.findBucketWalk(s.right, dp, bucketID, out)
		if err != nil || ok {
			return ok, err
		}
		*out = (*out)[:len(*out)-1]
		return false, nil
	}
}

func (t *Tree) splitDirPage(dp *dirPage) error {
	target := dp.count / 2
	bestSlot, bestDiff := -1, 1<<30
	var walk func(i int) int
	walk = func(i int) int {
		s := dp.slots[i]
		n := 1
		if s.left.tag() == tagNode {
			n += walk(int(s.left.value()))
		}
		if s.right.tag() == tagNode {
			n += walk(int(s.right.value()))
		}
		if i != dp.root {
			d := n - target
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				bestDiff = d
				bestSlot = i
			}
		}
		return n
	}
	walk(dp.root)
	if bestSlot < 0 {
		return fmt.Errorf("kdnd: directory page %d cannot split", dp.id)
	}
	np, err := t.allocDir()
	if err != nil {
		return err
	}
	var move func(i int) int
	move = func(i int) int {
		s := dp.slots[i]
		ni, _ := np.allocSlot(t.nodeCap)
		ns := s
		if s.left.tag() == tagNode {
			ns.left = mkRef(tagNode, uint32(move(int(s.left.value()))))
		}
		if s.right.tag() == tagNode {
			ns.right = mkRef(tagNode, uint32(move(int(s.right.value()))))
		}
		np.slots[ni] = ns
		dp.freeSlot(i)
		return ni
	}
	pSlot, pRight, found := dp.findParent(bestSlot)
	if !found {
		return fmt.Errorf("kdnd: slot %d has no parent in page %d", bestSlot, dp.id)
	}
	nRoot := move(bestSlot)
	np.root = nRoot
	if pRight {
		dp.slots[pSlot].right = mkRef(tagDir, uint32(np.id))
	} else {
		dp.slots[pSlot].left = mkRef(tagDir, uint32(np.id))
	}
	if err := t.writeDir(np); err != nil {
		return err
	}
	return t.writeDir(dp)
}

func (dp *dirPage) findParent(i int) (parent int, right bool, found bool) {
	var walk func(j int) bool
	walk = func(j int) bool {
		s := dp.slots[j]
		if s.left.tag() == tagNode {
			if int(s.left.value()) == i {
				parent, right, found = j, false, true
				return true
			}
			if walk(int(s.left.value())) {
				return true
			}
		}
		if s.right.tag() == tagNode {
			if int(s.right.value()) == i {
				parent, right, found = j, true, true
				return true
			}
			if walk(int(s.right.value())) {
				return true
			}
		}
		return false
	}
	if dp.root == i {
		return 0, false, false
	}
	walk(dp.root)
	return parent, right, found
}

// Delete removes one point matching p after float32 rounding.
func (t *Tree) Delete(p Point) (bool, error) {
	if len(p.Coords) != t.dims {
		return false, fmt.Errorf("kdnd: point has %d coords, tree has %d dims", len(p.Coords), t.dims)
	}
	p = roundPoint(p)
	path, bid, err := t.descend(p.Coords)
	if err != nil {
		return false, err
	}
	prevID := pager.PageID(0)
	id := bid
	for id != 0 {
		b, err := t.readBucket(id)
		if err != nil {
			return false, err
		}
		for i, q := range b.points {
			if samePoint(q, p) {
				b.points = append(b.points[:i], b.points[i+1:]...)
				t.size--
				if len(b.points) == 0 && b.next == 0 && prevID == 0 {
					return true, t.collapseBucket(path, b)
				}
				if len(b.points) == 0 && prevID != 0 {
					pb, err := t.readBucket(prevID)
					if err != nil {
						return false, err
					}
					pb.next = b.next
					if err := t.writeBucket(pb); err != nil {
						return false, err
					}
					return true, t.store.Free(b.id)
				}
				return true, t.writeBucket(b)
			}
		}
		prevID = id
		id = b.next
	}
	return false, nil
}

func (t *Tree) collapseBucket(path []pathStep, b *bucket) error {
	if len(path) == 0 {
		return t.writeBucket(b)
	}
	if err := t.store.Free(b.id); err != nil {
		return err
	}
	last := path[len(path)-1]
	dp := last.page
	s := dp.slots[last.slot]
	sibling := s.left
	if !last.right {
		sibling = s.right
	}
	if last.slot == dp.root {
		if sibling.tag() == tagNode {
			dp.root = int(sibling.value())
			dp.freeSlot(last.slot)
			return t.writeDir(dp)
		}
		if err := t.store.Free(dp.id); err != nil {
			return err
		}
		if len(path) == 1 {
			t.rootRef = sibling
			return nil
		}
		prev := path[len(path)-2]
		if prev.right {
			prev.page.slots[prev.slot].right = sibling
		} else {
			prev.page.slots[prev.slot].left = sibling
		}
		return t.writeDir(prev.page)
	}
	pSlot, pRight, found := dp.findParent(last.slot)
	if !found {
		return fmt.Errorf("kdnd: parent of slot %d not found in page %d", last.slot, dp.id)
	}
	if pRight {
		dp.slots[pSlot].right = sibling
	} else {
		dp.slots[pSlot].left = sibling
	}
	dp.freeSlot(last.slot)
	return t.writeDir(dp)
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

// SearchConstraints reports every stored point satisfying all constraints.
func (t *Tree) SearchConstraints(cs []Constraint, fn func(Point) bool) error {
	for _, c := range cs {
		if len(c.Coef) != t.dims {
			return fmt.Errorf("kdnd: constraint has %d coefficients, tree has %d dims", len(c.Coef), t.dims)
		}
	}
	_, err := t.searchRef(t.rootRef, nil, t.world.clone(), cs, fn)
	return err
}

func (t *Tree) searchRef(r ref, dp *dirPage, cell Box, cs []Constraint, fn func(Point) bool) (bool, error) {
	switch classify(cell, cs) {
	case outside:
		return true, nil
	case inside:
		return t.reportAll(r, dp, fn)
	}
	switch r.tag() {
	case tagBucket:
		return t.scanChain(pager.PageID(r.value()), cs, true, fn)
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.searchRef(mkRef(tagNode, uint32(ndp.root)), ndp, cell, cs, fn)
	default:
		s := dp.slots[r.value()]
		savedLo, savedHi := cell.Lo[s.dim], cell.Hi[s.dim]
		cell.Hi[s.dim] = s.split
		cont, err := t.searchRef(s.left, dp, cell, cs, fn)
		cell.Hi[s.dim] = savedHi
		if err != nil || !cont {
			return cont, err
		}
		cell.Lo[s.dim] = s.split
		cont, err = t.searchRef(s.right, dp, cell, cs, fn)
		cell.Lo[s.dim] = savedLo
		return cont, err
	}
}

func (t *Tree) reportAll(r ref, dp *dirPage, fn func(Point) bool) (bool, error) {
	switch r.tag() {
	case tagBucket:
		return t.scanChain(pager.PageID(r.value()), nil, false, fn)
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.reportAll(mkRef(tagNode, uint32(ndp.root)), ndp, fn)
	default:
		s := dp.slots[r.value()]
		cont, err := t.reportAll(s.left, dp, fn)
		if err != nil || !cont {
			return cont, err
		}
		return t.reportAll(s.right, dp, fn)
	}
}

func (t *Tree) scanChain(id pager.PageID, cs []Constraint, filter bool, fn func(Point) bool) (bool, error) {
	for id != 0 {
		b, err := t.readBucket(id)
		if err != nil {
			return false, err
		}
		for _, p := range b.points {
			if filter && !satisfies(p.Coords, cs) {
				continue
			}
			if !fn(p) {
				return false, nil
			}
		}
		id = b.next
	}
	return true, nil
}

// Destroy frees every page of the tree.
func (t *Tree) Destroy() error { return t.destroyRef(t.rootRef, nil) }

func (t *Tree) destroyRef(r ref, dp *dirPage) error {
	switch r.tag() {
	case tagBucket:
		id := pager.PageID(r.value())
		for id != 0 {
			b, err := t.readBucket(id)
			if err != nil {
				return err
			}
			if err := t.store.Free(id); err != nil {
				return err
			}
			id = b.next
		}
		return nil
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return err
		}
		if err := t.destroyRef(mkRef(tagNode, uint32(ndp.root)), ndp); err != nil {
			return err
		}
		return t.store.Free(ndp.id)
	default:
		s := dp.slots[r.value()]
		if err := t.destroyRef(s.left, dp); err != nil {
			return err
		}
		return t.destroyRef(s.right, dp)
	}
}

// CheckInvariants verifies structural invariants; exported for tests.
func (t *Tree) CheckInvariants() error {
	count, err := t.checkRef(t.rootRef, nil, t.world.clone(), map[pager.PageID]bool{})
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("kdnd: size %d but %d points reachable", t.size, count)
	}
	return nil
}

func (t *Tree) checkRef(r ref, dp *dirPage, cell Box, seen map[pager.PageID]bool) (int, error) {
	switch r.tag() {
	case tagBucket:
		total := 0
		id := pager.PageID(r.value())
		for id != 0 {
			if seen[id] {
				return 0, fmt.Errorf("kdnd: bucket %d visited twice", id)
			}
			seen[id] = true
			b, err := t.readBucket(id)
			if err != nil {
				return 0, err
			}
			if len(b.points) > t.bucketCap {
				return 0, fmt.Errorf("kdnd: bucket %d overfull", id)
			}
			for _, p := range b.points {
				if !cell.Contains(p.Coords) {
					return 0, fmt.Errorf("kdnd: point %v outside its cell", p.Coords)
				}
			}
			total += len(b.points)
			id = b.next
		}
		return total, nil
	case tagDir:
		id := pager.PageID(r.value())
		if seen[id] {
			return 0, fmt.Errorf("kdnd: directory page %d visited twice", id)
		}
		seen[id] = true
		ndp, err := t.readDir(id)
		if err != nil {
			return 0, err
		}
		reach := 0
		var walk func(i int)
		walk = func(i int) {
			reach++
			s := ndp.slots[i]
			if s.left.tag() == tagNode {
				walk(int(s.left.value()))
			}
			if s.right.tag() == tagNode {
				walk(int(s.right.value()))
			}
		}
		walk(ndp.root)
		if reach != ndp.count {
			return 0, fmt.Errorf("kdnd: page %d count %d but %d reachable", id, ndp.count, reach)
		}
		return t.checkRef(mkRef(tagNode, uint32(ndp.root)), ndp, cell, seen)
	default:
		s := dp.slots[r.value()]
		savedLo, savedHi := cell.Lo[s.dim], cell.Hi[s.dim]
		cell.Hi[s.dim] = s.split
		lc, err := t.checkRef(s.left, dp, cell, seen)
		cell.Hi[s.dim] = savedHi
		if err != nil {
			return 0, err
		}
		cell.Lo[s.dim] = s.split
		rc, err := t.checkRef(s.right, dp, cell, seen)
		cell.Lo[s.dim] = savedLo
		if err != nil {
			return 0, err
		}
		return lc + rc, nil
	}
}
