package kdnd

import (
	"math/rand"
	"testing"

	"mobidx/internal/pager"
)

func world4() Box {
	return Box{
		Lo: []float64{0, 0, 0, 0},
		Hi: []float64{1000, 1000, 1000, 1000},
	}
}

func newTree4(t *testing.T, pageSize int) (*Tree, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(pageSize)
	tr, err := New(st, Config{Dims: 4, World: world4()})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func randPoint4(rng *rand.Rand, val uint64) Point {
	return Point{
		Coords: []float64{
			rng.Float64() * 1000, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000,
		},
		Val: val,
	}
}

func TestConfigValidation(t *testing.T) {
	st := pager.NewMemStore(512)
	if _, err := New(st, Config{Dims: 0, World: Box{}}); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := New(st, Config{Dims: 2, World: world4()}); err == nil {
		t.Fatal("mismatched world accepted")
	}
	if _, err := New(st, Config{Dims: 2, World: Box{Lo: []float64{0, 5}, Hi: []float64{1, 5}}}); err == nil {
		t.Fatal("empty-extent world accepted")
	}
}

func TestCapacity4D(t *testing.T) {
	tr, _ := newTree4(t, 4096)
	// 4 × 4-byte coords + 4-byte val = 20 bytes: B = 204, the same
	// record size as the R*-tree baseline.
	if tr.BucketCap() != 204 {
		t.Fatalf("bucket cap = %d, want 204", tr.BucketCap())
	}
}

func TestRandomOps4DAgainstBruteForce(t *testing.T) {
	tr, _ := newTree4(t, 512)
	rng := rand.New(rand.NewSource(111))
	var ref []Point
	nextVal := uint64(0)
	for op := 0; op < 5000; op++ {
		switch {
		case len(ref) == 0 || rng.Float64() < 0.62:
			p := randPoint4(rng, nextVal)
			nextVal++
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, roundPoint(p))
		default:
			i := rng.Intn(len(ref))
			found, err := tr.Delete(ref[i])
			if err != nil || !found {
				t.Fatalf("op %d: delete found=%v err=%v", op, found, err)
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
		if op%1000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		// Random conjunction of three 4-dimensional half-spaces.
		cs := make([]Constraint, 3)
		for i := range cs {
			cs[i] = Constraint{
				Coef: []float64{
					rng.Float64()*2 - 1, rng.Float64()*2 - 1,
					rng.Float64()*2 - 1, rng.Float64()*2 - 1,
				},
				C: rng.Float64() * 2000,
			}
		}
		want := map[uint64]bool{}
		for _, p := range ref {
			if satisfies(p.Coords, cs) {
				want[p.Val] = true
			}
		}
		got := map[uint64]bool{}
		if err := tr.SearchConstraints(cs, func(p Point) bool { got[p.Val] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("missing %d", v)
			}
		}
	}
}

func TestDimMismatch(t *testing.T) {
	tr, _ := newTree4(t, 512)
	if err := tr.Insert(Point{Coords: []float64{1, 2}, Val: 1}); err == nil {
		t.Fatal("2-coord insert into 4-dim tree accepted")
	}
	err := tr.SearchConstraints([]Constraint{{Coef: []float64{1}, C: 0}}, func(Point) bool { return true })
	if err == nil {
		t.Fatal("1-coef constraint accepted")
	}
}

func TestDegenerateDuplicates4D(t *testing.T) {
	tr, _ := newTree4(t, 512)
	n := tr.BucketCap()*2 + 3
	same := []float64{5, 5, 5, 5}
	for i := 0; i < n; i++ {
		if err := tr.Insert(Point{Coords: same, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	all := []Constraint{} // no constraints: everything matches
	_ = tr.SearchConstraints(all, func(Point) bool { count++; return true })
	if count != n {
		t.Fatalf("found %d of %d duplicates", count, n)
	}
	for i := 0; i < n; i++ {
		found, err := tr.Delete(Point{Coords: same, Val: uint64(i)})
		if err != nil || !found {
			t.Fatalf("delete dup %d: %v %v", i, found, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDestroy(t *testing.T) {
	tr, st := newTree4(t, 512)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(randPoint4(rng, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() != 0 {
		t.Fatalf("%d pages leak after Destroy", st.PagesInUse())
	}
}

func TestPruning4D(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := New(st, Config{Dims: 4, World: world4()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50000; i++ {
		if err := tr.Insert(randPoint4(rng, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	total := st.PagesInUse()
	before := st.Stats()
	// Tight box in all four dimensions.
	cs := []Constraint{
		{Coef: []float64{1, 0, 0, 0}, C: 120}, {Coef: []float64{-1, 0, 0, 0}, C: -100},
		{Coef: []float64{0, 1, 0, 0}, C: 120}, {Coef: []float64{0, -1, 0, 0}, C: -100},
		{Coef: []float64{0, 0, 1, 0}, C: 120}, {Coef: []float64{0, 0, -1, 0}, C: -100},
		{Coef: []float64{0, 0, 0, 1}, C: 120}, {Coef: []float64{0, 0, 0, -1}, C: -100},
	}
	found := 0
	if err := tr.SearchConstraints(cs, func(Point) bool { found++; return true }); err != nil {
		t.Fatal(err)
	}
	reads := st.Stats().Sub(before).Reads
	if reads > int64(total/3) {
		t.Fatalf("query read %d of %d pages", reads, total)
	}
}
