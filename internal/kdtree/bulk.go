// Bulk construction. Where Insert grows the directory one median split at
// a time — rewriting a bucket page per point and a directory page per
// split — BulkLoad performs the same recursive median partitioning wholly
// in memory and then writes each bucket and directory page exactly once.
// The resulting tree obeys the identical split discipline as incremental
// growth (normalized-spread dimension choice, median split, points with
// coordinate <= split to the left), so searches are indistinguishable; only
// the construction cost differs.
package kdtree

import (
	"fmt"
	"math"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// bchild is a link in the in-memory build tree: an internal split when n is
// non-nil, otherwise a concrete bucket reference.
type bchild struct {
	n *bnode
	r ref
}

// bnode is one split of the in-memory build tree, packed into a directory
// page slot at the end of the build.
type bnode struct {
	dim   int
	split float64
	l, r  bchild
}

// BulkLoad replaces the tree's contents with the given points, splitting
// until every bucket holds at most fill·BucketCap points (fill 0 selects
// 0.9). The slack keeps subsequent Inserts from splitting immediately;
// fill 1.0 packs buckets full. On a batching store the whole rebuild
// commits atomically. The input slice is not modified.
func (t *Tree) BulkLoad(points []Point, fill float64) error {
	if fill == 0 {
		fill = 0.9
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("kdtree: fill fraction %v outside (0, 1]", fill)
	}
	per := int(fill * float64(t.bucketCap))
	if per < 1 {
		per = 1
	}
	pts := make([]Point, len(points))
	for i, p := range points {
		if p.Val > math.MaxUint32 {
			return fmt.Errorf("kdtree: value %d does not fit in the 32-bit page slot", p.Val)
		}
		p = roundPoint(p)
		if !t.world.Contains(geom.Point{X: p.X, Y: p.Y}) {
			return fmt.Errorf("kdtree: point (%v,%v) outside world %+v", p.X, p.Y, t.world)
		}
		pts[i] = p
	}
	return pager.RunBatch(t.store, func() error { return t.bulkLoad(pts, per) })
}

func (t *Tree) bulkLoad(pts []Point, per int) error {
	if err := t.destroyRef(t.rootRef, nil); err != nil {
		return err
	}
	c, err := t.buildSub(pts, per)
	if err != nil {
		return err
	}
	if c.n != nil {
		if c.r, err = t.packDir(c.n); err != nil {
			return err
		}
	}
	t.rootRef = c.r
	t.size = len(pts)
	return nil
}

// buildSub recursively partitions pts exactly as splitBucket would have,
// producing buckets of at most per points (or overflow chains for point
// sets identical in both dimensions).
func (t *Tree) buildSub(pts []Point, per int) (bchild, error) {
	if len(pts) <= per {
		return t.packBucketChain(pts)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, q := range pts {
		minX, maxX = math.Min(minX, q.X), math.Max(maxX, q.X)
		minY, maxY = math.Min(minY, q.Y), math.Max(maxY, q.Y)
	}
	wx := t.world.MaxX - t.world.MinX
	wy := t.world.MaxY - t.world.MinY
	dim := 0
	if (maxY-minY)*wx > (maxX-minX)*wy {
		dim = 1
	}
	split, ok := medianSplit(pts, dim)
	if !ok {
		dim = 1 - dim
		split, ok = medianSplit(pts, dim)
	}
	if !ok {
		// All points identical: an overflow chain, as chainOverflow builds.
		return t.packBucketChain(pts)
	}
	var left, right []Point
	for _, q := range pts {
		if q.coord(dim) <= split {
			left = append(left, q)
		} else {
			right = append(right, q)
		}
	}
	lc, err := t.buildSub(left, per)
	if err != nil {
		return bchild{}, err
	}
	rc, err := t.buildSub(right, per)
	if err != nil {
		return bchild{}, err
	}
	return bchild{n: &bnode{dim: dim, split: split, l: lc, r: rc}}, nil
}

// packBucketChain writes pts into one bucket, or a chain of full buckets
// when pts exceeds page capacity (the all-identical degenerate case). Tail
// buckets are written first so each page is written exactly once, already
// holding its successor link.
func (t *Tree) packBucketChain(pts []Point) (bchild, error) {
	chunks := (len(pts) + t.bucketCap - 1) / t.bucketCap
	if chunks == 0 {
		chunks = 1
	}
	next := pager.PageID(0)
	for i := chunks - 1; i >= 0; i-- {
		lo := i * t.bucketCap
		hi := lo + t.bucketCap
		if hi > len(pts) {
			hi = len(pts)
		}
		b, err := t.allocBucket()
		if err != nil {
			return bchild{}, err
		}
		b.points = pts[lo:hi]
		b.next = next
		if err := t.writeBucket(b); err != nil {
			return bchild{}, err
		}
		next = b.id
	}
	return bchild{r: mkRef(tagBucket, uint32(next))}, nil
}

// packDir packs the build tree rooted at root into directory pages: a
// breadth-first prefix of up to nodeCap splits shares this page, and each
// remaining subtree recurses into its own page, mirroring the one-subtree-
// per-page discipline splitDirPage maintains incrementally.
func (t *Tree) packDir(root *bnode) (ref, error) {
	dp, err := t.allocDir()
	if err != nil {
		return 0, err
	}
	queue := []*bnode{root}
	idx := map[*bnode]int{root: 0}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		for _, c := range [2]*bnode{n.l.n, n.r.n} {
			if c != nil && len(queue) < t.nodeCap {
				idx[c] = len(queue)
				queue = append(queue, c)
			}
		}
	}
	for _, n := range queue {
		// The page is fresh, so allocSlot hands out indexes in queue order,
		// matching idx.
		i, _ := dp.allocSlot(t.nodeCap)
		s := slot{dim: n.dim, split: n.split}
		if s.left, err = t.resolveChild(n.l, idx); err != nil {
			return 0, err
		}
		if s.right, err = t.resolveChild(n.r, idx); err != nil {
			return 0, err
		}
		dp.slots[i] = s
	}
	dp.root = 0
	if err := t.writeDir(dp); err != nil {
		return 0, err
	}
	return mkRef(tagDir, uint32(dp.id)), nil
}

// resolveChild turns a build-tree link into an on-page reference: an
// in-page slot when the child was packed into the same page, a new
// directory page otherwise, or the bucket reference it already carries.
func (t *Tree) resolveChild(c bchild, idx map[*bnode]int) (ref, error) {
	if c.n == nil {
		return c.r, nil
	}
	if j, ok := idx[c.n]; ok {
		return mkRef(tagNode, uint32(j)), nil
	}
	return t.packDir(c.n)
}
