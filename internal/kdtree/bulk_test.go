package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// collectRegion returns the sorted values matching a region query.
func collectRegion(t *testing.T, tr *Tree, reg geom.ConvexRegion) []uint64 {
	t.Helper()
	var got []uint64
	if err := tr.SearchRegion(reg, func(p Point) bool { got = append(got, p.Val); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func randWedge(rng *rand.Rand) geom.ConvexRegion {
	x := rng.Float64() * 900
	y := rng.Float64() * 900
	return geom.NewRegion(
		geom.Constraint{A: -1, B: 0, C: -x},
		geom.Constraint{A: 1, B: 0, C: x + 100},
		geom.Constraint{A: 0, B: -1, C: -y},
		geom.Constraint{A: 1, B: 1, C: x + y + 150},
	)
}

// Bulk load must return exactly the incremental build's answers for region
// queries, at every fill factor, and leave a structurally valid tree.
func TestBulkLoadDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 500, 8000} {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		}
		inc, _ := newTree(t, 512)
		for _, p := range pts {
			if err := inc.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, fill := range []float64{0.7, 0.9, 1.0} {
			bulk, _ := newTree(t, 512)
			if err := bulk.BulkLoad(pts, fill); err != nil {
				t.Fatal(err)
			}
			if bulk.Len() != n {
				t.Fatalf("n=%d fill=%v: Len=%d", n, fill, bulk.Len())
			}
			if err := bulk.CheckInvariants(); err != nil {
				t.Fatalf("n=%d fill=%v: %v", n, fill, err)
			}
			for q := 0; q < 40; q++ {
				reg := randWedge(rng)
				want := collectRegion(t, inc, reg)
				got := collectRegion(t, bulk, reg)
				if len(want) != len(got) {
					t.Fatalf("n=%d fill=%v: query got %d answers, incremental %d", n, fill, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("n=%d fill=%v: answers diverge at %d", n, fill, i)
					}
				}
			}
		}
	}
}

// Duplicate-heavy input exercises the overflow-chain path of the bulk
// build; the chained tree must answer queries and verify.
func TestBulkLoadDuplicates(t *testing.T) {
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{X: 7, Y: 7, Val: uint64(i)})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{X: float64(i), Y: float64(i), Val: uint64(1000 + i)})
	}
	tr, _ := newTree(t, 256)
	if err := tr.BulkLoad(pts, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := tr.SearchRect(geom.Rect{MinX: 7, MinY: 7, MaxX: 7, MaxY: 7}, func(Point) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 300+1 { // the 300 duplicates plus (7,7) from the diagonal
		t.Fatalf("duplicate point query returned %d points", got)
	}
}

// A bulk-loaded tree must accept subsequent inserts and deletes.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := make([]Point, 4000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}
	tr, _ := newTree(t, 512)
	if err := tr.BulkLoad(pts, 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(10000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		ok, err := tr.Delete(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("bulk-loaded point %d not found for delete", i)
		}
	}
	if tr.Len() != 4000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BulkLoad replaces previous contents and reclaims their pages.
func TestBulkLoadReplaces(t *testing.T) {
	tr, st := newTree(t, 512)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.BulkLoad([]Point{{X: 1, Y: 1, Val: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || st.PagesInUse() > 2 {
		t.Fatalf("Len=%d, %d pages in use", tr.Len(), st.PagesInUse())
	}
}

// Bulk construction must cost far fewer page writes than incremental.
func TestBulkLoadIOAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := make([]Point, 20000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}
	incStore := pager.NewMemStore(4096)
	inc, err := New(incStore, Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	bulkStore := pager.NewMemStore(4096)
	bulk, err := New(bulkStore, Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(pts, 0.9); err != nil {
		t.Fatal(err)
	}
	incIOs := incStore.Stats().IOs()
	bulkIOs := bulkStore.Stats().IOs()
	if bulkIOs*5 > incIOs {
		t.Fatalf("bulk load cost %d I/Os, incremental %d — want >= 5x reduction", bulkIOs, incIOs)
	}
}
