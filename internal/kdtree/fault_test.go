package kdtree

import (
	"errors"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// TestKDTreeSurfacesStorageFaults drives the tree over a store failing
// each operation class in turn: every failure must surface as an error
// (never a panic), and a run on the same data without faults stays intact.
func TestKDTreeSurfacesStorageFaults(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{X: float64((i * 37) % 100), Y: float64((i * 61) % 100), Val: uint64(i)}
	}
	for _, cfg := range []pager.FaultConfig{
		{Seed: 1, Read: pager.OpFaults{FailEvery: 5}},
		{Seed: 2, Write: pager.OpFaults{FailEvery: 5}},
		{Seed: 3, Alloc: pager.OpFaults{FailEvery: 3}},
		{Seed: 4, Free: pager.OpFaults{FailEvery: 2}},
	} {
		faulty := pager.NewFaultStore(pager.NewMemStore(256), cfg)
		tr, err := New(faulty, Config{World: world})
		if err != nil {
			if !errors.Is(err, pager.ErrInjected) {
				t.Fatalf("cfg %+v: constructor error outside taxonomy: %v", cfg, err)
			}
			continue
		}
		var opErrs int
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
					t.Fatalf("cfg %+v: insert error outside taxonomy: %v", cfg, err)
				}
				opErrs++
			}
		}
		if err := tr.SearchRect(geom.Rect{MinX: 10, MinY: 10, MaxX: 60, MaxY: 60}, func(Point) bool { return true }); err != nil {
			if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
				t.Fatalf("cfg %+v: search error outside taxonomy: %v", cfg, err)
			}
			opErrs++
		}
		for _, p := range pts[:50] {
			if _, err := tr.Delete(p); err != nil {
				if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
					t.Fatalf("cfg %+v: delete error outside taxonomy: %v", cfg, err)
				}
				opErrs++
			}
		}
		if faulty.Counters().Total() > 0 && opErrs == 0 {
			t.Fatalf("cfg %+v: faults injected but no operation reported one", cfg)
		}
	}
}

// TestKDTreeRetryQuiescence checks full correctness once transient faults
// are absorbed by the retry layer.
func TestKDTreeRetryQuiescence(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	build := func(store pager.Store) int {
		tr, err := New(store, Config{World: world})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := tr.Insert(Point{X: float64((i * 37) % 100), Y: float64((i * 61) % 100), Val: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		n := 0
		if err := tr.SearchRect(geom.Rect{MinX: 10, MinY: 10, MaxX: 60, MaxY: 60}, func(Point) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	want := build(pager.NewMemStore(256))
	faulty := pager.NewFaultStore(pager.NewMemStore(256), pager.FaultConfig{
		Seed: 9, Read: pager.OpFaults{FailProb: 0.2}, Write: pager.OpFaults{FailProb: 0.2},
		Alloc: pager.OpFaults{FailProb: 0.2}, Transient: true,
	})
	got := build(pager.NewRetryStore(faulty, pager.RetryPolicy{MaxAttempts: 16}))
	if got != want {
		t.Fatalf("retry run found %d points, fault-free run %d", got, want)
	}
	if faulty.Counters().Total() == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
}
