// Package kdtree implements a disk-based adaptive k-d tree point access
// method in the spirit of the LSD-tree (Henrich, Six, Widmayer, VLDB 1989)
// and the hBΠ-tree used in the paper's experiments: a binary k-d directory
// packed into disk pages, with data buckets of page capacity B.
//
// The paper argues (§3.5.1, Figure 3) that a k-d-tree based method splits
// the skewed dual (v, a) point set along *both* dimensions, unlike R-tree
// style clustering, and therefore answers the MOR wedge query with fewer
// I/Os. This package provides exactly that: data-dependent splits at the
// median of the wider-spread dimension, and linear-constraint (simplex)
// search with subtree pruning à la Goldstein et al.
//
// On-page layout. Directory pages hold up to ~255 binary split nodes,
// forming one subtree per page (fanout between pages is therefore up to
// 256, giving a directory height comparable to a B-tree's). Bucket pages
// hold up to B = 340 points of 12 bytes (two 4-byte coordinates and a
// 4-byte reference), the same record size as the paper's B+-tree method.
package kdtree

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// Point is one indexed point with an opaque 32-bit reference.
type Point struct {
	X, Y float64
	Val  uint64 // must fit in 32 bits
}

// Config tunes the tree.
type Config struct {
	// World bounds every indexed point; search uses it as the root region
	// for pruning. Required.
	World geom.Rect
}

// Tree is a paged k-d tree.
type Tree struct {
	store     pager.Store
	world     geom.Rect
	rootRef   ref
	size      int
	bucketCap int
	nodeCap   int
}

// ref addresses either a node within the current directory page, a bucket
// page, or another directory page. Packed as tag<<30 | value.
type ref uint32

const (
	tagNode   = 0 // value = node slot index in the same directory page
	tagBucket = 1 // value = bucket page id
	tagDir    = 2 // value = directory page id (enter at its root slot)
)

func mkRef(tag int, v uint32) ref { return ref(uint32(tag)<<30 | v) }
func (r ref) tag() int            { return int(r >> 30) }
func (r ref) value() uint32       { return uint32(r) & 0x3fffffff }

// Directory page layout:
//
//	off 0: page type (3)
//	off 2: live node count (uint16)
//	off 4: root slot index (uint16)
//	off 6: first free slot index (uint16, 0xffff = none)
//	off 8: allocated slot high-water mark (uint16)
//	off 12: slots, 16 bytes each:
//	        dim uint8, pad, pad, pad, split float32, left ref, right ref
//
// Free slots are chained through their left field.
//
// Bucket page layout:
//
//	off 0: page type (4)
//	off 2: point count (uint16)
//	off 4: overflow-chain next bucket page id (uint32; 0 = none)
//	off 8: points, 12 bytes each: x float32, y float32, val uint32
const (
	dirHeader    = 12
	slotSize     = 16
	bucketHeader = 8
	pointSize    = 12

	typeDir    = 3
	typeBucket = 4

	noSlot = 0xffff
)

type slot struct {
	dim         int // 0 = x, 1 = y
	split       float64
	left, right ref
}

type dirPage struct {
	id    pager.PageID
	count int
	root  int
	free  int // first free slot or noSlot
	high  int // slots ever allocated
	slots []slot
}

type bucket struct {
	id     pager.PageID
	next   pager.PageID // overflow chain for degenerate duplicates
	points []Point
}

// New creates an empty tree whose points all lie within cfg.World.
func New(store pager.Store, cfg Config) (*Tree, error) {
	if cfg.World.IsEmpty() {
		return nil, fmt.Errorf("kdtree: config requires a non-empty World rect")
	}
	t := &Tree{store: store, world: cfg.World}
	t.bucketCap = (store.PageSize() - bucketHeader) / pointSize
	t.nodeCap = (store.PageSize() - dirHeader) / slotSize
	if t.bucketCap < 4 || t.nodeCap < 4 {
		return nil, fmt.Errorf("kdtree: page size %d too small", store.PageSize())
	}
	b, err := t.allocBucket()
	if err != nil {
		return nil, err
	}
	if err := t.writeBucket(b); err != nil {
		return nil, err
	}
	t.rootRef = mkRef(tagBucket, uint32(b.id))
	return t, nil
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// BucketCap returns the page capacity B for data points.
func (t *Tree) BucketCap() int { return t.bucketCap }

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

func put16(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) int    { return int(b[0]) | int(b[1])<<8 }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putf32(b []byte, f float64) { put32(b, math.Float32bits(float32(f))) }
func getf32(b []byte) float64    { return float64(math.Float32frombits(get32(b))) }

func (t *Tree) allocBucket() (*bucket, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &bucket{id: p.ID}, nil
}

func (t *Tree) writeBucket(b *bucket) error {
	pb := pager.GetPageBuf(t.store.PageSize())
	data := pb.B
	data[0] = typeBucket
	put16(data[2:], len(b.points))
	put32(data[4:], uint32(b.next))
	off := bucketHeader
	for _, pt := range b.points {
		putf32(data[off:], pt.X)
		putf32(data[off+4:], pt.Y)
		put32(data[off+8:], uint32(pt.Val))
		off += pointSize
	}
	err := t.store.Write(&pager.Page{ID: b.id, Data: data})
	pb.Release()
	return err
}

func (t *Tree) readBucket(id pager.PageID) (*bucket, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	if d[0] != typeBucket {
		return nil, fmt.Errorf("kdtree: page %d is not a bucket", id)
	}
	b := &bucket{id: id, next: pager.PageID(get32(d[4:]))}
	count := get16(d[2:])
	b.points = make([]Point, count)
	off := bucketHeader
	for i := 0; i < count; i++ {
		b.points[i] = Point{
			X:   getf32(d[off:]),
			Y:   getf32(d[off+4:]),
			Val: uint64(get32(d[off+8:])),
		}
		off += pointSize
	}
	return b, nil
}

func (t *Tree) allocDir() (*dirPage, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	dp := &dirPage{id: p.ID, free: noSlot}
	dp.slots = make([]slot, t.nodeCap)
	return dp, nil
}

func (t *Tree) writeDir(dp *dirPage) error {
	pb := pager.GetPageBuf(t.store.PageSize())
	data := pb.B
	data[0] = typeDir
	put16(data[2:], dp.count)
	put16(data[4:], dp.root)
	put16(data[6:], dp.free)
	put16(data[8:], dp.high)
	off := dirHeader
	for i := 0; i < dp.high; i++ {
		s := dp.slots[i]
		data[off] = byte(s.dim)
		putf32(data[off+4:], s.split)
		put32(data[off+8:], uint32(s.left))
		put32(data[off+12:], uint32(s.right))
		off += slotSize
	}
	err := t.store.Write(&pager.Page{ID: dp.id, Data: data})
	pb.Release()
	return err
}

func (t *Tree) readDir(id pager.PageID) (*dirPage, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	if d[0] != typeDir {
		return nil, fmt.Errorf("kdtree: page %d is not a directory page", id)
	}
	dp := &dirPage{
		id:    id,
		count: get16(d[2:]),
		root:  get16(d[4:]),
		free:  get16(d[6:]),
		high:  get16(d[8:]),
	}
	dp.slots = make([]slot, t.nodeCap)
	off := dirHeader
	for i := 0; i < dp.high; i++ {
		dp.slots[i] = slot{
			dim:   int(d[off]),
			split: getf32(d[off+4:]),
			left:  ref(get32(d[off+8:])),
			right: ref(get32(d[off+12:])),
		}
		off += slotSize
	}
	return dp, nil
}

// allocSlot grabs a free slot in dp; ok is false when the page is full.
func (dp *dirPage) allocSlot(cap int) (int, bool) {
	if dp.free != noSlot {
		i := dp.free
		dp.free = int(dp.slots[i].left)
		dp.count++
		return i, true
	}
	if dp.high < cap {
		i := dp.high
		dp.high++
		dp.count++
		return i, true
	}
	return 0, false
}

func (dp *dirPage) freeSlot(i int) {
	dp.slots[i] = slot{left: ref(uint32(dp.free))}
	dp.free = i
	dp.count--
}

// roundPoint snaps to the float32 grid used on page.
func roundPoint(p Point) Point {
	return Point{X: float64(float32(p.X)), Y: float64(float32(p.Y)), Val: p.Val}
}

func (p Point) coord(dim int) float64 {
	if dim == 0 {
		return p.X
	}
	return p.Y
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

// pathStep records how we reached a child: the directory page and slot
// whose side we took. For the tree root, page is nil.
type pathStep struct {
	page  *dirPage
	slot  int
	right bool
}

// Insert adds a point.
func (t *Tree) Insert(p Point) error {
	if p.Val > math.MaxUint32 {
		return fmt.Errorf("kdtree: value %d does not fit in the 32-bit page slot", p.Val)
	}
	p = roundPoint(p)
	if !t.world.Contains(geom.Point{X: p.X, Y: p.Y}) {
		return fmt.Errorf("kdtree: point (%v,%v) outside world %+v", p.X, p.Y, t.world)
	}
	path, bid, err := t.descend(p.X, p.Y)
	if err != nil {
		return err
	}
	b, err := t.readBucket(bid)
	if err != nil {
		return err
	}
	if len(b.points) < t.bucketCap {
		b.points = append(b.points, p)
		if err := t.writeBucket(b); err != nil {
			return err
		}
		t.size++
		return nil
	}
	// Bucket overflow: split it.
	if err := t.splitBucket(path, b, p); err != nil {
		return err
	}
	t.size++
	return nil
}

// descend walks from the root to the bucket responsible for (x, y),
// returning the directory path taken.
func (t *Tree) descend(x, y float64) ([]pathStep, pager.PageID, error) {
	var path []pathStep
	r := t.rootRef
	var dp *dirPage
	var err error
	for {
		switch r.tag() {
		case tagBucket:
			return path, pager.PageID(r.value()), nil
		case tagDir:
			dp, err = t.readDir(pager.PageID(r.value()))
			if err != nil {
				return nil, 0, err
			}
			r = mkRef(tagNode, uint32(dp.root))
		case tagNode:
			s := dp.slots[r.value()]
			c := x
			if s.dim == 1 {
				c = y
			}
			step := pathStep{page: dp, slot: int(r.value())}
			if c <= s.split {
				r = s.left
			} else {
				step.right = true
				r = s.right
			}
			path = append(path, step)
		}
	}
}

// splitBucket splits the full bucket b (receiving newcomer p) at the median
// of the wider-spread dimension, installing a new directory node.
func (t *Tree) splitBucket(path []pathStep, b *bucket, p Point) error {
	pts := append(append([]Point(nil), b.points...), p)
	// Pick the dimension with the larger spread *relative to the world
	// extent of that dimension*. Raw spread would never split a dimension
	// whose domain is narrow (velocities span ~1.5 while intercepts span
	// ~1000), defeating the both-dimensions splitting the paper's §3.5.1
	// argues for; normalizing makes the two domains comparable.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, q := range pts {
		minX, maxX = math.Min(minX, q.X), math.Max(maxX, q.X)
		minY, maxY = math.Min(minY, q.Y), math.Max(maxY, q.Y)
	}
	wx := t.world.MaxX - t.world.MinX
	wy := t.world.MaxY - t.world.MinY
	dim := 0
	if (maxY-minY)*wx > (maxX-minX)*wy {
		dim = 1
	}
	split, ok := medianSplit(pts, dim)
	if !ok {
		// Degenerate in the chosen dimension; try the other.
		dim = 1 - dim
		split, ok = medianSplit(pts, dim)
	}
	if !ok {
		// All points identical: chain an overflow bucket.
		return t.chainOverflow(b, p)
	}
	var left, right []Point
	for _, q := range pts {
		if q.coord(dim) <= split {
			left = append(left, q)
		} else {
			right = append(right, q)
		}
	}
	// Reuse b as the left bucket; allocate the right.
	rb, err := t.allocBucket()
	if err != nil {
		return err
	}
	b.points = left
	rb.points = right
	if err := t.writeBucket(b); err != nil {
		return err
	}
	if err := t.writeBucket(rb); err != nil {
		return err
	}
	ns := slot{
		dim:   dim,
		split: split,
		left:  mkRef(tagBucket, uint32(b.id)),
		right: mkRef(tagBucket, uint32(rb.id)),
	}
	return t.installNode(path, ns)
}

// medianSplit returns a split value that separates pts into two non-empty
// groups along dim; ok is false when all coordinates are equal.
func medianSplit(pts []Point, dim int) (float64, bool) {
	cs := make([]float64, len(pts))
	for i, q := range pts {
		cs[i] = q.coord(dim)
	}
	sort.Float64s(cs)
	if cs[0] == cs[len(cs)-1] {
		return 0, false
	}
	m := cs[len(cs)/2]
	if m == cs[len(cs)-1] {
		// Everything <= m would swallow all points; step down to the
		// largest value strictly below the maximum.
		i := sort.SearchFloat64s(cs, m)
		m = cs[i-1]
	}
	return m, true
}

// chainOverflow appends p to b's overflow chain.
func (t *Tree) chainOverflow(b *bucket, p Point) error {
	for b.next != 0 {
		nb, err := t.readBucket(b.next)
		if err != nil {
			return err
		}
		if len(nb.points) < t.bucketCap {
			nb.points = append(nb.points, p)
			return t.writeBucket(nb)
		}
		b = nb
	}
	nb, err := t.allocBucket()
	if err != nil {
		return err
	}
	nb.points = []Point{p}
	if err := t.writeBucket(nb); err != nil {
		return err
	}
	b.next = nb.id
	return t.writeBucket(b)
}

// installNode places the new split node ns where the split bucket used to
// hang: in the parent's directory page if there is room, in a fresh root
// page when the tree had no directory, or after splitting a full page.
func (t *Tree) installNode(path []pathStep, ns slot) error {
	if len(path) == 0 {
		// The split bucket was the tree root.
		dp, err := t.allocDir()
		if err != nil {
			return err
		}
		i, _ := dp.allocSlot(t.nodeCap)
		dp.slots[i] = ns
		dp.root = i
		if err := t.writeDir(dp); err != nil {
			return err
		}
		t.rootRef = mkRef(tagDir, uint32(dp.id))
		return nil
	}
	last := path[len(path)-1]
	dp := last.page
	if i, ok := dp.allocSlot(t.nodeCap); ok {
		dp.slots[i] = ns
		if last.right {
			dp.slots[last.slot].right = mkRef(tagNode, uint32(i))
		} else {
			dp.slots[last.slot].left = mkRef(tagNode, uint32(i))
		}
		return t.writeDir(dp)
	}
	// Directory page full: evict a subtree to a fresh page, then retry.
	if err := t.splitDirPage(dp, path); err != nil {
		return err
	}
	// The split invalidated in-page slot indexes along the path; re-locate
	// the bucket being replaced by walking the directory. (Rare event:
	// happens once per ~nodeCap bucket splits.)
	path2, err := t.findBucketPath(ns.left.value())
	if err != nil {
		return err
	}
	return t.installNode(path2, ns)
}

// findBucketPath locates the directory path leading to bucket id (used
// only on the rare page-split retry; cost is a directory walk).
func (t *Tree) findBucketPath(bucketID uint32) ([]pathStep, error) {
	var out []pathStep
	found, err := t.findBucketWalk(t.rootRef, nil, bucketID, &out)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("kdtree: bucket %d unreachable", bucketID)
	}
	return out, nil
}

func (t *Tree) findBucketWalk(r ref, dp *dirPage, bucketID uint32, out *[]pathStep) (bool, error) {
	switch r.tag() {
	case tagBucket:
		return r.value() == bucketID, nil
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.findBucketWalk(mkRef(tagNode, uint32(ndp.root)), ndp, bucketID, out)
	default:
		s := dp.slots[r.value()]
		*out = append(*out, pathStep{page: dp, slot: int(r.value())})
		ok, err := t.findBucketWalk(s.left, dp, bucketID, out)
		if err != nil || ok {
			return ok, err
		}
		(*out)[len(*out)-1].right = true
		ok, err = t.findBucketWalk(s.right, dp, bucketID, out)
		if err != nil || ok {
			return ok, err
		}
		*out = (*out)[:len(*out)-1]
		return false, nil
	}
}

// subtreeSize computes the in-page subtree size below slot i.
func (dp *dirPage) subtreeSize(i int) int {
	n := 1
	s := dp.slots[i]
	if s.left.tag() == tagNode {
		n += dp.subtreeSize(int(s.left.value()))
	}
	if s.right.tag() == tagNode {
		n += dp.subtreeSize(int(s.right.value()))
	}
	return n
}

// splitDirPage moves a roughly half-size in-page subtree of dp to a new
// directory page and replaces its slot with a tagDir reference.
func (t *Tree) splitDirPage(dp *dirPage, path []pathStep) error {
	// Find the best eviction root: a non-root slot whose subtree is close
	// to half the page.
	target := dp.count / 2
	bestSlot, bestDiff := -1, 1<<30
	var walk func(i int) int
	walk = func(i int) int {
		s := dp.slots[i]
		n := 1
		if s.left.tag() == tagNode {
			n += walk(int(s.left.value()))
		}
		if s.right.tag() == tagNode {
			n += walk(int(s.right.value()))
		}
		if i != dp.root {
			d := n - target
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				bestDiff = d
				bestSlot = i
			}
		}
		return n
	}
	walk(dp.root)
	if bestSlot < 0 {
		return fmt.Errorf("kdtree: directory page %d cannot split", dp.id)
	}
	np, err := t.allocDir()
	if err != nil {
		return err
	}
	// Move the subtree rooted at bestSlot into np.
	var move func(i int) int
	move = func(i int) int {
		s := dp.slots[i]
		ni, _ := np.allocSlot(t.nodeCap)
		ns := s
		if s.left.tag() == tagNode {
			ns.left = mkRef(tagNode, uint32(move(int(s.left.value()))))
		}
		if s.right.tag() == tagNode {
			ns.right = mkRef(tagNode, uint32(move(int(s.right.value()))))
		}
		np.slots[ni] = ns
		dp.freeSlot(i)
		return ni
	}
	// Find the parent of bestSlot to relink.
	pSlot, pRight, found := dp.findParent(bestSlot)
	if !found {
		return fmt.Errorf("kdtree: slot %d has no parent in page %d", bestSlot, dp.id)
	}
	nRoot := move(bestSlot)
	np.root = nRoot
	if pRight {
		dp.slots[pSlot].right = mkRef(tagDir, uint32(np.id))
	} else {
		dp.slots[pSlot].left = mkRef(tagDir, uint32(np.id))
	}
	if err := t.writeDir(np); err != nil {
		return err
	}
	return t.writeDir(dp)
}

// findParent locates the in-page parent of slot i.
func (dp *dirPage) findParent(i int) (parent int, right bool, found bool) {
	var walk func(j int) bool
	walk = func(j int) bool {
		s := dp.slots[j]
		if s.left.tag() == tagNode {
			if int(s.left.value()) == i {
				parent, right, found = j, false, true
				return true
			}
			if walk(int(s.left.value())) {
				return true
			}
		}
		if s.right.tag() == tagNode {
			if int(s.right.value()) == i {
				parent, right, found = j, true, true
				return true
			}
			if walk(int(s.right.value())) {
				return true
			}
		}
		return false
	}
	if dp.root == i {
		return 0, false, false
	}
	walk(dp.root)
	return parent, right, found
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

// Delete removes one point matching (x, y, val) after float32 rounding; it
// reports whether a point was removed.
func (t *Tree) Delete(p Point) (bool, error) {
	p = roundPoint(p)
	path, bid, err := t.descend(p.X, p.Y)
	if err != nil {
		return false, err
	}
	// Walk the bucket chain.
	prevID := pager.PageID(0)
	id := bid
	for id != 0 {
		b, err := t.readBucket(id)
		if err != nil {
			return false, err
		}
		for i, q := range b.points {
			if q.Val == p.Val && q.X == p.X && q.Y == p.Y {
				b.points = append(b.points[:i], b.points[i+1:]...)
				t.size--
				if len(b.points) == 0 && b.next == 0 && prevID == 0 {
					// Primary bucket empty with no chain: collapse.
					return true, t.collapseBucket(path, b)
				}
				if len(b.points) == 0 && prevID != 0 {
					// Empty chained bucket: unlink it.
					pb, err := t.readBucket(prevID)
					if err != nil {
						return false, err
					}
					pb.next = b.next
					if err := t.writeBucket(pb); err != nil {
						return false, err
					}
					return true, t.store.Free(b.id)
				}
				return true, t.writeBucket(b)
			}
		}
		prevID = id
		id = b.next
	}
	return false, nil
}

// collapseBucket removes an empty bucket, replacing its parent split node
// with the sibling subtree.
func (t *Tree) collapseBucket(path []pathStep, b *bucket) error {
	if len(path) == 0 {
		// Empty tree: keep the root bucket.
		return t.writeBucket(b)
	}
	if err := t.store.Free(b.id); err != nil {
		return err
	}
	last := path[len(path)-1]
	dp := last.page
	s := dp.slots[last.slot]
	sibling := s.left
	if !last.right {
		sibling = s.right
	}
	// Find what references the parent node.
	if last.slot == dp.root {
		// The parent node is the page root.
		if sibling.tag() == tagNode {
			dp.root = int(sibling.value())
			dp.freeSlot(last.slot)
			return t.writeDir(dp)
		}
		// Page holds exactly this node (all in-page nodes live under the
		// root, and both of its children are external): drop the page and
		// point the page's referrer at the sibling directly.
		if err := t.store.Free(dp.id); err != nil {
			return err
		}
		if len(path) == 1 {
			t.rootRef = sibling
			return nil
		}
		prev := path[len(path)-2]
		if prev.right {
			prev.page.slots[prev.slot].right = sibling
		} else {
			prev.page.slots[prev.slot].left = sibling
		}
		return t.writeDir(prev.page)
	}
	pSlot, pRight, found := dp.findParent(last.slot)
	if !found {
		return fmt.Errorf("kdtree: parent of slot %d not found in page %d", last.slot, dp.id)
	}
	if pRight {
		dp.slots[pSlot].right = sibling
	} else {
		dp.slots[pSlot].left = sibling
	}
	dp.freeSlot(last.slot)
	return t.writeDir(dp)
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

// SearchRegion reports every stored point inside the convex region,
// pruning subtrees whose k-d cell misses it.
func (t *Tree) SearchRegion(reg geom.ConvexRegion, fn func(Point) bool) error {
	_, err := t.searchRef(t.rootRef, nil, t.world, reg, fn)
	return err
}

// SearchRegionAppend appends every stored point inside the convex region
// to dst and returns the extended slice. When dst has sufficient capacity
// the only per-call allocations are the callback plumbing, so a serving
// loop reusing its buffer stays off the heap for the results themselves.
func (t *Tree) SearchRegionAppend(dst []Point, reg geom.ConvexRegion) ([]Point, error) {
	err := t.SearchRegion(reg, func(p Point) bool {
		dst = append(dst, p)
		return true
	})
	return dst, err
}

// SearchRect reports every stored point inside the rectangle.
func (t *Tree) SearchRect(r geom.Rect, fn func(Point) bool) error {
	reg := geom.NewRegion(
		geom.Constraint{A: -1, B: 0, C: -r.MinX},
		geom.Constraint{A: 1, B: 0, C: r.MaxX},
		geom.Constraint{A: 0, B: -1, C: -r.MinY},
		geom.Constraint{A: 0, B: 1, C: r.MaxY},
	)
	return t.SearchRegion(reg, fn)
}

func (t *Tree) searchRef(r ref, dp *dirPage, cell geom.Rect, reg geom.ConvexRegion, fn func(Point) bool) (bool, error) {
	switch reg.ClassifyRect(cell) {
	case geom.Outside:
		return true, nil
	case geom.Inside:
		return t.reportAll(r, dp, fn)
	}
	switch r.tag() {
	case tagBucket:
		return t.scanBucketChain(pager.PageID(r.value()), reg, true, fn)
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.searchRef(mkRef(tagNode, uint32(ndp.root)), ndp, cell, reg, fn)
	default:
		s := dp.slots[r.value()]
		lcell, rcell := cell, cell
		if s.dim == 0 {
			lcell.MaxX = s.split
			rcell.MinX = s.split
		} else {
			lcell.MaxY = s.split
			rcell.MinY = s.split
		}
		cont, err := t.searchRef(s.left, dp, lcell, reg, fn)
		if err != nil || !cont {
			return cont, err
		}
		return t.searchRef(s.right, dp, rcell, reg, fn)
	}
}

func (t *Tree) reportAll(r ref, dp *dirPage, fn func(Point) bool) (bool, error) {
	switch r.tag() {
	case tagBucket:
		return t.scanBucketChain(pager.PageID(r.value()), geom.ConvexRegion{}, false, fn)
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return false, err
		}
		return t.reportAll(mkRef(tagNode, uint32(ndp.root)), ndp, fn)
	default:
		s := dp.slots[r.value()]
		cont, err := t.reportAll(s.left, dp, fn)
		if err != nil || !cont {
			return cont, err
		}
		return t.reportAll(s.right, dp, fn)
	}
}

func (t *Tree) scanBucketChain(id pager.PageID, reg geom.ConvexRegion, filter bool, fn func(Point) bool) (bool, error) {
	for id != 0 {
		b, err := t.readBucket(id)
		if err != nil {
			return false, err
		}
		for _, p := range b.points {
			if filter && !reg.ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
				continue
			}
			if !fn(p) {
				return false, nil
			}
		}
		id = b.next
	}
	return true, nil
}

// Destroy frees every page of the tree; the tree must not be used after.
func (t *Tree) Destroy() error { return t.destroyRef(t.rootRef, nil) }

func (t *Tree) destroyRef(r ref, dp *dirPage) error {
	switch r.tag() {
	case tagBucket:
		id := pager.PageID(r.value())
		for id != 0 {
			b, err := t.readBucket(id)
			if err != nil {
				return err
			}
			if err := t.store.Free(id); err != nil {
				return err
			}
			id = b.next
		}
		return nil
	case tagDir:
		ndp, err := t.readDir(pager.PageID(r.value()))
		if err != nil {
			return err
		}
		if err := t.destroyRef(mkRef(tagNode, uint32(ndp.root)), ndp); err != nil {
			return err
		}
		return t.store.Free(ndp.id)
	default:
		s := dp.slots[r.value()]
		if err := t.destroyRef(s.left, dp); err != nil {
			return err
		}
		return t.destroyRef(s.right, dp)
	}
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

// CheckInvariants verifies the structure: every point lies in its k-d cell,
// directory pages are internally consistent, and the reachable point count
// matches Len.
func (t *Tree) CheckInvariants() error {
	count, err := t.checkRef(t.rootRef, nil, t.world, make(map[pager.PageID]bool))
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("kdtree: size %d but %d points reachable", t.size, count)
	}
	return nil
}

func (t *Tree) checkRef(r ref, dp *dirPage, cell geom.Rect, seen map[pager.PageID]bool) (int, error) {
	switch r.tag() {
	case tagBucket:
		total := 0
		id := pager.PageID(r.value())
		for id != 0 {
			if seen[id] {
				return 0, fmt.Errorf("kdtree: bucket %d visited twice", id)
			}
			seen[id] = true
			b, err := t.readBucket(id)
			if err != nil {
				return 0, err
			}
			if len(b.points) > t.bucketCap {
				return 0, fmt.Errorf("kdtree: bucket %d overfull", id)
			}
			for _, p := range b.points {
				if !cell.Contains(geom.Point{X: p.X, Y: p.Y}) {
					return 0, fmt.Errorf("kdtree: point (%v,%v) outside cell %+v", p.X, p.Y, cell)
				}
			}
			total += len(b.points)
			id = b.next
		}
		return total, nil
	case tagDir:
		id := pager.PageID(r.value())
		if seen[id] {
			return 0, fmt.Errorf("kdtree: directory page %d visited twice", id)
		}
		seen[id] = true
		ndp, err := t.readDir(id)
		if err != nil {
			return 0, err
		}
		// Count reachable in-page nodes; must equal the page's count.
		reach := 0
		var walk func(i int)
		walk = func(i int) {
			reach++
			s := ndp.slots[i]
			if s.left.tag() == tagNode {
				walk(int(s.left.value()))
			}
			if s.right.tag() == tagNode {
				walk(int(s.right.value()))
			}
		}
		walk(ndp.root)
		if reach != ndp.count {
			return 0, fmt.Errorf("kdtree: page %d count %d but %d reachable slots", id, ndp.count, reach)
		}
		return t.checkRef(mkRef(tagNode, uint32(ndp.root)), ndp, cell, seen)
	default:
		s := dp.slots[r.value()]
		lcell, rcell := cell, cell
		if s.dim == 0 {
			if s.split < cell.MinX-geom.Eps || s.split > cell.MaxX+geom.Eps {
				return 0, fmt.Errorf("kdtree: split %v outside cell x-range", s.split)
			}
			lcell.MaxX = s.split
			rcell.MinX = s.split
		} else {
			if s.split < cell.MinY-geom.Eps || s.split > cell.MaxY+geom.Eps {
				return 0, fmt.Errorf("kdtree: split %v outside cell y-range", s.split)
			}
			lcell.MaxY = s.split
			rcell.MinY = s.split
		}
		lc, err := t.checkRef(s.left, dp, lcell, seen)
		if err != nil {
			return 0, err
		}
		rc, err := t.checkRef(s.right, dp, rcell, seen)
		if err != nil {
			return 0, err
		}
		return lc + rc, nil
	}
}
