package kdtree

import (
	"math/rand"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

var world = geom.Rect{MinX: -10, MinY: -10, MaxX: 1010, MaxY: 1010}

func newTree(t *testing.T, pageSize int) (*Tree, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(pageSize)
	tr, err := New(st, Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func TestBucketCapacity(t *testing.T) {
	tr, _ := newTree(t, 4096)
	// 12-byte points: (4096-8)/12 = 340, the paper's B modulo header.
	if tr.BucketCap() != 340 {
		t.Fatalf("bucket cap = %d, want 340", tr.BucketCap())
	}
}

func TestRejectOutsideWorld(t *testing.T) {
	tr, _ := newTree(t, 512)
	if err := tr.Insert(Point{X: 5000, Y: 0, Val: 1}); err == nil {
		t.Fatal("expected error for out-of-world point")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, 512)
	for i := 0; i < 500; i++ {
		p := Point{X: float64(i % 25), Y: float64(i / 25), Val: uint64(i)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	_ = tr.SearchRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, func(p Point) bool {
		got[p.Val] = true
		return true
	})
	want := 0
	for i := 0; i < 500; i++ {
		if i%25 <= 5 && i/25 <= 5 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d, want %d", len(got), want)
	}
}

func TestRandomOpsAgainstBruteForce(t *testing.T) {
	for _, pageSize := range []int{256, 512} {
		tr, _ := newTree(t, pageSize)
		rng := rand.New(rand.NewSource(71))
		var ref []Point
		nextVal := uint64(0)
		for op := 0; op < 6000; op++ {
			switch {
			case len(ref) == 0 || rng.Float64() < 0.62:
				p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: nextVal}
				nextVal++
				if err := tr.Insert(p); err != nil {
					t.Fatal(err)
				}
				ref = append(ref, roundPoint(p))
			default:
				i := rng.Intn(len(ref))
				found, err := tr.Delete(ref[i])
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if !found {
					t.Fatalf("op %d: delete missed %+v", op, ref[i])
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if op%600 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
		}
		for trial := 0; trial < 50; trial++ {
			x, y := rng.Float64()*900, rng.Float64()*900
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*200, MaxY: y + rng.Float64()*200}
			want := map[uint64]bool{}
			for _, p := range ref {
				if q.Contains(geom.Point{X: p.X, Y: p.Y}) {
					want[p.Val] = true
				}
			}
			got := map[uint64]bool{}
			_ = tr.SearchRect(q, func(p Point) bool { got[p.Val] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("page %d: rect query got %d want %d", pageSize, len(got), len(want))
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("missing %d", v)
				}
			}
		}
	}
}

func TestSearchRegionWedge(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(73))
	var ref []Point
	for i := 0; i < 4000; i++ {
		p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, roundPoint(p))
	}
	for trial := 0; trial < 30; trial++ {
		reg := geom.NewRegion(
			geom.Constraint{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, C: rng.Float64() * 1000},
			geom.Constraint{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, C: rng.Float64() * 1000},
			geom.Constraint{A: -1, B: 0, C: 0}, // x >= 0 keeps it bounded-ish
		)
		want := map[uint64]bool{}
		for _, p := range ref {
			if reg.ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
				want[p.Val] = true
			}
		}
		got := map[uint64]bool{}
		_ = tr.SearchRegion(reg, func(p Point) bool { got[p.Val] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("wedge query got %d want %d", len(got), len(want))
		}
	}
}

// All-identical points must overflow into a chain and still be findable
// and deletable.
func TestDegenerateDuplicates(t *testing.T) {
	tr, _ := newTree(t, 256)
	cap := tr.BucketCap()
	n := cap*3 + 5
	for i := 0; i < n; i++ {
		if err := tr.Insert(Point{X: 7, Y: 7, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	_ = tr.SearchRect(geom.Rect{MinX: 7, MinY: 7, MaxX: 7, MaxY: 7}, func(Point) bool {
		count++
		return true
	})
	if count != n {
		t.Fatalf("found %d duplicates, want %d", count, n)
	}
	for i := 0; i < n; i++ {
		found, err := tr.Delete(Point{X: 7, Y: 7, Val: uint64(i)})
		if err != nil || !found {
			t.Fatalf("delete dup %d: found=%v err=%v", i, found, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainReclaimsPages(t *testing.T) {
	tr, st := newTree(t, 256)
	rng := rand.New(rand.NewSource(79))
	var ref []Point
	for i := 0; i < 3000; i++ {
		p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, roundPoint(p))
	}
	full := st.PagesInUse()
	for i, p := range ref {
		found, err := tr.Delete(p)
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Collapses must reclaim nearly everything (a couple of pages of slack
	// for the root bucket and a possibly-sparse root directory page).
	if got := st.PagesInUse(); got > 3 {
		t.Fatalf("pages after drain = %d (was %d), want <= 3", got, full)
	}
	// Still usable.
	if err := tr.Insert(Point{X: 1, Y: 1, Val: 9}); err != nil {
		t.Fatal(err)
	}
	n := 0
	_ = tr.SearchRect(world, func(Point) bool { n++; return true })
	if n != 1 {
		t.Fatal("tree unusable after drain")
	}
}

func TestEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 300; i++ {
		_ = tr.Insert(Point{X: float64(i), Y: 1, Val: uint64(i)})
	}
	n := 0
	_ = tr.SearchRect(world, func(Point) bool { n++; return n < 9 })
	if n != 9 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Query I/O must be far below a full scan thanks to k-d pruning.
func TestQueryIOBetterThanScan(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := New(st, Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 100000; i++ {
		if err := tr.Insert(Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	total := st.PagesInUse()
	before := st.Stats()
	found := 0
	_ = tr.SearchRect(geom.Rect{MinX: 400, MinY: 400, MaxX: 430, MaxY: 430}, func(Point) bool {
		found++
		return true
	})
	reads := st.Stats().Sub(before).Reads
	if found == 0 {
		t.Fatal("query found nothing")
	}
	if reads > int64(total/5) {
		t.Fatalf("query read %d of %d pages — no pruning?", reads, total)
	}
}

// The k-d tree must split on both dimensions for skewed dual-like data —
// the paper's Figure 3 argument. We verify both dims appear among splits
// by checking query performance on thin slabs in each dimension.
func TestSplitsBothDimensions(t *testing.T) {
	st := pager.NewMemStore(512)
	// World matches the actual data domain per dimension, as the dual
	// indexes configure it: narrow velocities, wide intercepts.
	tr, err := New(st, Config{World: geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(89))
	// Skewed: x in a narrow band (like velocities), y widely spread (like
	// intercepts).
	for i := 0; i < 20000; i++ {
		p := Point{X: rng.Float64() * 2, Y: rng.Float64() * 1000, Val: uint64(i)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	total := st.PagesInUse()
	// Thin slab in x: only a fraction of pages should be read.
	before := st.Stats()
	_ = tr.SearchRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.2, MaxY: 1000}, func(Point) bool { return true })
	xReads := st.Stats().Sub(before).Reads
	if xReads > int64(total)*2/5 {
		t.Fatalf("x-slab read %d of %d pages: x dimension never split", xReads, total)
	}
	before = st.Stats()
	_ = tr.SearchRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 100}, func(Point) bool { return true })
	yReads := st.Stats().Sub(before).Reads
	if yReads > int64(total)*2/5 {
		t.Fatalf("y-slab read %d of %d pages: y dimension never split", yReads, total)
	}
}
