package kdtree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

// TestConcurrentSearchWithWriter is the serving-model stress test for the
// k-d tree: SearchRect from several reader goroutines under RLock while a
// single writer inserts and deletes under Lock. The readers verify their
// answers against an oracle point set maintained under the same latch, so
// any page-level corruption or racy read surfaces as a wrong answer (and
// -race flags unsynchronized access outright).
func TestConcurrentSearchWithWriter(t *testing.T) {
	leakcheck.Check(t)
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	tr, err := New(pager.NewBuffered(pager.NewMemStore(512), 64), Config{World: world})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.RWMutex // serving latch: searches RLock, inserts/deletes Lock
	rng := rand.New(rand.NewSource(33))
	alive := make(map[uint64]Point)
	var nextVal uint64
	addPoint := func() {
		p := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, Val: nextVal}
		nextVal++
		if err := tr.Insert(p); err != nil {
			t.Fatalf("insert: %v", err)
		}
		alive[p.Val] = p
	}
	for i := 0; i < 400; i++ {
		addPoint()
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				x1 := rrng.Float64() * 90
				y1 := rrng.Float64() * 90
				q := geom.Rect{MinX: x1, MinY: y1, MaxX: x1 + 10, MaxY: y1 + 10}
				mu.RLock()
				want := map[uint64]bool{}
				for v, p := range alive {
					if p.X >= q.MinX && p.X <= q.MaxX && p.Y >= q.MinY && p.Y <= q.MaxY {
						want[v] = true
					}
				}
				got := map[uint64]bool{}
				err := tr.SearchRect(q, func(p Point) bool { got[p.Val] = true; return true })
				mu.RUnlock()
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("reader %d: got %d points, want %d", r, len(got), len(want))
					return
				}
				for v := range want {
					if !got[v] {
						t.Errorf("reader %d: missing point %d", r, v)
						return
					}
				}
			}
		}(r)
	}

	for round := 0; round < 300 && !t.Failed(); round++ {
		mu.Lock()
		if len(alive) > 200 && rng.Intn(2) == 0 {
			// Delete a random live point.
			for _, p := range alive {
				ok, err := tr.Delete(p)
				if err != nil {
					t.Fatalf("delete: %v", err)
				}
				if !ok {
					t.Fatalf("delete of live point %d reported absent", p.Val)
				}
				delete(alive, p.Val)
				break
			}
		} else {
			addPoint()
		}
		mu.Unlock()
	}
	stop.Store(true)
	wg.Wait()

	if tr.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}
}
