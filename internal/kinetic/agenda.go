// Agenda is the event-queue half of the kinetic framework (Basch,
// Guibas, Hershberger: a kinetic data structure maintains an attribute of
// moving objects by scheduling "certificate" events at the future times
// where the attribute can change, instead of re-evaluating it everywhere).
// The subscription engine uses it to schedule the instants at which a
// moving object can cross a standing query's window boundary: between two
// certificate times nothing needs to be recomputed.
//
// The agenda is a deterministic binary min-heap ordered by
// (Time, OID, Ver): equal-time events pop in object order, so every run
// over the same trace fires events in the same order. Certificates are
// invalidated lazily — the owner stamps each event with a version and
// simply skips stale ones on pop; Compact drops accumulated stale events
// when the owner decides they dominate the heap.

package kinetic

import "mobidx/internal/dual"

// Event is one scheduled certificate: at Time, the attribute watched for
// object OID may change. Ver is the owner's version stamp; an event whose
// Ver no longer matches the owner's current stamp for that object is
// stale and must be ignored on pop.
type Event struct {
	Time float64
	OID  dual.OID
	Ver  uint64
}

// eventLess orders events by (Time, OID, Ver) without float equality.
func eventLess(a, b Event) bool {
	if a.Time < b.Time {
		return true
	}
	if b.Time < a.Time {
		return false
	}
	if a.OID != b.OID {
		return a.OID < b.OID
	}
	return a.Ver < b.Ver
}

// Agenda is a min-heap of certificate events. The zero value is not
// usable; call NewAgenda. Not safe for concurrent use — the owner
// serializes access (the subscription engine holds its own mutex).
type Agenda struct {
	h []Event
}

// NewAgenda returns an empty agenda.
func NewAgenda() *Agenda { return &Agenda{} }

// Len returns the number of scheduled events, stale ones included.
func (a *Agenda) Len() int { return len(a.h) }

// Push schedules an event.
func (a *Agenda) Push(ev Event) {
	a.h = append(a.h, ev)
	i := len(a.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(a.h[i], a.h[p]) {
			break
		}
		a.h[i], a.h[p] = a.h[p], a.h[i]
		i = p
	}
}

// Min returns the earliest scheduled event without removing it.
func (a *Agenda) Min() (Event, bool) {
	if len(a.h) == 0 {
		return Event{}, false
	}
	return a.h[0], true
}

// PopDue removes and returns the earliest event whose Time is at most
// now. It returns ok=false when the agenda is empty or the earliest
// event lies in the future.
func (a *Agenda) PopDue(now float64) (Event, bool) {
	if len(a.h) == 0 || a.h[0].Time > now {
		return Event{}, false
	}
	ev := a.h[0]
	last := len(a.h) - 1
	a.h[0] = a.h[last]
	a.h = a.h[:last]
	a.siftDown(0)
	return ev, true
}

func (a *Agenda) siftDown(i int) {
	n := len(a.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(a.h[l], a.h[small]) {
			small = l
		}
		if r < n && eventLess(a.h[r], a.h[small]) {
			small = r
		}
		if small == i {
			return
		}
		a.h[i], a.h[small] = a.h[small], a.h[i]
		i = small
	}
}

// Compact drops every event for which live reports false, re-heapifying
// in place. Owners call it when lazy invalidation has let stale events
// outnumber live ones; the subscription engine keeps exactly one live
// certificate per object, so live heap size is bounded by the object
// count.
func (a *Agenda) Compact(live func(Event) bool) {
	kept := a.h[:0]
	for _, ev := range a.h {
		if live(ev) {
			kept = append(kept, ev)
		}
	}
	a.h = kept
	for i := len(a.h)/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
}
