package kinetic

import (
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/dual"
)

func TestAgendaOrdering(t *testing.T) {
	a := NewAgenda()
	evs := []Event{
		{Time: 3, OID: 1, Ver: 1},
		{Time: 1, OID: 9, Ver: 2},
		{Time: 1, OID: 2, Ver: 7},
		{Time: 1, OID: 2, Ver: 3},
		{Time: 2, OID: 5, Ver: 1},
	}
	for _, ev := range evs {
		a.Push(ev)
	}
	want := []Event{
		{Time: 1, OID: 2, Ver: 3},
		{Time: 1, OID: 2, Ver: 7},
		{Time: 1, OID: 9, Ver: 2},
		{Time: 2, OID: 5, Ver: 1},
		{Time: 3, OID: 1, Ver: 1},
	}
	for i, w := range want {
		ev, ok := a.PopDue(10)
		if !ok || ev != w {
			t.Fatalf("pop %d: got %v ok=%v, want %v", i, ev, ok, w)
		}
	}
	if _, ok := a.PopDue(10); ok {
		t.Fatalf("pop from empty agenda succeeded")
	}
}

func TestAgendaPopDueRespectsNow(t *testing.T) {
	a := NewAgenda()
	a.Push(Event{Time: 5, OID: 1})
	a.Push(Event{Time: 2, OID: 2})
	if ev, ok := a.PopDue(3); !ok || ev.OID != 2 {
		t.Fatalf("got %v ok=%v, want OID 2", ev, ok)
	}
	if ev, ok := a.PopDue(3); ok {
		t.Fatalf("popped future event %v", ev)
	}
	if ev, ok := a.Min(); !ok || ev.OID != 1 {
		t.Fatalf("min: got %v ok=%v", ev, ok)
	}
	if ev, ok := a.PopDue(5); !ok || ev.OID != 1 {
		t.Fatalf("got %v ok=%v, want OID 1", ev, ok)
	}
}

func TestAgendaRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewAgenda()
	var ref []Event
	for i := 0; i < 500; i++ {
		ev := Event{
			Time: float64(rng.Intn(50)),
			OID:  dual.OID(rng.Intn(20)),
			Ver:  uint64(rng.Intn(5)),
		}
		a.Push(ev)
		ref = append(ref, ev)
	}
	sort.Slice(ref, func(i, j int) bool { return eventLess(ref[i], ref[j]) })
	for i, w := range ref {
		ev, ok := a.PopDue(1e9)
		if !ok || ev != w {
			t.Fatalf("pop %d: got %v ok=%v, want %v", i, ev, ok, w)
		}
	}
	if a.Len() != 0 {
		t.Fatalf("agenda not drained: %d left", a.Len())
	}
}

func TestAgendaCompact(t *testing.T) {
	a := NewAgenda()
	for i := 0; i < 100; i++ {
		a.Push(Event{Time: float64(i), OID: dual.OID(i), Ver: uint64(i % 2)})
	}
	a.Compact(func(ev Event) bool { return ev.Ver == 1 })
	if a.Len() != 50 {
		t.Fatalf("compact kept %d, want 50", a.Len())
	}
	prev := -1.0
	for {
		ev, ok := a.PopDue(1e9)
		if !ok {
			break
		}
		if ev.Ver != 1 {
			t.Fatalf("stale event survived compact: %v", ev)
		}
		if ev.Time < prev {
			t.Fatalf("heap order broken after compact: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
}
