package kinetic

import (
	"errors"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// TestKineticSurfacesStorageFaults: the §3.6 structure's build phase (bulk
// page writes) and versioned query descent must both propagate storage
// failures as errors.
func TestKineticSurfacesStorageFaults(t *testing.T) {
	objs := make([]Object, 200)
	for i := range objs {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		objs[i] = Object{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), V: v}
	}
	for _, cfg := range []pager.FaultConfig{
		{Seed: 1, Read: pager.OpFaults{FailEvery: 11}},
		{Seed: 2, Write: pager.OpFaults{FailEvery: 11}},
		{Seed: 3, Alloc: pager.OpFaults{FailEvery: 5}},
	} {
		faulty := pager.NewFaultStore(pager.NewMemStore(512), cfg)
		s, err := Build(faulty, objs, 0, 60)
		if err != nil {
			if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
				t.Fatalf("cfg %+v: build error outside taxonomy: %v", cfg, err)
			}
			continue
		}
		var opErrs int
		for _, q := range [][3]float64{{100, 300, 10}, {0, 1000, 0}, {400, 600, 55}} {
			if err := s.Query(q[0], q[1], q[2], func(dual.OID) {}); err != nil {
				if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
					t.Fatalf("cfg %+v: query error outside taxonomy: %v", cfg, err)
				}
				opErrs++
			}
		}
		if err := s.Destroy(); err != nil {
			if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
				t.Fatalf("cfg %+v: destroy error outside taxonomy: %v", cfg, err)
			}
			opErrs++
		}
		if faulty.Counters().Total() > 0 && opErrs == 0 && faulty.Counters().ReadFaults > 0 {
			t.Fatalf("cfg %+v: read faults injected after build but no error reported", cfg)
		}
	}
}

// TestKineticBuildRetryQuiescence: a build through the retry layer over a
// transiently failing store must produce exactly the same answers as a
// clean build.
func TestKineticBuildRetryQuiescence(t *testing.T) {
	objs := make([]Object, 150)
	for i := range objs {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		objs[i] = Object{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), V: v}
	}
	run := func(store pager.Store) []int {
		s, err := Build(store, objs, 0, 60)
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for _, q := range [][3]float64{{100, 300, 10}, {0, 1000, 0}, {400, 600, 55}} {
			n := 0
			if err := s.Query(q[0], q[1], q[2], func(dual.OID) { n++ }); err != nil {
				t.Fatal(err)
			}
			counts = append(counts, n)
		}
		return counts
	}
	want := run(pager.NewMemStore(512))
	faulty := pager.NewFaultStore(pager.NewMemStore(512), pager.FaultConfig{
		Seed: 77, Read: pager.OpFaults{FailProb: 0.15}, Write: pager.OpFaults{FailProb: 0.15},
		Alloc: pager.OpFaults{FailProb: 0.15}, Transient: true,
	})
	got := run(pager.NewRetryStore(faulty, pager.RetryPolicy{MaxAttempts: 16}))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: %d results under retry, %d clean", i, got[i], want[i])
		}
	}
	if faulty.Counters().Total() == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
}
