// Package kinetic implements §3.6 of the paper: logarithmic-time MOR1
// queries ("which objects are in [yl, yr] at instant tq?") for a bounded
// time window T into the future.
//
// The construction follows Lemmas 2-4 and Theorem 2. At build time the
// objects are sorted by current position; all pairwise overtakes
// ("crossings") within the window are enumerated by sorting the objects by
// their positions at the window's end and reporting inversions (Lemma 3).
// Between consecutive crossings the relative order is fixed, so the
// evolving sorted list is stored in a partially persistent B-tree embedded
// over the static list positions (Lemma 4): each node keeps a base copy
// plus a change log, materializing a fresh copy every Θ(B) changes and
// posting it as a change in its parent's log. A query locates the root
// copy valid at tq through a B+-tree over root versions and then descends
// reading O(1) pages per level, for O(log_B(n+m)) I/Os total, in O(n+m)
// space, where m = M/B counts the crossings (Theorem 2).
//
// Queries answer from the motion information captured at build time; the
// staggered wrapper (Staggered) rebuilds every T so any instant within T of
// "now" is always covered, as the paper prescribes.
package kinetic

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(u uint64) float64 { return math.Float64frombits(u) }
func negInf() float64                      { return math.Inf(-1) }

// Object is one mobile object as of the structure's build time: position
// Y0 at time TStart, moving with velocity V.
type Object struct {
	OID dual.OID
	Y0  float64
	V   float64
}

// Structure answers MOR1 queries for instants in [TStart, TStart+Horizon]
// against the motions captured at build time.
type Structure struct {
	bd       *builder
	versions *bptree.Tree
	height   int
	tStart   float64
	tEnd     float64
	n        int
	m        int // number of crossings in the window
	pages    []pager.PageID
}

// Crossing is one overtake event between two objects.
type Crossing struct {
	A, B dual.OID
	Time float64
}

// Crossings enumerates all overtakes among objs within (tStart,
// tStart+horizon), per Lemma 3, in O(N log N + M) time plus the final sort.
// Objects are taken at their positions at tStart.
func Crossings(objs []Object, tStart, horizon float64) []Crossing {
	n := len(objs)
	if n < 2 {
		return nil
	}
	startOrder := make([]int, n)
	for i := range startOrder {
		startOrder[i] = i
	}
	sort.Slice(startOrder, func(a, b int) bool {
		i, j := startOrder[a], startOrder[b]
		if objs[i].Y0 != objs[j].Y0 {
			return objs[i].Y0 < objs[j].Y0
		}
		if objs[i].V != objs[j].V {
			return objs[i].V < objs[j].V
		}
		return objs[i].OID < objs[j].OID
	})
	// rank in start order.
	rank := make([]int, n)
	for r, i := range startOrder {
		rank[i] = r
	}
	endKey := func(i int) float64 { return objs[i].Y0 + objs[i].V*horizon }
	endOrder := make([]int, n)
	copy(endOrder, startOrder)
	sort.SliceStable(endOrder, func(a, b int) bool {
		i, j := endOrder[a], endOrder[b]
		if endKey(i) != endKey(j) {
			return endKey(i) < endKey(j)
		}
		return rank[i] < rank[j] // touch-at-end is not a crossing
	})
	// Doubly linked list over start ranks.
	next := make([]int, n+1) // next[n] is the head sentinel
	prev := make([]int, n+1)
	next[n] = 0
	prev[n] = n - 1
	for r := 0; r < n; r++ {
		next[r] = r + 1
		if r+1 == n {
			next[r] = n
		}
		prev[r] = r - 1
		if r == 0 {
			prev[r] = n
		}
	}
	var out []Crossing
	for _, i := range endOrder {
		r := rank[i]
		// Every rank still ahead of r in the list started before i but
		// ends after it: a crossing.
		for s := next[n]; s != r; s = next[s] {
			j := startOrder[s]
			// y_j(t) = y_i(t) at tc; v_j > v_i here.
			tc := tStart + (objs[i].Y0-objs[j].Y0)/(objs[j].V-objs[i].V)
			out = append(out, Crossing{A: objs[j].OID, B: objs[i].OID, Time: tc})
		}
		// Unlink r.
		next[prev[r]] = next[r]
		prev[next[r]] = prev[r]
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// Build constructs the structure for instants in [tStart, tStart+horizon].
func Build(store pager.Store, objs []Object, tStart, horizon float64) (*Structure, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("kinetic: horizon must be positive, got %v", horizon)
	}
	bd := newBuilder(store)
	n := len(objs)

	sorted := make([]Object, n)
	copy(sorted, objs)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Y0 != sorted[b].Y0 {
			return sorted[a].Y0 < sorted[b].Y0
		}
		if sorted[a].V != sorted[b].V {
			return sorted[a].V < sorted[b].V
		}
		return sorted[a].OID < sorted[b].OID
	})
	init := make([]occupant, n)
	occOf := make(map[dual.OID]occupant, n)
	posOf := make(map[dual.OID]int, n)
	for p, o := range sorted {
		oc := occupant{oid: uint32(o.OID), y0: o.Y0, v: o.V}
		init[p] = oc
		occOf[o.OID] = oc
		posOf[o.OID] = p
	}

	crossings := Crossings(sorted, tStart, horizon)
	occAt := make([]occupant, n)
	copy(occAt, init)
	changes := make([]change, 0, 2*len(crossings))
	// Apply crossings grouped by identical time: simultaneous crossings
	// (several objects meeting at one point) are not independent adjacent
	// swaps, so the correct post-event order is recomputed by sorting the
	// affected positions' occupants by (position at tc, velocity) — the
	// order that holds immediately after tc.
	for lo := 0; lo < len(crossings); {
		hi := lo
		tc := crossings[lo].Time
		affected := make(map[int]struct{})
		for hi < len(crossings) && crossings[hi].Time == tc {
			affected[posOf[crossings[hi].A]] = struct{}{}
			affected[posOf[crossings[hi].B]] = struct{}{}
			hi++
		}
		poss := make([]int, 0, len(affected))
		for p := range affected {
			poss = append(poss, p)
		}
		sort.Ints(poss)
		occs := make([]occupant, len(poss))
		for k, p := range poss {
			occs[k] = occAt[p]
		}
		rel := tc - tStart
		sort.Slice(occs, func(a, b int) bool {
			ya := occs[a].y0 + occs[a].v*rel
			yb := occs[b].y0 + occs[b].v*rel
			// Objects crossing at tc recompute to nearly-equal, not equal,
			// positions; a strict comparison would sometimes keep the
			// pre-crossing order and silently drop the swap. Treat values
			// within rounding distance as the same meeting point and order
			// by velocity — the order that holds just after tc.
			eps := 1e-7 * (1 + math.Abs(ya))
			if math.Abs(ya-yb) > eps {
				return ya < yb
			}
			if occs[a].v != occs[b].v {
				return occs[a].v < occs[b].v
			}
			return occs[a].oid < occs[b].oid
		})
		for k, p := range poss {
			if occAt[p] != occs[k] {
				changes = append(changes, change{time: tc, pos: p, occ: occs[k]})
				occAt[p] = occs[k]
				posOf[dual.OID(occs[k].oid)] = p
			}
		}
		lo = hi
	}

	tracker := &allocTracker{Store: store}
	bd.store = tracker
	// The whole build is one atomic batch on a batching store: a crash
	// mid-build leaves no partially-built structure behind.
	var (
		versions *bptree.Tree
		height   int
	)
	err := pager.RunBatch(store, func() error {
		var err error
		versions, height, err = bd.buildTree(init, changes)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Structure{
		bd:       bd,
		versions: versions,
		height:   height,
		tStart:   tStart,
		tEnd:     tStart + horizon,
		n:        n,
		m:        len(crossings),
		pages:    tracker.ids,
	}, nil
}

// allocTracker records every page the build allocates so Destroy can free
// the whole structure.
type allocTracker struct {
	pager.Store
	ids []pager.PageID
}

func (a *allocTracker) Allocate() (*pager.Page, error) {
	p, err := a.Store.Allocate()
	if err == nil {
		a.ids = append(a.ids, p.ID)
	}
	return p, err
}

// Meta captures the position and shape of a Structure inside its store, so
// it can be reattached with Reopen after the store is reopened (e.g. after
// crash recovery of a write-ahead-logged store).
type Meta struct {
	Versions     bptree.Meta // the root-version index tree
	Height       int
	TStart, TEnd float64
	N, M         int
	Pages        []pager.PageID // every page of the structure, for Destroy
}

// Meta returns the structure's persistence metadata. Valid until the
// structure is destroyed.
func (s *Structure) Meta() Meta {
	return Meta{
		Versions: s.versions.Meta(),
		Height:   s.height,
		TStart:   s.tStart,
		TEnd:     s.tEnd,
		N:        s.n,
		M:        s.m,
		Pages:    append([]pager.PageID(nil), s.pages...),
	}
}

// Reopen reattaches a Structure previously built in store (same page size)
// from its Meta. The pages are trusted as far as a Build's would be; a
// corrupt store surfaces as typed read/decode errors on access.
func Reopen(store pager.Store, m Meta) (*Structure, error) {
	if m.Height < 0 || m.N < 0 || m.M < 0 || m.TEnd < m.TStart {
		return nil, fmt.Errorf("kinetic: implausible meta %+v", m)
	}
	vt, err := bptree.Attach(store, bptree.Config{Codec: bptree.Wide}, m.Versions)
	if err != nil {
		return nil, fmt.Errorf("kinetic: reopen versions: %w", err)
	}
	return &Structure{
		bd:       newBuilder(store),
		versions: vt,
		height:   m.Height,
		tStart:   m.TStart,
		tEnd:     m.TEnd,
		n:        m.N,
		m:        m.M,
		pages:    append([]pager.PageID(nil), m.Pages...),
	}, nil
}

// N returns the number of objects captured at build time.
func (s *Structure) N() int { return s.n }

// M returns the number of crossings within the structure's window.
func (s *Structure) M() int { return s.m }

// Window returns the time interval the structure covers.
func (s *Structure) Window() (float64, float64) { return s.tStart, s.tEnd }

// Query reports every object whose build-time motion places it inside
// [yl, yh] at instant tq; tq must lie within the structure's window.
func (s *Structure) Query(yl, yh, tq float64, emit func(dual.OID)) error {
	if tq < s.tStart-1e-9 || tq > s.tEnd+1e-9 {
		return fmt.Errorf("kinetic: query time %v outside window [%v, %v]", tq, s.tStart, s.tEnd)
	}
	if s.n == 0 {
		return nil
	}
	e, ok, err := s.versions.Floor(tq)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("kinetic: no root version at or before %v", tq)
	}
	return s.descend(pager.PageID(e.Val), s.height, yl, yh, tq, emit)
}

func (s *Structure) valAt(o occupant, tq float64) float64 {
	return o.y0 + o.v*(tq-s.tStart)
}

func (s *Structure) descend(id pager.PageID, height int, yl, yh, tq float64, emit func(dual.OID)) error {
	if height == 1 {
		_, occs, err := s.bd.leafState(id, tq)
		if err != nil {
			return err
		}
		for _, o := range occs {
			if y := s.valAt(o, tq); y >= yl && y <= yh {
				emit(dual.OID(o.oid))
			}
		}
		return nil
	}
	kids, err := s.bd.intState(id, tq)
	if err != nil {
		return err
	}
	for c := range kids {
		// Child c holds values in [router_c, router_{c+1}] at tq.
		lo := s.valAt(kids[c].router, tq)
		if lo > yh {
			break
		}
		if c+1 < len(kids) {
			hi := s.valAt(kids[c+1].router, tq)
			if hi < yl {
				continue
			}
		}
		if err := s.descend(kids[c].ptr, height-1, yl, yh, tq, emit); err != nil {
			return err
		}
	}
	return nil
}

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	OID  dual.OID
	Y    float64 // position at the query instant
	Dist float64
}

// QueryKNearest reports the k objects nearest to position y at instant tq
// (a near-neighbor query, listed as future work in §7 of the paper; on
// this structure it reduces to a widening sequence of MOR1 range queries,
// each O(log_B(n+m) + output/B) I/Os). Results are ordered by distance.
func (s *Structure) QueryKNearest(y float64, tq float64, k int) ([]Neighbor, error) {
	if k <= 0 || s.n == 0 {
		return nil, nil
	}
	if k > s.n {
		k = s.n
	}
	// Doubling radius: each round costs a logarithmic descent plus the
	// candidates found, so the total is dominated by the final round.
	byDist := func(cand []Neighbor) {
		sort.Slice(cand, func(a, b int) bool {
			if cand[a].Dist != cand[b].Dist {
				return cand[a].Dist < cand[b].Dist
			}
			return cand[a].OID < cand[b].OID
		})
	}
	for radius := 1.0; ; radius *= 2 {
		var cand []Neighbor
		err := s.queryWithValues(y-radius, y+radius, tq, func(id dual.OID, pos float64) {
			cand = append(cand, Neighbor{OID: id, Y: pos, Dist: math.Abs(pos - y)})
		})
		if err != nil {
			return nil, err
		}
		// The k-th hit must lie strictly within the radius — otherwise a
		// nearer object could hide just outside the searched range.
		if len(cand) >= k {
			byDist(cand)
			if cand[k-1].Dist <= radius {
				return cand[:k], nil
			}
		}
		if radius > 4e18 { // the whole line has been covered
			byDist(cand)
			if len(cand) > k {
				cand = cand[:k]
			}
			return cand, nil
		}
	}
}

// queryWithValues is Query but also reports each hit's position at tq.
func (s *Structure) queryWithValues(yl, yh, tq float64, emit func(dual.OID, float64)) error {
	e, ok, err := s.versions.Floor(tq)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("kinetic: no root version at or before %v", tq)
	}
	var walk func(id pager.PageID, height int) error
	walk = func(id pager.PageID, height int) error {
		if height == 1 {
			_, occs, err := s.bd.leafState(id, tq)
			if err != nil {
				return err
			}
			for _, o := range occs {
				if yv := s.valAt(o, tq); yv >= yl && yv <= yh {
					emit(dual.OID(o.oid), yv)
				}
			}
			return nil
		}
		kids, err := s.bd.intState(id, tq)
		if err != nil {
			return err
		}
		for c := range kids {
			lo := s.valAt(kids[c].router, tq)
			if lo > yh {
				break
			}
			if c+1 < len(kids) && s.valAt(kids[c+1].router, tq) < yl {
				continue
			}
			if err := walk(kids[c].ptr, height-1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(pager.PageID(e.Val), s.height)
}

// Validate checks the structure's core invariant at the given number of
// evenly spaced instants across its window: the reconstructed list must be
// sorted by position and contain exactly N occupants. Exported for tests
// and tooling; cost is samples × O(n) page reads.
func (s *Structure) Validate(samples int) error {
	if s.n == 0 {
		return nil
	}
	for k := 0; k <= samples; k++ {
		tq := s.tStart + float64(k)/float64(samples)*(s.tEnd-s.tStart)
		e, ok, err := s.versions.Floor(tq)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("kinetic: no root version at %v", tq)
		}
		var vals []float64
		var walk func(id pager.PageID, h int) error
		walk = func(id pager.PageID, h int) error {
			if h == 1 {
				_, occs, err := s.bd.leafState(id, tq)
				if err != nil {
					return err
				}
				for _, o := range occs {
					vals = append(vals, s.valAt(o, tq))
				}
				return nil
			}
			kids, err := s.bd.intState(id, tq)
			if err != nil {
				return err
			}
			for _, c := range kids {
				if err := walk(c.ptr, h-1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(pager.PageID(e.Val), s.height); err != nil {
			return err
		}
		if len(vals) != s.n {
			return fmt.Errorf("kinetic: t=%v: %d occupants, want %d", tq, len(vals), s.n)
		}
		const slack = 1e-6 // near-simultaneous crossings may reorder within rounding distance
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-slack {
				return fmt.Errorf("kinetic: t=%v: list unsorted at %d (%v > %v)", tq, i, vals[i-1], vals[i])
			}
		}
	}
	return nil
}

// Destroy frees every page the structure occupies, atomically on a
// batching store.
func (s *Structure) Destroy() error {
	// s.bd.store is the build's allocTracker; unwrap to reach the batch
	// support of the store beneath it.
	var under pager.Store = s.bd.store
	if tr, ok := under.(*allocTracker); ok {
		under = tr.Store
	}
	err := pager.RunBatch(under, func() error {
		for _, id := range s.pages {
			if err := s.bd.store.Free(id); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.pages = nil
	return nil
}

// ---------------------------------------------------------------------------
// Staggered rebuilding (§3.6): cover any instant within T of now.
// ---------------------------------------------------------------------------

// Staggered maintains up to two Structures so that every instant in
// [now, now+T] is always covered: at time t0 it builds for [t0, t0+2T], and
// every T thereafter it builds the next window, retiring structures whose
// window has fully passed.
type Staggered struct {
	store     pager.Store
	T         float64
	structs   []*Structure
	lastBuild float64
	built     bool
}

// NewStaggered creates an empty staggered index with window length T.
func NewStaggered(store pager.Store, T float64) (*Staggered, error) {
	if T <= 0 {
		return nil, fmt.Errorf("kinetic: T must be positive, got %v", T)
	}
	return &Staggered{store: store, T: T}, nil
}

// Advance rebuilds if a period has elapsed (or on first call), taking a
// fresh snapshot of the objects as of time now, and retires structures
// whose window ended before now.
func (sg *Staggered) Advance(now float64, snapshot func() []Object) error {
	if !sg.built || now >= sg.lastBuild+sg.T {
		st, err := Build(sg.store, snapshot(), now, 2*sg.T)
		if err != nil {
			return err
		}
		sg.structs = append(sg.structs, st)
		sg.lastBuild = now
		sg.built = true
	}
	keep := sg.structs[:0]
	for i, st := range sg.structs {
		// Retire windows that ended at or before now — except the newest
		// structure, which always stays (it covers [now, now+2T]).
		if st.tEnd <= now && i < len(sg.structs)-1 {
			if err := st.Destroy(); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, st)
	}
	sg.structs = keep
	return nil
}

// Query answers an MOR1 query at instant tq using the most recently built
// structure whose window covers tq (the freshest motion information).
func (sg *Staggered) Query(yl, yh, tq float64, emit func(dual.OID)) error {
	for i := len(sg.structs) - 1; i >= 0; i-- {
		st := sg.structs[i]
		if tq >= st.tStart && tq <= st.tEnd {
			return st.Query(yl, yh, tq, emit)
		}
	}
	return fmt.Errorf("kinetic: no structure covers time %v (advance first)", tq)
}

// Structures returns the live structure count (at most two in steady state).
func (sg *Staggered) Structures() int { return len(sg.structs) }
