package kinetic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func randObjects(rng *rand.Rand, n int, ymax, vmax float64) []Object {
	objs := make([]Object, n)
	for i := range objs {
		v := (rng.Float64()*2 - 1) * vmax
		objs[i] = Object{OID: dual.OID(i), Y0: rng.Float64() * ymax, V: v}
	}
	return objs
}

// bruteCrossings counts pairs that swap order between tStart and tStart+h.
func bruteCrossings(objs []Object, h float64) int {
	m := 0
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			a, b := objs[i], objs[j]
			s0 := a.Y0 - b.Y0
			s1 := (a.Y0 + a.V*h) - (b.Y0 + b.V*h)
			if (s0 < 0 && s1 > 0) || (s0 > 0 && s1 < 0) {
				m++
			}
		}
	}
	return m
}

func TestCrossingsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		objs := randObjects(rng, n, 100, 2)
		h := 1 + rng.Float64()*50
		got := Crossings(objs, 0, h)
		want := bruteCrossings(objs, h)
		if len(got) != want {
			t.Fatalf("trial %d: %d crossings, brute force %d", trial, len(got), want)
		}
		// Times must be sorted and within the window.
		prev := math.Inf(-1)
		for _, c := range got {
			if c.Time < prev {
				t.Fatal("crossings not time-sorted")
			}
			prev = c.Time
			if c.Time <= 0 || c.Time > h {
				t.Fatalf("crossing time %v outside (0, %v]", c.Time, h)
			}
			// Verify the two objects really meet at that time.
			var a, b Object
			for _, o := range objs {
				if o.OID == c.A {
					a = o
				}
				if o.OID == c.B {
					b = o
				}
			}
			ya := a.Y0 + a.V*c.Time
			yb := b.Y0 + b.V*c.Time
			if math.Abs(ya-yb) > 1e-6 {
				t.Fatalf("objects %d,%d at %v apart at their crossing", c.A, c.B, math.Abs(ya-yb))
			}
		}
	}
}

func TestCrossingsDegenerate(t *testing.T) {
	if got := Crossings(nil, 0, 10); got != nil {
		t.Fatal("crossings of empty set")
	}
	if got := Crossings([]Object{{OID: 1, Y0: 5, V: 1}}, 0, 10); got != nil {
		t.Fatal("crossings of singleton")
	}
	// Parallel objects never cross.
	objs := []Object{{OID: 1, Y0: 0, V: 1}, {OID: 2, Y0: 5, V: 1}}
	if got := Crossings(objs, 0, 100); len(got) != 0 {
		t.Fatalf("parallel objects crossed: %v", got)
	}
	// Touch exactly at the horizon: not a crossing.
	objs = []Object{{OID: 1, Y0: 0, V: 1}, {OID: 2, Y0: 10, V: 0}}
	if got := Crossings(objs, 0, 10); len(got) != 0 {
		t.Fatalf("touch at horizon reported: %v", got)
	}
	// Cross strictly inside.
	if got := Crossings(objs, 0, 11); len(got) != 1 {
		t.Fatalf("expected one crossing, got %v", got)
	}
}

func bruteQuery(objs []Object, tStart, yl, yh, tq float64) map[dual.OID]bool {
	out := map[dual.OID]bool{}
	for _, o := range objs {
		y := o.Y0 + o.V*(tq-tStart)
		if y >= yl && y <= yh {
			out[o.OID] = true
		}
	}
	return out
}

func TestStructureDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 5, 300, 2000} {
		st := pager.NewMemStore(1024)
		objs := randObjects(rng, n, 1000, 2)
		tStart, horizon := 100.0, 200.0
		s, err := Build(st, objs, tStart, horizon)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			yl := rng.Float64()*1200 - 100
			yh := yl + rng.Float64()*200
			tq := tStart + rng.Float64()*horizon
			want := bruteQuery(objs, tStart, yl, yh, tq)
			got := map[dual.OID]bool{}
			if err := s.Query(yl, yh, tq, func(id dual.OID) { got[id] = true }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d trial %d: got %d want %d (tq=%v)", n, trial, len(got), len(want), tq)
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("n=%d: missing %d", n, id)
				}
			}
		}
		// Boundary instants.
		for _, tq := range []float64{tStart, tStart + horizon} {
			want := bruteQuery(objs, tStart, 200, 600, tq)
			got := map[dual.OID]bool{}
			if err := s.Query(200, 600, tq, func(id dual.OID) { got[id] = true }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d boundary tq=%v: got %d want %d", n, tq, len(got), len(want))
			}
		}
	}
}

// Query instants exactly at crossing times must still report by value.
func TestQueryAtCrossingTimes(t *testing.T) {
	st := pager.NewMemStore(1024)
	objs := []Object{
		{OID: 1, Y0: 0, V: 2},
		{OID: 2, Y0: 10, V: 1},
		{OID: 3, Y0: 20, V: 0},
		{OID: 4, Y0: 30, V: -1},
	}
	s, err := Build(st, objs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Crossings(objs, 0, 100) {
		want := bruteQuery(objs, 0, -100, 300, c.Time)
		got := map[dual.OID]bool{}
		if err := s.Query(-100, 300, c.Time, func(id dual.OID) { got[id] = true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("at crossing %v: got %d want %d", c.Time, len(got), len(want))
		}
	}
}

func TestQueryOutsideWindow(t *testing.T) {
	st := pager.NewMemStore(1024)
	s, err := Build(st, randObjects(rand.New(rand.NewSource(1)), 10, 100, 1), 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Query(0, 100, 30, func(dual.OID) {}); err == nil {
		t.Fatal("query before window accepted")
	}
	if err := s.Query(0, 100, 70, func(dual.OID) {}); err == nil {
		t.Fatal("query after window accepted")
	}
}

// Space must be O(n + m): scale with objects plus crossings.
func TestSpaceLinearInNPlusM(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := pager.NewMemStore(4096)
	objs := randObjects(rng, 20000, 10000, 2)
	s, err := Build(st, objs, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	bd := newBuilder(st)
	// Rough page budget: leaves n/leafSpan, copies+logs ~2 pages per
	// leafLogCap changes, internal levels a small multiple on top.
	minPages := len(objs)/bd.leafSpan + 1
	changePages := 2 * (2*s.M()/bd.leafLogCap + 1)
	budget := 4 * (minPages + changePages)
	if got := st.PagesInUse(); got > budget {
		t.Fatalf("space %d pages exceeds budget %d (n=%d, M=%d)", got, budget, s.N(), s.M())
	}
}

// Query cost must be logarithmic: O(log_B(n+m) + answer/B) page reads.
func TestQueryIOLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := pager.NewMemStore(4096)
	objs := randObjects(rng, 50000, 100000, 2)
	s, err := Build(st, objs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		yl := rng.Float64() * 99000
		tq := rng.Float64() * 100
		before := st.Stats()
		found := 0
		if err := s.Query(yl, yl+200, tq, func(dual.OID) { found++ }); err != nil {
			t.Fatal(err)
		}
		reads := st.Stats().Sub(before).Reads
		// Height is ~2-3; each level costs a copy + maybe a log page, the
		// version lookup a few more, plus ~found/leafSpan + 2 leaves.
		budget := int64(20 + 4*(found/newBuilder(st).leafSpan+2))
		if reads > budget {
			t.Fatalf("query read %d pages for %d results", reads, found)
		}
	}
}

func TestDestroyFreesPages(t *testing.T) {
	st := pager.NewMemStore(1024)
	objs := randObjects(rand.New(rand.NewSource(17)), 3000, 1000, 2)
	s, err := Build(st, objs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() == 0 {
		t.Fatal("structure used no pages?")
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() != 0 {
		t.Fatalf("%d pages leak after Destroy", st.PagesInUse())
	}
}

func TestStaggered(t *testing.T) {
	st := pager.NewMemStore(1024)
	rng := rand.New(rand.NewSource(21))
	sg, err := NewStaggered(st, 50)
	if err != nil {
		t.Fatal(err)
	}
	objs := randObjects(rng, 500, 1000, 2)
	now := 0.0
	snapshot := func() []Object {
		// Objects as of `now`: advance their positions.
		out := make([]Object, len(objs))
		for i, o := range objs {
			out[i] = Object{OID: o.OID, Y0: o.Y0 + o.V*now, V: o.V}
		}
		return out
	}
	for step := 0; step < 20; step++ {
		if err := sg.Advance(now, snapshot); err != nil {
			t.Fatal(err)
		}
		if sg.Structures() > 2 {
			t.Fatalf("step %d: %d live structures", step, sg.Structures())
		}
		// Any tq within [now, now+T] must be answerable.
		for k := 0; k < 10; k++ {
			tq := now + rng.Float64()*50
			yl := rng.Float64()*1000 - 100
			yh := yl + 100
			want := map[dual.OID]bool{}
			for _, o := range objs {
				y := o.Y0 + o.V*tq
				if y >= yl && y <= yh {
					want[o.OID] = true
				}
			}
			got := map[dual.OID]bool{}
			if err := sg.Query(yl, yh, tq, func(id dual.OID) { got[id] = true }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d want %d", step, len(got), len(want))
			}
		}
		now += 17 // deliberately not a multiple of T
	}
	// Old structures must have been destroyed: pages bounded.
	if sg.Structures() > 2 {
		t.Fatal("stale structures retained")
	}
}

// Heavy-crossing workload: all objects converge, quadratic M, still exact.
func TestConvergingObjects(t *testing.T) {
	st := pager.NewMemStore(1024)
	n := 120
	objs := make([]Object, n)
	for i := range objs {
		// Everyone heads toward y=0 at a speed proportional to distance:
		// they all meet near t=10.
		objs[i] = Object{OID: dual.OID(i), Y0: float64(i * 10), V: -float64(i)}
	}
	s, err := Build(st, objs, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != n*(n-1)/2 {
		t.Fatalf("M = %d, want full quadratic %d", s.M(), n*(n-1)/2)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		tq := rng.Float64() * 20
		yl := rng.Float64()*1400 - 200
		yh := yl + rng.Float64()*300
		want := bruteQuery(objs, 0, yl, yh, tq)
		got := map[dual.OID]bool{}
		if err := s.Query(yl, yh, tq, func(id dual.OID) { got[id] = true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
	}
}

// K-nearest-neighbor queries against brute force.
func TestQueryKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := pager.NewMemStore(1024)
	objs := randObjects(rng, 800, 1000, 2)
	s, err := Build(st, objs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		y := rng.Float64() * 1000
		tq := rng.Float64() * 100
		k := 1 + rng.Intn(12)
		got, err := s.QueryKNearest(y, tq, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Brute force k-th distance.
		dists := make([]float64, len(objs))
		for i, o := range objs {
			dists[i] = math.Abs(o.Y0 + o.V*tq - y)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %v, want %v", trial, i, nb.Dist, dists[i])
			}
		}
		// Results sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbors not distance-sorted")
			}
		}
	}
}

func TestQueryKNearestEdges(t *testing.T) {
	st := pager.NewMemStore(1024)
	s, err := Build(st, []Object{{OID: 1, Y0: 10, V: 1}, {OID: 2, Y0: 20, V: -1}}, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.QueryKNearest(0, 10, 0); got != nil {
		t.Fatal("k=0 should return nothing")
	}
	got, err := s.QueryKNearest(0, 10, 99) // k > n clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("k>n: got %d", len(got))
	}
	empty, err := Build(pager.NewMemStore(1024), nil, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := empty.QueryKNearest(5, 10, 3); got != nil {
		t.Fatal("empty structure should return nothing")
	}
}

// Validate must pass on random builds and catch the invariant it guards.
func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		st := pager.NewMemStore(1024)
		s, err := Build(st, randObjects(rng, 500+trial*400, 1000, 2), 0, 150)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(50); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
