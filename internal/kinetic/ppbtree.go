package kinetic

import (
	"fmt"
	"sort"

	"mobidx/internal/bptree"
	"mobidx/internal/pager"
)

// This file implements the partially persistent embedded B-tree of Lemma 4:
// the evolving sorted list L(t) of N mobile objects is stored as a B-tree
// over the static positions 1..N, and each node's evolution is recorded as
// a base copy plus a change log, with a fresh copy materialized every Θ(B)
// changes and posted as a change into the parent's own log. Searching L(t)
// costs O(log_B(n+m)) I/Os: O(log_B m) to find the root copy valid at t
// (a B+-tree over root versions) and O(1) per level after that (one copy
// page plus at most one log page, by the copy cadence).
//
// The structure is built offline from the full, time-sorted change stream
// (the crossing events of Lemma 3), which lets each node's version chain be
// laid out bottom-up: leaves first, then each internal level consuming the
// copy/router events its children emitted.

// occupant is the record stored for one list position: the object and its
// motion, from which the position's value at any query time t in the
// structure's window is y0 + v·(t − tStart).
type occupant struct {
	oid uint32
	y0  float64
	v   float64
}

// change is one mutation of the list: position pos holds occ from time on.
type change struct {
	time float64
	pos  int
	occ  occupant
}

// Page layouts (little endian):
//
// Leaf copy (type 5):
//
//	off 0: type, off 2: count u16, off 4: lo u32 (first position),
//	off 8: logPtr u32; occupants at off 12, 20 bytes each
//	(oid u32, y0 f64, v f64).
//
// Leaf log (type 6):
//
//	off 0: type, off 2: count u16, off 4: next u32;
//	records at off 8, 32 bytes each (time f64, pos u32, occupant 20).
//
// Internal copy (type 7):
//
//	off 0: type, off 2: count u16, off 4: logPtr u32;
//	children at off 8, 24 bytes each (router occupant 20, ptr u32).
//
// Internal log (type 8):
//
//	off 0: type, off 2: count u16, off 4: next u32;
//	records at off 8, 36 bytes each
//	(time f64, childIdx u16, kind u8, pad, router 20, ptr u32).
const (
	typeLeafCopy = 5
	typeLeafLog  = 6
	typeIntCopy  = 7
	typeIntLog   = 8

	occSize     = 20
	leafRecSize = 32
	childSize   = 24
	intRecSize  = 36

	kindRouter = 1 // router change only
	kindCopy   = 2 // child copy pointer change (router refreshed too)
)

func put16(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) int    { return int(b[0]) | int(b[1])<<8 }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}
func get64(b []byte) uint64 { return uint64(get32(b)) | uint64(get32(b[4:]))<<32 }

func putf64(b []byte, f float64) { put64(b, mathFloat64bits(f)) }
func getf64(b []byte) float64    { return mathFloat64frombits(get64(b)) }

func putOcc(b []byte, o occupant) {
	put32(b, o.oid)
	putf64(b[4:], o.y0)
	putf64(b[12:], o.v)
}

func getOcc(b []byte) occupant {
	return occupant{oid: get32(b), y0: getf64(b[4:]), v: getf64(b[12:])}
}

// builder writes the persistent structure for one node level at a time.
type builder struct {
	store    pager.Store
	pageSize int

	leafSpan   int // positions per leaf
	leafLogCap int // records per leaf log page == copy cadence
	fanout     int // children per internal node
	intLogCap  int // records per internal log page == copy cadence
}

func newBuilder(store pager.Store) *builder {
	ps := store.PageSize()
	return &builder{
		store:      store,
		pageSize:   ps,
		leafSpan:   (ps - 12) / occSize,
		leafLogCap: (ps - 8) / leafRecSize,
		fanout:     (ps - 8) / childSize,
		intLogCap:  (ps - 8) / intRecSize,
	}
}

// childEvent is what a node emits to its parent while being built.
type childEvent struct {
	time   float64
	kind   int // kindRouter or kindCopy
	router occupant
	ptr    pager.PageID // for kindCopy
}

// writeLeafLog writes one log page of leaf records and returns its id.
func (bd *builder) writeLeafLog(recs []change) (pager.PageID, error) {
	p, err := bd.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = typeLeafLog
	put16(d[2:], len(recs))
	off := 8
	for _, r := range recs {
		putf64(d[off:], r.time)
		put32(d[off+8:], uint32(r.pos))
		putOcc(d[off+12:], r.occ)
		off += leafRecSize
	}
	if err := bd.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

// writeLeafCopy writes a leaf snapshot pointing at logPtr.
func (bd *builder) writeLeafCopy(lo int, occs []occupant, logPtr pager.PageID) (pager.PageID, error) {
	p, err := bd.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = typeLeafCopy
	put16(d[2:], len(occs))
	put32(d[4:], uint32(lo))
	put32(d[8:], uint32(logPtr))
	off := 12
	for _, o := range occs {
		putOcc(d[off:], o)
		off += occSize
	}
	if err := bd.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

// buildLeaf lays out one leaf's version chain: alternating log pages and
// refreshed copies every leafLogCap changes. It returns the events the
// parent must record. changes must be time-sorted and scoped to positions
// [lo, lo+len(init)).
func (bd *builder) buildLeaf(lo int, init []occupant, changes []change) ([]childEvent, error) {
	var events []childEvent
	state := append([]occupant(nil), init...)

	emitRouter := func(t float64) {
		events = append(events, childEvent{time: t, kind: kindRouter, router: state[0]})
	}

	for start := 0; ; start += bd.leafLogCap {
		end := start + bd.leafLogCap
		if end > len(changes) {
			end = len(changes)
		}
		group := changes[start:end]
		var logPtr pager.PageID
		if len(group) > 0 {
			var err error
			if logPtr, err = bd.writeLeafLog(group); err != nil {
				return nil, err
			}
		}
		copyID, err := bd.writeLeafCopy(lo, state, logPtr)
		if err != nil {
			return nil, err
		}
		if start == 0 {
			// Initial copy: the parent's initial state points here.
			events = append(events, childEvent{time: negInf(), kind: kindCopy, router: state[0], ptr: copyID})
		} else {
			// This copy supersedes the previous one from the time of the
			// last change it absorbed.
			events = append(events, childEvent{time: changes[start-1].time, kind: kindCopy, router: state[0], ptr: copyID})
		}
		// Apply the group to the state and surface router changes.
		for _, ch := range group {
			state[ch.pos-lo] = ch.occ
			if ch.pos == lo {
				emitRouter(ch.time)
			}
		}
		if end == len(changes) {
			break
		}
	}
	return events, nil
}

type childState struct {
	router occupant
	ptr    pager.PageID
}

// intRecord is one internal-node log record.
type intRecord struct {
	time     float64
	childIdx int
	kind     int
	router   occupant
	ptr      pager.PageID
}

func (bd *builder) writeIntLog(recs []intRecord) (pager.PageID, error) {
	p, err := bd.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = typeIntLog
	put16(d[2:], len(recs))
	off := 8
	for _, r := range recs {
		putf64(d[off:], r.time)
		put16(d[off+8:], r.childIdx)
		d[off+10] = byte(r.kind)
		putOcc(d[off+12:], r.router)
		put32(d[off+32:], uint32(r.ptr))
		off += intRecSize
	}
	if err := bd.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

func (bd *builder) writeIntCopy(kids []childState, logPtr pager.PageID) (pager.PageID, error) {
	p, err := bd.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = typeIntCopy
	put16(d[2:], len(kids))
	put32(d[4:], uint32(logPtr))
	off := 8
	for _, k := range kids {
		putOcc(d[off:], k.router)
		put32(d[off+20:], uint32(k.ptr))
		off += childSize
	}
	if err := bd.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

// buildInternal lays out one internal node over the given children's event
// streams. childEvents is the time-merged stream with the childIdx already
// attached; each child's initial kindCopy event (time == -inf) must come
// first and seeds the initial state.
func (bd *builder) buildInternal(recs []intRecord, nChildren int) ([]childEvent, error) {
	state := make([]childState, nChildren)
	// Consume the initial events.
	i := 0
	for ; i < len(recs) && recs[i].time == negInf(); i++ {
		r := recs[i]
		state[r.childIdx] = childState{router: r.router, ptr: r.ptr}
	}
	recs = recs[i:]

	var events []childEvent
	for start := 0; ; start += bd.intLogCap {
		end := start + bd.intLogCap
		if end > len(recs) {
			end = len(recs)
		}
		group := recs[start:end]
		var logPtr pager.PageID
		if len(group) > 0 {
			var err error
			if logPtr, err = bd.writeIntLog(group); err != nil {
				return nil, err
			}
		}
		copyID, err := bd.writeIntCopy(state, logPtr)
		if err != nil {
			return nil, err
		}
		var at float64
		if start == 0 {
			at = negInf()
		} else {
			at = recs[start-1].time
		}
		events = append(events, childEvent{time: at, kind: kindCopy, router: state[0].router, ptr: copyID})
		for _, r := range group {
			switch r.kind {
			case kindRouter:
				state[r.childIdx].router = r.router
			case kindCopy:
				state[r.childIdx] = childState{router: r.router, ptr: r.ptr}
			}
			if r.childIdx == 0 {
				events = append(events, childEvent{time: r.time, kind: kindRouter, router: state[0].router})
			}
		}
		if end == len(recs) {
			break
		}
	}
	return events, nil
}

// buildTree builds the whole persistent tree from the initial list and the
// time-sorted change stream, returning the root-version index (time ->
// root copy page) and the tree height (1 = root is a leaf).
func (bd *builder) buildTree(init []occupant, changes []change) (*bptree.Tree, int, error) {
	n := len(init)
	if n == 0 {
		vt, err := bptree.New(bd.store, bptree.Config{Codec: bptree.Wide})
		return vt, 0, err
	}
	// Leaf level.
	nLeaves := (n + bd.leafSpan - 1) / bd.leafSpan
	perLeaf := make([][]change, nLeaves)
	for _, ch := range changes {
		li := ch.pos / bd.leafSpan
		perLeaf[li] = append(perLeaf[li], ch)
	}
	level := make([][]childEvent, nLeaves)
	for li := 0; li < nLeaves; li++ {
		lo := li * bd.leafSpan
		hi := lo + bd.leafSpan
		if hi > n {
			hi = n
		}
		evs, err := bd.buildLeaf(lo, init[lo:hi], perLeaf[li])
		if err != nil {
			return nil, 0, err
		}
		level[li] = evs
	}
	height := 1
	// Internal levels.
	for len(level) > 1 {
		nNodes := (len(level) + bd.fanout - 1) / bd.fanout
		next := make([][]childEvent, nNodes)
		for ni := 0; ni < nNodes; ni++ {
			lo := ni * bd.fanout
			hi := lo + bd.fanout
			if hi > len(level) {
				hi = len(level)
			}
			recs := mergeChildEvents(level[lo:hi])
			evs, err := bd.buildInternal(recs, hi-lo)
			if err != nil {
				return nil, 0, err
			}
			next[ni] = evs
		}
		level = next
		height++
	}
	// Root: its kindCopy events form the version index.
	vt, err := bptree.New(bd.store, bptree.Config{Codec: bptree.Wide})
	if err != nil {
		return nil, 0, err
	}
	for _, ev := range level[0] {
		if ev.kind != kindCopy {
			continue
		}
		t := ev.time
		if t == negInf() {
			t = -1e300 // representable sentinel below every query time
		}
		if err := vt.Insert(bptree.Entry{Key: t, Val: uint64(ev.ptr)}); err != nil {
			return nil, 0, err
		}
	}
	return vt, height, nil
}

// mergeChildEvents merges per-child event streams into one time-sorted
// record stream with child indexes attached. Initial (time == -inf) events
// sort first; ties otherwise keep child order, which is safe because
// records at equal times are replayed together.
func mergeChildEvents(kids [][]childEvent) []intRecord {
	var out []intRecord
	for ci, evs := range kids {
		for _, e := range evs {
			out = append(out, intRecord{
				time: e.time, childIdx: ci, kind: e.kind, router: e.router, ptr: e.ptr,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].time < out[j].time })
	return out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

// leafState reconstructs a leaf's occupants as of time t from copy page id.
func (bd *builder) leafState(id pager.PageID, t float64) (lo int, occs []occupant, err error) {
	p, err := bd.store.Read(id)
	if err != nil {
		return 0, nil, err
	}
	d := p.Data
	if d[0] != typeLeafCopy {
		return 0, nil, fmt.Errorf("kinetic: page %d is not a leaf copy", id)
	}
	count := get16(d[2:])
	lo = int(get32(d[4:]))
	logPtr := pager.PageID(get32(d[8:]))
	occs = make([]occupant, count)
	off := 12
	for i := 0; i < count; i++ {
		occs[i] = getOcc(d[off:])
		off += occSize
	}
	for logPtr != 0 {
		lp, err := bd.store.Read(logPtr)
		if err != nil {
			return 0, nil, err
		}
		ld := lp.Data
		if ld[0] != typeLeafLog {
			return 0, nil, fmt.Errorf("kinetic: page %d is not a leaf log", logPtr)
		}
		lc := get16(ld[2:])
		loff := 8
		for i := 0; i < lc; i++ {
			rt := getf64(ld[loff:])
			if rt <= t {
				pos := int(get32(ld[loff+8:]))
				occs[pos-lo] = getOcc(ld[loff+12:])
			}
			loff += leafRecSize
		}
		logPtr = pager.PageID(get32(ld[4:]))
	}
	return lo, occs, nil
}

// intState reconstructs an internal node's child states as of time t.
func (bd *builder) intState(id pager.PageID, t float64) ([]childState, error) {
	p, err := bd.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	if d[0] != typeIntCopy {
		return nil, fmt.Errorf("kinetic: page %d is not an internal copy", id)
	}
	count := get16(d[2:])
	logPtr := pager.PageID(get32(d[4:]))
	kids := make([]childState, count)
	off := 8
	for i := 0; i < count; i++ {
		kids[i] = childState{router: getOcc(d[off:]), ptr: pager.PageID(get32(d[off+20:]))}
		off += childSize
	}
	for logPtr != 0 {
		lp, err := bd.store.Read(logPtr)
		if err != nil {
			return nil, err
		}
		ld := lp.Data
		if ld[0] != typeIntLog {
			return nil, fmt.Errorf("kinetic: page %d is not an internal log", logPtr)
		}
		lc := get16(ld[2:])
		loff := 8
		for i := 0; i < lc; i++ {
			rt := getf64(ld[loff:])
			if rt <= t {
				ci := get16(ld[loff+8:])
				kind := int(ld[loff+10])
				switch kind {
				case kindRouter:
					kids[ci].router = getOcc(ld[loff+12:])
				case kindCopy:
					kids[ci] = childState{
						router: getOcc(ld[loff+12:]),
						ptr:    pager.PageID(get32(ld[loff+32:])),
					}
				}
			}
			loff += intRecSize
		}
		logPtr = pager.PageID(get32(ld[4:]))
	}
	return kids, nil
}
