package kinetic

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

// TestStaggeredConcurrentReaders stresses the staggered kinetic pair under
// the serving model: reader goroutines Query under RLock while the writer
// Advances (rebuilding one of the two structures) under Lock. A Structure
// is immutable once built, so readers only race with the swap itself —
// which the latch serialises. Answers are checked against the closed-form
// oracle at the queried instant.
func TestStaggeredConcurrentReaders(t *testing.T) {
	leakcheck.Check(t)
	st := pager.NewMemStore(1024)
	sg, err := NewStaggered(st, 50)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(55))
	objs := randObjects(rng, 400, 1000, 2)
	// Build treats Y0 as the position at build time, so the snapshot
	// advances each object to the writer's current time (Y0 in objs is the
	// position at t=0; the oracle below uses the same convention).
	buildTime := 0.0
	snapshot := func() []Object {
		out := make([]Object, len(objs))
		for i, o := range objs {
			out[i] = Object{OID: o.OID, Y0: o.Y0 + o.V*buildTime, V: o.V}
		}
		return out
	}

	var mu sync.RWMutex // queries RLock, Advance Lock
	if err := sg.Advance(0, snapshot); err != nil {
		t.Fatal(err)
	}
	now := 0.0 // guarded by mu; readers must pick tq within the live window

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(200 + r)))
			for !stop.Load() {
				yl := rrng.Float64()*1000 - 100
				yh := yl + 120
				frac := rrng.Float64()
				mu.RLock()
				tq := now + frac*49
				want := map[dual.OID]bool{}
				for _, o := range objs {
					if y := o.Y0 + o.V*tq; y >= yl && y <= yh {
						want[o.OID] = true
					}
				}
				got := map[dual.OID]bool{}
				err := sg.Query(yl, yh, tq, func(id dual.OID) { got[id] = true })
				mu.RUnlock()
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("reader %d: got %d objects at t=%g, want %d",
						r, len(got), tq, len(want))
					return
				}
				for id := range want {
					if !got[id] {
						t.Errorf("reader %d: missing %d at t=%g", r, id, tq)
						return
					}
				}
			}
		}(r)
	}

	for step := 1; step <= 30 && !t.Failed(); step++ {
		cur := float64(step) * 10
		mu.Lock()
		buildTime = cur
		if err := sg.Advance(cur, snapshot); err != nil {
			t.Fatalf("advance to %g: %v", cur, err)
		}
		now = cur
		mu.Unlock()
	}
	stop.Store(true)
	wg.Wait()
}
