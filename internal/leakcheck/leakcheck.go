// Package leakcheck provides a goroutine-leak guard for the concurrency
// stress tests: every stress test calls Check at its start, and at cleanup
// time the goroutine count must return to its starting value. A worker
// pool that forgets to drain, an executor that abandons tasks on error, or
// a benchmark that leaves its updater running would all trip it.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails the test if the count has not settled back to (at or below) the
// snapshot within a grace period. The grace period absorbs goroutines
// that are mid-exit when the test body returns — runtime bookkeeping can
// lag the final channel receive by a scheduling quantum.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before test, %d after; stacks:\n%s",
			before, after, buf[:n])
	})
}
