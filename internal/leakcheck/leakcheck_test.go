package leakcheck

import (
	"sync"
	"testing"
)

// TestCheckPassesOnCleanExit verifies the guard stays quiet for a test
// that drains all its goroutines.
func TestCheckPassesOnCleanExit(t *testing.T) {
	Check(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
