package pager

import (
	"sync"
	"sync/atomic"
)

// Buffered wraps a Store with an LRU buffer pool. Reads that hit the pool
// cost nothing against the underlying store; this mirrors the paper's
// buffering scheme (§5), which keeps only the current root-to-leaf path
// (3-4 pages) and clears the pool before every query.
//
// Writes go through to the underlying store immediately (write-through) and
// refresh the cached copy, so the pool never holds stale data.
//
// The pool is sharded by page-id hash: each shard has its own latch, its
// own capacity slice, and its own LRU clock, so concurrent readers of
// different pages contend only within a shard and never on a global mutex.
// Small pools (the paper's 3-4 page root-to-leaf buffer) collapse to a
// single shard, which makes the eviction sequence exactly the classic
// global LRU — the paper's I/O counts are reproduced bit-for-bit.
//
// Read hits are latch-light: a hit takes only the shard's read-latch
// (shared, so hits on the same shard proceed in parallel), bumps the
// frame's LRU position with a single atomic store, and copies the page
// image outside the latch — frames are immutable once installed, so no
// exclusive latch is ever taken on the read path.
type Buffered struct {
	under  Store
	shards []bufShard
	mask   uint32
	cap    int
}

// bufShard is one independently latched slice of the pool.
type bufShard struct {
	mu     sync.RWMutex
	cap    int
	clock  atomic.Int64
	frames map[PageID]*bufFrame
}

// bufFrame is one cached page. data is immutable after installation — a
// write installs a fresh frame rather than mutating in place, so a reader
// that grabbed the frame under the read-latch can safely copy the bytes
// after releasing it. tick is the frame's LRU position (larger = more
// recently used), updated atomically on every hit.
type bufFrame struct {
	data []byte
	tick atomic.Int64
}

// bufferShardCount picks the shard count for a pool of the given
// capacity: one shard per 16 pages of capacity, capped at 16 shards, and
// always a power of two so page ids map with a mask. Pools of fewer than
// 32 pages use a single shard and behave exactly like an unsharded LRU.
func bufferShardCount(capacity int) int {
	n := 1
	for n < 16 && n*32 <= capacity {
		n <<= 1
	}
	return n
}

// NewBuffered wraps under with an LRU pool holding capacity pages in
// total. A capacity of zero disables caching entirely.
func NewBuffered(under Store, capacity int) *Buffered {
	n := bufferShardCount(capacity)
	b := &Buffered{
		under:  under,
		shards: make([]bufShard, n),
		mask:   uint32(n - 1),
		cap:    capacity,
	}
	base, rem := capacity/n, capacity%n
	for i := range b.shards {
		c := base
		if i < rem {
			c++
		}
		b.shards[i].cap = c
		b.shards[i].frames = make(map[PageID]*bufFrame)
	}
	return b
}

// shard maps a page id to its shard. The multiplicative hash spreads
// sequentially allocated ids across shards.
func (b *Buffered) shard(id PageID) *bufShard {
	return &b.shards[(uint32(id)*2654435761)&b.mask]
}

// Clear empties the pool; the paper clears buffers before timing a query.
func (b *Buffered) Clear() {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		sh.frames = make(map[PageID]*bufFrame)
		sh.mu.Unlock()
	}
}

// PageSize implements Store.
func (b *Buffered) PageSize() int { return b.under.PageSize() }

// Allocate implements Store.
func (b *Buffered) Allocate() (*Page, error) { return b.under.Allocate() }

// Read implements Store, serving from the pool when possible.
func (b *Buffered) Read(id PageID) (*Page, error) {
	sh := b.shard(id)
	sh.mu.RLock()
	if f, ok := sh.frames[id]; ok {
		// LRU touch is one atomic store; the image is copied after the
		// latch drops (frames are immutable, see bufFrame).
		f.tick.Store(sh.clock.Add(1))
		src := f.data
		sh.mu.RUnlock()
		data := make([]byte, len(src))
		copy(data, src)
		return &Page{ID: id, Data: data}, nil
	}
	sh.mu.RUnlock()
	p, err := b.under.Read(id)
	if err != nil {
		return nil, err
	}
	b.install(id, p.Data)
	return p, nil
}

// Write implements Store (write-through).
func (b *Buffered) Write(p *Page) error {
	if err := b.under.Write(p); err != nil {
		return err
	}
	b.install(p.ID, p.Data)
	return nil
}

// install caches a fresh immutable frame for the page, evicting the
// shard's least-recently-used frames when over capacity.
func (b *Buffered) install(id PageID, data []byte) {
	if b.cap <= 0 {
		return
	}
	sh := b.shard(id)
	cp := make([]byte, len(data))
	copy(cp, data)
	f := &bufFrame{data: cp}
	sh.mu.Lock()
	f.tick.Store(sh.clock.Add(1))
	sh.frames[id] = f
	for len(sh.frames) > sh.cap {
		var victim PageID
		min := int64(1<<63 - 1)
		for vid, vf := range sh.frames {
			if t := vf.tick.Load(); t < min {
				min, victim = t, vid
			}
		}
		delete(sh.frames, victim)
	}
	sh.mu.Unlock()
}

// Free implements Store, dropping any cached copy.
func (b *Buffered) Free(id PageID) error {
	sh := b.shard(id)
	sh.mu.Lock()
	delete(sh.frames, id)
	sh.mu.Unlock()
	return b.under.Free(id)
}

// Stats implements Store, reporting the underlying store's traffic: a
// buffer hit is free, exactly as in the paper's accounting.
func (b *Buffered) Stats() Stats { return b.under.Stats() }

// PagesInUse implements Store.
func (b *Buffered) PagesInUse() int { return b.under.PagesInUse() }

// Begin forwards Batcher so batched indexes work through a buffer pool
// (Buffered is write-through, so the pool never hides a staged write from
// the store below).
func (b *Buffered) Begin() error {
	if t, ok := b.under.(Batcher); ok {
		return t.Begin()
	}
	return nil
}

// Commit forwards Batcher.
func (b *Buffered) Commit() error {
	if t, ok := b.under.(Batcher); ok {
		return t.Commit()
	}
	return nil
}

// Rollback forwards Batcher, dropping the pool: cached copies of the
// batch's pages are stale once the store below undoes them.
func (b *Buffered) Rollback() error {
	b.Clear()
	if t, ok := b.under.(Batcher); ok {
		return t.Rollback()
	}
	return nil
}
