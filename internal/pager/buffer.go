package pager

import (
	"container/list"
	"sync"
)

// Buffered wraps a Store with a small LRU buffer pool. Reads that hit the
// pool cost nothing against the underlying store; this mirrors the paper's
// buffering scheme (§5), which keeps only the current root-to-leaf path
// (3-4 pages) and clears the pool before every query.
//
// Writes go through to the underlying store immediately (write-through) and
// refresh the cached copy, so the pool never holds stale data.
type Buffered struct {
	mu      sync.Mutex
	under   Store
	cap     int
	lru     *list.List               // front = most recently used; values are *bufEntry
	entries map[PageID]*list.Element // page id -> lru element
}

type bufEntry struct {
	id   PageID
	data []byte
}

// NewBuffered wraps under with an LRU pool holding capacity pages. A
// capacity of zero disables caching entirely.
func NewBuffered(under Store, capacity int) *Buffered {
	return &Buffered{
		under:   under,
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[PageID]*list.Element),
	}
}

// Clear empties the pool; the paper clears buffers before timing a query.
func (b *Buffered) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lru.Init()
	b.entries = make(map[PageID]*list.Element)
}

// PageSize implements Store.
func (b *Buffered) PageSize() int { return b.under.PageSize() }

// Allocate implements Store.
func (b *Buffered) Allocate() (*Page, error) { return b.under.Allocate() }

// Read implements Store, serving from the pool when possible.
func (b *Buffered) Read(id PageID) (*Page, error) {
	b.mu.Lock()
	if el, ok := b.entries[id]; ok {
		b.lru.MoveToFront(el)
		e := el.Value.(*bufEntry)
		data := make([]byte, len(e.data))
		copy(data, e.data)
		b.mu.Unlock()
		return &Page{ID: id, Data: data}, nil
	}
	b.mu.Unlock()
	p, err := b.under.Read(id)
	if err != nil {
		return nil, err
	}
	b.install(id, p.Data)
	return p, nil
}

// Write implements Store (write-through).
func (b *Buffered) Write(p *Page) error {
	if err := b.under.Write(p); err != nil {
		return err
	}
	b.install(p.ID, p.Data)
	return nil
}

func (b *Buffered) install(id PageID, data []byte) {
	if b.cap <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.entries[id]; ok {
		e := el.Value.(*bufEntry)
		copy(e.data, data)
		b.lru.MoveToFront(el)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	el := b.lru.PushFront(&bufEntry{id: id, data: cp})
	b.entries[id] = el
	for b.lru.Len() > b.cap {
		last := b.lru.Back()
		e := last.Value.(*bufEntry)
		delete(b.entries, e.id)
		b.lru.Remove(last)
	}
}

// Free implements Store, dropping any cached copy.
func (b *Buffered) Free(id PageID) error {
	b.mu.Lock()
	if el, ok := b.entries[id]; ok {
		delete(b.entries, id)
		b.lru.Remove(el)
	}
	b.mu.Unlock()
	return b.under.Free(id)
}

// Stats implements Store, reporting the underlying store's traffic: a
// buffer hit is free, exactly as in the paper's accounting.
func (b *Buffered) Stats() Stats { return b.under.Stats() }

// PagesInUse implements Store.
func (b *Buffered) PagesInUse() int { return b.under.PagesInUse() }

// Begin forwards Batcher so batched indexes work through a buffer pool
// (Buffered is write-through, so the pool never hides a staged write from
// the store below).
func (b *Buffered) Begin() error {
	if t, ok := b.under.(Batcher); ok {
		return t.Begin()
	}
	return nil
}

// Commit forwards Batcher.
func (b *Buffered) Commit() error {
	if t, ok := b.under.(Batcher); ok {
		return t.Commit()
	}
	return nil
}

// Rollback forwards Batcher, dropping the pool: cached copies of the
// batch's pages are stale once the store below undoes them.
func (b *Buffered) Rollback() error {
	b.Clear()
	if t, ok := b.under.(Batcher); ok {
		return t.Rollback()
	}
	return nil
}
