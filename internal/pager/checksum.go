package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrPageCorrupt is returned when a page fails its integrity check: a torn
// write, bit rot, or any other silent corruption detected after the fact.
// It is permanent — retrying the read returns the same bytes — so a
// RetryStore propagates it immediately.
var ErrPageCorrupt = errors.New("pager: page corrupt")

// ChecksumTrailerSize is the number of bytes ChecksumStore reserves at the
// end of each underlying page for the CRC-32C of the payload.
const ChecksumTrailerSize = 4

// castagnoli is the CRC-32C polynomial table (iSCSI/ext4's checksum; a
// hardware instruction on modern CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumStore wraps a Store and guards every page with a CRC-32C
// trailer. Write stamps the checksum; Read verifies it and returns a typed
// ErrPageCorrupt on mismatch, so torn writes and bit flips are *detected*
// rather than decoded into garbage by the structure above.
//
// The wrapper steals ChecksumTrailerSize bytes from each page: PageSize
// reports the underlying size minus the trailer, and the structures above
// never see the trailer.
//
// Zero-page convention: a page that is all zeroes end to end — payload and
// trailer — reads as a valid zeroed page. This is what an allocated-but-
// never-written page looks like on every substrate (MemStore and FileStore
// both materialize fresh pages as zeroes), and no genuine write can
// produce it, because the CRC-32C of an all-zero payload is nonzero.
type ChecksumStore struct {
	under Store
	size  int // payload size = under.PageSize() - ChecksumTrailerSize
}

// NewChecksumStore wraps under; its page size must exceed the trailer.
func NewChecksumStore(under Store) (*ChecksumStore, error) {
	size := under.PageSize() - ChecksumTrailerSize
	if size <= 0 {
		return nil, fmt.Errorf("pager: page size %d too small for checksum trailer", under.PageSize())
	}
	return &ChecksumStore{under: under, size: size}, nil
}

// PageSize implements Store: the payload size available to callers.
func (c *ChecksumStore) PageSize() int { return c.size }

// Allocate implements Store. The fresh page is all zeroes, which the
// zero-page convention accepts, so no write is needed to make it readable.
func (c *ChecksumStore) Allocate() (*Page, error) {
	p, err := c.under.Allocate()
	if err != nil {
		return nil, err
	}
	return &Page{ID: p.ID, Data: p.Data[:c.size]}, nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Read implements Store, verifying the trailer before returning the
// payload.
func (c *ChecksumStore) Read(id PageID) (*Page, error) {
	p, err := c.under.Read(id)
	if err != nil {
		return nil, err
	}
	if len(p.Data) != c.size+ChecksumTrailerSize {
		return nil, fmt.Errorf("%w: page %d has size %d", ErrPageCorrupt, id, len(p.Data))
	}
	payload, trailer := p.Data[:c.size], p.Data[c.size:]
	stored := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if stored == 0 && allZero(payload) {
		return &Page{ID: id, Data: payload}, nil // never written; valid zero page
	}
	if got := crc32.Checksum(payload, castagnoli); got != stored {
		return nil, fmt.Errorf("%w: page %d checksum %08x, want %08x", ErrPageCorrupt, id, got, stored)
	}
	return &Page{ID: id, Data: payload}, nil
}

// Write implements Store, stamping the trailer.
func (c *ChecksumStore) Write(p *Page) error {
	if len(p.Data) != c.size {
		return fmt.Errorf("pager: checksum write page %d: payload %d bytes, want %d", p.ID, len(p.Data), c.size)
	}
	buf := make([]byte, c.size+ChecksumTrailerSize)
	copy(buf, p.Data)
	sum := crc32.Checksum(p.Data, castagnoli)
	buf[c.size] = byte(sum)
	buf[c.size+1] = byte(sum >> 8)
	buf[c.size+2] = byte(sum >> 16)
	buf[c.size+3] = byte(sum >> 24)
	return c.under.Write(&Page{ID: p.ID, Data: buf})
}

// Free implements Store.
func (c *ChecksumStore) Free(id PageID) error { return c.under.Free(id) }

// Stats implements Store.
func (c *ChecksumStore) Stats() Stats { return c.under.Stats() }

// PagesInUse implements Store.
func (c *ChecksumStore) PagesInUse() int { return c.under.PagesInUse() }

// Sync forwards to the underlying store's durability point, if any.
func (c *ChecksumStore) Sync() error {
	if s, ok := c.under.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Adopt forwards Adopter so WAL recovery works through a ChecksumStore.
func (c *ChecksumStore) Adopt(id PageID) error {
	a, ok := c.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support adopt", c.under)
	}
	return a.Adopt(id)
}

// Disown forwards Adopter.
func (c *ChecksumStore) Disown(id PageID) error {
	a, ok := c.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support disown", c.under)
	}
	return a.Disown(id)
}
