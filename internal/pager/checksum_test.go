package pager

import (
	"errors"
	"hash/crc32"
	"testing"
)

func newChecksum(t *testing.T, pageSize int) (*ChecksumStore, *MemStore) {
	t.Helper()
	under := NewMemStore(pageSize)
	cs, err := NewChecksumStore(under)
	if err != nil {
		t.Fatal(err)
	}
	return cs, under
}

func TestChecksumRoundTrip(t *testing.T) {
	cs, _ := newChecksum(t, 128)
	if cs.PageSize() != 128-ChecksumTrailerSize {
		t.Fatalf("payload size = %d", cs.PageSize())
	}
	p, err := cs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != cs.PageSize() {
		t.Fatalf("allocated payload %d bytes", len(p.Data))
	}
	for i := range p.Data {
		p.Data[i] = byte(i)
	}
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	got, err := cs.Read(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != byte(i) {
			t.Fatalf("byte %d = %#x", i, got.Data[i])
		}
	}
}

func TestChecksumUnwrittenPageReadsZero(t *testing.T) {
	cs, _ := newChecksum(t, 128)
	p, _ := cs.Allocate()
	got, err := cs.Read(p.ID)
	if err != nil {
		t.Fatalf("never-written page must read as zeroes, got %v", err)
	}
	if !allZero(got.Data) {
		t.Fatal("expected zero payload")
	}
}

// TestChecksumDetectsEverySingleBitFlip flips each bit of a stored page in
// turn and requires a typed ErrPageCorrupt every time: 100% detection.
func TestChecksumDetectsEverySingleBitFlip(t *testing.T) {
	const pageSize = 64
	cs, under := newChecksum(t, pageSize)
	p, _ := cs.Allocate()
	for i := range p.Data {
		p.Data[i] = byte(3 * i)
	}
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 8*pageSize; bit++ {
		raw, err := under.Read(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw.Data[bit/8] ^= 1 << (bit % 8)
		if err := under.Write(raw); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Read(p.ID); !errors.Is(err, ErrPageCorrupt) {
			t.Fatalf("bit %d: corruption not detected (err = %v)", bit, err)
		}
		raw.Data[bit/8] ^= 1 << (bit % 8) // restore
		if err := under.Write(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChecksumDetectsTornWrites overwrites a page with every possible torn
// prefix of a new version and requires detection for each.
func TestChecksumDetectsTornWrites(t *testing.T) {
	const pageSize = 64
	cs, under := newChecksum(t, pageSize)
	p, _ := cs.Allocate()
	for i := range p.Data {
		p.Data[i] = 0x55
	}
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	oldRaw, _ := under.Read(p.ID)
	for i := range p.Data {
		p.Data[i] = 0x99
	}
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	newRaw, _ := under.Read(p.ID)
	for cut := 1; cut < pageSize; cut++ {
		torn := make([]byte, pageSize)
		copy(torn, oldRaw.Data)
		copy(torn[:cut], newRaw.Data[:cut])
		if err := under.Write(&Page{ID: p.ID, Data: torn}); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Read(p.ID); !errors.Is(err, ErrPageCorrupt) {
			t.Fatalf("torn write at %d bytes not detected (err = %v)", cut, err)
		}
	}
}

func TestChecksumWithFaultStoreBitFlips(t *testing.T) {
	under := NewMemStore(128)
	faulty := NewFaultStore(under, FaultConfig{Seed: 11, Read: OpFaults{FailEvery: 2}, BitFlips: true})
	cs, err := NewChecksumStore(faulty)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := cs.Allocate()
	for i := range p.Data {
		p.Data[i] = byte(i * 7)
	}
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	var corrupt, clean int
	for i := 0; i < 20; i++ {
		_, err := cs.Read(p.ID)
		switch {
		case err == nil:
			clean++
		case errors.Is(err, ErrPageCorrupt):
			corrupt++
		default:
			t.Fatalf("read %d: unexpected error %v", i, err)
		}
	}
	if corrupt != 10 || clean != 10 {
		t.Fatalf("FailEvery=2 over 20 reads: %d corrupt, %d clean", corrupt, clean)
	}
}

// The zero-page convention is sound only because no genuine payload
// checksums to zero while also being all zero.
func TestChecksumZeroPayloadHasNonzeroCRC(t *testing.T) {
	for _, n := range []int{1, 60, 124, 4092} {
		if crc32.Checksum(make([]byte, n), castagnoli) == 0 {
			t.Fatalf("CRC-32C of %d zero bytes is zero; zero-page convention unsound", n)
		}
	}
}
