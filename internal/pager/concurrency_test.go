package pager

import (
	"sync"
	"testing"
)

// TestBufferedConcurrentStress hammers a shared Buffered(MemStore) pool
// from many goroutines: private pages verify read-your-writes through the
// cache, shared pages are written with uniform patterns so readers can
// detect torn logical pages, and constant alloc/free churn exercises the
// eviction and invalidation paths. Run under -race (scripts/verify.sh
// does).
func TestBufferedConcurrentStress(t *testing.T) {
	under := NewMemStore(256)
	buf := NewBuffered(under, 8)

	const (
		workers = 8
		rounds  = 300
		shared  = 6
	)
	sharedIDs := make([]PageID, shared)
	for i := range sharedIDs {
		p, err := buf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Data {
			p.Data[j] = 0x5A
		}
		if err := buf.Write(p); err != nil {
			t.Fatal(err)
		}
		sharedIDs[i] = p.ID
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			report := func(err error) {
				select {
				case errc <- err:
				default:
				}
			}
			var own []PageID
			for r := 0; r < rounds; r++ {
				// Write a uniform pattern to a shared page; concurrent
				// readers must never observe a mix.
				sp := sharedIDs[(w+r)%shared]
				p := &Page{ID: sp, Data: make([]byte, buf.PageSize())}
				pat := byte(1 + (w+r)%250)
				for j := range p.Data {
					p.Data[j] = pat
				}
				if err := buf.Write(p); err != nil {
					report(err)
					return
				}
				got, err := buf.Read(sharedIDs[(w+2*r)%shared])
				if err != nil {
					report(err)
					return
				}
				first := got.Data[0]
				for j := range got.Data {
					if got.Data[j] != first {
						t.Errorf("worker %d round %d: torn shared page %d", w, r, got.ID)
						return
					}
				}
				// Private page lifecycle: alloc, write, read back, free.
				np, err := buf.Allocate()
				if err != nil {
					report(err)
					return
				}
				for j := range np.Data {
					np.Data[j] = byte(w)
				}
				if err := buf.Write(np); err != nil {
					report(err)
					return
				}
				own = append(own, np.ID)
				rd, err := buf.Read(own[r%len(own)])
				if err != nil {
					report(err)
					return
				}
				for j := range rd.Data {
					if rd.Data[j] != byte(w) {
						t.Errorf("worker %d round %d: private page %d corrupted", w, r, rd.ID)
						return
					}
				}
				if len(own) > 10 {
					victim := own[0]
					own = own[1:]
					if err := buf.Free(victim); err != nil {
						report(err)
						return
					}
				}
				if r%50 == 0 && w == 0 {
					buf.Clear()
				}
			}
			for _, id := range own {
				if err := buf.Free(id); err != nil {
					report(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := buf.PagesInUse(); got != shared {
		t.Fatalf("PagesInUse = %d, want %d", got, shared)
	}
}

// TestMemStoreConcurrentAllocFree verifies the allocator itself is safe
// under parallel churn: ids handed out concurrently are never duplicated.
func TestMemStoreConcurrentAllocFree(t *testing.T) {
	m := NewMemStore(64)
	const workers = 8
	var mu sync.Mutex
	seen := make(map[PageID]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var held []PageID
			for i := 0; i < 500; i++ {
				p, err := m.Allocate()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				seen[p.ID]++
				if seen[p.ID] > 1 {
					mu.Unlock()
					t.Errorf("page %d allocated while held elsewhere", p.ID)
					return
				}
				mu.Unlock()
				held = append(held, p.ID)
				if len(held) > 4 {
					id := held[0]
					held = held[1:]
					mu.Lock()
					seen[id]--
					mu.Unlock()
					if err := m.Free(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
