// Package crashtest simulates crashes at every write and sync boundary of
// a write-ahead-logged store and verifies recovery.
//
// A Media is a shared crash engine: every effectful I/O — a log append,
// log sync, log truncate, base-page write, base sync — consumes one crash
// point, and when a configured budget runs out the operation fails with
// ErrCrash and the media is dead (every later operation fails too), like a
// machine losing power. A sweep first runs a workload with no budget to
// count its crash points, then replays it once per point per crash mode,
// recovers from what "survived", and checks the recovered store.
//
// Three crash modes bracket real storage behavior:
//
//   - KeepAll: fail-stop. Every completed write survives, synced or not
//     (the OS flushed its caches). The base allocator still reverts to its
//     last Sync — a real FileStore keeps allocator state only in the meta
//     page it writes at Sync.
//   - LoseUnsynced: everything since the last Sync of each device is lost.
//     The pessimistic model fsync-based durability must survive.
//   - TearLast: fail-stop, and the write in flight at the crash applies
//     only a prefix — a torn page or torn log record.
package crashtest

import (
	"errors"
	"fmt"

	"mobidx/internal/pager"
)

// ErrCrash is the typed failure every operation returns at and after the
// simulated crash point.
var ErrCrash = errors.New("crashtest: simulated crash")

// Mode selects what survives a crash.
type Mode int

const (
	KeepAll Mode = iota
	LoseUnsynced
	TearLast
)

// String implements fmt.Stringer for subtest names.
func (m Mode) String() string {
	switch m {
	case KeepAll:
		return "keepall"
	case LoseUnsynced:
		return "loseunsynced"
	case TearLast:
		return "tearlast"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// Media is the shared crash engine for one simulated machine: the log and
// base store of one WALStore must share a Media so a single crash stops
// both.
type Media struct {
	mode    Mode
	budget  int // crash at the budget-th point; 0 = run forever
	points  int
	crashed bool
}

// NewMedia returns a media that crashes at the budget-th crash point
// (1-based); budget 0 never crashes and just counts points.
func NewMedia(mode Mode, budget int) *Media {
	return &Media{mode: mode, budget: budget}
}

// Points returns the number of crash points consumed so far.
func (m *Media) Points() int { return m.points }

// Crashed reports whether the crash point has been reached.
func (m *Media) Crashed() bool { return m.crashed }

// hit consumes one crash point and reports whether this operation crashes.
func (m *Media) hit() bool {
	if m.crashed {
		return true
	}
	m.points++
	if m.budget > 0 && m.points >= m.budget {
		m.crashed = true
		return true
	}
	return false
}

// tearCut picks a deterministic strict-prefix length for a torn write,
// varying with the crash point so different sweep iterations tear at
// different offsets.
func (m *Media) tearCut(n int) int {
	if n <= 1 {
		return 0
	}
	return 1 + (m.points*37)%(n-1)
}

// Log is a crash-simulating pager.LogFile: appends and truncations apply
// to a volatile image and become durable at Sync.
type Log struct {
	m        *Media
	stable   []byte
	volatile []byte
}

// NewLog returns an empty log on the given media.
func NewLog(m *Media) *Log { return &Log{m: m} }

// ReadAt implements io.ReaderAt over the volatile (live) image.
func (l *Log) ReadAt(p []byte, off int64) (int, error) {
	if l.m.crashed {
		return 0, ErrCrash
	}
	if off < 0 || off > int64(len(l.volatile)) {
		return 0, fmt.Errorf("crashtest: read at %d of %d", off, len(l.volatile))
	}
	n := copy(p, l.volatile[off:])
	if n < len(p) {
		return n, fmt.Errorf("crashtest: short read")
	}
	return n, nil
}

// Size implements pager.LogFile.
func (l *Log) Size() (int64, error) {
	if l.m.crashed {
		return 0, ErrCrash
	}
	return int64(len(l.volatile)), nil
}

// Append implements pager.LogFile; it is a crash point, and in TearLast
// mode the crashing append leaves a strict prefix behind.
func (l *Log) Append(b []byte) error {
	if l.m.hit() {
		if l.m.mode == TearLast {
			l.volatile = append(l.volatile, b[:l.m.tearCut(len(b))]...)
		}
		return ErrCrash
	}
	l.volatile = append(l.volatile, b...)
	return nil
}

// Truncate implements pager.LogFile; a crash point. Like a real file
// system, an unsynced truncation can be lost (LoseUnsynced reverts to the
// last synced image).
func (l *Log) Truncate(size int64) error {
	if l.m.hit() {
		return ErrCrash
	}
	if size < 0 || size > int64(len(l.volatile)) {
		return fmt.Errorf("crashtest: truncate to %d of %d", size, len(l.volatile))
	}
	l.volatile = l.volatile[:size]
	return nil
}

// Sync implements pager.LogFile; a crash point. On success the volatile
// image becomes the durable one.
func (l *Log) Sync() error {
	if l.m.hit() {
		return ErrCrash
	}
	l.stable = append(l.stable[:0], l.volatile...)
	return nil
}

// Close implements pager.LogFile.
func (l *Log) Close() error {
	if l.m.crashed {
		return ErrCrash
	}
	return nil
}

// Survivor returns the log a reboot would find, on fresh media.
func (l *Log) Survivor(m *Media) *Log {
	src := l.volatile
	if l.m.mode == LoseUnsynced {
		src = l.stable
	}
	s := &Log{m: m}
	s.volatile = append([]byte(nil), src...)
	s.stable = append([]byte(nil), src...)
	return s
}

// allocSnap is a snapshot of the base allocator.
type allocSnap struct {
	live map[pager.PageID]struct{}
	free []pager.PageID
	next pager.PageID
}

func (a allocSnap) clone() allocSnap {
	c := allocSnap{
		live: make(map[pager.PageID]struct{}, len(a.live)),
		free: append([]pager.PageID(nil), a.free...),
		next: a.next,
	}
	for id := range a.live {
		c.live[id] = struct{}{}
	}
	return c
}

func cloneData(d map[pager.PageID][]byte) map[pager.PageID][]byte {
	c := make(map[pager.PageID][]byte, len(d))
	for id, b := range d {
		c[id] = append([]byte(nil), b...)
	}
	return c
}

// Base is a crash-simulating base pager.Store with FileStore-faithful
// durability: page bytes persist per the crash mode (they are file
// writes), while the allocator state — live set, free list, next id — is
// durable only as of the last Sync (a real FileStore keeps it in the meta
// page Sync writes). Allocate, Free, Adopt and Disown are pure memory
// operations and are not crash points; Write and Sync are.
type Base struct {
	m          *Media
	pageSize   int
	data       map[pager.PageID][]byte // "file bytes"; never erased by Free
	stableData map[pager.PageID][]byte
	alloc      allocSnap
	stableAlc  allocSnap
	stats      pager.Stats
}

// NewBase returns an empty base store on the given media.
func NewBase(m *Media, pageSize int) *Base {
	b := &Base{
		m:          m,
		pageSize:   pageSize,
		data:       make(map[pager.PageID][]byte),
		stableData: make(map[pager.PageID][]byte),
		alloc:      allocSnap{live: make(map[pager.PageID]struct{}), next: 1},
	}
	b.stableAlc = b.alloc.clone()
	return b
}

// PageSize implements pager.Store.
func (b *Base) PageSize() int { return b.pageSize }

// Allocate implements pager.Store (MemStore/FileStore allocator order:
// free-list LIFO, then the next fresh id).
func (b *Base) Allocate() (*pager.Page, error) {
	if b.m.crashed {
		return nil, ErrCrash
	}
	var id pager.PageID
	if n := len(b.alloc.free); n > 0 {
		id = b.alloc.free[n-1]
		b.alloc.free = b.alloc.free[:n-1]
	} else {
		id = b.alloc.next
		b.alloc.next++
	}
	b.alloc.live[id] = struct{}{}
	b.data[id] = make([]byte, b.pageSize)
	b.stats.Allocs++
	return &pager.Page{ID: id, Data: make([]byte, b.pageSize)}, nil
}

// Read implements pager.Store.
func (b *Base) Read(id pager.PageID) (*pager.Page, error) {
	if b.m.crashed {
		return nil, ErrCrash
	}
	if _, ok := b.alloc.live[id]; !ok {
		return nil, fmt.Errorf("%w: %d", pager.ErrPageNotFound, id)
	}
	data := make([]byte, b.pageSize)
	copy(data, b.data[id]) // absent entry reads as zeroes
	b.stats.Reads++
	return &pager.Page{ID: id, Data: data}, nil
}

// Write implements pager.Store; a crash point, torn in TearLast mode.
func (b *Base) Write(p *pager.Page) error {
	if b.m.crashed {
		return ErrCrash
	}
	if _, ok := b.alloc.live[p.ID]; !ok {
		return fmt.Errorf("%w: %d", pager.ErrPageNotFound, p.ID)
	}
	if len(p.Data) != b.pageSize {
		return fmt.Errorf("crashtest: write page %d: %d bytes, want %d", p.ID, len(p.Data), b.pageSize)
	}
	if b.m.hit() {
		if b.m.mode == TearLast {
			buf := b.data[p.ID]
			if buf == nil {
				buf = make([]byte, b.pageSize)
				b.data[p.ID] = buf
			}
			cut := b.m.tearCut(len(p.Data))
			copy(buf[:cut], p.Data[:cut])
		}
		return ErrCrash
	}
	buf := make([]byte, b.pageSize)
	copy(buf, p.Data)
	b.data[p.ID] = buf
	b.stats.Writes++
	return nil
}

// Free implements pager.Store with the same error typing as FileStore.
func (b *Base) Free(id pager.PageID) error {
	if b.m.crashed {
		return ErrCrash
	}
	if id == 0 {
		return fmt.Errorf("%w: free page 0", pager.ErrReservedPage)
	}
	if _, ok := b.alloc.live[id]; !ok {
		for _, f := range b.alloc.free {
			if f == id {
				return fmt.Errorf("%w: %d", pager.ErrDoubleFree, id)
			}
		}
		return fmt.Errorf("%w: %d", pager.ErrPageNotFound, id)
	}
	delete(b.alloc.live, id)
	b.alloc.free = append(b.alloc.free, id)
	b.stats.Frees++
	return nil
}

// Adopt implements pager.Adopter (see pager.MemStore.Adopt). A
// materializing adopt clears the page's file bytes: an adopted page must
// read as a fresh allocation would.
func (b *Base) Adopt(id pager.PageID) error {
	if b.m.crashed {
		return ErrCrash
	}
	if id == 0 {
		return fmt.Errorf("%w: adopt page 0", pager.ErrReservedPage)
	}
	if _, live := b.alloc.live[id]; live {
		return nil
	}
	if id < b.alloc.next {
		for i, f := range b.alloc.free {
			if f == id {
				b.alloc.free = append(b.alloc.free[:i], b.alloc.free[i+1:]...)
				b.alloc.live[id] = struct{}{}
				b.data[id] = make([]byte, b.pageSize)
				return nil
			}
		}
		return fmt.Errorf("crashtest: adopt page %d: neither live nor free", id)
	}
	if id != b.alloc.next {
		return fmt.Errorf("crashtest: adopt page %d skips ids (next is %d)", id, b.alloc.next)
	}
	b.alloc.next++
	b.alloc.live[id] = struct{}{}
	b.data[id] = make([]byte, b.pageSize)
	return nil
}

// Disown implements pager.Adopter.
func (b *Base) Disown(id pager.PageID) error {
	if b.m.crashed {
		return ErrCrash
	}
	if id == 0 {
		return fmt.Errorf("%w: disown page 0", pager.ErrReservedPage)
	}
	if _, live := b.alloc.live[id]; !live {
		for _, f := range b.alloc.free {
			if f == id {
				return nil
			}
		}
		return fmt.Errorf("%w: disown %d", pager.ErrPageNotFound, id)
	}
	delete(b.alloc.live, id)
	b.alloc.free = append(b.alloc.free, id)
	return nil
}

// Sync implements pager.Syncer; a crash point. On success both the file
// bytes and the allocator become durable, exactly what FileStore.Sync
// persists.
func (b *Base) Sync() error {
	if b.m.hit() {
		return ErrCrash
	}
	b.stableData = cloneData(b.data)
	b.stableAlc = b.alloc.clone()
	return nil
}

// Stats implements pager.Store.
func (b *Base) Stats() pager.Stats { return b.stats }

// PagesInUse implements pager.Store.
func (b *Base) PagesInUse() int { return len(b.alloc.live) }

// Survivor returns the base store a reboot would find, on fresh media:
// the allocator always reverts to its last Sync; page bytes revert only in
// LoseUnsynced mode.
func (b *Base) Survivor(m *Media) *Base {
	data := b.data
	if b.m.mode == LoseUnsynced {
		data = b.stableData
	}
	s := &Base{
		m:          m,
		pageSize:   b.pageSize,
		data:       cloneData(data),
		stableData: cloneData(data),
		alloc:      b.stableAlc.clone(),
	}
	s.stableAlc = s.alloc.clone()
	return s
}
