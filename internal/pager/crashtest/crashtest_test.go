package crashtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
)

var allModes = []Mode{KeepAll, LoseUnsynced, TearLast}

// step is one unit of a recorded workload: at most one committed batch (or
// a checkpoint, which commits nothing).
type step struct {
	name string
	do   func(w *pager.WALStore) error
}

// workload is a deterministic recorded workload for the sweep. make builds
// fresh steps per run (ref is true only for the reference run, letting a
// workload capture expectations while it executes); check, if set, runs
// extra workload-specific verification against a recovered store.
type workload struct {
	pageSize int
	cfg      pager.WALConfig
	make     func(ref bool) []step
	check    func(t *testing.T, w *pager.WALStore, seq uint64)
}

// dumpStore reads every live page visible through the store into a map,
// the state fingerprint the oracle compares. The WAL meta page is skipped
// by id, and any page carrying the meta magic is skipped by content: a
// crash during initialization can strand a half-initialized meta page that
// a fresh initialization then abandons.
func dumpStore(t *testing.T, w *pager.WALStore, max pager.PageID) map[pager.PageID]string {
	t.Helper()
	d := make(map[pager.PageID]string)
	for id := pager.PageID(1); id <= max; id++ {
		if id == w.MetaPage() {
			continue
		}
		p, err := w.Read(id)
		if err != nil {
			if !errors.Is(err, pager.ErrPageNotFound) && !errors.Is(err, pager.ErrReservedPage) {
				t.Fatalf("dump read page %d: %v", id, err)
			}
			continue
		}
		if bytes.HasPrefix(p.Data, []byte("MOBIDXWM")) {
			continue
		}
		d[id] = string(p.Data)
	}
	return d
}

// dumpDiff describes the first difference between two dumps.
func dumpDiff(got, want map[pager.PageID]string) string {
	for id, g := range got {
		w, ok := want[id]
		if !ok {
			return fmt.Sprintf("page %d live, want absent", id)
		}
		if g != w {
			for i := 0; i < len(g); i++ {
				if g[i] != w[i] {
					return fmt.Sprintf("page %d byte %d: got %#x, want %#x", id, i, g[i], w[i])
				}
			}
		}
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			return fmt.Sprintf("page %d absent, want live", id)
		}
	}
	return ""
}

// runReference executes the workload crash-free, counting its crash points
// and recording the page dump the store must present at every committed
// sequence number.
func runReference(t *testing.T, mode Mode, wl workload) (shadows map[uint64]map[pager.PageID]string, n int, probe pager.PageID) {
	t.Helper()
	media := NewMedia(mode, 0)
	base := NewBase(media, wl.pageSize)
	log := NewLog(media)
	w, err := pager.OpenWALStore(base, log, wl.cfg)
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	probeNow := func() pager.PageID { return base.alloc.next + 4 }
	shadows = map[uint64]map[pager.PageID]string{}
	shadows[w.CommittedSeq()] = dumpStore(t, w, probeNow())
	for _, s := range wl.make(true) {
		if err := s.do(w); err != nil {
			t.Fatalf("reference step %s: %v", s.name, err)
		}
		shadows[w.CommittedSeq()] = dumpStore(t, w, probeNow())
	}
	n = media.Points()
	if n == 0 {
		t.Fatalf("workload consumed no crash points")
	}
	return shadows, n, probeNow()
}

// crashRun replays the workload against media that dies at its budgeted
// point, returning the last sequence number the run saw committed and the
// error that ended it. A panic anywhere fails the test: crashes must
// surface as errors.
func crashRun(t *testing.T, mode Mode, k int, wl workload, base *Base, log *Log) (lastSeq uint64, failed error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("mode %v point %d: panic during crash run: %v", mode, k, r)
		}
	}()
	w, err := pager.OpenWALStore(base, log, wl.cfg)
	if err != nil {
		return 0, err
	}
	for _, s := range wl.make(false) {
		if err := s.do(w); err != nil {
			return lastSeq, fmt.Errorf("step %s: %w", s.name, err)
		}
		lastSeq = w.CommittedSeq()
	}
	return lastSeq, nil
}

// recoverVerify opens the post-crash survivors and checks the recovery
// oracle: recovery succeeds, the recovered sequence is the crash run's
// last committed one (or one more, when the crash struck after the commit
// record became durable but before Commit returned), the page dump matches
// the reference shadow at that sequence, and the workload's own invariants
// hold.
func recoverVerify(t *testing.T, mode Mode, k int, wl workload, base *Base, log *Log, lastSeq uint64, shadows map[uint64]map[pager.PageID]string, probe pager.PageID) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("mode %v point %d: panic during recovery: %v", mode, k, r)
		}
	}()
	media := NewMedia(mode, 0)
	sb := base.Survivor(media)
	sl := log.Survivor(media)
	w, err := pager.OpenWALStore(sb, sl, wl.cfg)
	if err != nil {
		t.Fatalf("mode %v point %d: recovery failed: %v", mode, k, err)
	}
	seq := w.CommittedSeq()
	if seq != lastSeq && seq != lastSeq+1 {
		t.Fatalf("mode %v point %d: recovered seq %d, crash run committed %d", mode, k, seq, lastSeq)
	}
	want, ok := shadows[seq]
	if !ok {
		t.Fatalf("mode %v point %d: no reference shadow for seq %d", mode, k, seq)
	}
	got := dumpStore(t, w, probe)
	if d := dumpDiff(got, want); d != "" {
		t.Fatalf("mode %v point %d: recovered state at seq %d diverges: %s", mode, k, seq, d)
	}
	if wl.check != nil {
		wl.check(t, w, seq)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("mode %v point %d: close after recovery: %v", mode, k, err)
	}
}

// runSweep crashes the workload at every one of its crash points in the
// given mode and verifies recovery after each.
func runSweep(t *testing.T, mode Mode, wl workload) {
	t.Helper()
	shadows, n, probe := runReference(t, mode, wl)
	t.Logf("mode %v: sweeping %d crash points", mode, n)
	for k := 1; k <= n; k++ {
		media := NewMedia(mode, k)
		base := NewBase(media, wl.pageSize)
		log := NewLog(media)
		lastSeq, failed := crashRun(t, mode, k, wl, base, log)
		if failed == nil {
			t.Fatalf("mode %v point %d/%d: workload survived its crash", mode, k, n)
		}
		if !errors.Is(failed, ErrCrash) {
			t.Errorf("mode %v point %d: crash surfaced untyped: %v", mode, k, failed)
		}
		recoverVerify(t, mode, k, wl, base, log, lastSeq, shadows, probe)
	}
}

// rawWorkload exercises multi-page batches, frees, page-id reuse and
// checkpoints directly against the WALStore API.
func rawWorkload(cfg pager.WALConfig) workload {
	const ps = 128
	pat := func(tag byte) []byte {
		buf := make([]byte, ps)
		for i := range buf {
			buf[i] = tag ^ byte(i*7)
		}
		return buf
	}
	mk := func(bool) []step {
		var a, b, c, d pager.PageID
		alloc := func(w *pager.WALStore, id *pager.PageID) error {
			p, err := w.Allocate()
			if err != nil {
				return err
			}
			*id = p.ID
			return nil
		}
		wr := func(w *pager.WALStore, id pager.PageID, tag byte) error {
			return w.Write(&pager.Page{ID: id, Data: pat(tag)})
		}
		return []step{
			{"alloc-ab", func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					if err := alloc(w, &a); err != nil {
						return err
					}
					if err := alloc(w, &b); err != nil {
						return err
					}
					if err := wr(w, a, 0xA1); err != nil {
						return err
					}
					return wr(w, b, 0xB1)
				})
			}},
			{"rewrite-a-alloc-c", func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					if err := wr(w, a, 0xA2); err != nil {
						return err
					}
					if err := alloc(w, &c); err != nil {
						return err
					}
					return wr(w, c, 0xC1)
				})
			}},
			{"checkpoint-1", func(w *pager.WALStore) error { return w.Checkpoint() }},
			{"free-b-write-a", func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					if err := w.Free(b); err != nil {
						return err
					}
					return wr(w, a, 0xA3)
				})
			}},
			{"alloc-d-free-c", func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					if err := alloc(w, &d); err != nil {
						return err
					}
					if err := wr(w, d, 0xD1); err != nil {
						return err
					}
					return w.Free(c)
				})
			}},
			{"checkpoint-2", func(w *pager.WALStore) error { return w.Checkpoint() }},
			{"final-writes", func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					if err := wr(w, a, 0xA4); err != nil {
						return err
					}
					return wr(w, d, 0xD2)
				})
			}},
		}
	}
	return workload{pageSize: ps, cfg: cfg, make: mk}
}

// TestCrashSweepRaw sweeps every crash point of the raw batch workload in
// all three crash modes, with and without auto-checkpointing.
func TestCrashSweepRaw(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  pager.WALConfig
	}{
		{"manual-checkpoint", pager.WALConfig{}},
		{"auto-checkpoint", pager.WALConfig{AutoCheckpointBytes: 512}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range allModes {
				t.Run(mode.String(), func(t *testing.T) {
					runSweep(t, mode, rawWorkload(tc.cfg))
				})
			}
		})
	}
}

// treeOp is one mutation of the B+-tree workload.
type treeOp struct {
	del bool
	e   bptree.Entry
}

// entriesAfter applies the first n ops to an in-memory model, returning
// the entries a correct tree must hold, in (key, val) order.
func entriesAfter(ops []treeOp, n int) []bptree.Entry {
	var out []bptree.Entry
	for _, op := range ops[:n] {
		if op.del {
			for i, e := range out {
				if e.Key == op.e.Key && e.Val == op.e.Val {
					out = append(out[:i], out[i+1:]...)
					break
				}
			}
			continue
		}
		out = append(out, op.e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// bptreeWorkload runs a B+-tree through the WAL, one mutation per batch.
// Each batch also rewrites a superblock page holding the tree's Meta, so a
// recovered store can always be re-attached from page state alone: the
// superblock page is allocated right after the WAL meta page and therefore
// always has id 2. Sequence s corresponds to the tree after ops[:s-1]
// (sequence 1 is the freshly created empty tree).
func bptreeWorkload(ps int, ops []treeOp, ckptEvery int) workload {
	tcfg := bptree.Config{Codec: bptree.Wide}
	const superPage = pager.PageID(2)
	mk := func(bool) []step {
		var tree *bptree.Tree
		writeSuper := func(w *pager.WALStore) error {
			m := tree.Meta()
			data := make([]byte, ps)
			binary.LittleEndian.PutUint32(data[0:4], uint32(m.Root))
			binary.LittleEndian.PutUint32(data[4:8], uint32(m.Height))
			binary.LittleEndian.PutUint32(data[8:12], uint32(m.Size))
			return w.Write(&pager.Page{ID: superPage, Data: data})
		}
		steps := []step{{"init", func(w *pager.WALStore) error {
			return pager.RunBatch(w, func() error {
				sp, err := w.Allocate()
				if err != nil {
					return err
				}
				if sp.ID != superPage {
					return fmt.Errorf("superblock got page %d, want %d", sp.ID, superPage)
				}
				tree, err = bptree.New(w, tcfg)
				if err != nil {
					return err
				}
				return writeSuper(w)
			})
		}}}
		for i, op := range ops {
			op := op
			steps = append(steps, step{fmt.Sprintf("op%d", i), func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					var err error
					if op.del {
						err = tree.Delete(op.e.Key, op.e.Val)
					} else {
						err = tree.Insert(op.e)
					}
					if err != nil {
						return err
					}
					return writeSuper(w)
				})
			}})
			if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
				steps = append(steps, step{fmt.Sprintf("ckpt%d", i), func(w *pager.WALStore) error {
					return w.Checkpoint()
				}})
			}
		}
		return steps
	}
	check := func(t *testing.T, w *pager.WALStore, seq uint64) {
		t.Helper()
		if seq == 0 {
			return // the tree was never created
		}
		sp, err := w.Read(superPage)
		if err != nil {
			t.Fatalf("seq %d: read superblock: %v", seq, err)
		}
		m := bptree.Meta{
			Root:   pager.PageID(binary.LittleEndian.Uint32(sp.Data[0:4])),
			Height: int(binary.LittleEndian.Uint32(sp.Data[4:8])),
			Size:   int(binary.LittleEndian.Uint32(sp.Data[8:12])),
		}
		tr, err := bptree.Attach(w, tcfg, m)
		if err != nil {
			t.Fatalf("seq %d: attach recovered tree %+v: %v", seq, m, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("seq %d: recovered tree invariants: %v", seq, err)
		}
		var got []bptree.Entry
		if err := tr.Range(-1e300, 1e300, func(e bptree.Entry) bool {
			got = append(got, e)
			return true
		}); err != nil {
			t.Fatalf("seq %d: range over recovered tree: %v", seq, err)
		}
		want := entriesAfter(ops, int(seq)-1)
		if len(got) != len(want) {
			t.Fatalf("seq %d: recovered tree has %d entries, want %d", seq, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seq %d: entry %d is %+v, want %+v", seq, i, got[i], want[i])
			}
		}
	}
	return workload{pageSize: ps, cfg: pager.WALConfig{}, make: mk, check: check}
}

// bptreeBulkWorkload is bptreeWorkload with the build phase replaced by
// the bottom-up bulk loader: the init batch packs the whole initial entry
// set atomically, then individual mutations follow one batch each. A crash
// anywhere inside the bulk load must recover to the empty store; a crash
// after it must recover the complete packed tree.
func bptreeBulkWorkload(ps int, initial []bptree.Entry, ops []treeOp, ckptEvery int) workload {
	tcfg := bptree.Config{Codec: bptree.Wide}
	const superPage = pager.PageID(2)
	// The recovered tree at sequence s holds initial + ops[:s-1], which is
	// the same model as loading the initial entries as plain inserts.
	allOps := make([]treeOp, 0, len(initial)+len(ops))
	for _, e := range initial {
		allOps = append(allOps, treeOp{e: e})
	}
	allOps = append(allOps, ops...)
	mk := func(bool) []step {
		var tree *bptree.Tree
		writeSuper := func(w *pager.WALStore) error {
			m := tree.Meta()
			data := make([]byte, ps)
			binary.LittleEndian.PutUint32(data[0:4], uint32(m.Root))
			binary.LittleEndian.PutUint32(data[4:8], uint32(m.Height))
			binary.LittleEndian.PutUint32(data[8:12], uint32(m.Size))
			return w.Write(&pager.Page{ID: superPage, Data: data})
		}
		steps := []step{{"bulkinit", func(w *pager.WALStore) error {
			return pager.RunBatch(w, func() error {
				sp, err := w.Allocate()
				if err != nil {
					return err
				}
				if sp.ID != superPage {
					return fmt.Errorf("superblock got page %d, want %d", sp.ID, superPage)
				}
				tree, err = bptree.New(w, tcfg)
				if err != nil {
					return err
				}
				if err := tree.BulkLoadSorted(initial, 0.9); err != nil {
					return err
				}
				return writeSuper(w)
			})
		}}}
		for i, op := range ops {
			op := op
			steps = append(steps, step{fmt.Sprintf("op%d", i), func(w *pager.WALStore) error {
				return pager.RunBatch(w, func() error {
					var err error
					if op.del {
						err = tree.Delete(op.e.Key, op.e.Val)
					} else {
						err = tree.Insert(op.e)
					}
					if err != nil {
						return err
					}
					return writeSuper(w)
				})
			}})
			if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
				steps = append(steps, step{fmt.Sprintf("ckpt%d", i), func(w *pager.WALStore) error {
					return w.Checkpoint()
				}})
			}
		}
		return steps
	}
	check := func(t *testing.T, w *pager.WALStore, seq uint64) {
		t.Helper()
		if seq == 0 {
			return // crash before the bulk load committed
		}
		sp, err := w.Read(superPage)
		if err != nil {
			t.Fatalf("seq %d: read superblock: %v", seq, err)
		}
		m := bptree.Meta{
			Root:   pager.PageID(binary.LittleEndian.Uint32(sp.Data[0:4])),
			Height: int(binary.LittleEndian.Uint32(sp.Data[4:8])),
			Size:   int(binary.LittleEndian.Uint32(sp.Data[8:12])),
		}
		tr, err := bptree.Attach(w, tcfg, m)
		if err != nil {
			t.Fatalf("seq %d: attach recovered tree %+v: %v", seq, m, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("seq %d: recovered bulk-built tree invariants: %v", seq, err)
		}
		var got []bptree.Entry
		if err := tr.Range(-1e300, 1e300, func(e bptree.Entry) bool {
			got = append(got, e)
			return true
		}); err != nil {
			t.Fatalf("seq %d: range over recovered tree: %v", seq, err)
		}
		want := entriesAfter(allOps, len(initial)+int(seq)-1)
		if len(got) != len(want) {
			t.Fatalf("seq %d: recovered tree has %d entries, want %d", seq, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seq %d: entry %d is %+v, want %+v", seq, i, got[i], want[i])
			}
		}
	}
	return workload{pageSize: ps, cfg: pager.WALConfig{}, make: mk, check: check}
}

// TestCrashSweepBPTreeBulk sweeps a workload whose tree is built with the
// bottom-up bulk loader inside one atomic batch (a multi-level tree at this
// page size), then mutated and checkpointed. Recovery must yield either the
// empty store or the complete packed tree plus the committed mutations —
// never a partial bulk load.
func TestCrashSweepBPTreeBulk(t *testing.T) {
	initial := make([]bptree.Entry, 40)
	for i := range initial {
		initial[i] = bptree.Entry{Key: float64(i * 3), Val: uint64(i), Aux: float64(i) / 2}
	}
	bptree.SortEntries(initial)
	ops := []treeOp{
		{e: bptree.Entry{Key: 1, Val: 1000, Aux: 0.5}},
		{del: true, e: bptree.Entry{Key: 33, Val: 11}},
		{e: bptree.Entry{Key: 200, Val: 1001, Aux: 7}},
		{del: true, e: bptree.Entry{Key: 0, Val: 0}},
		{e: bptree.Entry{Key: 34, Val: 1002, Aux: 3}},
	}
	wl := bptreeBulkWorkload(256, initial, ops, 3)
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			runSweep(t, mode, wl)
		})
	}
}

// TestCrashSweepBPTree sweeps a mixed insert/delete workload that forces a
// leaf split, verifying after every crash point that the recovered tree
// attaches, passes its structural invariants and holds exactly the
// committed entries.
func TestCrashSweepBPTree(t *testing.T) {
	keys := []float64{7, 3, 11, 1, 9, 5, 13, 2, 8, 12, 4, 10, 6}
	var ops []treeOp
	for _, k := range keys {
		ops = append(ops, treeOp{e: bptree.Entry{Key: k, Val: uint64(k * 100), Aux: k / 2}})
	}
	ops = append(ops,
		treeOp{del: true, e: bptree.Entry{Key: 3, Val: 300}},
		treeOp{del: true, e: bptree.Entry{Key: 9, Val: 900}},
	)
	wl := bptreeWorkload(256, ops, 6)
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			runSweep(t, mode, wl)
		})
	}
}

// TestCrashDuringSplitRecovery enumerates every crash point of an
// ascending-insert workload that grows the tree to height 3 on tiny pages,
// so the sweep crosses repeated leaf splits, internal splits and two root
// splits. After each crash the recovered tree must re-attach with correct
// key order, node fill and reachability (CheckInvariants) and hold exactly
// the committed prefix of inserts.
func TestCrashDuringSplitRecovery(t *testing.T) {
	const ps = 128
	// Find how many ascending inserts reach height 3 at this page size.
	sim, err := bptree.New(pager.NewMemStore(ps), bptree.Config{Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	var ops []treeOp
	for k := 1; sim.Height() < 3; k++ {
		e := bptree.Entry{Key: float64(k), Val: uint64(k), Aux: float64(k) / 4}
		if err := sim.Insert(e); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, treeOp{e: e})
	}
	t.Logf("height 3 after %d ascending inserts", len(ops))
	wl := bptreeWorkload(ps, ops, 0)
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			runSweep(t, mode, wl)
		})
	}
}

// TestCrashSweepKinetic builds a kinetic structure — dozens of pages
// allocated and written in one atomic batch — and sweeps every crash point
// of the build and the following checkpoint. Recovery must yield either no
// structure (sequence 0) or the complete one (sequence 1), never a partial
// build; a recovered structure must answer range queries exactly like the
// crash-free reference.
func TestCrashSweepKinetic(t *testing.T) {
	objs := make([]kinetic.Object, 10)
	for i := range objs {
		objs[i] = kinetic.Object{
			OID: dual.OID(i + 1),
			Y0:  float64((i * 7) % 17),
			V:   float64(i%5) - 2,
		}
	}
	const tStart, horizon = 0.0, 10.0
	queries := []struct{ yl, yh, tq float64 }{
		{0, 8, 0},
		{2, 14, 4.5},
		{-25, 40, 9.5},
		{5, 6, 2},
	}
	runQueries := func(s *kinetic.Structure) ([][]dual.OID, error) {
		var res [][]dual.OID
		for _, q := range queries {
			var ids []dual.OID
			if err := s.Query(q.yl, q.yh, q.tq, func(id dual.OID) {
				ids = append(ids, id)
			}); err != nil {
				return nil, err
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			res = append(res, ids)
		}
		return res, nil
	}

	var refMeta kinetic.Meta
	var refResults [][]dual.OID
	mk := func(ref bool) []step {
		return []step{
			{"build", func(w *pager.WALStore) error {
				s, err := kinetic.Build(w, objs, tStart, horizon)
				if err != nil {
					return err
				}
				if ref {
					refMeta = s.Meta()
					refResults, err = runQueries(s)
					if err != nil {
						return err
					}
				}
				return nil
			}},
			{"checkpoint", func(w *pager.WALStore) error { return w.Checkpoint() }},
		}
	}
	check := func(t *testing.T, w *pager.WALStore, seq uint64) {
		t.Helper()
		if seq == 0 {
			return // the build never committed; nothing to reopen
		}
		s, err := kinetic.Reopen(w, refMeta)
		if err != nil {
			t.Fatalf("seq %d: reopen recovered structure: %v", seq, err)
		}
		got, err := runQueries(s)
		if err != nil {
			t.Fatalf("seq %d: query recovered structure: %v", seq, err)
		}
		for i := range queries {
			if fmt.Sprint(got[i]) != fmt.Sprint(refResults[i]) {
				t.Fatalf("seq %d: query %d returned %v, want %v", seq, i, got[i], refResults[i])
			}
		}
	}
	wl := workload{pageSize: 256, cfg: pager.WALConfig{}, make: mk, check: check}
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			runSweep(t, mode, wl)
		})
	}
}

// TestCrashDuringRecoverySweep crashes the workload, then crashes recovery
// itself at every one of its own crash points, then recovers for real.
// Recovery must be idempotent: the interrupted attempt must not destroy
// committed data or manufacture uncommitted data, so the final state obeys
// the same oracle as a single-crash run. A few representative first-crash
// points are sampled per mode to keep the double sweep bounded.
func TestCrashDuringRecoverySweep(t *testing.T) {
	wl := rawWorkload(pager.WALConfig{})
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			shadows, n, probe := runReference(t, mode, wl)
			samples := map[int]struct{}{1: {}, n / 4: {}, n / 2: {}, 3 * n / 4: {}, n: {}}
			for k := range samples {
				if k < 1 {
					continue
				}
				media := NewMedia(mode, k)
				base := NewBase(media, wl.pageSize)
				log := NewLog(media)
				lastSeq, failed := crashRun(t, mode, k, wl, base, log)
				if failed == nil {
					t.Fatalf("mode %v point %d: workload survived its crash", mode, k)
				}

				// Count recovery's own crash points.
				mc := NewMedia(mode, 0)
				if _, err := pager.OpenWALStore(base.Survivor(mc), log.Survivor(mc), wl.cfg); err != nil {
					t.Fatalf("mode %v point %d: recovery failed: %v", mode, k, err)
				}
				for j := 1; j <= mc.Points(); j++ {
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("mode %v point %d/recovery %d: panic: %v", mode, k, j, r)
							}
						}()
						m2 := NewMedia(mode, j)
						sb, sl := base.Survivor(m2), log.Survivor(m2)
						if _, err := pager.OpenWALStore(sb, sl, wl.cfg); err == nil {
							t.Fatalf("mode %v point %d/recovery %d: interrupted recovery reported success", mode, k, j)
						} else if !errors.Is(err, ErrCrash) {
							t.Errorf("mode %v point %d/recovery %d: crash surfaced untyped: %v", mode, k, j, err)
						}
						// Crash-free recovery of what the interrupted
						// attempt left behind.
						m3 := NewMedia(mode, 0)
						w, err := pager.OpenWALStore(sb.Survivor(m3), sl.Survivor(m3), wl.cfg)
						if err != nil {
							t.Fatalf("mode %v point %d/recovery %d: second recovery failed: %v", mode, k, j, err)
						}
						seq := w.CommittedSeq()
						if seq != lastSeq && seq != lastSeq+1 {
							t.Fatalf("mode %v point %d/recovery %d: recovered seq %d, crash run committed %d", mode, k, j, seq, lastSeq)
						}
						got := dumpStore(t, w, probe)
						if d := dumpDiff(got, shadows[seq]); d != "" {
							t.Fatalf("mode %v point %d/recovery %d: state at seq %d diverges: %s", mode, k, j, seq, d)
						}
					}()
				}
			}
		})
	}
}
