package crashtest

import (
	"testing"

	"mobidx/internal/pager"
)

// txnGroupWorkload drives explicit transactions through a group-commit
// WALStore: allocs, rewrites, frees, a rollback, an implicit batch and a
// checkpoint, all on the deferred-sync commit path. Run through the
// sweep it proves the group-commit protocol's crash story: a crash at
// any append or sync boundary — including the torn tail TearLast leaves
// behind when the machine dies mid group sync — recovers to exactly the
// last durable commit, never a half-applied batch.
//
// The sweep's oracle also covers the one new recovery shape group commit
// introduces: a crash after the commit record reached the log but before
// the committer's waitDurable returned recovers to lastSeq+1 under
// KeepAll (the record survived) and to lastSeq under LoseUnsynced and
// TearLast (the unsynced record is gone or torn).
func txnGroupWorkload() workload {
	const ps = 128
	pat := func(tag byte) []byte {
		buf := make([]byte, ps)
		for i := range buf {
			buf[i] = tag ^ byte(i*5)
		}
		return buf
	}
	mk := func(bool) []step {
		var a, b, c pager.PageID
		alloc := func(t *pager.Txn, id *pager.PageID) error {
			p, err := t.Allocate()
			if err != nil {
				return err
			}
			*id = p.ID
			return nil
		}
		wr := func(t *pager.Txn, id pager.PageID, tag byte) error {
			return t.Write(&pager.Page{ID: id, Data: pat(tag)})
		}
		// inTxn runs fn inside one explicit transaction, committing on
		// success and rolling back on failure, like RunBatch does for the
		// implicit protocol.
		inTxn := func(w *pager.WALStore, fn func(t *pager.Txn) error) error {
			txn, err := w.BeginTxn()
			if err != nil {
				return err
			}
			if err := fn(txn); err != nil {
				_ = txn.Rollback()
				return err
			}
			return txn.Commit()
		}
		return []step{
			{"txn-alloc-ab", func(w *pager.WALStore) error {
				return inTxn(w, func(t *pager.Txn) error {
					if err := alloc(t, &a); err != nil {
						return err
					}
					if err := alloc(t, &b); err != nil {
						return err
					}
					if err := wr(t, a, 0x1A); err != nil {
						return err
					}
					return wr(t, b, 0x1B)
				})
			}},
			{"txn-rewrite-a-alloc-c", func(w *pager.WALStore) error {
				return inTxn(w, func(t *pager.Txn) error {
					if err := wr(t, a, 0x2A); err != nil {
						return err
					}
					if err := alloc(t, &c); err != nil {
						return err
					}
					return wr(t, c, 0x1C)
				})
			}},
			{"txn-rollback", func(w *pager.WALStore) error {
				// A rollback leaves no durable or visible trace; the shadow
				// recorded after this step equals the previous one.
				txn, err := w.BeginTxn()
				if err != nil {
					return err
				}
				if err := wr(txn, b, 0x66); err != nil {
					_ = txn.Rollback()
					return err
				}
				return txn.Rollback()
			}},
			{"checkpoint", func(w *pager.WALStore) error { return w.Checkpoint() }},
			{"txn-free-b-write-a", func(w *pager.WALStore) error {
				return inTxn(w, func(t *pager.Txn) error {
					if err := t.Free(b); err != nil {
						return err
					}
					return wr(t, a, 0x3A)
				})
			}},
			{"implicit-batch-write-c", func(w *pager.WALStore) error {
				// The implicit protocol rides the same group-sync path.
				return pager.RunBatch(w, func() error {
					return w.Write(&pager.Page{ID: c, Data: pat(0x2C)})
				})
			}},
			{"txn-final-write-a", func(w *pager.WALStore) error {
				return inTxn(w, func(t *pager.Txn) error {
					return wr(t, a, 0x4A)
				})
			}},
		}
	}
	return workload{pageSize: ps, cfg: pager.WALConfig{GroupCommit: true}, make: mk}
}

// TestCrashSweepGroupCommitTxn kills the group-commit txn workload at
// every write/sync boundary in all three crash modes; TearLast is the
// group-commit torn-tail case.
func TestCrashSweepGroupCommitTxn(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			runSweep(t, mode, txnGroupWorkload())
		})
	}
}
