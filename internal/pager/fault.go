package pager

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Storage fault taxonomy. Every failure a Store can produce falls into one
// of three classes (see DESIGN.md "Storage robustness"):
//
//   - permanent: the operation failed and will keep failing (bad page id,
//     closed store, media error). Propagated to the caller.
//   - transient: the operation failed but may succeed if retried (injected
//     by FaultStore with Transient: true; a RetryStore absorbs these).
//   - silent: the operation "succeeded" but the data is wrong (bit rot,
//     torn write). Invisible at this layer; a ChecksumStore converts them
//     into detected ErrPageCorrupt errors.
var (
	// ErrInjected marks failures manufactured by a FaultStore.
	ErrInjected = errors.New("pager: injected fault")
	// ErrTransient marks failures worth retrying; test with IsTransient.
	ErrTransient = errors.New("pager: transient fault")
)

// IsTransient reports whether err is a retryable storage fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// InjectedError is the concrete error returned by FaultStore. It matches
// ErrInjected always and ErrTransient when the fault was transient.
type InjectedError struct {
	Op        string // "read", "write", "alloc", "free"
	Page      PageID // page involved (0 for alloc)
	N         int64  // ordinal of this fault (1-based over the store's life)
	Transient bool
}

// Error implements error.
func (e *InjectedError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("pager: injected %s %s fault #%d (page %d)", kind, e.Op, e.N, e.Page)
}

// Is lets errors.Is match both ErrInjected and (when transient) ErrTransient.
func (e *InjectedError) Is(target error) bool {
	return target == ErrInjected || (e.Transient && target == ErrTransient)
}

// OpFaults configures fault injection for one operation class. Both
// triggers may be active at once; an operation faults if either fires.
type OpFaults struct {
	// FailEvery injects a fault on the Nth, 2Nth, 3Nth... operation of the
	// class (counted over the store's lifetime). Zero disables.
	FailEvery int64
	// FailProb independently faults each operation with this probability,
	// drawn from the store's seeded generator. Zero disables.
	FailProb float64
}

func (o OpFaults) fires(count int64, rng *rand.Rand) bool {
	if o.FailEvery > 0 && count%o.FailEvery == 0 {
		return true
	}
	return o.FailProb > 0 && rng.Float64() < o.FailProb
}

// FaultConfig configures a FaultStore. The zero value injects nothing.
type FaultConfig struct {
	// Seed seeds the store's private random generator; runs with the same
	// seed and operation sequence inject exactly the same faults.
	Seed int64
	// Per-class triggers.
	Read, Write, Alloc, Free OpFaults
	// TornWrites makes an injected write fault tear the page: a random
	// non-empty prefix of the new data reaches the underlying store, the
	// rest of the slot keeps its previous contents, and the write still
	// returns an error (the caller knows it failed; the on-disk page is
	// now silently inconsistent, as after a crash mid-write).
	TornWrites bool
	// BitFlips makes an injected read fault silent: the read succeeds but
	// one random bit of the returned data is flipped (bit rot). Without a
	// ChecksumStore above, the corruption is invisible.
	BitFlips bool
	// Transient marks injected errors retryable (see RetryStore). Torn
	// writes and bit flips are never transient: retrying cannot undo them.
	Transient bool
	// Stall turns injected read faults into stragglers instead of errors:
	// the read sleeps this long and then succeeds. A stalled shard is the
	// third failure mode a serving layer must survive (after fail-fast and
	// fail-silent) — it holds resources while producing nothing, which is
	// what hedged reads exist to cut short. Zero disables stalling; when
	// set, it takes precedence over BitFlips for read faults.
	Stall time.Duration
	// MaxFaults caps the total number of injected faults; zero means
	// unlimited. Once spent, the store behaves like its underlying store —
	// the workload reaches quiescence.
	MaxFaults int64
}

// FaultCounters reports what a FaultStore has done so far.
type FaultCounters struct {
	Reads, Writes, Allocs, Frees         int64 // operations seen
	ReadFaults, WriteFaults, AllocFaults int64 // faults injected
	FreeFaults                           int64
	TornWrites, BitFlips                 int64 // silent corruptions among the above
	Stalls                               int64 // read faults converted to stragglers
}

// Total returns the total number of injected faults.
func (c FaultCounters) Total() int64 {
	return c.ReadFaults + c.WriteFaults + c.AllocFaults + c.FreeFaults
}

// FaultStore wraps a Store and injects faults deterministically from a
// seed: errors, torn writes, and bit flips, per FaultConfig. It is the
// test substrate for every robustness property in this repository — wrap
// any store with it and assert that the structure above survives.
//
// Composition order matters: place the FaultStore directly above the store
// it "damages", a ChecksumStore above it to detect silent corruption, and
// a RetryStore above that to absorb transient errors.
type FaultStore struct {
	mu    sync.Mutex
	under Store
	cfg   FaultConfig
	rng   *rand.Rand
	ctr   FaultCounters
}

// NewFaultStore wraps under with deterministic fault injection.
func NewFaultStore(under Store, cfg FaultConfig) *FaultStore {
	return &FaultStore{under: under, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counters returns a snapshot of the operation and fault counters.
func (f *FaultStore) Counters() FaultCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctr
}

// SetConfig replaces the fault schedule atomically. It is safe to call
// while other goroutines are mid-operation on the store — the chaos
// harness flips schedules under live traffic (a healthy shard suddenly
// starts failing, a storm passes) — and the new schedule applies to every
// operation that enters after the call. Operation and fault counters keep
// running across the change; the random generator is NOT reseeded, so a
// run remains deterministic as a whole: same seed, same operation
// sequence, same SetConfig points → same faults.
func (f *FaultStore) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
}

// UpdateConfig applies fn to the current schedule under the store's lock,
// for read-modify-write changes (e.g. raising MaxFaults mid-storm)
// without racing a concurrent SetConfig.
func (f *FaultStore) UpdateConfig(fn func(*FaultConfig)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(&f.cfg)
}

// Config returns the schedule currently in force.
func (f *FaultStore) Config() FaultConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg
}

// budgetLeft reports whether another fault may be injected (caller holds mu).
func (f *FaultStore) budgetLeft() bool {
	return f.cfg.MaxFaults == 0 || f.ctr.Total() < f.cfg.MaxFaults
}

// PageSize implements Store.
func (f *FaultStore) PageSize() int { return f.under.PageSize() }

// Allocate implements Store.
func (f *FaultStore) Allocate() (*Page, error) {
	f.mu.Lock()
	f.ctr.Allocs++
	if f.budgetLeft() && f.cfg.Alloc.fires(f.ctr.Allocs, f.rng) {
		f.ctr.AllocFaults++
		err := &InjectedError{Op: "alloc", N: f.ctr.Total(), Transient: f.cfg.Transient}
		f.mu.Unlock()
		return nil, err
	}
	f.mu.Unlock()
	return f.under.Allocate()
}

// Read implements Store, optionally stalling or flipping a bit of the
// result. Every configuration field is captured while the lock is held —
// SetConfig may swap the schedule between the decision and the read.
func (f *FaultStore) Read(id PageID) (*Page, error) {
	f.mu.Lock()
	f.ctr.Reads++
	fault := f.budgetLeft() && f.cfg.Read.fires(f.ctr.Reads, f.rng)
	var (
		flip  bool
		bit   int
		stall time.Duration
	)
	if fault {
		f.ctr.ReadFaults++
		switch {
		case f.cfg.Stall > 0:
			f.ctr.Stalls++
			stall = f.cfg.Stall
		case f.cfg.BitFlips:
			f.ctr.BitFlips++
			flip = true
			bit = f.rng.Intn(8 * f.under.PageSize())
		default:
			err := &InjectedError{Op: "read", Page: id, N: f.ctr.Total(), Transient: f.cfg.Transient}
			f.mu.Unlock()
			return nil, err
		}
	}
	f.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	p, err := f.under.Read(id)
	if err != nil {
		return nil, err
	}
	if flip {
		p.Data[bit/8] ^= 1 << (bit % 8)
	}
	return p, nil
}

// Write implements Store, optionally tearing the page.
func (f *FaultStore) Write(p *Page) error {
	f.mu.Lock()
	f.ctr.Writes++
	fault := f.budgetLeft() && f.cfg.Write.fires(f.ctr.Writes, f.rng)
	if !fault {
		f.mu.Unlock()
		return f.under.Write(p)
	}
	f.ctr.WriteFaults++
	torn := f.cfg.TornWrites && len(p.Data) > 1
	var cut int
	if torn {
		f.ctr.TornWrites++
		cut = 1 + f.rng.Intn(len(p.Data)-1)
	}
	err := &InjectedError{Op: "write", Page: p.ID, N: f.ctr.Total(), Transient: f.cfg.Transient && !torn}
	f.mu.Unlock()
	if torn {
		// The prefix reaches the store, the suffix keeps whatever the slot
		// held before — exactly a crash mid-write.
		data := make([]byte, len(p.Data))
		if old, rerr := f.under.Read(p.ID); rerr == nil {
			copy(data, old.Data)
		}
		copy(data[:cut], p.Data[:cut])
		// Best effort: if even the torn write fails, the original error
		// still describes the situation.
		//mobidxlint:allow errdrop -- torn-write injection is the point; the injected error is already returned
		_ = f.under.Write(&Page{ID: p.ID, Data: data})
	}
	return err
}

// Free implements Store.
func (f *FaultStore) Free(id PageID) error {
	f.mu.Lock()
	f.ctr.Frees++
	if f.budgetLeft() && f.cfg.Free.fires(f.ctr.Frees, f.rng) {
		f.ctr.FreeFaults++
		err := &InjectedError{Op: "free", Page: id, N: f.ctr.Total(), Transient: f.cfg.Transient}
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	return f.under.Free(id)
}

// Stats implements Store, reporting the underlying store's traffic.
func (f *FaultStore) Stats() Stats { return f.under.Stats() }

// PagesInUse implements Store.
func (f *FaultStore) PagesInUse() int { return f.under.PagesInUse() }

// Sync forwards to the underlying store's durability point, if any. Faults
// are not injected on Sync — per-operation injection already covers the
// write path.
func (f *FaultStore) Sync() error {
	if s, ok := f.under.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Begin forwards Batcher so batched mutations keep their atomicity when a
// FaultStore sits between an index and a WALStore (the serving-path fault
// position: injected faults hit the index's reads and writes while the
// batch protocol underneath stays intact). Batch control operations are
// never faulted — injection models data-path failures, and a faulted
// Begin would make every composed workload die before doing anything.
func (f *FaultStore) Begin() error {
	if b, ok := f.under.(Batcher); ok {
		return b.Begin()
	}
	return nil
}

// Commit forwards Batcher.
func (f *FaultStore) Commit() error {
	if b, ok := f.under.(Batcher); ok {
		return b.Commit()
	}
	return nil
}

// Rollback forwards Batcher.
func (f *FaultStore) Rollback() error {
	if b, ok := f.under.(Batcher); ok {
		return b.Rollback()
	}
	return nil
}

// Adopt forwards Adopter so WAL recovery works through a FaultStore.
func (f *FaultStore) Adopt(id PageID) error {
	a, ok := f.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support adopt", f.under)
	}
	return a.Adopt(id)
}

// Disown forwards Adopter.
func (f *FaultStore) Disown(id PageID) error {
	a, ok := f.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support disown", f.under)
	}
	return a.Disown(id)
}
