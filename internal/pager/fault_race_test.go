package pager

import (
	"sync"
	"testing"
	"time"
)

// TestFaultStoreConfigRace is the race-gate regression for concurrent
// schedule mutation: the chaos harness drives shards from many goroutines
// while flipping fault schedules on and off (storms arriving and passing),
// so SetConfig/UpdateConfig/Config must be safe against in-flight
// operations. Run under -race this catches any configuration field read
// outside the store's lock (the pre-fix Read re-read cfg.BitFlips after
// unlocking).
func TestFaultStoreConfigRace(t *testing.T) {
	base := NewMemStore(128)
	fs := NewFaultStore(base, FaultConfig{Seed: 7})
	p, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected while a faulting schedule is live;
				// the property under test is memory safety, not success.
				if pg, err := fs.Read(id); err == nil {
					copy(buf, pg.Data)
				}
				//mobidxlint:allow errdrop -- injected faults are the point of this stress loop
				_ = fs.Write(&Page{ID: id, Data: buf})
			}
		}()
	}
	schedules := []FaultConfig{
		{Seed: 7},
		{Seed: 7, Read: OpFaults{FailEvery: 2}, Transient: true},
		{Seed: 7, Write: OpFaults{FailProb: 0.5}, TornWrites: true},
		{Seed: 7, Read: OpFaults{FailEvery: 3}, BitFlips: true},
		{Seed: 7, Read: OpFaults{FailEvery: 2}, Stall: time.Microsecond},
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		fs.SetConfig(schedules[i%len(schedules)])
		fs.UpdateConfig(func(c *FaultConfig) { c.MaxFaults = int64(1 + i%8) })
		_ = fs.Config()
		_ = fs.Counters()
	}
	close(stop)
	wg.Wait()
}

// TestFaultStoreStall checks the straggler mode: a firing read fault
// sleeps and then succeeds with intact data, and is counted as a stall,
// not an error or corruption.
func TestFaultStoreStall(t *testing.T) {
	base := NewMemStore(64)
	p, err := base.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		p.Data[i] = byte(i)
	}
	if err := base.Write(p); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(base, FaultConfig{
		Seed:  1,
		Read:  OpFaults{FailEvery: 2},
		Stall: 5 * time.Millisecond,
	})
	start := time.Now()
	var stalledReads int
	for i := 0; i < 4; i++ {
		got, err := fs.Read(p.ID)
		if err != nil {
			t.Fatalf("stalled read %d returned error %v, want success", i, err)
		}
		for j := range got.Data {
			if got.Data[j] != byte(j) {
				t.Fatalf("stalled read corrupted byte %d", j)
			}
		}
		stalledReads++
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("4 reads with every-2nd stalling 5ms took %v, want >= 10ms", elapsed)
	}
	ctr := fs.Counters()
	if ctr.Stalls != 2 || ctr.ReadFaults != 2 {
		t.Fatalf("counters = %+v, want 2 stalls among 2 read faults", ctr)
	}
	if ctr.BitFlips != 0 {
		t.Fatalf("stall mode flipped bits: %+v", ctr)
	}
}

// TestFaultStoreSetConfigMidRun pins the mid-run schedule flip the chaos
// harness relies on: a store loads clean, is switched to always-fail, and
// switched back — each phase behaving exactly per the schedule in force.
func TestFaultStoreSetConfigMidRun(t *testing.T) {
	base := NewMemStore(64)
	fs := NewFaultStore(base, FaultConfig{Seed: 3})
	p, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(p.ID); err != nil {
		t.Fatalf("clean phase read failed: %v", err)
	}
	fs.SetConfig(FaultConfig{Seed: 3, Read: OpFaults{FailEvery: 1}})
	if _, err := fs.Read(p.ID); err == nil {
		t.Fatal("always-fail phase read succeeded")
	}
	fs.SetConfig(FaultConfig{Seed: 3})
	if _, err := fs.Read(p.ID); err != nil {
		t.Fatalf("recovered phase read failed: %v", err)
	}
}
