package pager

import (
	"errors"
	"testing"
)

func TestFaultStoreFailEvery(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128), FaultConfig{Write: OpFaults{FailEvery: 3}})
	p, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 0; i < 9; i++ {
		if err := fs.Write(p); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: error %v does not match ErrInjected", i, err)
			}
			if IsTransient(err) {
				t.Fatalf("write %d: fault should be permanent by default", i)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("FailEvery=3 over 9 writes: %d failures, want 3", failures)
	}
	ctr := fs.Counters()
	if ctr.Writes != 9 || ctr.WriteFaults != 3 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestFaultStoreDeterministic(t *testing.T) {
	run := func() []bool {
		fs := NewFaultStore(NewMemStore(128), FaultConfig{Seed: 42, Read: OpFaults{FailProb: 0.5}})
		p, _ := fs.Allocate()
		if err := fs.Write(p); err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := fs.Read(p.ID)
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestFaultStoreMaxFaults(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128), FaultConfig{
		Write:     OpFaults{FailEvery: 1},
		MaxFaults: 2,
	})
	p, _ := fs.Allocate()
	var failures int
	for i := 0; i < 10; i++ {
		if err := fs.Write(p); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("MaxFaults=2: %d failures, want 2", failures)
	}
}

func TestFaultStoreTransientMarking(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128), FaultConfig{
		Alloc:     OpFaults{FailEvery: 1},
		Transient: true,
	})
	_, err := fs.Allocate()
	if err == nil || !IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("transient alloc fault: got %v", err)
	}
}

func TestFaultStoreBitFlip(t *testing.T) {
	under := NewMemStore(128)
	fs := NewFaultStore(under, FaultConfig{Seed: 7, Read: OpFaults{FailEvery: 1}, BitFlips: true})
	p, _ := fs.Allocate()
	for i := range p.Data {
		p.Data[i] = 0xAA
	}
	if err := fs.Write(p); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(p.ID)
	if err != nil {
		t.Fatalf("bit flips must be silent, got error %v", err)
	}
	diff := 0
	for i := range got.Data {
		if got.Data[i] != 0xAA {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d corrupted bytes, want exactly 1", diff)
	}
	if fs.Counters().BitFlips != 1 {
		t.Fatalf("counters = %+v", fs.Counters())
	}
	// The stored page is untouched; only the returned copy was flipped.
	clean, _ := under.Read(p.ID)
	for i := range clean.Data {
		if clean.Data[i] != 0xAA {
			t.Fatalf("underlying page corrupted at byte %d", i)
		}
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	under := NewMemStore(128)
	fs := NewFaultStore(under, FaultConfig{Seed: 3, Write: OpFaults{FailEvery: 2}, TornWrites: true})
	p, _ := fs.Allocate()
	for i := range p.Data {
		p.Data[i] = 0x11
	}
	if err := fs.Write(p); err != nil { // write 1: clean
		t.Fatal(err)
	}
	for i := range p.Data {
		p.Data[i] = 0x22
	}
	err := fs.Write(p) // write 2: torn
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write must still error, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("a torn write is never transient")
	}
	got, rerr := under.Read(p.ID)
	if rerr != nil {
		t.Fatal(rerr)
	}
	var newB, oldB int
	for _, x := range got.Data {
		switch x {
		case 0x22:
			newB++
		case 0x11:
			oldB++
		default:
			t.Fatalf("unexpected byte %#x after torn write", x)
		}
	}
	if newB == 0 || oldB == 0 {
		t.Fatalf("torn write should mix old and new data (new=%d old=%d)", newB, oldB)
	}
	if fs.Counters().TornWrites != 1 {
		t.Fatalf("counters = %+v", fs.Counters())
	}
}
