// Package faulttest is the storage-fault sweep harness: it drives every
// index structure in the repository — each Index1D implementation, the
// kinetic structure, and the 2-D indexes — through a build/query/update/
// query workload on top of a fault-injecting page store, and asserts the
// three robustness properties the pager substrate promises:
//
//  1. no operation ever panics, whatever the store does;
//  2. every storage failure surfaces to the caller as an error;
//  3. a store that survives to quiescence (transient faults absorbed by a
//     RetryStore) answers queries exactly as a fault-free store would.
//
// The workloads are deterministic: the same motions, updates and queries
// every run, so a result fingerprint computed on a clean MemStore is the
// ground truth for every faulted run of the same workload.
package faulttest

import (
	"fmt"
	"sort"
	"strings"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
	"mobidx/internal/twod"
)

// PageSize is the page size every sweep runs at: small enough that even
// tiny workloads span many pages (deep trees, real splits and merges).
const PageSize = 512

// Workload is one index exercised by the sweep. Run builds the structure
// on the given store, mutates it, and queries it; the returned fingerprint
// canonically encodes every query's result set. Run stops at the first
// error.
type Workload struct {
	Name string
	Run  func(store pager.Store) (string, error)
}

var terrain1D = dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

// motions1D is the deterministic 1-D population: speeds sweep the band in
// both directions, positions stride the terrain.
func motions1D(n int) []dual.Motion {
	ms := make([]dual.Motion, n)
	for i := range ms {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		ms[i] = dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), T0: 0, V: v}
	}
	return ms
}

var queries1D = []dual.MORQuery{
	{Y1: 100, Y2: 300, T1: 10, T2: 40},
	{Y1: 0, Y2: 1000, T1: 0, T2: 5},
	{Y1: 450, Y2: 480, T1: 100, T2: 150},
	{Y1: 700, Y2: 900, T1: 0, T2: 60},
}

// fingerprint canonicalizes one result set: sorted, deduplicated OIDs.
func fingerprint(ids []dual.OID) string {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	var prev dual.OID
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		fmt.Fprintf(&sb, "%d,", id)
		prev = id
	}
	return sb.String()
}

// index1DWorkload builds, queries, updates a third of the population, and
// queries again.
func index1DWorkload(name string, mk func(pager.Store) (core.Index1D, error)) Workload {
	return Workload{Name: name, Run: func(store pager.Store) (string, error) {
		idx, err := mk(store)
		if err != nil {
			return "", err
		}
		ms := motions1D(48)
		for _, m := range ms {
			if err := idx.Insert(m); err != nil {
				return "", err
			}
		}
		var out strings.Builder
		runQueries := func() error {
			for _, q := range queries1D {
				var ids []dual.OID
				if err := idx.Query(q, func(id dual.OID) { ids = append(ids, id) }); err != nil {
					return err
				}
				out.WriteString(fingerprint(ids))
				out.WriteByte(';')
			}
			return nil
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		// A motion change is Delete(old) + Insert(new), the paper's model.
		for i := 0; i < len(ms); i += 3 {
			if err := idx.Delete(ms[i]); err != nil {
				return "", err
			}
			ms[i].T0 = 50
			ms[i].Y0 = float64((i*211 + 37) % 1000)
			if err := idx.Insert(ms[i]); err != nil {
				return "", err
			}
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		return out.String(), nil
	}}
}

// bulkIndex1D is an Index1D with a bottom-up builder — what the bulk
// workload exercises under faults.
type bulkIndex1D interface {
	core.Index1D
	BulkLoad([]dual.Motion) error
}

// index1DBulkWorkload is index1DWorkload with the build phase replaced by
// BulkLoad: the bottom-up packed index must survive the same faults, and
// subsequent updates and queries must behave identically.
func index1DBulkWorkload(name string, mk func(pager.Store) (bulkIndex1D, error)) Workload {
	return Workload{Name: name, Run: func(store pager.Store) (string, error) {
		idx, err := mk(store)
		if err != nil {
			return "", err
		}
		ms := motions1D(48)
		if err := idx.BulkLoad(ms); err != nil {
			return "", err
		}
		var out strings.Builder
		runQueries := func() error {
			for _, q := range queries1D {
				var ids []dual.OID
				if err := idx.Query(q, func(id dual.OID) { ids = append(ids, id) }); err != nil {
					return err
				}
				out.WriteString(fingerprint(ids))
				out.WriteByte(';')
			}
			return nil
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		for i := 0; i < len(ms); i += 3 {
			if err := idx.Delete(ms[i]); err != nil {
				return "", err
			}
			ms[i].T0 = 50
			ms[i].Y0 = float64((i*211 + 37) % 1000)
			if err := idx.Insert(ms[i]); err != nil {
				return "", err
			}
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		return out.String(), nil
	}}
}

var terrain2D = twod.Terrain2D{XMax: 1000, YMax: 1000, VMin: 0.16, VMax: 1.66}

func motions2D(n int) []twod.Motion2D {
	ms := make([]twod.Motion2D, n)
	for i := range ms {
		vx := 0.2 + 0.2*float64(i%7)
		vy := 0.2 + 0.2*float64((i+3)%7)
		if i%2 == 1 {
			vx = -vx
		}
		if i%3 == 1 {
			vy = -vy
		}
		ms[i] = twod.Motion2D{
			OID: dual.OID(i + 1),
			X0:  float64((i * 137) % 1000), Y0: float64((i * 251) % 1000),
			T0: 0, VX: vx, VY: vy,
		}
	}
	return ms
}

var queries2D = []twod.MOR2Query{
	{X1: 100, X2: 400, Y1: 100, Y2: 400, T1: 0, T2: 30},
	{X1: 0, X2: 1000, Y1: 0, Y2: 1000, T1: 0, T2: 1},
	{X1: 600, X2: 700, Y1: 200, Y2: 800, T1: 50, T2: 90},
}

func index2DWorkload(name string, mk func(pager.Store) (twod.Index2D, error)) Workload {
	return Workload{Name: name, Run: func(store pager.Store) (string, error) {
		idx, err := mk(store)
		if err != nil {
			return "", err
		}
		ms := motions2D(40)
		for _, m := range ms {
			if err := idx.Insert(m); err != nil {
				return "", err
			}
		}
		var out strings.Builder
		runQueries := func() error {
			for _, q := range queries2D {
				var ids []dual.OID
				if err := idx.Query(q, func(id dual.OID) { ids = append(ids, id) }); err != nil {
					return err
				}
				out.WriteString(fingerprint(ids))
				out.WriteByte(';')
			}
			return nil
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		for i := 0; i < len(ms); i += 3 {
			if err := idx.Delete(ms[i]); err != nil {
				return "", err
			}
			ms[i].T0 = 40
			ms[i].X0 = float64((i*211 + 37) % 1000)
			if err := idx.Insert(ms[i]); err != nil {
				return "", err
			}
		}
		if err := runQueries(); err != nil {
			return "", err
		}
		return out.String(), nil
	}}
}

// kineticWorkload builds the §3.6 bounded-horizon structure and runs
// instant queries across its window, then destroys it.
func kineticWorkload() Workload {
	return Workload{Name: "kinetic", Run: func(store pager.Store) (string, error) {
		ms := motions1D(48)
		objs := make([]kinetic.Object, len(ms))
		for i, m := range ms {
			objs[i] = kinetic.Object{OID: m.OID, Y0: m.Y0, V: m.V}
		}
		s, err := kinetic.Build(store, objs, 0, 40)
		if err != nil {
			return "", err
		}
		var out strings.Builder
		for _, q := range [][3]float64{{100, 300, 10}, {0, 1000, 0}, {400, 600, 35}, {250, 260, 22}} {
			var ids []dual.OID
			if err := s.Query(q[0], q[1], q[2], func(id dual.OID) { ids = append(ids, id) }); err != nil {
				return "", err
			}
			out.WriteString(fingerprint(ids))
			out.WriteByte(';')
		}
		if err := s.Destroy(); err != nil {
			return "", err
		}
		return out.String(), nil
	}}
}

// Workloads returns every structure the sweep drives: the four Index1D
// implementations, the slow/moving hybrid, the kinetic structure, and the
// two 2-D indexes.
func Workloads() []Workload {
	return []Workload{
		index1DWorkload("dualbp", func(st pager.Store) (core.Index1D, error) {
			return core.NewDualBPlus(st, core.DualBPlusConfig{Terrain: terrain1D, C: 4})
		}),
		index1DWorkload("kddual", func(st pager.Store) (core.Index1D, error) {
			return core.NewKDDual(st, core.KDDualConfig{Terrain: terrain1D})
		}),
		index1DWorkload("rstarseg", func(st pager.Store) (core.Index1D, error) {
			return core.NewRStarSeg(st, core.RStarSegConfig{Terrain: terrain1D})
		}),
		index1DWorkload("parttree", func(st pager.Store) (core.Index1D, error) {
			return core.NewPartTreeDual(st, core.PartTreeDualConfig{Terrain: terrain1D})
		}),
		index1DWorkload("speedpart", func(st pager.Store) (core.Index1D, error) {
			moving, err := core.NewDualBPlus(st, core.DualBPlusConfig{Terrain: terrain1D, C: 4})
			if err != nil {
				return nil, err
			}
			return core.NewSpeedPartitioned(st, core.SpeedPartitionedConfig{Terrain: terrain1D, SlowCutoff: 0.3}, moving)
		}),
		index1DBulkWorkload("dualbp-bulk", func(st pager.Store) (bulkIndex1D, error) {
			return core.NewDualBPlus(st, core.DualBPlusConfig{Terrain: terrain1D, C: 4})
		}),
		kineticWorkload(),
		index2DWorkload("kd4", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewKD4(st, twod.KD4Config{Terrain: terrain2D})
		}),
		index2DWorkload("decomposed", func(st pager.Store) (twod.Index2D, error) {
			return twod.NewDecomposed(st, twod.DecomposedConfig{Terrain: terrain2D, C: 4})
		}),
	}
}

// RunGuarded executes a workload, converting any panic into a reported
// value so the sweep can attribute it to its scenario.
func RunGuarded(w Workload, store pager.Store) (res string, err error, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	res, err = w.Run(store)
	return res, err, nil
}
