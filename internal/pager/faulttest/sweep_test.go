package faulttest

import (
	"errors"
	"fmt"
	"testing"

	"mobidx/internal/pager"
)

// baselines computes each workload's ground-truth fingerprint on a clean
// MemStore. A workload that cannot even run clean is a test bug.
func baselines(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, w := range Workloads() {
		res, err, pan := RunGuarded(w, pager.NewMemStore(PageSize))
		if pan != nil {
			t.Fatalf("%s: clean run panicked: %v", w.Name, pan)
		}
		if err != nil {
			t.Fatalf("%s: clean run failed: %v", w.Name, err)
		}
		if res == "" {
			t.Fatalf("%s: clean run produced an empty fingerprint", w.Name)
		}
		out[w.Name] = res
	}
	return out
}

// TestFaultSweepPermanent fails each operation class at several rates with
// permanent errors. Required: no panic ever, and a run that happens to
// dodge every fault still answers correctly.
func TestFaultSweepPermanent(t *testing.T) {
	base := baselines(t)
	type scenario struct {
		name string
		cfg  pager.FaultConfig
	}
	var scenarios []scenario
	classes := []struct {
		name string
		set  func(*pager.FaultConfig, pager.OpFaults)
	}{
		{"read", func(c *pager.FaultConfig, f pager.OpFaults) { c.Read = f }},
		{"write", func(c *pager.FaultConfig, f pager.OpFaults) { c.Write = f }},
		{"alloc", func(c *pager.FaultConfig, f pager.OpFaults) { c.Alloc = f }},
		{"free", func(c *pager.FaultConfig, f pager.OpFaults) { c.Free = f }},
	}
	for _, cl := range classes {
		for _, every := range []int64{2, 7, 31} {
			cfg := pager.FaultConfig{Seed: 1000 + every}
			cl.set(&cfg, pager.OpFaults{FailEvery: every})
			scenarios = append(scenarios, scenario{
				name: fmt.Sprintf("%s/every=%d", cl.name, every),
				cfg:  cfg,
			})
		}
		cfg := pager.FaultConfig{Seed: 99}
		cl.set(&cfg, pager.OpFaults{FailProb: 0.1})
		scenarios = append(scenarios, scenario{name: cl.name + "/prob=0.1", cfg: cfg})
	}
	for _, w := range Workloads() {
		for _, sc := range scenarios {
			t.Run(w.Name+"/"+sc.name, func(t *testing.T) {
				store := pager.NewFaultStore(pager.NewMemStore(PageSize), sc.cfg)
				res, err, pan := RunGuarded(w, store)
				if pan != nil {
					t.Fatalf("panicked under injected faults: %v", pan)
				}
				if err == nil {
					if store.Counters().Total() != 0 {
						t.Fatal("faults were injected but no error surfaced")
					}
					if res != base[w.Name] {
						t.Fatal("fault-free run diverged from baseline")
					}
					return
				}
				if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
					t.Fatalf("error escaped the storage taxonomy: %v", err)
				}
			})
		}
	}
}

// TestFaultSweepSilentCorruption puts a ChecksumStore above a store that
// flips bits on read or tears pages on write: every failure the workload
// sees must be a detected, typed corruption or the original injected
// error — never garbage decoded into wrong answers.
func TestFaultSweepSilentCorruption(t *testing.T) {
	base := baselines(t)
	scenarios := []struct {
		name string
		cfg  pager.FaultConfig
	}{
		{"bitflip/every=5", pager.FaultConfig{Seed: 5, Read: pager.OpFaults{FailEvery: 5}, BitFlips: true}},
		{"bitflip/every=23", pager.FaultConfig{Seed: 23, Read: pager.OpFaults{FailEvery: 23}, BitFlips: true}},
		{"torn/every=5", pager.FaultConfig{Seed: 7, Write: pager.OpFaults{FailEvery: 5}, TornWrites: true}},
		{"torn/every=23", pager.FaultConfig{Seed: 11, Write: pager.OpFaults{FailEvery: 23}, TornWrites: true}},
	}
	for _, w := range Workloads() {
		for _, sc := range scenarios {
			t.Run(w.Name+"/"+sc.name, func(t *testing.T) {
				faulty := pager.NewFaultStore(pager.NewMemStore(PageSize), sc.cfg)
				cs, err := pager.NewChecksumStore(faulty)
				if err != nil {
					t.Fatal(err)
				}
				res, err, pan := RunGuarded(w, cs)
				if pan != nil {
					t.Fatalf("panicked under silent corruption: %v", pan)
				}
				if err == nil {
					if faulty.Counters().Total() != 0 {
						t.Fatal("corruption was injected but neither detected nor fatal")
					}
					if res != base[w.Name] {
						t.Fatal("fault-free run diverged from baseline")
					}
					return
				}
				if !errors.Is(err, pager.ErrPageCorrupt) && !errors.Is(err, pager.ErrInjected) {
					t.Fatalf("silent corruption produced an untyped failure: %v", err)
				}
			})
		}
	}
}

// TestFaultSweepQuiescence injects transient faults in every class at once
// and absorbs them with a RetryStore: the workload must complete and
// answer every query exactly as the fault-free baseline does.
func TestFaultSweepQuiescence(t *testing.T) {
	base := baselines(t)
	for _, rate := range []float64{0.05, 0.2} {
		for _, w := range Workloads() {
			t.Run(fmt.Sprintf("%s/rate=%v", w.Name, rate), func(t *testing.T) {
				faulty := pager.NewFaultStore(pager.NewMemStore(PageSize), pager.FaultConfig{
					Seed:      31337,
					Read:      pager.OpFaults{FailProb: rate},
					Write:     pager.OpFaults{FailProb: rate},
					Alloc:     pager.OpFaults{FailProb: rate},
					Free:      pager.OpFaults{FailProb: rate},
					Transient: true,
				})
				rs := pager.NewRetryStore(faulty, pager.RetryPolicy{MaxAttempts: 16})
				res, err, pan := RunGuarded(w, rs)
				if pan != nil {
					t.Fatalf("panicked under transient faults: %v", pan)
				}
				if err != nil {
					t.Fatalf("transient faults at rate %v escaped the retry layer: %v", rate, err)
				}
				if faulty.Counters().Total() == 0 {
					t.Fatalf("rate %v injected no faults; sweep is vacuous", rate)
				}
				if res != base[w.Name] {
					t.Fatalf("rate %v: results diverged from fault-free baseline", rate)
				}
			})
		}
	}
}

// TestFaultSweepFullStack composes the production stack — Buffered(Retry(
// Checksum(Fault(Mem)))) — with a bounded fault budget: after the budget
// is spent the store is clean, and the structure must still be exactly
// right.
func TestFaultSweepFullStack(t *testing.T) {
	base := baselines(t)
	for _, w := range Workloads() {
		t.Run(w.Name, func(t *testing.T) {
			faulty := pager.NewFaultStore(pager.NewMemStore(PageSize), pager.FaultConfig{
				Seed:      4242,
				Read:      pager.OpFaults{FailProb: 0.1},
				Write:     pager.OpFaults{FailProb: 0.1},
				Transient: true,
				MaxFaults: 200,
			})
			cs, err := pager.NewChecksumStore(faulty)
			if err != nil {
				t.Fatal(err)
			}
			rs := pager.NewRetryStore(cs, pager.RetryPolicy{MaxAttempts: 16})
			buf := pager.NewBuffered(rs, 4)
			res, err, pan := RunGuarded(w, buf)
			if pan != nil {
				t.Fatalf("panicked under full stack: %v", pan)
			}
			if err != nil {
				t.Fatalf("full stack failed: %v", err)
			}
			if res != base[w.Name] {
				t.Fatal("full-stack results diverged from baseline")
			}
		})
	}
}
