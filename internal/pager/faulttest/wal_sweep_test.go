package faulttest

import (
	"errors"
	"fmt"
	"testing"

	"mobidx/internal/pager"
)

// walOpen opens a WALStore over the given base with a fresh in-memory log.
func walOpen(t *testing.T, base pager.Store) *pager.WALStore {
	t.Helper()
	w, err := pager.OpenWALStore(base, pager.NewMemLog(), pager.WALConfig{})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	return w
}

// walBaselines computes each workload's ground-truth fingerprint through a
// fault-free WALStore, which must agree with the raw-store baseline: the
// WAL layer is transparent to correct executions.
func walBaselines(t *testing.T) map[string]string {
	t.Helper()
	raw := baselines(t)
	for _, w := range Workloads() {
		ws := walOpen(t, pager.NewMemStore(PageSize))
		res, err, pan := RunGuarded(w, ws)
		if pan != nil {
			t.Fatalf("%s: clean WAL run panicked: %v", w.Name, pan)
		}
		if err != nil {
			t.Fatalf("%s: clean WAL run failed: %v", w.Name, err)
		}
		if res != raw[w.Name] {
			t.Fatalf("%s: WAL-backed run diverged from the raw-store baseline", w.Name)
		}
	}
	return raw
}

// walErrTyped reports whether an error from a WAL-backed workload under
// injected base faults stays inside the storage error taxonomy. Beyond the
// raw-store classes, the WAL layer may legitimately report a poisoned
// store (a fault struck after the commit record was durable) or an aborted
// enclosing batch.
func walErrTyped(err error) bool {
	return errors.Is(err, pager.ErrInjected) ||
		errors.Is(err, pager.ErrPageNotFound) ||
		errors.Is(err, pager.ErrStoreFailed) ||
		errors.Is(err, pager.ErrBatchAborted) ||
		errors.Is(err, pager.ErrWALCorrupt) ||
		errors.Is(err, pager.ErrWALReplay)
}

// TestWALFaultSweepPermanent drives every workload through a WALStore
// whose base store fails each operation class permanently: no panic, and
// every failure is typed.
func TestWALFaultSweepPermanent(t *testing.T) {
	base := walBaselines(t)
	classes := []struct {
		name string
		set  func(*pager.FaultConfig, pager.OpFaults)
	}{
		{"read", func(c *pager.FaultConfig, f pager.OpFaults) { c.Read = f }},
		{"write", func(c *pager.FaultConfig, f pager.OpFaults) { c.Write = f }},
		{"alloc", func(c *pager.FaultConfig, f pager.OpFaults) { c.Alloc = f }},
		{"free", func(c *pager.FaultConfig, f pager.OpFaults) { c.Free = f }},
	}
	for _, w := range Workloads() {
		for _, cl := range classes {
			for _, every := range []int64{3, 17, 101} {
				t.Run(fmt.Sprintf("%s/%s/every=%d", w.Name, cl.name, every), func(t *testing.T) {
					cfg := pager.FaultConfig{Seed: 7000 + every}
					cl.set(&cfg, pager.OpFaults{FailEvery: every})
					faulty := pager.NewFaultStore(pager.NewMemStore(PageSize), cfg)
					ws, err := pager.OpenWALStore(faulty, pager.NewMemLog(), pager.WALConfig{})
					if err != nil {
						if !walErrTyped(err) {
							t.Fatalf("open failed untyped: %v", err)
						}
						return
					}
					res, err, pan := RunGuarded(w, ws)
					if pan != nil {
						t.Fatalf("panicked under injected faults: %v", pan)
					}
					if err == nil {
						if faulty.Counters().Total() != 0 {
							t.Fatal("faults were injected but no error surfaced")
						}
						if res != base[w.Name] {
							t.Fatal("fault-free run diverged from baseline")
						}
						return
					}
					if !walErrTyped(err) {
						t.Fatalf("error escaped the storage taxonomy: %v", err)
					}
				})
			}
		}
	}
}

// TestWALFaultSweepQuiescence composes WALStore(Retry(Fault(Mem))) with
// transient faults in every class: the retry layer absorbs them beneath
// the WAL, so every workload must complete and answer exactly as the
// fault-free baseline does. Auto-checkpointing runs throughout, exercising
// the checkpoint path under the same fault pressure.
func TestWALFaultSweepQuiescence(t *testing.T) {
	base := walBaselines(t)
	for _, rate := range []float64{0.05, 0.2} {
		for _, w := range Workloads() {
			t.Run(fmt.Sprintf("%s/rate=%v", w.Name, rate), func(t *testing.T) {
				faulty := pager.NewFaultStore(pager.NewMemStore(PageSize), pager.FaultConfig{
					Seed:      90210,
					Read:      pager.OpFaults{FailProb: rate},
					Write:     pager.OpFaults{FailProb: rate},
					Alloc:     pager.OpFaults{FailProb: rate},
					Free:      pager.OpFaults{FailProb: rate},
					Transient: true,
				})
				rs := pager.NewRetryStore(faulty, pager.RetryPolicy{MaxAttempts: 16})
				ws, err := pager.OpenWALStore(rs, pager.NewMemLog(), pager.WALConfig{
					AutoCheckpointBytes: 64 * 1024,
				})
				if err != nil {
					t.Fatalf("open wal over retry stack: %v", err)
				}
				res, err, pan := RunGuarded(w, ws)
				if pan != nil {
					t.Fatalf("panicked under transient faults: %v", pan)
				}
				if err != nil {
					t.Fatalf("transient faults at rate %v escaped the retry layer: %v", rate, err)
				}
				if faulty.Counters().Total() == 0 {
					t.Fatalf("rate %v injected no faults; sweep is vacuous", rate)
				}
				if res != base[w.Name] {
					t.Fatalf("rate %v: results diverged from fault-free baseline", rate)
				}
				if err := ws.Close(); err != nil {
					t.Fatalf("close after quiescence: %v", err)
				}
			})
		}
	}
}

// corpusLog runs a multi-batch patterned workload against a WALStore with
// no checkpointing and returns the raw log bytes plus the number of
// committed batches. Every batch lives in the log — nothing has been
// applied to a base — so the log alone (over a fresh base, via degraded
// replay) reconstructs the whole history.
func corpusLog(t *testing.T) ([]byte, uint64) {
	t.Helper()
	log := pager.NewMemLog()
	ws, err := pager.OpenWALStore(pager.NewMemStore(PageSize), log, pager.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []pager.PageID
	for b := 0; b < 6; b++ {
		err := pager.RunBatch(ws, func() error {
			p, err := ws.Allocate()
			if err != nil {
				return err
			}
			for i := range p.Data {
				p.Data[i] = byte(b) ^ byte(i*13)
			}
			if err := ws.Write(p); err != nil {
				return err
			}
			ids = append(ids, p.ID)
			if b >= 2 {
				// Rewrite an older page too: multi-page batches.
				old, err := ws.Read(ids[b-2])
				if err != nil {
					return err
				}
				old.Data[0] ^= 0xFF
				return ws.Write(old)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	seq := ws.CommittedSeq()
	data := log.Bytes()
	return data, seq
}

// reopenCorrupted replays a (possibly corrupted) log image over a fresh
// base store, converting panics into test failures, and returns the
// recovered sequence number.
func reopenCorrupted(t *testing.T, img []byte) (seq uint64, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("recovery panicked: %v", r)
		}
	}()
	log := pager.NewMemLogFrom(img)
	ws, err := pager.OpenWALStore(pager.NewMemStore(PageSize), log, pager.WALConfig{})
	if err != nil {
		return 0, err
	}
	return ws.CommittedSeq(), nil
}

// TestWALLogBitFlipTrials flips every byte of a committed log image, one
// trial at a time, and re-runs recovery. Each trial must either fail with
// the typed corruption error or recover cleanly — and a clean recovery may
// have truncated at most the final batch (a flip in the last batch is
// indistinguishable from a torn tail). Anything less is silent data loss.
func TestWALLogBitFlipTrials(t *testing.T) {
	img, seq := corpusLog(t)
	trials, corrupt, clean := 0, 0, 0
	for off := 0; off < len(img); off++ {
		bit := byte(1) << (off % 8)
		mut := append([]byte(nil), img...)
		mut[off] ^= bit
		got, err := reopenCorrupted(t, mut)
		trials++
		if err != nil {
			if !errors.Is(err, pager.ErrWALCorrupt) {
				t.Fatalf("flip at %d: untyped recovery failure: %v", off, err)
			}
			corrupt++
			continue
		}
		clean++
		if got > seq {
			t.Fatalf("flip at %d: recovery invented batches: seq %d > %d", off, got, seq)
		}
		if got < seq-1 {
			t.Fatalf("flip at %d: silent loss: recovered seq %d, committed %d", off, got, seq)
		}
	}
	if corrupt == 0 || clean == 0 {
		t.Fatalf("degenerate trial mix: %d corrupt, %d clean of %d", corrupt, clean, trials)
	}
	t.Logf("%d byte-flip trials: %d detected as corruption, %d recovered cleanly", trials, corrupt, clean)
}

// TestWALLogTruncationTrials cuts a committed log image at every length
// and re-runs recovery: every prefix is a state a crashed append could
// leave behind, so recovery must never panic and never report anything but
// clean truncation (a prefix of the committed history) or the typed
// corruption error for prefixes that predate the first commit (a fresh
// base cannot prove such a log empty of committed data).
func TestWALLogTruncationTrials(t *testing.T) {
	img, seq := corpusLog(t)
	prev := uint64(0)
	for cut := 0; cut <= len(img); cut++ {
		got, err := reopenCorrupted(t, img[:cut])
		if err != nil {
			if !errors.Is(err, pager.ErrWALCorrupt) {
				t.Fatalf("cut at %d: untyped recovery failure: %v", cut, err)
			}
			continue
		}
		if got > seq {
			t.Fatalf("cut at %d: recovery invented batches: seq %d > %d", cut, got, seq)
		}
		if got < prev {
			t.Fatalf("cut at %d: longer prefix recovered less: seq %d after %d", cut, got, prev)
		}
		prev = got
	}
	if prev != seq {
		t.Fatalf("full-length image recovered seq %d, want %d", prev, seq)
	}
}
