package pager

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fillPage writes a recognizable per-page pattern.
func fillPage(p *Page, tag byte) {
	for i := range p.Data {
		p.Data[i] = tag ^ byte(i)
	}
}

func checkPage(t *testing.T, p *Page, tag byte) {
	t.Helper()
	for i := range p.Data {
		if p.Data[i] != tag^byte(i) {
			t.Fatalf("page %d byte %d = %#x, want %#x", p.ID, i, p.Data[i], tag^byte(i))
		}
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var kept []PageID
	for i := 0; i < 30; i++ {
		p, err := fs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(p, byte(i))
		if err := fs.Write(p); err != nil {
			t.Fatal(err)
		}
		kept = append(kept, p.ID)
	}
	// Free every third page so the reopened store must recover a free list.
	var freed []PageID
	var live []PageID
	var tags []byte
	for i, id := range kept {
		if i%3 == 0 {
			if err := fs.Free(id); err != nil {
				t.Fatal(err)
			}
			freed = append(freed, id)
		} else {
			live = append(live, id)
			tags = append(tags, byte(i))
		}
	}
	if err := fs.SetUserMeta([]byte("root=7")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if _, err := fs.Read(live[0]); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("read after close: %v", err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != 128 {
		t.Fatalf("recovered page size %d", re.PageSize())
	}
	if string(re.UserMeta()) != "root=7" {
		t.Fatalf("user meta %q", re.UserMeta())
	}
	if re.PagesInUse() != len(live) {
		t.Fatalf("PagesInUse = %d, want %d", re.PagesInUse(), len(live))
	}
	for i, id := range live {
		p, err := re.Read(id)
		if err != nil {
			t.Fatalf("read live page %d: %v", id, err)
		}
		checkPage(t, p, tags[i])
	}
	for _, id := range freed {
		if _, err := re.Read(id); !errors.Is(err, ErrPageNotFound) {
			t.Fatalf("freed page %d readable after reopen: %v", id, err)
		}
	}
	// Freed ids must be recycled before the file grows.
	seen := make(map[PageID]bool)
	for _, id := range freed {
		seen[id] = true
	}
	for range freed {
		p, err := re.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if !seen[p.ID] {
			t.Fatalf("allocation %d did not reuse a freed page", p.ID)
		}
		delete(seen, p.ID)
	}
}

// TestFileStoreReopenLargeFreeList forces the free list past the meta
// page's inline capacity so the overflow chain is exercised (128-byte
// pages hold 19 inline ids and 29 per chain page).
func TestFileStoreReopenLargeFreeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	var ids []PageID
	for i := 0; i < n; i++ {
		p, err := fs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(p, byte(i))
		if err := fs.Write(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	for _, id := range ids[:350] {
		if err := fs.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PagesInUse() != 50 {
		t.Fatalf("PagesInUse = %d, want 50", re.PagesInUse())
	}
	for i, id := range ids[350:] {
		p, err := re.Read(id)
		if err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		checkPage(t, p, byte(350+i))
	}
	// Sync/reopen cycles must not leak pages: allocate everything back and
	// confirm the file's page-id space did not balloon.
	for i := 0; i < 350; i++ {
		p, err := re.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.ID > PageID(n+20) {
			t.Fatalf("allocation returned id %d; free list lost pages", p.ID)
		}
	}
}

// TestFileStoreCrashAfterSync simulates a crash (no Close) after a Sync:
// reopening must recover the state as of the last Sync.
func TestFileStoreCrashAfterSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := fs.Allocate()
	fillPage(p1, 0xA1)
	if err := fs.Write(p1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Post-sync work that will be "lost" by the crash: the page data may
	// survive, but the allocator state rolls back to the sync point.
	p2, _ := fs.Allocate()
	fillPage(p2, 0xB2)
	_ = fs.Write(p2)
	// Crash: drop the handle without Close/Sync.

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Read(p1.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, got, 0xA1)
}

func TestFileStoreReadPropagatesIOErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fs.Allocate()
	fillPage(p, 1)
	if err := fs.Write(p); err != nil {
		t.Fatal(err)
	}
	// Sever the fd behind the store's back: reads must now surface the
	// real error, not silently decay to a zero page.
	if err := fs.f.Close(); err != nil {
		t.Fatal(err)
	}
	_, rerr := fs.Read(p.ID)
	if rerr == nil {
		t.Fatal("read through closed fd returned no error")
	}
	if errors.Is(rerr, ErrPageNotFound) || errors.Is(rerr, ErrStoreClosed) {
		t.Fatalf("real I/O error mislabeled: %v", rerr)
	}
}

func TestFileStoreUnwrittenPageReadsZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p, _ := fs.Allocate() // allocated, never written: beyond file tail
	got, err := fs.Read(p.ID)
	if err != nil {
		t.Fatalf("unwritten page: %v", err)
	}
	if !allZero(got.Data) {
		t.Fatal("unwritten page not zero")
	}
}

func TestOpenFileStoreRejectsGarbage(t *testing.T) {
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("this is not a page store at all, not even close"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(garbage); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("garbage file: %v", err)
	}

	// A valid store whose meta page is then corrupted must be rejected by
	// the meta checksum.
	path := filepath.Join(dir, "store.db")
	fs, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fs.Allocate()
	fillPage(p, 9)
	_ = fs.Write(p)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF // inside the meta page body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("corrupt meta: %v", err)
	}
}

func TestFileStoreWithChecksumWrapper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := NewFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewChecksumStore(fs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fillPage(p, 0x3C)
	if err := cs.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cs2, err := NewChecksumStore(re)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs2.Read(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, got, 0x3C)

	// Flip one bit on disk; the checksum layer must catch it after reopen.
	raw, _ := os.ReadFile(path)
	raw[int(p.ID)*256+10] ^= 0x04
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	cs3, err := NewChecksumStore(re2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs3.Read(p.ID); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("bit rot on disk not detected: %v", err)
	}
}
