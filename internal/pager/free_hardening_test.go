package pager

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestMemStoreFreeTyping pins the free-path error taxonomy: the reserved
// id 0, double frees, and never-allocated ids each get their own sentinel,
// so callers (and the WAL's replay logic) can tell recoverable conditions
// apart from corruption.
func TestMemStoreFreeTyping(t *testing.T) {
	ms := NewMemStore(128)
	p, err := ms.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Free(0); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("free of id 0: %v, want ErrReservedPage", err)
	}
	if err := ms.Free(p.ID); err != nil {
		t.Fatal(err)
	}
	if err := ms.Free(p.ID); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: %v, want ErrDoubleFree", err)
	}
	if err := ms.Free(p.ID + 100); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("free of never-allocated id: %v, want ErrPageNotFound", err)
	}
}

// TestFileStoreFreeTyping is the FileStore counterpart, including the
// overflow-chain case: pages holding the on-disk free list's overflow
// chain are referenced by the persisted meta, so freeing one must be
// refused as reserved, not treated as not-found or silently accepted.
func TestFileStoreFreeTyping(t *testing.T) {
	const ps = 64 // inline free capacity (ps-48-4)/4 = 3: chains form fast
	path := filepath.Join(t.TempDir(), "db.pages")
	fs, err := NewFileStore(path, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Free(0); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("free of meta slot: %v, want ErrReservedPage", err)
	}

	var ids []PageID
	for i := 0; i < 16; i++ {
		p, err := fs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	for _, id := range ids[1:] {
		if err := fs.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Free(ids[1]); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: %v, want ErrDoubleFree", err)
	}
	if err := fs.Free(ids[len(ids)-1] + 50); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("free of never-allocated id: %v, want ErrPageNotFound", err)
	}

	// Sync spills the 15-entry free list past the 3 inline slots into
	// overflow chain pages; those pages are reserved until the next Sync.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(fs.ovPages) == 0 {
		t.Fatal("free list never spilled into an overflow chain; test is vacuous")
	}
	for _, ov := range fs.ovPages {
		if err := fs.Free(ov); !errors.Is(err, ErrReservedPage) {
			t.Fatalf("free of overflow chain page %d: %v, want ErrReservedPage", ov, err)
		}
	}

	// The taxonomy must survive a reopen from disk.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if len(fs2.ovPages) == 0 {
		t.Fatal("reopen lost the overflow chain")
	}
	if err := fs2.Free(fs2.ovPages[0]); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("free of overflow page after reopen: %v, want ErrReservedPage", err)
	}
	if err := fs2.Free(ids[1]); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free after reopen: %v, want ErrDoubleFree", err)
	}
}
