// Group commit: coalescing concurrent WAL commits onto shared log syncs.
//
// Without it, every commit pays its own log.Sync() under the store latch,
// so sustained commit rate is bounded by the sync rate no matter how many
// writers there are. With WALConfig.GroupCommit, a commit appends its
// records and applies its batch under the latch (fast, memory-speed),
// then waits on the groupSyncer for a sync that covers its commit record.
// The syncer runs a leader/follower protocol:
//
//   - The first waiter of a round becomes the leader. If the round is
//     still smaller than the previous round — the signal that concurrent
//     committers are in flight even though they have not reached the
//     syncer yet — it lingers up to CommitLinger so the round grows; the
//     linger is cut short as soon as the round reaches the previous
//     round's size (or MaxCommitQueue commits pile up), because timer
//     granularity is often far coarser than the gap between hot
//     committers. A committer that is alone by both signals syncs
//     immediately and pays no linger. The adaptivity matters under
//     sustained concurrency: after a round releases W writers they all
//     re-enter within microseconds of each other, and a leader that
//     synced the instant it arrived would strand the other W-1 across
//     two syncs.
//   - The leader snapshots the highest appended commit LSN, releases the
//     syncer lock, issues ONE log.Sync(), and publishes the new durable
//     horizon. Every waiter at or below it returns; later arrivals form
//     the next round.
//   - Commits that became durable by other means — a checkpoint folded
//     the log into the synced base and truncated it — are released by
//     noteDurable without any log sync.
//
// Per-commit durability is unchanged: Commit returns only after its
// commit record is covered by a completed sync (or checkpoint). A sync
// failure leaves the durable horizon unknown, so it is sticky: every
// current and future waiter fails, and the WALStore poisons itself.
package pager

import (
	"fmt"
	"sync"
	"time"
)

// groupSyncer is the shared sync state of one WALStore. All fields are
// guarded by mu except the LogFile, which is called with mu released.
type groupSyncer struct {
	log      LogFile
	linger   time.Duration
	maxQueue int

	mu       sync.Mutex
	cond     *sync.Cond
	appended uint64        // highest commit LSN appended to the log
	synced   uint64        // highest LSN covered by a completed sync/checkpoint
	syncing  bool          // a leader is lingering or syncing
	waiting  int           // committers inside waitDurable
	wake     chan struct{} // cuts the current leader's linger short
	err      error         // sticky sync failure
	commits  uint64        // waitDurable calls (for coalescing stats)
	syncs    uint64        // log.Sync calls issued
	appends  uint64        // commit records appended (noteAppend calls)
	lastSize uint64        // appends the previous round coalesced (linger signal)
	start    uint64        // appends at the previous round's snapshot
}

func newGroupSyncer(log LogFile, linger time.Duration, maxQueue int, durableLSN uint64) *groupSyncer {
	if maxQueue <= 0 {
		maxQueue = 64
	}
	g := &groupSyncer{
		log:      log,
		linger:   linger,
		maxQueue: maxQueue,
		appended: durableLSN,
		synced:   durableLSN,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// noteAppend records that the commit record at lsn is fully appended to
// the log. Called under the store latch after the append, so the log
// bytes happen-before any sync that claims to cover them.
func (g *groupSyncer) noteAppend(lsn uint64) {
	g.mu.Lock()
	if lsn > g.appended {
		g.appended = lsn
	}
	g.appends++
	if g.wake != nil && g.appends-g.start >= g.lastSize {
		// The round has grown to the previous round's size: everyone the
		// linger was waiting for has appended (each append precedes its
		// waitDurable), so cut the linger short — timer granularity is
		// often far coarser than the gap between hot committers.
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
}

// noteDurable records durability achieved without a log sync (a
// checkpoint synced the base past lsn) and releases covered waiters.
func (g *groupSyncer) noteDurable(lsn uint64) {
	g.mu.Lock()
	if lsn > g.synced {
		g.synced = lsn
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// shutdown fails every current and future waiter that is not already
// covered by the durable horizon.
func (g *groupSyncer) shutdown(cause error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = cause
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// waitDurable blocks until a completed sync (or checkpoint) covers lsn,
// leading a sync round when none is in flight.
func (g *groupSyncer) waitDurable(lsn uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.commits++
	g.waiting++
	defer func() { g.waiting-- }()
	if g.wake != nil && g.waiting >= g.maxQueue {
		// The queue is full: tell the lingering leader to sync now.
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	for {
		// Durability first: a commit the close checkpoint covered must
		// return nil even when shutdown has already been signalled.
		if g.synced >= lsn {
			return nil
		}
		if g.err != nil {
			return g.err
		}
		if g.syncing {
			g.cond.Wait()
			continue
		}

		// Lead one round.
		g.syncing = true
		wake := make(chan struct{}, 1)
		g.wake = wake
		if g.linger > 0 && g.waiting < g.maxQueue &&
			(g.appends-g.start < g.lastSize || (g.lastSize <= 1 && g.waiting > 1)) {
			g.mu.Unlock()
			t := time.NewTimer(g.linger)
			select {
			case <-wake:
			case <-t.C:
			}
			t.Stop()
			g.mu.Lock()
		}
		target := g.appended
		// The append count this round coalesced is the concurrency
		// signal future lingers aim for: with W hot writers each round
		// settles at W, so the next leader holds its sync exactly until
		// the other W-1 commits of its own round have appended.
		if n := g.appends - g.start; n > 0 {
			g.lastSize = n
		}
		g.start = g.appends
		g.mu.Unlock()
		serr := g.log.Sync()
		g.mu.Lock()
		g.syncs++
		g.syncing = false
		g.wake = nil
		if serr != nil {
			if g.err == nil {
				g.err = fmt.Errorf("pager: group commit sync: %w", serr)
			}
		} else if target > g.synced {
			g.synced = target
		}
		g.cond.Broadcast()
	}
}

// GroupCommitStats reports group-commit coalescing: commits that waited
// on the shared syncer and log syncs actually issued. Both are zero when
// GroupCommit is off. commits/syncs is the average group size.
func (w *WALStore) GroupCommitStats() (commits, syncs uint64) {
	if w.gc == nil {
		return 0, 0
	}
	w.gc.mu.Lock()
	defer w.gc.mu.Unlock()
	return w.gc.commits, w.gc.syncs
}
