package pager

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobidx/internal/leakcheck"
)

func openGroupWAL(t *testing.T, cfg WALConfig) (*WALStore, *MemStore, *MemLog) {
	t.Helper()
	base := NewMemStore(walTestPageSize)
	log := NewMemLog()
	w, err := OpenWALStore(base, log, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, base, log
}

// TestTxnBasic drives one explicit transaction through the full page
// lifecycle and checks isolation from non-txn readers until Commit.
func TestTxnBasic(t *testing.T) {
	w, _, _ := openGroupWAL(t, WALConfig{})
	txn, err := w.BeginTxn()
	if err != nil {
		t.Fatalf("begin txn: %v", err)
	}
	p, err := txn.Allocate()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	img := walPattern(walTestPageSize, 0x5a)
	if err := txn.Write(&Page{ID: p.ID, Data: img}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The txn reads its own staging...
	got, err := txn.Read(p.ID)
	if err != nil || !bytes.Equal(got.Data, img) {
		t.Fatalf("txn read = %v, mismatch %v", err, !bytes.Equal(got.Data, img))
	}
	// ...but the store does not see it yet (the page is allocated with
	// unspecified contents until the txn commits).
	if sp, err := w.Read(p.ID); err == nil && bytes.Equal(sp.Data, img) {
		t.Fatal("uncommitted txn write visible through the store")
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got, err = w.Read(p.ID)
	if err != nil || !bytes.Equal(got.Data, img) {
		t.Fatalf("post-commit read = %v, mismatch %v", err, !bytes.Equal(got.Data, img))
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit = %v, want ErrTxnDone", err)
	}
	if _, err := txn.Read(p.ID); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit = %v, want ErrTxnDone", err)
	}
}

// TestTxnRollback checks that a rolled-back transaction leaves no trace:
// its allocation returns to the free list, so the allocator's id
// sequence matches a run in which the txn never existed.
func TestTxnRollback(t *testing.T) {
	w, _, _ := openGroupWAL(t, WALConfig{})
	txn, err := w.BeginTxn()
	if err != nil {
		t.Fatalf("begin txn: %v", err)
	}
	p, err := txn.Allocate()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if err := txn.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, 1)}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	p2, err := w.Allocate()
	if err != nil {
		t.Fatalf("alloc after rollback: %v", err)
	}
	if p2.ID != p.ID {
		t.Fatalf("allocator reused id %d, want rolled-back id %d", p2.ID, p.ID)
	}
}

// TestTxnIsolationFromImplicitBatch: a Txn must not observe the implicit
// batch's staged writes, and vice versa, while both are open.
func TestTxnIsolationFromImplicitBatch(t *testing.T) {
	w, _, _ := openGroupWAL(t, WALConfig{})
	// Committed page both sides read.
	shared, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	base := walPattern(walTestPageSize, 7)
	if err := w.Write(&Page{ID: shared.ID, Data: base}); err != nil {
		t.Fatal(err)
	}

	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	staged := walPattern(walTestPageSize, 8)
	if err := w.Write(&Page{ID: shared.ID, Data: staged}); err != nil {
		t.Fatal(err)
	}
	txn, err := w.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	got, err := txn.Read(shared.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, base) {
		t.Fatal("txn read observed the implicit batch's uncommitted staging")
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitConcurrentTxns is the race-gated group-commit contract
// test: N goroutines run Begin/Commit cycles through explicit txns on
// one store; every committed batch must be durable (byte-exact after a
// reopen from the surviving log) and commit LSNs must be monotone (the
// reopen's LSN-continuity scan enforces that). With a linger window the
// syncer must actually coalesce: strictly fewer syncs than commits.
func TestGroupCommitConcurrentTxns(t *testing.T) {
	leakcheck.Check(t)
	const writers, rounds = 8, 25
	base := NewMemStore(walTestPageSize)
	// A sync that takes real time, like a disk's: commits arriving while
	// the leader syncs pile into the next round — that pile-up is what
	// group commit exists to exploit, and what the stats check asserts.
	log := &slowSyncLog{MemLog: NewMemLog(), d: 200 * time.Microsecond}
	w, err := OpenWALStore(base, log, WALConfig{
		GroupCommit:    true,
		CommitLinger:   200 * time.Microsecond,
		MaxCommitQueue: 16,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Pre-allocate one page per (writer, round) so concurrent txns stay
	// page-disjoint, as the Txn contract requires.
	ids := make([][]PageID, writers)
	for g := 0; g < writers; g++ {
		ids[g] = make([]PageID, rounds)
		for r := 0; r < rounds; r++ {
			p, err := w.Allocate()
			if err != nil {
				t.Fatalf("prealloc: %v", err)
			}
			ids[g][r] = p.ID
			if err := w.Write(&Page{ID: p.ID, Data: make([]byte, walTestPageSize)}); err != nil {
				t.Fatalf("prewrite: %v", err)
			}
		}
	}

	var committed atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				txn, err := w.BeginTxn()
				if err != nil {
					errs[g] = err
					return
				}
				tag := byte(g*rounds + r)
				if err := txn.Write(&Page{ID: ids[g][r], Data: walPattern(walTestPageSize, tag)}); err != nil {
					errs[g] = err
					return
				}
				if err := txn.Commit(); err != nil {
					errs[g] = err
					return
				}
				committed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	if got := committed.Load(); got != writers*rounds {
		t.Fatalf("committed %d, want %d", got, writers*rounds)
	}
	commits, syncs := w.GroupCommitStats()
	if commits < writers*rounds {
		t.Fatalf("syncer saw %d commits, want >= %d", commits, writers*rounds)
	}
	if syncs == 0 || syncs >= commits {
		t.Fatalf("no coalescing: %d syncs for %d commits", syncs, commits)
	}

	// Durability: reopen a fresh WALStore over the raw surviving bytes
	// (no Close, no checkpoint — the log alone must carry every committed
	// batch; its LSN-continuity scan also proves commit-LSN monotonicity).
	survivorLog := NewMemLogFrom(log.Bytes())
	w2, err := OpenWALStore(base, survivorLog, WALConfig{})
	if err != nil {
		t.Fatalf("reopen from surviving log: %v", err)
	}
	for g := 0; g < writers; g++ {
		for r := 0; r < rounds; r++ {
			p, err := w2.Read(ids[g][r])
			if err != nil {
				t.Fatalf("recovered read %d/%d: %v", g, r, err)
			}
			if want := walPattern(walTestPageSize, byte(g*rounds+r)); !bytes.Equal(p.Data, want) {
				t.Fatalf("page %d: recovered image differs from committed", ids[g][r])
			}
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close recovered: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close original: %v", err)
	}
}

// TestGroupCommitImplicitBatch: the implicit single-writer protocol must
// keep its exact semantics under GroupCommit — commit durable on return,
// auto-checkpoint still honored.
func TestGroupCommitImplicitBatch(t *testing.T) {
	w, base, log := openGroupWAL(t, WALConfig{GroupCommit: true})
	var ids []PageID
	for i := 0; i < 5; i++ {
		err := RunBatch(w, func() error {
			p, err := w.Allocate()
			if err != nil {
				return err
			}
			ids = append(ids, p.ID)
			return w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(i))})
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	w2, err := OpenWALStore(base, NewMemLogFrom(log.Bytes()), WALConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i, id := range ids {
		p, err := w2.Read(id)
		if err != nil || !bytes.Equal(p.Data, walPattern(walTestPageSize, byte(i))) {
			t.Fatalf("batch %d not durable after recovery (err %v)", i, err)
		}
	}
	if err := errors.Join(w2.Close(), w.Close()); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCheckpointReleasesWaiters: a checkpoint that folds the
// log into the synced base must release group-commit waiters without a
// log sync — their batches are durable through the base.
func TestGroupCommitCheckpointReleasesWaiters(t *testing.T) {
	leakcheck.Check(t)
	w, _, _ := openGroupWAL(t, WALConfig{GroupCommit: true, AutoCheckpointBytes: 1})
	// Every commit's durability wait is followed by an auto-checkpoint
	// (threshold 1 byte), which advances the durable horizon; the next
	// commit must still complete. This exercises noteDurable.
	for i := 0; i < 4; i++ {
		if err := RunBatch(w, func() error {
			p, err := w.Allocate()
			if err != nil {
				return err
			}
			return w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(i))})
		}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if w.LogSize() > walHeaderLen {
			t.Fatalf("batch %d: auto-checkpoint did not truncate the log", i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitSyncFailurePoisons: a failed group sync leaves the
// durable horizon unknown; every waiter must fail and the store must
// poison itself.
func TestGroupCommitSyncFailurePoisons(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	log := &failingSyncLog{MemLog: NewMemLog()}
	w, err := OpenWALStore(base, log, WALConfig{GroupCommit: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	log.fail.Store(true)
	err = RunBatch(w, func() error {
		p, err := w.Allocate()
		if err != nil {
			return err
		}
		return w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, 3)})
	})
	if !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("commit after sync failure = %v, want ErrStoreFailed", err)
	}
	if err := w.Write(&Page{ID: 1, Data: walPattern(walTestPageSize, 4)}); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("write on poisoned store = %v, want ErrStoreFailed", err)
	}
}

// slowSyncLog models a device with a real sync cost.
type slowSyncLog struct {
	*MemLog
	d time.Duration
}

func (l *slowSyncLog) Sync() error {
	time.Sleep(l.d)
	return l.MemLog.Sync()
}

// failingSyncLog fails Sync on demand (header/init syncs succeed).
type failingSyncLog struct {
	*MemLog
	fail atomic.Bool
}

func (l *failingSyncLog) Sync() error {
	if l.fail.Load() {
		return fmt.Errorf("injected sync failure")
	}
	return l.MemLog.Sync()
}
