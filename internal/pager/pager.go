// Package pager implements the external memory model of Aggarwal and
// Vitter used throughout the paper: storage is a sequence of fixed-size
// pages, each disk access transfers one page, and the cost of an algorithm
// is the number of page I/Os it performs.
//
// Every index in this repository stores its nodes in pages obtained from a
// Store and is measured exclusively through the Store's I/O statistics. A
// small buffer pool mirrors the paper's buffering scheme (§5): "for each
// tree we buffer the path from the root to a leaf node", i.e. only a
// handful of pages, and the pool is cleared before each query.
package pager

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize is the page size used in the paper's experiments (§5).
const DefaultPageSize = 4096

// PageID identifies a page within a Store. Zero is never a valid page, so
// it can be used as a nil pointer in on-page structures.
type PageID uint32

// NilPage is the invalid page id used to represent absent children.
const NilPage PageID = 0

// Page is one fixed-size block of storage.
type Page struct {
	ID   PageID
	Data []byte
}

// Stats counts the I/O traffic of a Store.
type Stats struct {
	Reads  int64 // page reads that reached the store (buffer misses)
	Writes int64 // page writes that reached the store
	Allocs int64 // pages allocated over the store's lifetime
	Frees  int64 // pages returned to the free list
}

// IOs returns the total I/O count, the metric reported in the paper's
// figures.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - t, for measuring an interval of work.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes,
		Allocs: s.Allocs - t.Allocs, Frees: s.Frees - t.Frees}
}

// Store is the storage abstraction: allocate, read, write and free pages,
// and report statistics.
type Store interface {
	// PageSize returns the fixed size in bytes of every page.
	PageSize() int
	// Allocate returns a new zeroed page.
	Allocate() (*Page, error)
	// Read fetches the page with the given id.
	Read(id PageID) (*Page, error)
	// Write persists the page.
	Write(p *Page) error
	// Free returns the page to the allocator.
	Free(id PageID) error
	// Stats returns the cumulative I/O statistics.
	Stats() Stats
	// PagesInUse returns the number of live (allocated, not freed) pages:
	// the space consumption of whatever is stored.
	PagesInUse() int
}

// ErrPageNotFound is returned when reading an unallocated or freed page.
var ErrPageNotFound = errors.New("pager: page not found")

// MemStore is an in-memory Store. It is the default substrate for
// experiments: I/Os are counted, not performed, exactly as needed to
// reproduce the paper's I/O-count metrics at modern speeds.
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	stats    Stats
}

// NewMemStore returns an empty in-memory store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		next:     1,
	}
}

// PageSize implements Store.
func (m *MemStore) PageSize() int { return m.pageSize }

// Allocate implements Store.
func (m *MemStore) Allocate() (*Page, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id PageID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	buf := make([]byte, m.pageSize)
	m.pages[id] = buf
	m.stats.Allocs++
	// An allocation materializes the page in memory; the caller writes it
	// out explicitly, so allocation itself costs no I/O.
	data := make([]byte, m.pageSize)
	return &Page{ID: id, Data: data}, nil
}

// Read implements Store.
func (m *MemStore) Read(id PageID) (*Page, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	m.stats.Reads++
	data := make([]byte, m.pageSize)
	copy(data, buf)
	return &Page{ID: id, Data: data}, nil
}

// Write implements Store.
func (m *MemStore) Write(p *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.pages[p.ID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, p.ID)
	}
	m.stats.Writes++
	copy(buf, p.Data)
	return nil
}

// Free implements Store.
func (m *MemStore) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	m.stats.Frees++
	return nil
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// PagesInUse implements Store.
func (m *MemStore) PagesInUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// FileStore is a Store backed by a single file, one page per slot. It
// demonstrates that every structure in this repository serializes cleanly
// to real disk pages; experiments normally use MemStore for speed.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	free     []PageID
	next     PageID
	live     map[PageID]struct{}
	stats    Stats
}

// NewFileStore creates (truncating) a file-backed store at path.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return &FileStore{f: f, pageSize: pageSize, next: 1, live: make(map[PageID]struct{})}, nil
}

// Close closes the backing file.
func (fs *FileStore) Close() error { return fs.f.Close() }

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

func (fs *FileStore) offset(id PageID) int64 { return int64(id-1) * int64(fs.pageSize) }

// Allocate implements Store.
func (fs *FileStore) Allocate() (*Page, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var id PageID
	if n := len(fs.free); n > 0 {
		id = fs.free[n-1]
		fs.free = fs.free[:n-1]
	} else {
		id = fs.next
		fs.next++
	}
	fs.live[id] = struct{}{}
	fs.stats.Allocs++
	return &Page{ID: id, Data: make([]byte, fs.pageSize)}, nil
}

// Read implements Store.
func (fs *FileStore) Read(id PageID) (*Page, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.live[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	data := make([]byte, fs.pageSize)
	if _, err := fs.f.ReadAt(data, fs.offset(id)); err != nil {
		// A page allocated but never written reads as zeroes.
		for i := range data {
			data[i] = 0
		}
	}
	fs.stats.Reads++
	return &Page{ID: id, Data: data}, nil
}

// Write implements Store.
func (fs *FileStore) Write(p *Page) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.live[p.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, p.ID)
	}
	if _, err := fs.f.WriteAt(p.Data, fs.offset(p.ID)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", p.ID, err)
	}
	fs.stats.Writes++
	return nil
}

// Free implements Store.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.live[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(fs.live, id)
	fs.free = append(fs.free, id)
	fs.stats.Frees++
	return nil
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// PagesInUse implements Store.
func (fs *FileStore) PagesInUse() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.live)
}
