// Package pager implements the external memory model of Aggarwal and
// Vitter used throughout the paper: storage is a sequence of fixed-size
// pages, each disk access transfers one page, and the cost of an algorithm
// is the number of page I/Os it performs.
//
// Every index in this repository stores its nodes in pages obtained from a
// Store and is measured exclusively through the Store's I/O statistics. A
// small buffer pool mirrors the paper's buffering scheme (§5): "for each
// tree we buffer the path from the root to a leaf node", i.e. only a
// handful of pages, and the pool is cleared before each query.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used in the paper's experiments (§5).
const DefaultPageSize = 4096

// PageID identifies a page within a Store. Zero is never a valid page, so
// it can be used as a nil pointer in on-page structures.
type PageID uint32

// NilPage is the invalid page id used to represent absent children.
const NilPage PageID = 0

// Page is one fixed-size block of storage.
type Page struct {
	ID   PageID
	Data []byte
}

// Stats counts the I/O traffic of a Store.
type Stats struct {
	Reads  int64 // page reads that reached the store (buffer misses)
	Writes int64 // page writes that reached the store
	Allocs int64 // pages allocated over the store's lifetime
	Frees  int64 // pages returned to the free list
}

// IOs returns the total I/O count, the metric reported in the paper's
// figures.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - t, for measuring an interval of work.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes,
		Allocs: s.Allocs - t.Allocs, Frees: s.Frees - t.Frees}
}

// counters is the internal, atomically updated form of Stats. Stores bump
// the counters with atomic adds so Stats() never needs a store's lock —
// concurrent readers measuring I/O intervals don't contend with (or race
// against) the operations they are measuring.
type counters struct {
	reads, writes, allocs, frees atomic.Int64
}

// snapshot returns the current values as a Stats. Each counter is read
// atomically; the four reads together are not one atomic snapshot, which
// is fine for a monotone set of counters (any interleaving yields values
// that occurred, each at most the true current count).
func (c *counters) snapshot() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

// Store is the storage abstraction: allocate, read, write and free pages,
// and report statistics.
type Store interface {
	// PageSize returns the fixed size in bytes of every page.
	PageSize() int
	// Allocate returns a new zeroed page.
	Allocate() (*Page, error)
	// Read fetches the page with the given id.
	Read(id PageID) (*Page, error)
	// Write persists the page. Implementations copy p.Data before
	// returning — a store never retains the caller's slice — so callers
	// may recycle their encode buffers (see PageBuf).
	Write(p *Page) error
	// Free returns the page to the allocator.
	Free(id PageID) error
	// Stats returns the cumulative I/O statistics.
	Stats() Stats
	// PagesInUse returns the number of live (allocated, not freed) pages:
	// the space consumption of whatever is stored.
	PagesInUse() int
}

// ErrPageNotFound is returned when reading an unallocated or freed page.
var ErrPageNotFound = errors.New("pager: page not found")

// ErrDoubleFree is returned by Free of a page that is already on the free
// list. Silently accepting it would list the id twice and hand the same
// page to two future allocations.
var ErrDoubleFree = errors.New("pager: page already free")

// ErrReservedPage is returned by operations targeting a page the store
// reserves for its own bookkeeping: page 0 (FileStore's meta slot and the
// universal nil id), a free-list overflow chain page, or a WALStore's
// watermark page.
var ErrReservedPage = errors.New("pager: reserved page")

// MemStore is an in-memory Store. It is the default substrate for
// experiments: I/Os are counted, not performed, exactly as needed to
// reproduce the paper's I/O-count metrics at modern speeds.
//
// MemStore is safe for concurrent use. Reads take only a read-latch, so
// parallel queries against disjoint (or shared, unmodified) pages scale
// with cores; mutations take the exclusive latch. Statistics are atomic
// counters — Stats() never blocks and never races.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	stats    counters
}

// NewMemStore returns an empty in-memory store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		next:     1,
	}
}

// PageSize implements Store.
func (m *MemStore) PageSize() int { return m.pageSize }

// Allocate implements Store.
func (m *MemStore) Allocate() (*Page, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id PageID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	buf := make([]byte, m.pageSize)
	m.pages[id] = buf
	m.stats.allocs.Add(1)
	// An allocation materializes the page in memory; the caller writes it
	// out explicitly, so allocation itself costs no I/O.
	data := make([]byte, m.pageSize)
	return &Page{ID: id, Data: data}, nil
}

// Read implements Store. Concurrent reads share the read-latch.
func (m *MemStore) Read(id PageID) (*Page, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	buf, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	m.stats.reads.Add(1)
	data := make([]byte, m.pageSize)
	copy(data, buf)
	return &Page{ID: id, Data: data}, nil
}

// Write implements Store. A fresh image is installed rather than mutating
// the stored slice in place, so slices handed out by View stay stable
// snapshots (see Viewer).
func (m *MemStore) Write(p *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[p.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, p.ID)
	}
	m.stats.writes.Add(1)
	buf := make([]byte, m.pageSize)
	copy(buf, p.Data)
	m.pages[p.ID] = buf
	return nil
}

// Free implements Store. Freeing page 0 returns ErrReservedPage; freeing
// a page already on the free list returns ErrDoubleFree.
func (m *MemStore) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == 0 {
		return fmt.Errorf("%w: free page 0", ErrReservedPage)
	}
	if _, ok := m.pages[id]; !ok {
		for _, f := range m.free {
			if f == id {
				return fmt.Errorf("%w: %d", ErrDoubleFree, id)
			}
		}
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	m.stats.frees.Add(1)
	return nil
}

// Adopt implements Adopter: it forces page id live, whether it is
// currently free, never allocated (id must be the next unallocated id), or
// already live (a no-op). WAL recovery uses it to replay logged
// allocations idempotently; page contents are unspecified until written.
func (m *MemStore) Adopt(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == 0 {
		return fmt.Errorf("%w: adopt page 0", ErrReservedPage)
	}
	if _, live := m.pages[id]; live {
		return nil
	}
	if id < m.next {
		for i, f := range m.free {
			if f == id {
				m.free = append(m.free[:i], m.free[i+1:]...)
				m.pages[id] = make([]byte, m.pageSize)
				return nil
			}
		}
		return fmt.Errorf("pager: adopt page %d: neither live nor free", id)
	}
	if id != m.next {
		return fmt.Errorf("pager: adopt page %d skips ids (next is %d)", id, m.next)
	}
	m.next++
	m.pages[id] = make([]byte, m.pageSize)
	return nil
}

// Disown implements Adopter: it forces page id onto the free list; a page
// already free is a no-op. WAL recovery uses it to replay logged frees
// idempotently.
func (m *MemStore) Disown(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == 0 {
		return fmt.Errorf("%w: disown page 0", ErrReservedPage)
	}
	if _, live := m.pages[id]; !live {
		for _, f := range m.free {
			if f == id {
				return nil
			}
		}
		return fmt.Errorf("%w: disown %d", ErrPageNotFound, id)
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	return nil
}

// Stats implements Store. It is lock-free: counters are read atomically,
// so hammering Stats() during a build neither blocks the build nor races
// with it.
func (m *MemStore) Stats() Stats { return m.stats.snapshot() }

// PagesInUse implements Store.
func (m *MemStore) PagesInUse() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// FileStore durability. Slot 0 of the backing file is a meta page that
// makes the store reopenable after a clean Close or a crash-after-Sync:
//
//	off  0: magic "MOBIDXF1" (8 bytes)
//	off  8: format version (uint32, = 1)
//	off 12: page size (uint32)
//	off 16: next never-allocated page id (uint32)
//	off 20: free page count (uint32)
//	off 24: free-list overflow chain head page id (uint32, 0 = none)
//	off 28: user metadata length (uint32, <= UserMetaSize)
//	off 32: user metadata (UserMetaSize bytes)
//	off 64: inline free page ids (uint32 each)
//	last 4: CRC-32C of everything before it
//
// When the free list outgrows the meta page, the tail spills into a chain
// of overflow pages (layout: next id, count, ids, CRC trailer) repurposed
// from the free list itself. Chain pages are kept out of circulation until
// the next Sync rewrites the meta page, so the last synced snapshot is
// always internally consistent: a crash between Syncs loses at most the
// allocator changes since the previous Sync, never the meta's integrity.
const (
	fileMagic = "MOBIDXF1"
	fileVer   = 1
	// UserMetaSize is the number of user bytes persisted in the meta page;
	// enough for an index to stash its root pointer and shape (see
	// SetUserMeta).
	UserMetaSize = 16

	metaIDsOff = 48 // first inline free id
)

// ErrStoreClosed is returned by operations on a closed FileStore.
var ErrStoreClosed = errors.New("pager: store closed")

// ErrBadMeta is returned by OpenFileStore when the meta page is missing,
// unrecognized, or fails its checksum.
var ErrBadMeta = errors.New("pager: bad meta page")

// FileStore is a Store backed by a single file, one page per slot, with a
// checksummed meta page (slot 0) holding the allocator state. Sync
// persists that state; OpenFileStore recovers it, so an index built on a
// FileStore survives process restarts. Experiments normally use MemStore
// for speed.
//
// FileStore is safe for concurrent use. Reads take only a read-latch (the
// underlying ReadAt is positional and thread-safe), so concurrent readers
// proceed in parallel; every mutation takes the exclusive latch. Stats()
// is lock-free.
type FileStore struct {
	mu       sync.RWMutex
	f        *os.File
	pageSize int
	free     []PageID
	next     PageID
	live     map[PageID]struct{}
	user     []byte
	ovPages  []PageID // overflow-chain pages referenced by the on-disk meta
	closed   bool
	stats    counters
}

// NewFileStore creates (truncating) a file-backed store at path and writes
// an initial meta page, so the file is valid from the first moment.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < metaIDsOff+4 {
		return nil, fmt.Errorf("pager: page size %d too small for meta page", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fs := &FileStore{f: f, pageSize: pageSize, next: 1, live: make(map[PageID]struct{})}
	if err := fs.Sync(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return fs, nil
}

// OpenFileStore opens an existing store file without truncating it,
// recovering the page size, allocator state and user metadata from the
// meta page written by the last Sync (or Close).
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fs, err := recoverFileStore(f)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("pager: open %s: %w", path, err), f.Close())
	}
	return fs, nil
}

func recoverFileStore(f *os.File) (*FileStore, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, 16), head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if string(head[:8]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMeta, head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != fileVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadMeta, v)
	}
	pageSize := int(binary.LittleEndian.Uint32(head[12:16]))
	if pageSize < metaIDsOff+4 || pageSize > 1<<26 {
		return nil, fmt.Errorf("%w: implausible page size %d", ErrBadMeta, pageSize)
	}
	meta := make([]byte, pageSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(pageSize)), meta); err != nil {
		return nil, fmt.Errorf("%w: truncated meta page: %v", ErrBadMeta, err)
	}
	if err := verifyTrailer(meta); err != nil {
		return nil, fmt.Errorf("%w: meta page: %v", ErrBadMeta, err)
	}
	next := PageID(binary.LittleEndian.Uint32(meta[16:20]))
	if next == 0 {
		return nil, fmt.Errorf("%w: next id is zero", ErrBadMeta)
	}
	freeCount := int(binary.LittleEndian.Uint32(meta[20:24]))
	ovHead := PageID(binary.LittleEndian.Uint32(meta[24:28]))
	userLen := int(binary.LittleEndian.Uint32(meta[28:32]))
	if userLen > UserMetaSize {
		return nil, fmt.Errorf("%w: user metadata length %d", ErrBadMeta, userLen)
	}
	user := append([]byte(nil), meta[32:32+userLen]...)

	fs := &FileStore{f: f, pageSize: pageSize, next: next, live: make(map[PageID]struct{}), user: user}
	inlineCap := fs.inlineFreeCap()
	n := freeCount
	if n > inlineCap {
		n = inlineCap
	}
	seen := make(map[PageID]struct{}, freeCount)
	addFree := func(id PageID) error {
		if id == 0 || id >= next {
			return fmt.Errorf("%w: free id %d out of range [1, %d)", ErrBadMeta, id, next)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: free id %d listed twice", ErrBadMeta, id)
		}
		seen[id] = struct{}{}
		fs.free = append(fs.free, id)
		return nil
	}
	for i := 0; i < n; i++ {
		if err := addFree(PageID(binary.LittleEndian.Uint32(meta[metaIDsOff+4*i:]))); err != nil {
			return nil, err
		}
	}
	// Walk the overflow chain. Chain pages stay out of circulation (they
	// are still referenced by the on-disk meta) until the next Sync.
	for id := ovHead; id != 0; {
		if id >= next {
			return nil, fmt.Errorf("%w: overflow page %d out of range", ErrBadMeta, id)
		}
		for _, p := range fs.ovPages {
			if p == id {
				return nil, fmt.Errorf("%w: overflow chain cycle at page %d", ErrBadMeta, id)
			}
		}
		fs.ovPages = append(fs.ovPages, id)
		page := make([]byte, pageSize)
		if _, err := io.ReadFull(io.NewSectionReader(f, fs.offset(id), int64(pageSize)), page); err != nil {
			return nil, fmt.Errorf("%w: overflow page %d: %v", ErrBadMeta, id, err)
		}
		if err := verifyTrailer(page); err != nil {
			return nil, fmt.Errorf("%w: overflow page %d: %v", ErrBadMeta, id, err)
		}
		count := int(binary.LittleEndian.Uint32(page[4:8]))
		if count > fs.overflowCap() {
			return nil, fmt.Errorf("%w: overflow page %d holds %d ids", ErrBadMeta, id, count)
		}
		for i := 0; i < count; i++ {
			if err := addFree(PageID(binary.LittleEndian.Uint32(page[8+4*i:]))); err != nil {
				return nil, err
			}
		}
		id = PageID(binary.LittleEndian.Uint32(page[0:4]))
	}
	if len(fs.free) != freeCount {
		return nil, fmt.Errorf("%w: free count %d but %d ids recovered", ErrBadMeta, freeCount, len(fs.free))
	}
	// Everything allocated, not free, and not a chain page is live data.
	ov := make(map[PageID]struct{}, len(fs.ovPages))
	for _, id := range fs.ovPages {
		ov[id] = struct{}{}
	}
	for id := PageID(1); id < next; id++ {
		if _, isFree := seen[id]; isFree {
			continue
		}
		if _, isOv := ov[id]; isOv {
			continue
		}
		fs.live[id] = struct{}{}
	}
	return fs, nil
}

// inlineFreeCap is the number of free ids the meta page holds inline.
func (fs *FileStore) inlineFreeCap() int { return (fs.pageSize - metaIDsOff - 4) / 4 }

// overflowCap is the number of free ids one overflow chain page holds.
func (fs *FileStore) overflowCap() int { return (fs.pageSize - 8 - 4) / 4 }

// verifyTrailer checks the CRC-32C trailer of a meta or overflow page.
func verifyTrailer(page []byte) error {
	body, trailer := page[:len(page)-4], page[len(page)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return fmt.Errorf("checksum %08x, want %08x", got, want)
	}
	return nil
}

func stampTrailer(page []byte) {
	sum := crc32.Checksum(page[:len(page)-4], castagnoli)
	binary.LittleEndian.PutUint32(page[len(page)-4:], sum)
}

// Sync persists the allocator state (meta page plus free-list overflow
// chain) and flushes the file, establishing a recovery point: a crash any
// time after Sync returns loses nothing written before it.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	//mobidxlint:allow lockorder -- by design: the store latch serializes meta/free-list writes with their fsync; concurrent writers must observe the completed recovery point
	return fs.syncLocked()
}

func (fs *FileStore) syncLocked() error {
	// Chain pages referenced by the previous meta are superseded by the
	// snapshot we are about to write; they become ordinary free pages.
	fs.free = append(fs.free, fs.ovPages...)
	fs.ovPages = nil

	inlineCap := fs.inlineFreeCap()
	perOv := fs.overflowCap()
	var containers []PageID
	for len(fs.free) > inlineCap+len(containers)*perOv {
		// Repurpose a free page as an overflow container. It leaves the
		// free list (the meta will reference it) until the next Sync.
		c := fs.free[len(fs.free)-1]
		fs.free = fs.free[:len(fs.free)-1]
		containers = append(containers, c)
	}

	inline := fs.free
	var spill []PageID
	if len(inline) > inlineCap {
		inline, spill = fs.free[:inlineCap], fs.free[inlineCap:]
	}
	// Write the chain back to front so each page knows its successor.
	nextID := PageID(0)
	for i := len(containers) - 1; i >= 0; i-- {
		lo := i * perOv
		hi := lo + perOv
		if lo > len(spill) {
			lo = len(spill)
		}
		if hi > len(spill) {
			hi = len(spill)
		}
		page := make([]byte, fs.pageSize)
		binary.LittleEndian.PutUint32(page[0:4], uint32(nextID))
		binary.LittleEndian.PutUint32(page[4:8], uint32(hi-lo))
		for j, id := range spill[lo:hi] {
			binary.LittleEndian.PutUint32(page[8+4*j:], uint32(id))
		}
		stampTrailer(page)
		if _, err := fs.f.WriteAt(page, fs.offset(containers[i])); err != nil {
			return fmt.Errorf("pager: write overflow page %d: %w", containers[i], err)
		}
		nextID = containers[i]
	}

	meta := make([]byte, fs.pageSize)
	copy(meta[0:8], fileMagic)
	binary.LittleEndian.PutUint32(meta[8:12], fileVer)
	binary.LittleEndian.PutUint32(meta[12:16], uint32(fs.pageSize))
	binary.LittleEndian.PutUint32(meta[16:20], uint32(fs.next))
	binary.LittleEndian.PutUint32(meta[20:24], uint32(len(inline)+len(spill)))
	binary.LittleEndian.PutUint32(meta[24:28], uint32(nextID))
	binary.LittleEndian.PutUint32(meta[28:32], uint32(len(fs.user)))
	copy(meta[32:32+UserMetaSize], fs.user)
	for i, id := range inline {
		binary.LittleEndian.PutUint32(meta[metaIDsOff+4*i:], uint32(id))
	}
	stampTrailer(meta)
	if _, err := fs.f.WriteAt(meta, 0); err != nil {
		return fmt.Errorf("pager: write meta page: %w", err)
	}
	fs.ovPages = containers
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	return nil
}

// SetUserMeta stores up to UserMetaSize bytes of caller data in the meta
// page — typically an index's root pointer and shape — persisted by the
// next Sync (or Close) and recovered by OpenFileStore via UserMeta.
func (fs *FileStore) SetUserMeta(b []byte) error {
	if len(b) > UserMetaSize {
		return fmt.Errorf("pager: user metadata %d bytes exceeds %d", len(b), UserMetaSize)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	fs.user = append([]byte(nil), b...)
	return nil
}

// UserMeta returns a copy of the stored user metadata.
func (fs *FileStore) UserMeta() []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]byte(nil), fs.user...)
}

// Close syncs the meta page and closes the backing file. It is safe to
// call more than once; later calls return nil.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	//mobidxlint:allow lockorder -- by design: Close holds the latch across the final sync so no writer can slip in between the meta flush and the file close
	syncErr := fs.syncLocked()
	closeErr := fs.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// offset maps a page id to its file position; slot 0 is the meta page.
func (fs *FileStore) offset(id PageID) int64 { return int64(id) * int64(fs.pageSize) }

// Allocate implements Store.
func (fs *FileStore) Allocate() (*Page, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrStoreClosed
	}
	var id PageID
	if n := len(fs.free); n > 0 {
		id = fs.free[n-1]
		fs.free = fs.free[:n-1]
	} else {
		id = fs.next
		fs.next++
	}
	fs.live[id] = struct{}{}
	fs.stats.allocs.Add(1)
	return &Page{ID: id, Data: make([]byte, fs.pageSize)}, nil
}

// Read implements Store. Only a read past EOF of an allocated-but-never-
// written page yields zeroes (the file simply hasn't grown that far); any
// real I/O error propagates wrapped. Concurrent reads share the
// read-latch; a write to the same page is excluded for its duration, so
// readers never observe a torn page.
func (fs *FileStore) Read(id PageID) (*Page, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return nil, ErrStoreClosed
	}
	if _, ok := fs.live[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	data := make([]byte, fs.pageSize)
	n, err := fs.f.ReadAt(data, fs.offset(id))
	switch {
	case err == nil:
	case errors.Is(err, io.EOF):
		// Allocated beyond the written tail of the file: the unread
		// remainder is zeroes by definition.
		for i := n; i < len(data); i++ {
			data[i] = 0
		}
	default:
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	fs.stats.reads.Add(1)
	return &Page{ID: id, Data: data}, nil
}

// Write implements Store.
func (fs *FileStore) Write(p *Page) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if _, ok := fs.live[p.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, p.ID)
	}
	if len(p.Data) != fs.pageSize {
		return fmt.Errorf("pager: write page %d: %d bytes, want %d", p.ID, len(p.Data), fs.pageSize)
	}
	if _, err := fs.f.WriteAt(p.Data, fs.offset(p.ID)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", p.ID, err)
	}
	fs.stats.writes.Add(1)
	return nil
}

// Free implements Store. Freeing the meta page (slot 0) or an overflow
// chain page returns ErrReservedPage; freeing a page already on the free
// list returns ErrDoubleFree. Either would corrupt the free list —
// duplicate ids hand one page to two allocations.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if id == 0 {
		return fmt.Errorf("%w: free meta page", ErrReservedPage)
	}
	if _, ok := fs.live[id]; !ok {
		for _, f := range fs.free {
			if f == id {
				return fmt.Errorf("%w: %d", ErrDoubleFree, id)
			}
		}
		for _, p := range fs.ovPages {
			if p == id {
				return fmt.Errorf("%w: free overflow chain page %d", ErrReservedPage, id)
			}
		}
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(fs.live, id)
	fs.free = append(fs.free, id)
	fs.stats.frees.Add(1)
	return nil
}

// Adopt implements Adopter (see MemStore.Adopt): WAL recovery forces page
// id live. Adopting an overflow chain page is refused — the on-disk meta
// still references it, so a log asking for it has diverged from this file.
func (fs *FileStore) Adopt(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if id == 0 {
		return fmt.Errorf("%w: adopt meta page", ErrReservedPage)
	}
	if _, live := fs.live[id]; live {
		return nil
	}
	if id < fs.next {
		for i, f := range fs.free {
			if f == id {
				fs.free = append(fs.free[:i], fs.free[i+1:]...)
				fs.live[id] = struct{}{}
				return fs.zeroSlot(id)
			}
		}
		return fmt.Errorf("pager: adopt page %d: neither live nor free", id)
	}
	if id != fs.next {
		return fmt.Errorf("pager: adopt page %d skips ids (next is %d)", id, fs.next)
	}
	fs.next++
	fs.live[id] = struct{}{}
	return fs.zeroSlot(id)
}

// zeroSlot clears a page's file bytes. A newly adopted page must read as
// zeroes (like a fresh allocation), but the file slot may hold bytes from
// the page's previous life.
func (fs *FileStore) zeroSlot(id PageID) error {
	if _, err := fs.f.WriteAt(make([]byte, fs.pageSize), fs.offset(id)); err != nil {
		return fmt.Errorf("pager: zero page %d: %w", id, err)
	}
	return nil
}

// Disown implements Adopter (see MemStore.Disown): WAL recovery forces
// page id free.
func (fs *FileStore) Disown(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if id == 0 {
		return fmt.Errorf("%w: disown meta page", ErrReservedPage)
	}
	if _, live := fs.live[id]; !live {
		for _, f := range fs.free {
			if f == id {
				return nil
			}
		}
		return fmt.Errorf("%w: disown %d", ErrPageNotFound, id)
	}
	delete(fs.live, id)
	fs.free = append(fs.free, id)
	return nil
}

// Stats implements Store. Lock-free: see MemStore.Stats.
func (fs *FileStore) Stats() Stats { return fs.stats.snapshot() }

// PagesInUse implements Store.
func (fs *FileStore) PagesInUse() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.live)
}
