package pager

import (
	"errors"
	"path/filepath"
	"testing"
)

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	p1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID == p2.ID {
		t.Fatal("duplicate page ids")
	}
	if p1.ID == NilPage || p2.ID == NilPage {
		t.Fatal("allocated the nil page id")
	}
	copy(p1.Data, []byte("hello"))
	if err := s.Write(p1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(p1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data[:5]) != "hello" {
		t.Fatalf("read back %q", got.Data[:5])
	}
	// The other page must be independent and zeroed.
	got2, err := s.Read(p2.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got2.Data {
		if b != 0 {
			t.Fatalf("fresh page dirty at byte %d", i)
		}
	}
	if s.PagesInUse() != 2 {
		t.Fatalf("PagesInUse = %d, want 2", s.PagesInUse())
	}
	if err := s.Free(p2.ID); err != nil {
		t.Fatal(err)
	}
	if s.PagesInUse() != 1 {
		t.Fatalf("PagesInUse after free = %d, want 1", s.PagesInUse())
	}
	if _, err := s.Read(p2.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("read of freed page: err = %v, want ErrPageNotFound", err)
	}
	// Freed ids are recycled.
	p3, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID != p2.ID {
		t.Fatalf("free list not recycled: got %d, want %d", p3.ID, p2.ID)
	}
}

func TestMemStore(t *testing.T) {
	testStoreBasics(t, NewMemStore(256))
}

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "pages.db"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	testStoreBasics(t, fs)
}

func TestMemStoreStats(t *testing.T) {
	s := NewMemStore(128)
	p, _ := s.Allocate()
	_ = s.Write(p)
	_, _ = s.Read(p.ID)
	_, _ = s.Read(p.ID)
	st := s.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IOs() != 3 {
		t.Fatalf("IOs = %d, want 3", st.IOs())
	}
	before := st
	_, _ = s.Read(p.ID)
	d := s.Stats().Sub(before)
	if d.Reads != 1 || d.Writes != 0 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestMemStoreReadIsolation(t *testing.T) {
	s := NewMemStore(64)
	p, _ := s.Allocate()
	copy(p.Data, []byte("aaaa"))
	_ = s.Write(p)
	r1, _ := s.Read(p.ID)
	r1.Data[0] = 'z' // mutating a read copy must not affect the store
	r2, _ := s.Read(p.ID)
	if r2.Data[0] != 'a' {
		t.Fatal("read copies share backing memory with the store")
	}
}

func TestBufferedHitsAreFree(t *testing.T) {
	under := NewMemStore(128)
	b := NewBuffered(under, 4)
	p, _ := b.Allocate()
	copy(p.Data, []byte("x"))
	if err := b.Write(p); err != nil {
		t.Fatal(err)
	}
	base := b.Stats()
	for i := 0; i < 10; i++ {
		got, err := b.Read(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[0] != 'x' {
			t.Fatal("buffered read returned wrong data")
		}
	}
	if d := b.Stats().Sub(base); d.Reads != 0 {
		t.Fatalf("buffer hits cost %d reads, want 0", d.Reads)
	}
	b.Clear()
	if _, err := b.Read(p.ID); err != nil {
		t.Fatal(err)
	}
	if d := b.Stats().Sub(base); d.Reads != 1 {
		t.Fatalf("after Clear, reads = %d, want 1", d.Reads)
	}
}

func TestBufferedEviction(t *testing.T) {
	under := NewMemStore(128)
	b := NewBuffered(under, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, _ := b.Allocate()
		p.Data[0] = byte(i + 1)
		_ = b.Write(p)
		ids = append(ids, p.ID)
	}
	base := b.Stats()
	// Page 0 was evicted (cap 2, wrote 3): reading it must miss.
	if _, err := b.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if d := b.Stats().Sub(base); d.Reads != 1 {
		t.Fatalf("expected miss for evicted page, reads = %d", d.Reads)
	}
	// Most-recently-written page still cached.
	base = b.Stats()
	if _, err := b.Read(ids[2]); err != nil {
		t.Fatal(err)
	}
	if d := b.Stats().Sub(base); d.Reads != 0 {
		t.Fatalf("expected hit for recent page, reads = %d", d.Reads)
	}
}

func TestBufferedWriteThrough(t *testing.T) {
	under := NewMemStore(128)
	b := NewBuffered(under, 2)
	p, _ := b.Allocate()
	p.Data[0] = 7
	_ = b.Write(p)
	// Bypass the buffer: the underlying store must already have the data.
	got, err := under.Read(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 7 {
		t.Fatal("write did not reach underlying store")
	}
}

func TestBufferedFreeDropsCache(t *testing.T) {
	under := NewMemStore(128)
	b := NewBuffered(under, 4)
	p, _ := b.Allocate()
	_ = b.Write(p)
	if err := b.Free(p.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(p.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("read after free: err = %v, want ErrPageNotFound", err)
	}
}

func TestZeroCapacityBuffer(t *testing.T) {
	under := NewMemStore(128)
	b := NewBuffered(under, 0)
	p, _ := b.Allocate()
	_ = b.Write(p)
	base := b.Stats()
	_, _ = b.Read(p.ID)
	_, _ = b.Read(p.ID)
	if d := b.Stats().Sub(base); d.Reads != 2 {
		t.Fatalf("zero-cap buffer should never hit; reads = %d", d.Reads)
	}
}

func TestFileStorePersistsAcrossPages(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "p.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var ids []PageID
	for i := 0; i < 20; i++ {
		p, _ := fs.Allocate()
		for j := range p.Data {
			p.Data[j] = byte(i)
		}
		if err := fs.Write(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	for i, id := range ids {
		p, err := fs.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data[0] != byte(i) || p.Data[63] != byte(i) {
			t.Fatalf("page %d corrupted", id)
		}
	}
}

// Concurrent readers and writers on distinct pages must be safe (run with
// -race); the stores guard their maps with a mutex.
func TestConcurrentAccess(t *testing.T) {
	s := NewBuffered(NewMemStore(128), 4)
	var ids []PageID
	for i := 0; i < 16; i++ {
		p, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data[0] = byte(i)
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			for k := 0; k < 200; k++ {
				id := ids[(w*7+k)%len(ids)]
				p, err := s.Read(id)
				if err != nil {
					done <- err
					return
				}
				p.Data[1] = byte(k)
				if err := s.Write(p); err != nil {
					done <- err
					return
				}
				if k%50 == 0 {
					s.Clear()
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
