package pager

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds how a RetryStore reacts to transient faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (first try
	// included). Zero selects 4.
	MaxAttempts int
	// Backoff, when non-nil, returns how long to sleep before retry number
	// attempt (1-based). Nil means retry immediately — the right choice for
	// tests and for in-memory substrates.
	Backoff func(attempt int) time.Duration
	// Jitter spreads each backoff uniformly over [d·(1−Jitter), d·(1+Jitter)]
	// so retries from concurrent operations decorrelate instead of
	// hammering the substrate in lockstep. Zero disables jitter; values are
	// clamped to [0, 1].
	Jitter float64
	// Seed makes the jitter sequence deterministic for tests. Zero selects
	// a fixed default seed (the store stays deterministic either way).
	Seed int64
	// MaxElapsed caps the total time an operation may spend across
	// attempts and backoff sleeps. A retry whose sleep would cross the cap
	// gives up immediately with the last error. Zero means no time cap —
	// only MaxAttempts bounds the operation.
	MaxElapsed time.Duration
}

// ExponentialBackoff returns a backoff function starting at base and
// doubling per attempt, capped at max.
func ExponentialBackoff(base, max time.Duration) func(int) time.Duration {
	return func(attempt int) time.Duration {
		d := base << (attempt - 1)
		if d > max || d <= 0 {
			d = max
		}
		return d
	}
}

// OpRetryStats counts one operation class's retry traffic.
type OpRetryStats struct {
	Ops     int64 // operations attempted (first tries)
	Retries int64 // extra attempts after a transient failure
	GaveUps int64 // operations that exhausted attempts or the time cap
}

// RetryCounters breaks retry traffic down by operation class, so a sweep
// can see *where* transients bite (e.g. a read-heavy query phase versus an
// allocation-heavy build).
type RetryCounters struct {
	Read  OpRetryStats
	Write OpRetryStats
	Alloc OpRetryStats
	Free  OpRetryStats
}

// Op classes for the per-class counters.
const (
	opRead = iota
	opWrite
	opAlloc
	opFree
	opClasses
)

// RetryStore wraps a Store and retries operations that fail with a
// transient fault (IsTransient) up to the policy's attempt bound and
// elapsed-time cap, then propagates the last error. Permanent errors —
// ErrPageNotFound, ErrPageCorrupt, real I/O failures — propagate
// immediately: retrying cannot fix them, and hiding them would mask bugs.
type RetryStore struct {
	under   Store
	policy  RetryPolicy
	retries atomic.Int64
	gaveUps atomic.Int64
	perOp   [opClasses]struct{ ops, retries, gaveUps atomic.Int64 }
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// NewRetryStore wraps under with the given policy.
func NewRetryStore(under Store, policy RetryPolicy) *RetryStore {
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = 4
	}
	if policy.Jitter < 0 {
		policy.Jitter = 0
	}
	if policy.Jitter > 1 {
		policy.Jitter = 1
	}
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	return &RetryStore{under: under, policy: policy, rng: rand.New(rand.NewSource(seed))}
}

// Retries returns the number of retried attempts so far, all classes.
func (r *RetryStore) Retries() int64 { return r.retries.Load() }

// GaveUps returns the number of operations that exhausted all attempts.
func (r *RetryStore) GaveUps() int64 { return r.gaveUps.Load() }

// Counters returns a snapshot of the per-class retry statistics.
func (r *RetryStore) Counters() RetryCounters {
	get := func(i int) OpRetryStats {
		return OpRetryStats{
			Ops:     r.perOp[i].ops.Load(),
			Retries: r.perOp[i].retries.Load(),
			GaveUps: r.perOp[i].gaveUps.Load(),
		}
	}
	return RetryCounters{Read: get(opRead), Write: get(opWrite), Alloc: get(opAlloc), Free: get(opFree)}
}

// backoffFor returns the (jittered) sleep before retry number attempt.
func (r *RetryStore) backoffFor(attempt int) time.Duration {
	if r.policy.Backoff == nil {
		return 0
	}
	d := r.policy.Backoff(attempt)
	if d <= 0 || r.policy.Jitter == 0 {
		return d
	}
	r.rngMu.Lock()
	u := r.rng.Float64() // uniform [0, 1)
	r.rngMu.Unlock()
	// Scale into [1−Jitter, 1+Jitter).
	scaled := float64(d) * (1 - r.policy.Jitter + 2*r.policy.Jitter*u)
	if scaled < 0 {
		return 0
	}
	return time.Duration(scaled)
}

// do runs op under the retry policy, charging the given counter class.
func (r *RetryStore) do(class int, op func() error) error {
	r.perOp[class].ops.Add(1)
	start := time.Time{}
	if r.policy.MaxElapsed > 0 {
		start = time.Now()
	}
	var err error
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt == r.policy.MaxAttempts {
			break
		}
		sleep := r.backoffFor(attempt)
		if r.policy.MaxElapsed > 0 && time.Since(start)+sleep >= r.policy.MaxElapsed {
			r.gaveUps.Add(1)
			r.perOp[class].gaveUps.Add(1)
			return fmt.Errorf("pager: gave up after %v elapsed (%d attempts): %w", r.policy.MaxElapsed, attempt, err)
		}
		r.retries.Add(1)
		r.perOp[class].retries.Add(1)
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
	r.gaveUps.Add(1)
	r.perOp[class].gaveUps.Add(1)
	return fmt.Errorf("pager: gave up after %d attempts: %w", r.policy.MaxAttempts, err)
}

// PageSize implements Store.
func (r *RetryStore) PageSize() int { return r.under.PageSize() }

// Allocate implements Store.
func (r *RetryStore) Allocate() (*Page, error) {
	var p *Page
	err := r.do(opAlloc, func() error {
		var e error
		p, e = r.under.Allocate()
		return e
	})
	return p, err
}

// Read implements Store.
func (r *RetryStore) Read(id PageID) (*Page, error) {
	var p *Page
	err := r.do(opRead, func() error {
		var e error
		p, e = r.under.Read(id)
		return e
	})
	return p, err
}

// Write implements Store.
func (r *RetryStore) Write(p *Page) error {
	return r.do(opWrite, func() error { return r.under.Write(p) })
}

// Free implements Store.
func (r *RetryStore) Free(id PageID) error {
	return r.do(opFree, func() error { return r.under.Free(id) })
}

// Stats implements Store.
func (r *RetryStore) Stats() Stats { return r.under.Stats() }

// PagesInUse implements Store.
func (r *RetryStore) PagesInUse() int { return r.under.PagesInUse() }

// Sync forwards to the underlying store's durability point, if any. It is
// not retried: a failed sync leaves the durable state unknown, which the
// caller must see.
func (r *RetryStore) Sync() error {
	s, ok := r.under.(Syncer)
	if !ok {
		return nil
	}
	return s.Sync()
}

// Adopt forwards Adopter so WAL recovery works through a RetryStore.
func (r *RetryStore) Adopt(id PageID) error {
	a, ok := r.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support adopt", r.under)
	}
	return a.Adopt(id)
}

// Disown forwards Adopter.
func (r *RetryStore) Disown(id PageID) error {
	a, ok := r.under.(Adopter)
	if !ok {
		return fmt.Errorf("pager: %T does not support disown", r.under)
	}
	return a.Disown(id)
}
