package pager

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds how a RetryStore reacts to transient faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (first try
	// included). Zero selects 4.
	MaxAttempts int
	// Backoff, when non-nil, returns how long to sleep before retry number
	// attempt (1-based). Nil means retry immediately — the right choice for
	// tests and for in-memory substrates.
	Backoff func(attempt int) time.Duration
}

// ExponentialBackoff returns a backoff function starting at base and
// doubling per attempt, capped at max.
func ExponentialBackoff(base, max time.Duration) func(int) time.Duration {
	return func(attempt int) time.Duration {
		d := base << (attempt - 1)
		if d > max || d <= 0 {
			d = max
		}
		return d
	}
}

// RetryStore wraps a Store and retries operations that fail with a
// transient fault (IsTransient) up to the policy's attempt bound, then
// propagates the last error. Permanent errors — ErrPageNotFound,
// ErrPageCorrupt, real I/O failures — propagate immediately: retrying
// cannot fix them, and hiding them would mask bugs.
type RetryStore struct {
	under   Store
	policy  RetryPolicy
	retries atomic.Int64
	gaveUps atomic.Int64
}

// NewRetryStore wraps under with the given policy.
func NewRetryStore(under Store, policy RetryPolicy) *RetryStore {
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = 4
	}
	return &RetryStore{under: under, policy: policy}
}

// Retries returns the number of retried attempts so far.
func (r *RetryStore) Retries() int64 { return r.retries.Load() }

// GaveUps returns the number of operations that exhausted all attempts.
func (r *RetryStore) GaveUps() int64 { return r.gaveUps.Load() }

// do runs op under the retry policy.
func (r *RetryStore) do(op func() error) error {
	var err error
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt == r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		if r.policy.Backoff != nil {
			time.Sleep(r.policy.Backoff(attempt))
		}
	}
	r.gaveUps.Add(1)
	return fmt.Errorf("pager: gave up after %d attempts: %w", r.policy.MaxAttempts, err)
}

// PageSize implements Store.
func (r *RetryStore) PageSize() int { return r.under.PageSize() }

// Allocate implements Store.
func (r *RetryStore) Allocate() (*Page, error) {
	var p *Page
	err := r.do(func() error {
		var e error
		p, e = r.under.Allocate()
		return e
	})
	return p, err
}

// Read implements Store.
func (r *RetryStore) Read(id PageID) (*Page, error) {
	var p *Page
	err := r.do(func() error {
		var e error
		p, e = r.under.Read(id)
		return e
	})
	return p, err
}

// Write implements Store.
func (r *RetryStore) Write(p *Page) error {
	return r.do(func() error { return r.under.Write(p) })
}

// Free implements Store.
func (r *RetryStore) Free(id PageID) error {
	return r.do(func() error { return r.under.Free(id) })
}

// Stats implements Store.
func (r *RetryStore) Stats() Stats { return r.under.Stats() }

// PagesInUse implements Store.
func (r *RetryStore) PagesInUse() int { return r.under.PagesInUse() }
