package pager

import (
	"errors"
	"testing"
	"time"
)

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Seed:      1,
		Read:      OpFaults{FailEvery: 2},
		Write:     OpFaults{FailEvery: 2},
		Alloc:     OpFaults{FailEvery: 2},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 4})
	p, err := rs.Allocate()
	if err != nil {
		t.Fatalf("alloc through retry: %v", err)
	}
	for i := 0; i < 20; i++ {
		p.Data[0] = byte(i)
		if err := rs.Write(p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := rs.Read(p.ID)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Data[0] != byte(i) {
			t.Fatalf("read %d: stale data", i)
		}
	}
	if rs.Retries() == 0 {
		t.Fatal("expected some retries")
	}
	if rs.GaveUps() != 0 {
		t.Fatalf("%d give-ups with FailEvery=2 and 4 attempts", rs.GaveUps())
	}
}

func TestRetryPropagatesPermanentImmediately(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{Read: OpFaults{FailEvery: 1}})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 5})
	p, _ := rs.Allocate()
	_ = rs.Write(p)
	base := faulty.Counters().Reads
	_, err := rs.Read(p.ID)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if n := faulty.Counters().Reads - base; n != 1 {
		t.Fatalf("permanent fault retried %d times", n-1)
	}
	// Missing pages are permanent too.
	clean := NewRetryStore(NewMemStore(128), RetryPolicy{MaxAttempts: 5})
	if _, err := clean.Read(9999); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestRetryGivesUpAfterBoundedAttempts(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Write:     OpFaults{FailEvery: 1},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 3})
	p, _ := rs.Allocate()
	err := rs.Write(p)
	if err == nil || !IsTransient(err) {
		t.Fatalf("got %v", err)
	}
	if got := faulty.Counters().Writes; got != 3 {
		t.Fatalf("%d attempts, want 3", got)
	}
	if rs.GaveUps() != 1 {
		t.Fatalf("GaveUps = %d", rs.GaveUps())
	}
}

func TestRetryDoesNotRetryCorruption(t *testing.T) {
	under := NewMemStore(128)
	cs, err := NewChecksumStore(under)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 5})
	p, _ := rs.Allocate()
	for i := range p.Data {
		p.Data[i] = 0x42
	}
	if err := rs.Write(p); err != nil {
		t.Fatal(err)
	}
	raw, _ := under.Read(p.ID)
	raw.Data[3] ^= 0x10
	_ = under.Write(raw)
	base := under.Stats().Reads
	_, rerr := rs.Read(p.ID)
	if !errors.Is(rerr, ErrPageCorrupt) {
		t.Fatalf("got %v", rerr)
	}
	if n := under.Stats().Reads - base; n != 1 {
		t.Fatalf("corrupt page re-read %d times; corruption is permanent", n)
	}
}

func TestExponentialBackoff(t *testing.T) {
	b := ExponentialBackoff(time.Millisecond, 8*time.Millisecond)
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := b(i + 1); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}
