package pager

import (
	"errors"
	"testing"
	"time"
)

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Seed:      1,
		Read:      OpFaults{FailEvery: 2},
		Write:     OpFaults{FailEvery: 2},
		Alloc:     OpFaults{FailEvery: 2},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 4})
	p, err := rs.Allocate()
	if err != nil {
		t.Fatalf("alloc through retry: %v", err)
	}
	for i := 0; i < 20; i++ {
		p.Data[0] = byte(i)
		if err := rs.Write(p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := rs.Read(p.ID)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Data[0] != byte(i) {
			t.Fatalf("read %d: stale data", i)
		}
	}
	if rs.Retries() == 0 {
		t.Fatal("expected some retries")
	}
	if rs.GaveUps() != 0 {
		t.Fatalf("%d give-ups with FailEvery=2 and 4 attempts", rs.GaveUps())
	}
}

func TestRetryPropagatesPermanentImmediately(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{Read: OpFaults{FailEvery: 1}})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 5})
	p, _ := rs.Allocate()
	_ = rs.Write(p)
	base := faulty.Counters().Reads
	_, err := rs.Read(p.ID)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if n := faulty.Counters().Reads - base; n != 1 {
		t.Fatalf("permanent fault retried %d times", n-1)
	}
	// Missing pages are permanent too.
	clean := NewRetryStore(NewMemStore(128), RetryPolicy{MaxAttempts: 5})
	if _, err := clean.Read(9999); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestRetryGivesUpAfterBoundedAttempts(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Write:     OpFaults{FailEvery: 1},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 3})
	p, _ := rs.Allocate()
	err := rs.Write(p)
	if err == nil || !IsTransient(err) {
		t.Fatalf("got %v", err)
	}
	if got := faulty.Counters().Writes; got != 3 {
		t.Fatalf("%d attempts, want 3", got)
	}
	if rs.GaveUps() != 1 {
		t.Fatalf("GaveUps = %d", rs.GaveUps())
	}
}

func TestRetryDoesNotRetryCorruption(t *testing.T) {
	under := NewMemStore(128)
	cs, err := NewChecksumStore(under)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 5})
	p, _ := rs.Allocate()
	for i := range p.Data {
		p.Data[i] = 0x42
	}
	if err := rs.Write(p); err != nil {
		t.Fatal(err)
	}
	raw, _ := under.Read(p.ID)
	raw.Data[3] ^= 0x10
	_ = under.Write(raw)
	base := under.Stats().Reads
	_, rerr := rs.Read(p.ID)
	if !errors.Is(rerr, ErrPageCorrupt) {
		t.Fatalf("got %v", rerr)
	}
	if n := under.Stats().Reads - base; n != 1 {
		t.Fatalf("corrupt page re-read %d times; corruption is permanent", n)
	}
}

func TestRetryJitterBoundsAndDeterminism(t *testing.T) {
	const base = time.Millisecond
	mk := func(seed int64) *RetryStore {
		return NewRetryStore(NewMemStore(128), RetryPolicy{
			Backoff: func(int) time.Duration { return base },
			Jitter:  0.5,
			Seed:    seed,
		})
	}
	a, b := mk(42), mk(42)
	lo, hi := time.Duration(float64(base)*0.5), time.Duration(float64(base)*1.5)
	seen := make(map[time.Duration]struct{})
	for i := 1; i <= 64; i++ {
		da, db := a.backoffFor(i), b.backoffFor(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < lo || da >= hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", i, da, lo, hi)
		}
		seen[da] = struct{}{}
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant backoff")
	}
	// Jitter without a backoff function stays immediate, and out-of-range
	// jitter values are clamped rather than rejected.
	if d := NewRetryStore(NewMemStore(128), RetryPolicy{Jitter: 0.5}).backoffFor(1); d != 0 {
		t.Fatalf("jitter with nil backoff slept %v", d)
	}
	clamped := NewRetryStore(NewMemStore(128), RetryPolicy{
		Backoff: func(int) time.Duration { return base },
		Jitter:  7,
	})
	for i := 1; i <= 32; i++ {
		if d := clamped.backoffFor(i); d < 0 || d >= 2*base {
			t.Fatalf("clamped jitter produced %v outside [0, %v)", d, 2*base)
		}
	}
}

func TestRetryMaxElapsedGivesUp(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Write:     OpFaults{FailEvery: 1},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{
		MaxAttempts: 1000,
		Backoff:     func(int) time.Duration { return 250 * time.Millisecond },
		MaxElapsed:  10 * time.Millisecond,
	})
	p, err := rs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	werr := rs.Write(p)
	elapsed := time.Since(start)
	if werr == nil || !IsTransient(werr) {
		t.Fatalf("got %v", werr)
	}
	// The sleep that would cross the cap is never taken: the store gives
	// up before it, so the operation returns well under one backoff.
	if elapsed >= 250*time.Millisecond {
		t.Fatalf("gave up only after %v; the cap must pre-empt the sleep", elapsed)
	}
	if got := faulty.Counters().Writes; got >= 1000 {
		t.Fatalf("%d attempts; MaxElapsed never bit", got)
	}
	if rs.GaveUps() != 1 {
		t.Fatalf("GaveUps = %d, want 1", rs.GaveUps())
	}
	c := rs.Counters()
	if c.Write.GaveUps != 1 || c.Write.Ops != 1 {
		t.Fatalf("write class counters = %+v", c.Write)
	}
}

func TestRetryPerClassCounters(t *testing.T) {
	faulty := NewFaultStore(NewMemStore(128), FaultConfig{
		Seed:      5,
		Read:      OpFaults{FailEvery: 2},
		Write:     OpFaults{FailEvery: 3},
		Alloc:     OpFaults{FailEvery: 2},
		Free:      OpFaults{FailEvery: 2},
		Transient: true,
	})
	rs := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 8})
	var pages []PageID
	for i := 0; i < 6; i++ {
		p, err := rs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Write(p); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Read(p.ID); err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p.ID)
	}
	for _, id := range pages[:3] {
		if err := rs.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	c := rs.Counters()
	if c.Alloc.Ops != 6 || c.Write.Ops != 6 || c.Read.Ops != 6 || c.Free.Ops != 3 {
		t.Fatalf("op counts = %+v", c)
	}
	for name, s := range map[string]OpRetryStats{
		"read": c.Read, "write": c.Write, "alloc": c.Alloc, "free": c.Free,
	} {
		if s.Retries == 0 {
			t.Fatalf("%s: no retries counted under FailEvery faults (%+v)", name, s)
		}
		if s.GaveUps != 0 {
			t.Fatalf("%s: %d give-ups with 8 attempts", name, s.GaveUps)
		}
	}
	total := c.Read.Retries + c.Write.Retries + c.Alloc.Retries + c.Free.Retries
	if total != rs.Retries() {
		t.Fatalf("per-class retries sum to %d, aggregate says %d", total, rs.Retries())
	}
}

func TestExponentialBackoff(t *testing.T) {
	b := ExponentialBackoff(time.Millisecond, 8*time.Millisecond)
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := b(i + 1); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}
