package pager

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mobidx/internal/leakcheck"
)

func newSnapshotWAL(t *testing.T) *WALStore {
	t.Helper()
	w, err := OpenWALStore(NewMemStore(128), NewMemLog(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func fillWALPage(w *WALStore, id PageID, b byte) error {
	data := make([]byte, w.PageSize())
	for i := range data {
		data[i] = b
	}
	return w.Write(&Page{ID: id, Data: data})
}

// TestWALSnapshotIsolation walks the snapshot through a batch lifecycle:
// staged writes and frees must stay invisible until Commit, become visible
// atomically at Commit, and vanish entirely on Rollback.
func TestWALSnapshotIsolation(t *testing.T) {
	w := newSnapshotWAL(t)
	snap := w.Snapshot()

	p, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fillWALPage(w, p.ID, 0xA0); err != nil {
		t.Fatal(err)
	}

	readByte := func() byte {
		t.Helper()
		got, err := snap.Read(p.ID)
		if err != nil {
			t.Fatalf("snapshot read: %v", err)
		}
		for _, b := range got.Data {
			if b != got.Data[0] {
				t.Fatalf("torn snapshot page: %x vs %x", b, got.Data[0])
			}
		}
		return got.Data[0]
	}
	if b := readByte(); b != 0xA0 {
		t.Fatalf("snapshot sees %x, want A0", b)
	}

	// Staged write: store's own Read sees it, the snapshot must not.
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := fillWALPage(w, p.ID, 0xB1); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Read(p.ID); err != nil || got.Data[0] != 0xB1 {
		t.Fatalf("in-batch read = %v, %v; want B1", got, err)
	}
	if b := readByte(); b != 0xA0 {
		t.Fatalf("snapshot sees staged write %x, want A0", b)
	}

	// Staged free: the store refuses the page, the snapshot still serves
	// the committed image (the free has not committed).
	if err := w.Free(p.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Read(p.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("read of batch-freed page = %v, want ErrPageNotFound", err)
	}
	if b := readByte(); b != 0xA0 {
		t.Fatalf("snapshot sees staged free, got %x want A0", b)
	}

	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if b := readByte(); b != 0xA0 {
		t.Fatalf("snapshot after rollback sees %x, want A0", b)
	}

	// Committed write becomes visible.
	if err := RunBatch(w, func() error { return fillWALPage(w, p.ID, 0xC2) }); err != nil {
		t.Fatal(err)
	}
	if b := readByte(); b != 0xC2 {
		t.Fatalf("snapshot after commit sees %x, want C2", b)
	}

	// Checkpoint moves pages from the committed table to the base store;
	// the snapshot must keep serving the same bytes across that move.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if b := readByte(); b != 0xC2 {
		t.Fatalf("snapshot after checkpoint sees %x, want C2", b)
	}

	// The meta page stays off limits through the snapshot too.
	if _, err := snap.Read(w.MetaPage()); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("snapshot meta read = %v, want ErrReservedPage", err)
	}
}

// TestWALSnapshotReadersDuringBatches runs snapshot readers against a
// writer that stages odd-fill pages inside each batch and always commits
// even-fill pages. Readers must only ever observe uniform even-fill images:
// an odd byte means uncommitted state leaked, a non-uniform page means a
// torn read.
func TestWALSnapshotReadersDuringBatches(t *testing.T) {
	leakcheck.Check(t)
	w := newSnapshotWAL(t)

	const npages = 4
	ids := make([]PageID, npages)
	for i := range ids {
		p, err := w.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = p.ID
		if err := fillWALPage(w, p.ID, 0); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap := w.Snapshot()
			for !stop.Load() {
				for _, id := range ids {
					p, err := snap.Read(id)
					if err != nil {
						t.Errorf("snapshot read: %v", err)
						return
					}
					fill := p.Data[0]
					if fill%2 != 0 {
						t.Errorf("snapshot observed uncommitted odd fill %x", fill)
						return
					}
					if !bytes.Equal(p.Data, bytes.Repeat([]byte{fill}, len(p.Data))) {
						t.Errorf("torn snapshot page, fill %x", fill)
						return
					}
				}
			}
		}()
	}

	for round := 1; round <= 60 && !t.Failed(); round++ {
		err := RunBatch(w, func() error {
			// Stage an odd fill first: if the snapshot ever leaks batch
			// state, readers catch the odd byte.
			for _, id := range ids {
				if err := fillWALPage(w, id, byte(2*round+1)); err != nil {
					return err
				}
			}
			for _, id := range ids {
				if err := fillWALPage(w, id, byte(2*round)%250); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("batch %d: %v", round, err)
			break
		}
		if round%20 == 0 {
			if err := w.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestWALConcurrentBatches exercises Begin/Commit from many goroutines at
// once. Concurrent batches join into one merged batch (the documented
// nesting semantics), so the test asserts the weaker but crucial property:
// no operation errors, every write is durable and intact afterwards, and
// the store survives a checkpoint plus recovery-style reads.
func TestWALConcurrentBatches(t *testing.T) {
	leakcheck.Check(t)
	w := newSnapshotWAL(t)

	const writers = 8
	const rounds = 25
	type owned struct {
		id   PageID
		fill byte
	}
	results := make([][]owned, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				fill := byte(1 + (g*rounds+r)%250)
				err := RunBatch(w, func() error {
					p, err := w.Allocate()
					if err != nil {
						return err
					}
					for i := range p.Data {
						p.Data[i] = fill
					}
					if err := w.Write(p); err != nil {
						return err
					}
					results[g] = append(results[g], owned{id: p.ID, fill: fill})
					return nil
				})
				if err != nil {
					t.Errorf("writer %d round %d: %v", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	verify := func(stage string) {
		t.Helper()
		for g, pages := range results {
			for _, o := range pages {
				p, err := w.Read(o.id)
				if err != nil {
					t.Fatalf("%s: writer %d page %d: %v", stage, g, o.id, err)
				}
				if !bytes.Equal(p.Data, bytes.Repeat([]byte{o.fill}, len(p.Data))) {
					t.Fatalf("%s: writer %d page %d corrupted (want fill %x)",
						stage, g, o.id, o.fill)
				}
			}
		}
	}
	verify("after commit")
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	verify("after checkpoint")
	if got := w.PagesInUse(); got != writers*rounds {
		t.Fatalf("PagesInUse = %d, want %d", got, writers*rounds)
	}
}

// TestWALSnapshotConcurrentWithCheckpoint pins the handoff the snapshot
// relies on: while pages migrate from the committed table to the base
// store, a reader must not hit a window where the page is in neither.
func TestWALSnapshotConcurrentWithCheckpoint(t *testing.T) {
	leakcheck.Check(t)
	w := newSnapshotWAL(t)

	p, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fillWALPage(w, p.ID, 0x42); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		snap := w.Snapshot()
		for !stop.Load() {
			got, err := snap.Read(p.ID)
			if err != nil {
				t.Errorf("snapshot read during checkpoint: %v", err)
				return
			}
			if got.Data[0] == 0 {
				t.Error("snapshot read zero page during checkpoint handoff")
				return
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if err := fillWALPage(w, p.ID, byte(0x42+i%4)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := w.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
