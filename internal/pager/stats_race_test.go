package pager

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"mobidx/internal/leakcheck"
)

// hammerStats calls Stats and PagesInUse in a tight loop until stop,
// checking monotonicity of the counters — a torn or racy read would show
// up as a counter moving backwards (and the race detector would flag the
// unsynchronized access besides).
func hammerStats(t *testing.T, s Store, stop *atomic.Bool, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Stats
		for !stop.Load() {
			st := s.Stats()
			if st.Reads < prev.Reads || st.Writes < prev.Writes ||
				st.Allocs < prev.Allocs || st.Frees < prev.Frees {
				t.Errorf("stats moved backwards: %+v then %+v", prev, st)
				return
			}
			prev = st
			_ = s.PagesInUse()
		}
	}()
}

// buildChurn drives a build-like workload: allocate, write, read back,
// and periodically free, so every counter advances while Stats() is
// hammered from other goroutines.
func buildChurn(t *testing.T, s Store, rounds int) {
	t.Helper()
	var held []PageID
	for i := 0; i < rounds; i++ {
		p, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Data {
			p.Data[j] = byte(i)
		}
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(p.ID); err != nil {
			t.Fatal(err)
		}
		held = append(held, p.ID)
		if len(held) > 8 {
			id := held[0]
			held = held[1:]
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStatsDuringBuildRace is the regression test for the Stats() data
// race: before the counters became atomic, reading Stats concurrently
// with a build raced on the plain int64 fields (caught by -race, which
// scripts/verify.sh runs on this package). Every store kind is hammered.
func TestStatsDuringBuildRace(t *testing.T) {
	leakcheck.Check(t)

	stores := map[string]func(t *testing.T) Store{
		"MemStore": func(t *testing.T) Store { return NewMemStore(256) },
		"FileStore": func(t *testing.T) Store {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "stats.db"), 256)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fs.Close() })
			return fs
		},
		"Buffered": func(t *testing.T) Store { return NewBuffered(NewMemStore(256), 64) },
		"WALStore": func(t *testing.T) Store {
			w, err := OpenWALStore(NewMemStore(256), NewMemLog(), WALConfig{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			return w
		},
	}
	for name, mk := range stores {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			leakcheck.Check(t)
			s := mk(t)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				hammerStats(t, s, &stop, &wg)
			}
			buildChurn(t, s, 400)
			stop.Store(true)
			wg.Wait()
			// Reads is not checked: Buffered absorbs read-backs as
			// cache hits, so the underlying counter can stay 0.
			st := s.Stats()
			if st.Allocs < 400 || st.Writes < 400 {
				t.Fatalf("implausible final stats %+v", st)
			}
		})
	}
}
