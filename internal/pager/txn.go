package pager

import (
	"errors"
	"fmt"
)

// ErrTxnDone is returned by operations on a Txn after its Commit or
// Rollback.
var ErrTxnDone = errors.New("pager: txn finished")

// Txn is an explicit, handle-scoped atomic batch. Where the implicit
// Batcher protocol (Begin/Commit on the store itself) is single-writer —
// a nested Begin joins the open batch, so independent goroutines would
// silently merge their batches — each Txn stages its writes and frees
// privately, and any number of them may stage concurrently, alongside
// the implicit batch. Commit appends the whole batch and its commit
// record under the store latch (one short critical section) and is
// durable on return; with WALConfig.GroupCommit, concurrent Txn commits
// coalesce onto shared log syncs, which is what makes many small
// concurrent commits cheap.
//
// A Txn's reads see its own staged writes, then committed state — never
// another transaction's uncommitted staging. Concurrent transactions
// compose at page granularity: the intended use is disjoint page sets
// (per-writer journals, separate structures). Writing the same page from
// two live transactions is last-committer-wins, and freeing a page
// another live transaction still uses is a caller bug the store cannot
// detect. A Txn is owned by one goroutine; the handle itself is not safe
// for concurrent use.
type Txn struct {
	w *WALStore
	b *walBatch
}

// BeginTxn opens an explicit transaction. Unlike Begin, it never joins
// an open batch: every BeginTxn returns an independent handle.
func (w *WALStore) BeginTxn() (*Txn, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ok(); err != nil {
		return nil, err
	}
	return &Txn{w: w, b: &walBatch{
		depth:    1,
		allocSet: make(map[PageID]struct{}),
		writes:   make(map[PageID][]byte),
		freeSet:  make(map[PageID]struct{}),
	}}, nil
}

// PageSize returns the store's page size.
func (t *Txn) PageSize() int { return t.w.pageSize }

// Allocate assigns a fresh page id from the base allocator (ids must be
// stable immediately, exactly as in the implicit protocol); Rollback
// returns it.
func (t *Txn) Allocate() (*Page, error) {
	if t.b == nil {
		return nil, ErrTxnDone
	}
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ok(); err != nil {
		return nil, err
	}
	p, err := w.base.Allocate()
	if err != nil {
		return nil, err
	}
	t.b.allocs = append(t.b.allocs, p.ID)
	t.b.allocSet[p.ID] = struct{}{}
	w.stats.allocs.Add(1)
	return p, nil
}

// Read serves the transaction's own staged image when it has one, else
// the committed state (the WAL page table, then the base store). It
// never sees the implicit batch's or another transaction's staging.
func (t *Txn) Read(id PageID) (*Page, error) {
	if t.b == nil {
		return nil, ErrTxnDone
	}
	w := t.w
	if _, freed := t.b.freeSet[id]; freed {
		return nil, fmt.Errorf("%w: page %d freed in txn", ErrPageNotFound, id)
	}
	if img, ok := t.b.writes[id]; ok {
		data := make([]byte, len(img))
		copy(data, img)
		w.stats.reads.Add(1)
		return &Page{ID: id, Data: data}, nil
	}
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	if id == w.metaPage {
		w.mu.Unlock()
		return nil, fmt.Errorf("pager: read wal meta page %d: %w", id, ErrReservedPage)
	}
	if img, ok := w.table[id]; ok {
		data := make([]byte, len(img))
		copy(data, img)
		w.stats.reads.Add(1)
		w.mu.Unlock()
		return &Page{ID: id, Data: data}, nil
	}
	w.stats.reads.Add(1)
	w.mu.Unlock()
	return w.base.Read(id)
}

// Write stages the page image in the transaction (pure memory; no store
// latch). It becomes visible to others only at Commit.
func (t *Txn) Write(p *Page) error {
	if t.b == nil {
		return ErrTxnDone
	}
	w := t.w
	if len(p.Data) != w.pageSize {
		return fmt.Errorf("pager: wal write page %d: %d bytes, want %d", p.ID, len(p.Data), w.pageSize)
	}
	if p.ID == w.metaPage || p.ID == 0 {
		return fmt.Errorf("pager: write wal meta page %d: %w", p.ID, ErrReservedPage)
	}
	b := t.b
	if _, freed := b.freeSet[p.ID]; freed {
		return fmt.Errorf("%w: page %d freed in txn", ErrPageNotFound, p.ID)
	}
	if _, seen := b.writes[p.ID]; !seen {
		b.writeOrder = append(b.writeOrder, p.ID)
	}
	img := make([]byte, w.pageSize)
	copy(img, p.Data)
	b.writes[p.ID] = img
	w.stats.writes.Add(1)
	return nil
}

// Free stages a free. Liveness is validated now, against this
// transaction's staging and the committed state: once logged, a free
// MUST apply, so a bad id must be rejected before it can reach the log.
func (t *Txn) Free(id PageID) error {
	if t.b == nil {
		return ErrTxnDone
	}
	w := t.w
	b := t.b
	if id == w.metaPage || id == 0 {
		return fmt.Errorf("pager: free wal meta page %d: %w", id, ErrReservedPage)
	}
	if _, dup := b.freeSet[id]; dup {
		return fmt.Errorf("pager: free page %d: %w", id, ErrDoubleFree)
	}
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return err
	}
	_, inTxn := b.allocSet[id]
	_, inWrites := b.writes[id]
	_, inTable := w.table[id]
	w.mu.Unlock()
	if !inTxn && !inWrites && !inTable {
		if _, err := w.base.Read(id); err != nil {
			return fmt.Errorf("pager: free page %d: %w", id, err)
		}
	}
	b.freeSet[id] = struct{}{}
	b.frees = append(b.frees, id)
	w.stats.frees.Add(1)
	return nil
}

// Commit makes the transaction durable and visible, atomically. On
// return the batch is either fully durable (even across a crash) or —
// on error — fully rolled back with no durable or visible trace. The
// handle is finished either way.
func (t *Txn) Commit() error {
	if t.b == nil {
		return ErrTxnDone
	}
	b := t.b
	t.b = nil
	w := t.w
	w.mu.Lock()
	if err := w.ok(); err != nil {
		rerr := w.rollbackBatchLocked(b)
		w.mu.Unlock()
		return errors.Join(err, rerr)
	}
	//mobidxlint:allow lockorder -- by design: the commit record must be appended (and, without group commit, synced) under the latch to keep the log in LSN order; group commit moves the sync wait below the Unlock
	lsn, wait, err := w.commitBatchLocked(b)
	w.mu.Unlock()
	if err != nil || !wait {
		return err
	}
	if err := w.waitDurable(lsn); err != nil {
		return err
	}
	return w.maybeAutoCheckpoint()
}

// Rollback discards the transaction's staging and returns its base
// allocations. The handle is finished.
func (t *Txn) Rollback() error {
	if t.b == nil {
		return ErrTxnDone
	}
	b := t.b
	t.b = nil
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rollbackBatchLocked(b)
}
