package pager

import (
	"fmt"
	"sync"
)

// Viewer is an optional Store capability: zero-copy read access to a
// page's bytes. View returns the store's own image of the page instead of
// a fresh copy, so a steady-state query that only descends an index
// performs no heap allocation at all (the hot-loop discipline enforced by
// the AllocsPerRun gates in the index packages).
//
// The returned slice is read-only and stable: stores that implement
// Viewer install a fresh image on every Write rather than mutating the
// old one in place, so a slice obtained before a concurrent write remains
// a consistent (if stale) snapshot of the page. Callers must never write
// through it and must not use it after freeing the page.
type Viewer interface {
	View(id PageID) ([]byte, error)
}

// ViewBytes reads page id through the store's zero-copy path when it has
// one, and falls back to an ordinary (copying) Read otherwise. Either
// way the result must be treated as read-only.
func ViewBytes(s Store, id PageID) ([]byte, error) {
	if v, ok := s.(Viewer); ok {
		return v.View(id)
	}
	p, err := s.Read(id)
	if err != nil {
		return nil, err
	}
	return p.Data, nil
}

// View implements Viewer: the stored image is returned directly, under
// the read-latch only for the map lookup. Write installs a fresh slice
// per page (never mutating the old image), which is what makes the
// returned bytes a stable snapshot.
func (m *MemStore) View(id PageID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	buf, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	m.stats.reads.Add(1)
	return buf, nil
}

// View implements Viewer. A pool hit returns the cached frame's bytes
// with no copy and no store I/O — frames are immutable once installed
// (see bufFrame), so the slice stays consistent even if the page is
// rewritten later. A miss reads through to the underlying store and
// installs the frame exactly like Read.
func (b *Buffered) View(id PageID) ([]byte, error) {
	sh := b.shard(id)
	sh.mu.RLock()
	if f, ok := sh.frames[id]; ok {
		f.tick.Store(sh.clock.Add(1))
		data := f.data
		sh.mu.RUnlock()
		return data, nil
	}
	sh.mu.RUnlock()
	p, err := b.under.Read(id)
	if err != nil {
		return nil, err
	}
	b.install(id, p.Data)
	return p.Data, nil
}

// PageBuf is a pooled page-sized scratch buffer for node encoders. The
// index packages serialize a node into B and hand it to Store.Write —
// every Store implementation copies the data before returning (Write
// never retains p.Data) — then Release the buffer, so a build writes
// thousands of pages through a handful of recycled buffers instead of
// allocating one per write.
type PageBuf struct {
	B []byte
}

var pageBufPool = sync.Pool{New: func() any { return new(PageBuf) }}

// GetPageBuf returns a zeroed scratch buffer of the given size from the
// pool. Release it when the Write it fed has returned.
func GetPageBuf(size int) *PageBuf {
	pb := pageBufPool.Get().(*PageBuf)
	if cap(pb.B) < size {
		pb.B = make([]byte, size)
		return pb
	}
	pb.B = pb.B[:size]
	for i := range pb.B {
		pb.B[i] = 0
	}
	return pb
}

// Release returns the buffer to the pool.
func (pb *PageBuf) Release() { pageBufPool.Put(pb) }
